#!/usr/bin/env bash
# Harness perf-regression gate.
#
# Compares the latest entry of the perf trajectory
# results/BENCH_series.json (appended by the harness_bench bin: the
# quick fig06 scenario grid, the quick fig03 config sweep, the quick
# fig07 trace replay, and — under EKYA_BENCH_FULL=1 — the full-size
# fig06 grid) against a baseline and fails on a >25% cells/sec
# regression in any gated record (tolerance via EKYA_BENCH_TOLERANCE,
# e.g. 0.25). Baseline records the run did not measure are skipped with
# a notice; pass --all (the nightly lane does) to require every record.
#
# The baseline path defaults to the committed ci/bench_baseline.json
# and can be overridden with EKYA_BENCH_BASELINE. Throughput is
# machine-dependent, so hosted CI points EKYA_BENCH_BASELINE at a
# runner-cached file instead of the committed one: the first run on a
# fresh cache seeds the baseline from its own measurement (and passes),
# later runs on the same runner class gate for real.
#
# Usage:
#   ./ci/check_bench.sh            # gate (exit nonzero on regression)
#   ./ci/check_bench.sh --all      # gate, requiring every baseline record
#   ./ci/check_bench.sh --update   # rebase the baseline
#
# After an intentional perf change on a dev machine, re-measure and
# commit:
#   EKYA_WINDOWS=2 cargo run --release -p ekya-bench --bin harness_bench
#   ./ci/check_bench.sh --update
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE="${EKYA_BENCH_BASELINE:-ci/bench_baseline.json}"
SERIES="${EKYA_RESULTS_DIR:-results}/BENCH_series.json"

# A fresh clone has no trajectory yet — perf_gate would fail on the
# missing file, but the actionable problem is "nothing measured", so
# say that instead.
if [ ! -s "$SERIES" ]; then
  echo "check_bench: no measurements at $SERIES yet — run" >&2
  echo "  cargo run --release -p ekya-bench --bin harness_bench" >&2
  echo "first to record a perf-trajectory entry, then re-run this gate." >&2
  exit 1
fi

if [ "${1:-}" != "--update" ] && [ ! -f "$BASELINE" ]; then
  echo "check_bench: no baseline at $BASELINE — seeding it from the current measurement"
  mkdir -p "$(dirname "$BASELINE")"
  exec cargo run --release -q -p ekya-bench --bin perf_gate -- --update "$BASELINE"
fi

cargo run --release -q -p ekya-bench --bin perf_gate -- "$@" "$BASELINE"
