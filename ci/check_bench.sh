#!/usr/bin/env bash
# Harness perf-regression gate.
#
# Compares the latest entry of the perf trajectory
# results/BENCH_series.json (appended by the harness_bench bin: the
# quick fig06 scenario grid AND the quick fig03 config sweep) against a
# baseline and fails on a >25% cells/sec regression in any gated record
# (tolerance via EKYA_BENCH_TOLERANCE, e.g. 0.25).
#
# The baseline path defaults to the committed ci/bench_baseline.json
# and can be overridden with EKYA_BENCH_BASELINE. Throughput is
# machine-dependent, so hosted CI points EKYA_BENCH_BASELINE at a
# runner-cached file instead of the committed one: the first run on a
# fresh cache seeds the baseline from its own measurement (and passes),
# later runs on the same runner class gate for real.
#
# Usage:
#   ./ci/check_bench.sh            # gate (exit nonzero on regression)
#   ./ci/check_bench.sh --update   # rebase the baseline
#
# After an intentional perf change on a dev machine, re-measure and
# commit:
#   EKYA_WINDOWS=2 cargo run --release -p ekya-bench --bin harness_bench
#   ./ci/check_bench.sh --update
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE="${EKYA_BENCH_BASELINE:-ci/bench_baseline.json}"

if [ "${1:-}" != "--update" ] && [ ! -f "$BASELINE" ]; then
  echo "check_bench: no baseline at $BASELINE — seeding it from the current measurement"
  mkdir -p "$(dirname "$BASELINE")"
  exec cargo run --release -q -p ekya-bench --bin perf_gate -- --update "$BASELINE"
fi

cargo run --release -q -p ekya-bench --bin perf_gate -- "$@" "$BASELINE"
