#!/usr/bin/env bash
# Renders the perf-gate verdict and the results/BENCH_series.json
# trajectory as markdown — into the GitHub step summary when
# $GITHUB_STEP_SUMMARY is set (the CI lanes call this right after the
# perf gate, so regressions are readable without downloading logs), to
# stdout otherwise.
#
# Environment:
#   EKYA_BENCH_BASELINE   baseline the verdict re-checks (default
#                         ci/bench_baseline.json — CI points it at the
#                         runner-cached baseline, like the gate itself)
#   EKYA_PERF_GATE_FLAGS  extra perf_gate flags (the nightly lane's --all)
#
# This step only *renders*; the pass/fail that blocks the job is the
# preceding ./ci/check_bench.sh run. Never exits nonzero.
set -uo pipefail
cd "$(dirname "$0")/.."

OUT="${GITHUB_STEP_SUMMARY:-/dev/stdout}"
BASELINE="${EKYA_BENCH_BASELINE:-ci/bench_baseline.json}"

{
  echo "## Harness perf gate"
  # shellcheck disable=SC2086  # EKYA_PERF_GATE_FLAGS is intentionally word-split
  if gate_out=$(cargo run --release -q -p ekya-bench --bin perf_gate -- \
    ${EKYA_PERF_GATE_FLAGS:-} "$BASELINE" 2>&1); then
    echo "**PASS** — no gated record regressed beyond tolerance."
  else
    echo "**FAIL** — a gated record regressed, or the gate could not run."
  fi
  echo
  echo '```'
  echo "${gate_out:-<no perf_gate output>}"
  echo '```'
  echo
  echo "## Perf trajectory"
  echo '```'
  series_out=$(cargo run --release -q -p ekya-bench --bin bench_series 2>&1)
  echo "${series_out:-<no bench_series output>}"
  echo '```'
  echo
  # Serving hot-path frames/sec, pulled out of the full trajectory so
  # the record that gates the zero-copy serving path (cells == frames
  # for `serve_throughput*`) is readable without scanning every table.
  echo "## Serving hot path (frames/sec trajectory)"
  serve_out=$(echo "$series_out" \
    | awk '/^## serve_throughput/{on=1; print; next} /^## /{on=0} on')
  if [ -n "$serve_out" ]; then
    echo '```'
    echo "$serve_out"
    echo '```'
  else
    echo "_no serve_throughput entries in the trajectory yet — run harness_bench_"
  fi
  echo
  # Logical-plane window traces, when the quick tier's traced ekya_serve
  # smoke (EKYA_TRACE=1) left any behind. `ekya_trace summary` scans
  # results/TRACE_*.jsonl by default and renders per-layer span/counter/
  # histogram rows with p50/p95.
  echo "## Window trace summary"
  if ls results/TRACE_*.jsonl >/dev/null 2>&1; then
    echo '```'
    cargo run --release -q -p ekya-bench --bin ekya_trace -- summary 2>&1
    echo '```'
  else
    echo "_no results/TRACE_\\*.jsonl traces were recorded in this run_"
  fi
} >>"$OUT"

exit 0
