//! Vendored API-subset shim of `parking_lot`: a [`Mutex`] and [`RwLock`]
//! whose guards are obtained without a poisoning `Result` (the
//! `parking_lot` signature), backed by `std::sync`. A poisoned std lock
//! (a thread panicked while holding it) is recovered into its inner
//! value, matching `parking_lot`'s "no poisoning" semantics.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion with `parking_lot`'s panic-free `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self { inner: sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never returns a
    /// poison error.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

/// Reader–writer lock with `parking_lot`'s panic-free signatures.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new rwlock.
    pub const fn new(value: T) -> Self {
        Self { inner: sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;
    use std::sync::Arc;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn lock_recovers_from_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1; // must not panic
        assert_eq!(*m.lock(), 1);
    }
}
