//! Vendored API-subset shim of `serde`.
//!
//! Real `serde` abstracts over serializer/deserializer implementations;
//! this shim collapses the data model to one concrete tree, [`Value`],
//! because the workspace's only format is JSON (via the sibling
//! `serde_json` shim). The [`Serialize`] and [`Deserialize`] traits and
//! the derive macros keep their upstream *names and import paths*
//! (`use serde::{Serialize, Deserialize}` + `#[derive(...)]` work
//! unchanged), so swapping the real crates back in is a manifest edit,
//! not a source sweep.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// The self-describing data-model tree all (de)serialization goes
/// through. Mirrors JSON, with integers kept exact.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Null / `None`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer too large for `i64`.
    U64(u64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Value>),
    /// Key-ordered map (insertion order preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in a [`Value::Map`].
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Human-readable name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Builds an error from any message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }

    /// Error for an absent struct field.
    pub fn missing_field(field: &str) -> Self {
        Error(format!("missing field `{field}`"))
    }

    /// Error for a value of the wrong shape.
    pub fn type_mismatch(expected: &str, got: &Value) -> Self {
        Error(format!("expected {expected}, got {}", got.kind()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types representable in the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into the data-model tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from the data-model tree.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} out of range"))),
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} out of range"))),
                    Value::F64(f)
                        if f.fract() == 0.0
                            && *f >= <$t>::MIN as f64
                            && *f <= <$t>::MAX as f64 =>
                    {
                        Ok(*f as $t)
                    }
                    other => Err(Error::type_mismatch("integer", other)),
                }
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                match i64::try_from(*self) {
                    Ok(n) => Value::I64(n),
                    Err(_) => Value::U64(*self as u64),
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} out of range"))),
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} out of range"))),
                    Value::F64(f)
                        if f.fract() == 0.0 && *f >= 0.0 && *f <= <$t>::MAX as f64 =>
                    {
                        Ok(*f as $t)
                    }
                    other => Err(Error::type_mismatch("integer", other)),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(f) => Ok(*f),
            Value::I64(n) => Ok(*n as f64),
            Value::U64(n) => Ok(*n as f64),
            other => Err(Error::type_mismatch("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::type_mismatch("bool", other)),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::type_mismatch("single-char string", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::type_mismatch("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for &'static str {
    /// Leaks the string: acceptable for the small, rarely-deserialized
    /// `&'static str` fields in this workspace (e.g. link-model names).
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(Error::type_mismatch("string", other)),
        }
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            other => Err(Error::type_mismatch("null", other)),
        }
    }
}

// ---------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::type_mismatch("sequence", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        <[T; N]>::try_from(items)
            .map_err(|items| Error::custom(format!("expected {N} items, got {}", items.len())))
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Seq(items) => {
                        let mut it = items.iter();
                        let out = ($(
                            $t::from_value(
                                it.next().ok_or_else(|| Error::custom("tuple too short"))?,
                            )?,
                        )+);
                        Ok(out)
                    }
                    other => Err(Error::type_mismatch("sequence", other)),
                }
            }
        }
    )+};
}

impl_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

/// Map keys encodable as JSON object keys.
pub trait MapKey: Sized {
    /// Key → string.
    fn to_key(&self) -> String;
    /// String → key.
    fn from_key(key: &str) -> Result<Self, Error>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }

    fn from_key(key: &str) -> Result<Self, Error> {
        Ok(key.to_string())
    }
}

macro_rules! impl_int_map_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String { self.to_string() }
            fn from_key(key: &str) -> Result<Self, Error> {
                key.parse().map_err(|_| Error::custom(format!("bad integer key `{key}`")))
            }
        }
    )*};
}

impl_int_map_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (k.to_key(), v.to_value())).collect())
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => {
                entries.iter().map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?))).collect()
            }
            other => Err(Error::type_mismatch("map", other)),
        }
    }
}

impl<K: MapKey + Eq + std::hash::Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (k.to_key(), v.to_value())).collect())
    }
}

impl<K: MapKey + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => {
                entries.iter().map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?))).collect()
            }
            other => Err(Error::type_mismatch("map", other)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-9i64).to_value()).unwrap(), -9);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(String::from_value(&"hi".to_string().to_value()).unwrap(), "hi");
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Vec::<f64>::from_value(&vec![1.0, 2.0].to_value()).unwrap(), vec![1.0, 2.0]);
    }

    #[test]
    fn u64_beyond_i64_survives() {
        let big = u64::MAX - 3;
        assert_eq!(u64::from_value(&big.to_value()).unwrap(), big);
    }

    #[test]
    fn map_get() {
        let v = Value::Map(vec![("a".into(), Value::I64(1))]);
        assert_eq!(v.get("a"), Some(&Value::I64(1)));
        assert_eq!(v.get("b"), None);
    }
}
