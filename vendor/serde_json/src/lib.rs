//! Vendored API-subset shim of `serde_json`: [`to_string`],
//! [`to_string_pretty`], and [`from_str`] over the `serde` shim's
//! concrete [`Value`] data model. Emits and parses
//! standard JSON (string escapes, exact integers, shortest-round-trip
//! floats via Rust's `Display`).

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// JSON (de)serialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serializes a value to 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Deserializes a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value).map_err(Error::from)
}

// -------------------------------------------------------------------
// Writer
// -------------------------------------------------------------------

fn write_value(
    out: &mut String,
    v: &Value,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => write_f64(out, *f)?,
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            write_delimited(out, indent, depth, '[', ']', items.len(), |out, i| {
                write_value(out, &items[i], indent, depth + 1)
            })?
        }
        Value::Map(entries) => {
            write_delimited(out, indent, depth, '{', '}', entries.len(), |out, i| {
                let (k, v) = &entries[i];
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, depth + 1)
            })?
        }
    }
    Ok(())
}

fn write_f64(out: &mut String, f: f64) -> Result<(), Error> {
    if !f.is_finite() {
        // JSON has no NaN/Infinity; fail loudly like upstream serde_json
        // instead of writing a `null` a later read would reject anyway.
        return Err(Error(format!("cannot serialize non-finite float {f}")));
    }
    let s = f.to_string();
    out.push_str(&s);
    // serde_json always distinguishes floats; keep `1.0` ≠ `1`.
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
    Ok(())
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_delimited(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut write_item: impl FnMut(&mut String, usize) -> Result<(), Error>,
) -> Result<(), Error> {
    out.push(open);
    if len == 0 {
        out.push(close);
        return Ok(());
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        write_item(out, i)?;
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
    Ok(())
}

// -------------------------------------------------------------------
// Parser
// -------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), Error> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", expected as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null").map(|_| Value::Null),
            Some(b't') => self.eat_literal("true").map(|_| Value::Bool(true)),
            Some(b'f') => self.eat_literal("false").map(|_| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.seq(),
            Some(b'{') => self.map(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn seq(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn map(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            if self.peek() != Some(b'"') {
                return Err(self.err("expected object key"));
            }
            let key = self.string()?;
            self.eat(b':')?;
            entries.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.eat_literal("\\u")?;
                                let lo = self.hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-scan the full UTF-8 char starting at pos-1.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>().map(Value::F64).map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a\"b\n".to_string()).unwrap(), r#""a\"b\n""#);
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("-1.25e2").unwrap(), -125.0);
        assert_eq!(from_str::<String>(r#""a\"b\n""#).unwrap(), "a\"b\n");
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1.0f64, 2.5, -3.0];
        let json = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<f64>>(&json).unwrap(), v);

        let opt: Option<u8> = None;
        assert_eq!(to_string(&opt).unwrap(), "null");
        assert_eq!(from_str::<Option<u8>>("null").unwrap(), None);
    }

    #[test]
    fn pretty_output_shape() {
        let v = vec![1u8, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn float_precision_survives() {
        let x = 0.123_456_789_012_345_67_f64;
        let json = to_string(&x).unwrap();
        assert_eq!(from_str::<f64>(&json).unwrap(), x);
    }

    #[test]
    fn unicode_and_escapes_parse() {
        assert_eq!(from_str::<String>(r#""é€""#).unwrap(), "é€");
        assert_eq!(from_str::<String>("\"héllo\"").unwrap(), "héllo");
        assert_eq!(from_str::<String>(r#""😀""#).unwrap(), "😀");
    }

    #[test]
    fn non_finite_floats_fail_to_serialize() {
        assert!(to_string(&f64::NAN).is_err());
        assert!(to_string(&vec![1.0, f64::INFINITY]).is_err());
    }

    #[test]
    fn out_of_range_whole_floats_rejected_for_ints() {
        assert!(from_str::<u32>("4294967296.0").is_err());
        assert!(from_str::<i8>("1e300").is_err());
        assert_eq!(from_str::<u32>("42.0").unwrap(), 42);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<f64>("1.5x").is_err());
        assert!(from_str::<Vec<u8>>("[1,").is_err());
        assert!(from_str::<String>("\"open").is_err());
    }
}
