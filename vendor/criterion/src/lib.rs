//! Vendored API-subset shim of `criterion`: enough surface for the
//! workspace's `benches/` to compile and produce wall-clock numbers
//! under `cargo bench`. No statistics engine, no HTML reports — each
//! benchmark is warmed up once, timed over an adaptive iteration count,
//! and reported as mean time per iteration on stdout.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver (construct via [`criterion_group!`]).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into().0, self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size, _criterion: self }
    }
}

/// A named benchmark group.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().0);
        run_bench(&label, self.sample_size, f);
        self
    }

    /// Runs one benchmark parameterised by an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().0);
        run_bench(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (upstream flushes reports here; the shim prints
    /// eagerly, so this is a no-op).
    pub fn finish(self) {}
}

/// Identifier for a benchmark, optionally parameterised.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{parameter}", name.into()))
    }

    /// Identifier carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over the configured iteration count.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up (untimed).
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher { iters: sample_size as u64, elapsed: Duration::ZERO };
    f(&mut b);
    let per_iter = b.elapsed.as_secs_f64() / b.iters.max(1) as f64;
    println!("{label:<50} time: {}", format_time(per_iter));
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Bundles benchmark functions into a group runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `fn main` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        c.bench_function("trivial", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("grouped");
        group.sample_size(5);
        group.bench_function(BenchmarkId::new("sum", 10), |b| b.iter(|| (0..10u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| b.iter(|| n * 2));
        group.finish();
    }

    criterion_group!(benches, trivial);

    #[test]
    fn harness_runs() {
        benches();
    }
}
