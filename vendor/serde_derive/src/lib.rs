//! Vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! `serde` shim.
//!
//! Hand-rolled over `proc_macro` token trees (no `syn`/`quote` in this
//! offline build). Supports exactly the shapes this workspace uses:
//! non-generic named-field structs, unit/newtype/tuple structs, and
//! enums with unit or named-field variants. `#[serde(...)]` attributes
//! are not supported (none exist in-tree); anything unrecognised becomes
//! a `compile_error!` rather than silently wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A parsed enum variant: its name, plus field names for brace variants
/// (`None` for unit variants).
type Variant = (String, Option<Vec<String>>);

enum Shape {
    NamedStruct { name: String, fields: Vec<String> },
    TupleStruct { name: String, arity: usize },
    UnitStruct { name: String },
    Enum { name: String, variants: Vec<Variant> },
}

/// Derives `serde::Serialize` (shim) for supported type shapes.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derives `serde::Deserialize` (shim) for supported type shapes.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, generate: fn(&Shape) -> String) -> TokenStream {
    let code = match parse(input) {
        Ok(shape) => generate(&shape),
        Err(msg) => format!("compile_error!({msg:?});"),
    };
    code.parse().expect("serde_derive generated invalid Rust")
}

// -------------------------------------------------------------------
// Parsing
// -------------------------------------------------------------------

fn parse(input: TokenStream) -> Result<Shape, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i)?;

    let kw = expect_ident(&tokens, &mut i)?;
    let is_enum = match kw.as_str() {
        "struct" => false,
        "enum" => true,
        other => return Err(format!("serde shim derive: unsupported item `{other}`")),
    };
    let name = expect_ident(&tokens, &mut i)?;

    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde shim derive: generic type `{name}` not supported; add a manual impl"
        ));
    }

    if is_enum {
        let body = expect_group(&tokens, &mut i, Delimiter::Brace)?;
        let variants = parse_variants(&body)?;
        return Ok(Shape::Enum { name, variants });
    }

    match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let body: Vec<TokenTree> = g.stream().into_iter().collect();
            Ok(Shape::NamedStruct { name, fields: parse_named_fields(&body)? })
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let body: Vec<TokenTree> = g.stream().into_iter().collect();
            Ok(Shape::TupleStruct { name, arity: count_tuple_fields(&body) })
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Shape::UnitStruct { name }),
        other => Err(format!("serde shim derive: unexpected token after `{name}`: {other:?}")),
    }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) -> Result<(), String> {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                match tokens.get(*i) {
                    Some(TokenTree::Group(_)) => *i += 1,
                    other => return Err(format!("malformed attribute: {other:?}")),
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // pub(crate) etc.
                }
            }
            _ => return Ok(()),
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> Result<String, String> {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            Ok(id.to_string())
        }
        other => Err(format!("expected identifier, got {other:?}")),
    }
}

fn expect_group(
    tokens: &[TokenTree],
    i: &mut usize,
    delim: Delimiter,
) -> Result<Vec<TokenTree>, String> {
    match tokens.get(*i) {
        Some(TokenTree::Group(g)) if g.delimiter() == delim => {
            *i += 1;
            Ok(g.stream().into_iter().collect())
        }
        other => Err(format!("expected {delim:?} group, got {other:?}")),
    }
}

/// Advances past tokens until a comma at angle-bracket depth 0 (the
/// field/variant separator), consuming the comma.
fn skip_to_field_sep(tokens: &[TokenTree], i: &mut usize) {
    let mut angle: i32 = 0;
    while let Some(tok) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(tokens: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(tokens, &mut i)?;
        if i >= tokens.len() {
            break;
        }
        let field = expect_ident(tokens, &mut i)?;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after field `{field}`, got {other:?}")),
        }
        skip_to_field_sep(tokens, &mut i);
        fields.push(field);
    }
    Ok(fields)
}

fn count_tuple_fields(tokens: &[TokenTree]) -> usize {
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_to_field_sep(tokens, &mut i);
        count += 1;
    }
    count
}

fn parse_variants(tokens: &[TokenTree]) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(tokens, &mut i)?;
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(tokens, &mut i)?;
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                variants.push((name, Some(parse_named_fields(&body)?)));
                i += 1;
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!(
                    "serde shim derive: tuple enum variant `{name}` not supported"
                ));
            }
            _ => variants.push((name, None)),
        }
        skip_to_field_sep(tokens, &mut i);
    }
    Ok(variants)
}

// -------------------------------------------------------------------
// Code generation
// -------------------------------------------------------------------

fn named_fields_to_map(fields: &[String], accessor: fn(&str) -> String) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "({f:?}.to_string(), ::serde::Serialize::to_value({access}))",
                access = accessor(f)
            )
        })
        .collect();
    format!("::serde::Value::Map(vec![{}])", entries.join(", "))
}

fn named_fields_from_map(fields: &[String], source: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_value({source}.get({f:?}) \
                 .ok_or_else(|| ::serde::Error::missing_field({f:?}))?)?"
            )
        })
        .collect();
    format!("{{ {} }}", inits.join(", "))
}

fn gen_serialize(shape: &Shape) -> String {
    match shape {
        Shape::NamedStruct { name, fields } => {
            let body = named_fields_to_map(fields, |f| format!("&self.{f}"));
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Shape::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ ::serde::Serialize::to_value(&self.0) }}\n\
             }}"
        ),
        Shape::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|idx| format!("::serde::Serialize::to_value(&self.{idx})"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Seq(vec![{}]) }}\n\
                 }}",
                items.join(", ")
            )
        }
        Shape::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
             }}"
        ),
        Shape::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, fields)| match fields {
                    None => format!("Self::{v} => ::serde::Value::Str({v:?}.to_string()),"),
                    Some(fields) => {
                        let pattern = fields.join(", ");
                        let inner = named_fields_to_map(fields, |f| f.to_string());
                        format!(
                            "Self::{v} {{ {pattern} }} => ::serde::Value::Map(vec![\
                             ({v:?}.to_string(), {inner})]),"
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

fn gen_deserialize(shape: &Shape) -> String {
    let sig = "fn from_value(v: &::serde::Value) -> \
               ::core::result::Result<Self, ::serde::Error>";
    match shape {
        Shape::NamedStruct { name, fields } => {
            let body = named_fields_from_map(fields, "v");
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     {sig} {{ Ok(Self {body}) }}\n\
                 }}"
            )
        }
        Shape::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 {sig} {{ Ok(Self(::serde::Deserialize::from_value(v)?)) }}\n\
             }}"
        ),
        Shape::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|idx| {
                    format!(
                        "::serde::Deserialize::from_value(items.get({idx}) \
                         .ok_or_else(|| ::serde::Error::custom(\"tuple too short\"))?)?"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     {sig} {{\n\
                         match v {{\n\
                             ::serde::Value::Seq(items) => Ok(Self({items})),\n\
                             other => Err(::serde::Error::type_mismatch(\"sequence\", other)),\n\
                         }}\n\
                     }}\n\
                 }}",
                items = items.join(", ")
            )
        }
        Shape::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 {sig} {{\n\
                     match v {{\n\
                         ::serde::Value::Null => Ok(Self),\n\
                         other => Err(::serde::Error::type_mismatch(\"null\", other)),\n\
                     }}\n\
                 }}\n\
             }}"
        ),
        Shape::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, f)| f.is_none())
                .map(|(v, _)| format!("{v:?} => Ok(Self::{v}),"))
                .collect();
            let data_checks: Vec<String> = variants
                .iter()
                .filter_map(|(v, f)| f.as_ref().map(|fields| (v, fields)))
                .map(|(v, fields)| {
                    let body = named_fields_from_map(fields, "inner");
                    format!("if let Some(inner) = v.get({v:?}) {{ return Ok(Self::{v} {body}); }}")
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     {sig} {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {units}\n\
                                 other => Err(::serde::Error::custom(\
                                     format!(\"unknown variant `{{other}}`\"))),\n\
                             }},\n\
                             ::serde::Value::Map(_) => {{\n\
                                 {data}\n\
                                 Err(::serde::Error::custom(\"unknown enum variant map\"))\n\
                             }}\n\
                             other => Err(::serde::Error::type_mismatch(\"string or map\", other)),\n\
                         }}\n\
                     }}\n\
                 }}",
                units = unit_arms.join("\n"),
                data = data_checks.join("\n"),
            )
        }
    }
}
