//! Vendored API-subset shim of `proptest`.
//!
//! Provides the [`Strategy`](strategy::Strategy) trait (ranges, tuples, `prop_map`,
//! `prop::collection::vec`) and the [`proptest!`] / [`prop_assert!`] /
//! [`prop_assert_eq!`] macros. Each property runs a fixed number of
//! deterministic random cases (seeded from the test name), with no
//! shrinking — a failing case panics with the standard assert message,
//! so reproduction is re-running the same deterministic test.

use rand::rngs::StdRng;

/// RNG driving case generation (re-exported for the macros).
pub type TestRng = StdRng;

#[doc(hidden)]
pub use rand::SeedableRng as __SeedableRng;

/// Number of cases each property runs.
pub const CASES: u64 = 64;

pub mod strategy {
    //! The [`Strategy`] abstraction.

    use super::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// Generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    impl Strategy for bool {
        type Value = bool;

        /// `bool` as a strategy: a fair coin (upstream spells this
        /// `any::<bool>()`; the workspace only needs the coin).
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.gen_bool(0.5)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident : $idx:tt),+)),+ $(,)?) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy!(
        (A: 0),
        (A: 0, B: 1),
        (A: 0, B: 1, C: 2),
        (A: 0, B: 1, C: 2, D: 3),
        (A: 0, B: 1, C: 2, D: 3, E: 4),
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
    );
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Length bounds for [`vec()`]: a fixed size or a range of sizes.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_inclusive: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty proptest size range");
            SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy produced by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The `prop::` namespace (`prop::collection::vec(...)`).
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Defines `#[test]` functions that run a property over [`CASES`]
/// deterministic random cases.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$attr:meta])*
        fn $name:ident( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            // Seed derived from the test name: deterministic, distinct
            // per property.
            let mut seed: u64 = 0xcbf29ce484222325;
            for byte in stringify!($name).bytes() {
                seed = (seed ^ byte as u64).wrapping_mul(0x100000001b3);
            }
            for case in 0..$crate::CASES {
                let mut rng = <$crate::TestRng as $crate::__SeedableRng>::seed_from_u64(
                    seed ^ case.wrapping_mul(0x9E3779B97F4A7C15),
                );
                $(
                    let $arg = $crate::strategy::Strategy::sample(&($strategy), &mut rng);
                )*
                $body
            }
        }
    )*};
}

/// Asserts a condition inside a property (panics on failure, like
/// `assert!` — the shim does no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "property assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+)
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// Ranges produce in-bounds values; cases are deterministic.
        #[test]
        fn ranges_in_bounds(x in 0usize..10, f in -1.0f64..1.0) {
            prop_assert!(x < 10);
            prop_assert!((-1.0..1.0).contains(&f));
        }

        /// Tuples, prop_map, and nested collections compose.
        #[test]
        fn composition_works(
            pair in (0.0f64..1.0, 1u32..5).prop_map(|(a, b)| a * b as f64),
            rows in prop::collection::vec((prop::collection::vec(0.0f64..1.0, 2), 0u32..3), 1..4),
        ) {
            prop_assert!((0.0..5.0).contains(&pair));
            prop_assert!(!rows.is_empty() && rows.len() < 4);
            for (row, n) in &rows {
                prop_assert_eq!(row.len(), 2);
                prop_assert!(*n < 3);
            }
        }

        /// Fixed-size vec strategies honour the exact size.
        #[test]
        fn fixed_size_vec(v in prop::collection::vec(0i32..100, 7)) {
            prop_assert_eq!(v.len(), 7);
        }
    }
}
