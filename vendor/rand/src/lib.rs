//! Vendored API-subset shim of the `rand` crate (0.8 surface).
//!
//! This build environment has no registry access, so the workspace ships
//! the slice of `rand` it actually uses: [`rngs::StdRng`] (xoshiro256++
//! seeded via SplitMix64 — *not* the upstream ChaCha12, so seeded
//! streams differ from real `rand`), [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] / [`Rng::gen_bool`], and
//! [`seq::SliceRandom::shuffle`]. Everything is deterministic for a
//! fixed seed. Swap for the real crate by editing the workspace
//! dependency table.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Uniform f64 in `[0, 1)` using the top 53 bits.
#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform u64 in `[0, span)` via 128-bit multiply-shift.
#[inline]
fn below_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`] (mirrors `rand` 0.8).
pub trait Rng: RngCore {
    /// Uniform sample from a range (half-open or inclusive).
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types with uniform sampling over ranges. The single blanket
/// [`SampleRange`] impl below (mirroring upstream `rand`) is what lets
/// type inference unify an unsuffixed range literal with the element
/// type demanded by the surrounding expression.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty gen_range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty gen_range");
        T::sample_inclusive(lo, hi, rng)
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + below_u64(rng, span) as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + below_u64(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let u = unit_f64(rng) as $t;
                let v = lo + u * (hi - lo);
                // `u as f32` (and f64 rounding near 1) can land exactly on
                // `hi`; the half-open contract excludes it.
                if v >= hi {
                    hi.next_down().max(lo)
                } else {
                    v
                }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                // Includes the endpoint by scaling the 53-bit grid up one ulp.
                let u = ((rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Builds the RNG from a 64-bit seed (always available, unlike the
    /// upstream byte-array `from_seed`).
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ with SplitMix64
    /// seeding. Statistically solid and fast; deterministic per seed.
    /// (Upstream `StdRng` is ChaCha12 — streams differ.)
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related extensions.

    use super::{below_u64, RngCore};

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Uniformly permutes the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = below_u64(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1 << 40), b.gen_range(0u64..1 << 40));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let f = r.gen_range(-2.0f64..4.0);
            assert!((-2.0..4.0).contains(&f));
            let g = r.gen_range(0.0f32..=1.0);
            assert!((0.0..=1.0).contains(&g));
            let n = r.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&n));
        }
    }

    #[test]
    fn float_half_open_excludes_endpoint() {
        // f32's 24-bit mantissa rounds u near 1 up to exactly 1.0 about
        // once per 2^25 draws; 100k draws make that likely enough to
        // catch a regression while staying fast.
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..100_000 {
            let x = r.gen_range(-0.3f32..0.3);
            assert!(x < 0.3, "half-open range returned its endpoint");
        }
    }

    #[test]
    fn gen_bool_rates() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn unit_float_mean_near_half() {
        let mut r = StdRng::seed_from_u64(3);
        let total: f64 = (0..10_000).map(|_| r.gen_range(0.0f64..1.0)).sum();
        let mean = total / 10_000.0;
        assert!((0.48..0.52).contains(&mean), "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "50 elements should move");
    }

    #[test]
    fn rng_usable_through_mut_ref() {
        fn takes_generic<R: super::RngCore>(rng: &mut R) -> u64 {
            rng.gen_range(0u64..10)
        }
        let mut r = StdRng::seed_from_u64(5);
        let _ = takes_generic(&mut r);
        let rr: &mut StdRng = &mut r;
        let _ = takes_generic(rr);
    }
}
