//! Vendored API-subset shim of `crossbeam`: multi-producer channels with
//! cloneable senders, `Sender::len`, and disconnect-on-drop semantics,
//! plus the work-stealing [`deque`] primitives (`Injector` / `Worker` /
//! `Stealer`), built on `std::sync` primitives. Only the parts of
//! `crossbeam` this workspace uses are provided.

pub mod deque {
    //! Work-stealing deques: a shared [`Injector`] queue plus per-worker
    //! [`Worker`] queues whose [`Stealer`] handles let idle threads take
    //! work from busy ones. API subset of `crossbeam-deque`.

    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Outcome of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was empty.
        Empty,
        /// A task was stolen.
        Success(T),
        /// The operation lost a race and should be retried.
        Retry,
    }

    impl<T> Steal<T> {
        /// Returns the stolen task, if any.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }

        /// True when the queue was observed empty.
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }
    }

    /// A FIFO queue into which new tasks are injected, shared by all
    /// workers.
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Injector<T> {
        /// Creates an empty injector.
        pub fn new() -> Self {
            Self { queue: Mutex::new(VecDeque::new()) }
        }

        /// Pushes a task onto the global queue.
        pub fn push(&self, task: T) {
            self.queue.lock().expect("injector lock").push_back(task);
        }

        /// Steals the oldest task from the global queue.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().expect("injector lock").pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// True when no tasks are queued.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("injector lock").is_empty()
        }

        /// Number of queued tasks.
        pub fn len(&self) -> usize {
            self.queue.lock().expect("injector lock").len()
        }
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    /// A per-thread FIFO work queue. The owning worker pops from the
    /// front; [`Stealer`]s take from the back.
    pub struct Worker<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// Creates an empty FIFO worker queue.
        pub fn new_fifo() -> Self {
            Self { queue: Arc::new(Mutex::new(VecDeque::new())) }
        }

        /// Pushes a task onto this worker's queue.
        pub fn push(&self, task: T) {
            self.queue.lock().expect("worker lock").push_back(task);
        }

        /// Pops the next task from this worker's own queue.
        pub fn pop(&self) -> Option<T> {
            self.queue.lock().expect("worker lock").pop_front()
        }

        /// True when this worker's queue is empty.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("worker lock").is_empty()
        }

        /// Creates a handle other threads can steal through.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer { queue: Arc::clone(&self.queue) }
        }
    }

    /// A handle for stealing tasks from another thread's [`Worker`].
    pub struct Stealer<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Stealer<T> {
        /// Steals the most distant task from the victim's queue.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().expect("stealer lock").pop_back() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// True when the victim's queue is empty.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("stealer lock").is_empty()
        }
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Self { queue: Arc::clone(&self.queue) }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn injector_fifo_order() {
            let inj = Injector::new();
            inj.push(1);
            inj.push(2);
            assert_eq!(inj.len(), 2);
            assert_eq!(inj.steal(), Steal::Success(1));
            assert_eq!(inj.steal(), Steal::Success(2));
            assert!(inj.steal().is_empty());
        }

        #[test]
        fn worker_pop_front_steal_back() {
            let w = Worker::new_fifo();
            let s = w.stealer();
            w.push(1);
            w.push(2);
            w.push(3);
            assert_eq!(s.steal(), Steal::Success(3));
            assert_eq!(w.pop(), Some(1));
            assert_eq!(w.pop(), Some(2));
            assert!(w.is_empty() && s.is_empty());
        }

        #[test]
        fn cross_thread_stealing_drains_everything() {
            let inj = Arc::new(Injector::new());
            for i in 0..200u32 {
                inj.push(i);
            }
            let total: u32 = (0..4)
                .map(|_| {
                    let inj = Arc::clone(&inj);
                    std::thread::spawn(move || {
                        let mut n = 0;
                        while inj.steal().success().is_some() {
                            n += 1;
                        }
                        n
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|t| t.join().unwrap())
                .sum();
            assert_eq!(total, 200);
        }
    }
}

pub mod channel {
    //! MPMC channels (bounded and unbounded).

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        /// Capacity; `None` = unbounded. A rendezvous capacity of 0 is
        /// approximated as 1 (nothing in this workspace uses 0).
        cap: Option<usize>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    /// Carries the unsent message like crossbeam's.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// Error returned by [`Sender::try_send`]. Carries the unsent
    /// message back to the caller like crossbeam's.
    pub enum TrySendError<T> {
        /// Bounded channel at capacity right now.
        Full(T),
        /// All receivers are gone.
        Disconnected(T),
    }

    impl<T> fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("Full(..)"),
                TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
            }
        }
    }

    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("sending on a full channel"),
                TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
            }
        }
    }

    impl<T> std::error::Error for TrySendError<T> {}

    /// The sending half. Cloneable; the channel disconnects when every
    /// sender is dropped.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half. The channel disconnects when every receiver is
    /// dropped.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking while a bounded channel is full.
        /// Fails only when all receivers are gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.chan.state.lock().expect("channel lock");
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                match self.chan.cap {
                    Some(cap) if st.queue.len() >= cap.max(1) => {
                        st = self.chan.not_full.wait(st).expect("channel lock");
                    }
                    _ => break,
                }
            }
            st.queue.push_back(value);
            drop(st);
            self.chan.not_empty.notify_one();
            Ok(())
        }

        /// Non-blocking send: queues the message only when the channel
        /// has room *right now*; a full bounded channel returns
        /// [`TrySendError::Full`] with the message instead of blocking.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut st = self.chan.state.lock().expect("channel lock");
            if st.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if let Some(cap) = self.chan.cap {
                if st.queue.len() >= cap.max(1) {
                    return Err(TrySendError::Full(value));
                }
            }
            st.queue.push_back(value);
            drop(st);
            self.chan.not_empty.notify_one();
            Ok(())
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.chan.state.lock().expect("channel lock").queue.len()
        }

        /// True when no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().expect("channel lock").senders += 1;
            Self { chan: Arc::clone(&self.chan) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.chan.state.lock().expect("channel lock");
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                // Wake receivers so they observe the disconnect.
                self.chan.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Receives a message, blocking while the channel is empty. Fails
        /// when the channel is empty and all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.chan.state.lock().expect("channel lock");
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.chan.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.chan.not_empty.wait(st).expect("channel lock");
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.chan.state.lock().expect("channel lock");
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.chan.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.chan.state.lock().expect("channel lock").queue.len()
        }

        /// True when no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().expect("channel lock").receivers += 1;
            Self { chan: Arc::clone(&self.chan) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.chan.state.lock().expect("channel lock");
            st.receivers -= 1;
            if st.receivers == 0 {
                drop(st);
                // Wake blocked senders so they observe the disconnect.
                self.chan.not_full.notify_all();
            }
        }
    }

    fn channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1 }),
            cap,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender { chan: Arc::clone(&chan) }, Receiver { chan })
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        channel(None)
    }

    /// Creates a bounded channel with capacity `cap` (0 is treated as 1).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        channel(Some(cap))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn unbounded_roundtrip_and_len() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(tx.len(), 2);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn recv_fails_after_all_senders_drop() {
            let (tx, rx) = unbounded::<u8>();
            tx.send(9).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(9));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_fails_after_receiver_drops() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn try_send_full_and_disconnected() {
            let (tx, rx) = bounded(1);
            assert!(tx.try_send(1).is_ok());
            assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
            assert_eq!(rx.recv(), Ok(1));
            assert!(tx.try_send(3).is_ok());
            drop(rx);
            assert!(matches!(tx.try_send(4), Err(TrySendError::Disconnected(4))));
        }

        #[test]
        fn bounded_blocks_until_drained() {
            let (tx, rx) = bounded(1);
            tx.send(1).unwrap();
            let t = std::thread::spawn(move || tx.send(2).unwrap());
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            t.join().unwrap();
        }

        #[test]
        fn cross_thread_many_producers() {
            let (tx, rx) = unbounded();
            let threads: Vec<_> = (0..4)
                .map(|_| {
                    let tx = tx.clone();
                    std::thread::spawn(move || {
                        for i in 0..100u32 {
                            tx.send(i).unwrap();
                        }
                    })
                })
                .collect();
            drop(tx);
            let mut n = 0;
            while rx.recv().is_ok() {
                n += 1;
            }
            for t in threads {
                t.join().unwrap();
            }
            assert_eq!(n, 400);
        }
    }
}
