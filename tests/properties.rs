//! Property-based tests (proptest) over the core invariants.

use ekya::core::{
    default_inference_grid, estimate_window, thief_schedule, EstimateParams, InferenceProfile,
    RetrainConfig, RetrainProfile, RetrainWork, SchedulerParams, StreamInput,
};
use ekya::nn::{nnls, CostModel, LearningCurve};
use ekya::sim::{quantize_inv_pow2, Timeline};
use ekya::video::StreamId;
use proptest::prelude::*;

fn arb_curve() -> impl Strategy<Value = LearningCurve> {
    (0.01f64..5.0, 0.5f64..10.0, 0.2f64..1.0).prop_map(|(a, b, c)| LearningCurve { a, b, c })
}

proptest! {
    /// Learning curves are monotone non-decreasing and bounded by [0, 1].
    #[test]
    fn curve_monotone_bounded(curve in arb_curve(), k1 in 0.0f64..100.0, k2 in 0.0f64..100.0) {
        let (lo, hi) = if k1 <= k2 { (k1, k2) } else { (k2, k1) };
        let v1 = curve.predict(lo);
        let v2 = curve.predict(hi);
        prop_assert!(v1 <= v2 + 1e-12);
        prop_assert!((0.0..=1.0).contains(&v1));
        prop_assert!((0.0..=1.0).contains(&v2));
    }

    /// Fitting any set of valid observations yields a usable curve.
    #[test]
    fn curve_fit_never_panics(
        points in prop::collection::vec((0.0f64..30.0, 0.0f64..=1.0), 0..12)
    ) {
        let c = LearningCurve::fit(&points);
        prop_assert!(c.predict(10.0).is_finite());
    }

    /// NNLS solutions are always element-wise non-negative and never
    /// worse than the zero vector.
    #[test]
    fn nnls_nonnegative_and_sane(
        rows in prop::collection::vec(
            (prop::collection::vec(-3.0f64..3.0, 2), -3.0f64..3.0), 1..10)
    ) {
        let a: Vec<Vec<f64>> = rows.iter().map(|(r, _)| r.clone()).collect();
        let y: Vec<f64> = rows.iter().map(|(_, v)| *v).collect();
        let x = nnls(&a, &y);
        prop_assert_eq!(x.len(), 2);
        for v in &x {
            prop_assert!(*v >= 0.0);
        }
        let res = |xv: &[f64]| -> f64 {
            a.iter().zip(&y).map(|(row, &yi)| {
                let p: f64 = row.iter().zip(xv).map(|(&ai, &xi)| ai * xi).sum();
                (p - yi).powi(2)
            }).sum()
        };
        prop_assert!(res(&x) <= res(&[0.0, 0.0]) + 1e-6);
    }

    /// The estimator's average accuracy is always within [min observed
    /// accuracy, 1] and the duration math is consistent.
    #[test]
    fn estimator_outputs_bounded(
        curve in arb_curve(),
        serving in 0.0f64..1.0,
        gpu_seconds in 0.1f64..500.0,
        train_alloc in 0.0f64..4.0,
        infer_alloc in 0.05f64..4.0,
    ) {
        let infer = InferenceProfile {
            config: ekya::core::InferenceConfig { frame_sampling: 0.5, resolution: 1.0 },
            accuracy_factor: 0.9,
            gpu_demand: 0.05,
        };
        let work = RetrainWork {
            curve: &curve,
            k_total: 10.0,
            k_done: 0.0,
            gpu_seconds_remaining: gpu_seconds,
        };
        let est = estimate_window(
            Some(&work), serving, &infer, None, train_alloc, infer_alloc, 200.0,
            &EstimateParams::default(),
        ).expect("inference fits");
        prop_assert!(est.avg_accuracy >= 0.0 && est.avg_accuracy <= 1.0);
        prop_assert!(est.min_accuracy <= est.avg_accuracy + 1e-9);
        prop_assert!(est.end_model_accuracy + 1e-12 >= serving.clamp(0.0, 1.0));
        if est.completes && train_alloc > 0.0 {
            prop_assert!(est.retrain_duration_secs <= 200.0 + 1e-6);
        }
    }

    /// The thief scheduler never over-allocates the GPU budget and its
    /// objective never falls below the no-retraining floor it starts from.
    #[test]
    fn thief_respects_budget(
        total_gpus in 0.5f64..8.0,
        n in 1usize..6,
        serving in 0.2f64..0.9,
        asymptote in 0.5f64..1.0,
    ) {
        let infer = ekya::core::build_inference_profiles(
            &CostModel::default(), 1.0, 30.0, &default_inference_grid());
        let profiles = vec![RetrainProfile {
            config: RetrainConfig {
                epochs: 10, batch_size: 32, last_layer_neurons: 16,
                layers_trained: 3, data_fraction: 1.0,
            },
            curve: LearningCurve { a: 1.0, b: 2.0, c: asymptote },
            gpu_seconds_per_epoch: 3.0,
        }];
        let streams: Vec<StreamInput> = (0..n).map(|i| StreamInput {
            id: StreamId(i as u32),
            serving_accuracy: serving,
            retrain_profiles: &profiles,
            infer_profiles: &infer,
            in_progress: None,
        }).collect();
        let schedule = thief_schedule(&streams, 200.0, &SchedulerParams::new(total_gpus));
        prop_assert!(schedule.total_allocated() <= total_gpus + 1e-6);
        prop_assert!(schedule.avg_accuracy >= 0.0);
        for d in &schedule.decisions {
            prop_assert!(d.train_gpus >= 0.0);
            prop_assert!(d.infer_gpus >= 0.0);
        }
    }

    /// GPU quantisation never increases the demand (so packing a set of
    /// quantised jobs never exceeds the original budget) and lands on the
    /// supported grid.
    #[test]
    fn quantisation_sound(alloc in 0.0f64..16.0) {
        let q = quantize_inv_pow2(alloc);
        prop_assert!(q >= 0.0);
        if alloc >= 0.125 {
            prop_assert!(q <= alloc + 1e-12);
        }
        if q > 0.0 && q < 1.0 {
            prop_assert!([0.5, 0.25, 0.125].contains(&q));
        } else if q >= 1.0 {
            prop_assert!((q.fract()).abs() < 1e-12);
        }
    }

    /// Timeline averages always lie between the minimum and maximum
    /// values set on the timeline.
    #[test]
    fn timeline_average_bounded(
        values in prop::collection::vec(0.0f64..1.0, 1..20),
    ) {
        let mut t = Timeline::new(0.0, values[0]);
        for (i, v) in values.iter().enumerate().skip(1) {
            t.set(i as f64 * 10.0, *v);
        }
        let horizon = values.len() as f64 * 10.0;
        let avg = t.average(0.0, horizon);
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(avg >= min - 1e-9 && avg <= max + 1e-9);
    }
}
