//! Cross-crate integration tests: the full Ekya pipeline against the
//! paper's qualitative claims.

use ekya::prelude::*;

fn runner_cfg(gpus: f64, seed: u64) -> RunnerConfig {
    RunnerConfig { total_gpus: gpus, seed, ..RunnerConfig::default() }
}

/// The headline claim, end to end: under contention, Ekya's accuracy
/// beats every uniform-scheduler variant on the same workload.
#[test]
fn ekya_beats_uniform_variants_under_contention() {
    let windows = 4;
    let streams = StreamSet::generate(DatasetKind::Cityscapes, 6, windows, 42);
    let cfg = runner_cfg(1.0, 7);

    let mut ekya = EkyaPolicy::new(SchedulerParams::new(1.0));
    let ekya_acc = run_windows(&mut ekya, &streams, &cfg, windows).mean_accuracy();

    let (c1, c2) = holdout_configs(DatasetKind::Cityscapes, &cfg.retrain_grid, &cfg.cost, 999);
    for (config, share, label) in [
        (c1, 0.5, "Uniform (C1, 50%)"),
        (c2, 0.5, "Uniform (C2, 50%)"),
        (c2, 0.9, "Uniform (C2, 90%)"),
    ] {
        let mut uniform = UniformPolicy::new(config, share, label);
        let acc = run_windows(&mut uniform, &streams, &cfg, windows).mean_accuracy();
        assert!(
            ekya_acc > acc - 0.02,
            "Ekya ({ekya_acc:.3}) should be at least competitive with {label} ({acc:.3})"
        );
    }
}

/// Continuous retraining keeps accuracy roughly steady under drift, while
/// never retraining decays (§2.3's motivation, executed through the full
/// runner).
#[test]
fn no_retraining_decays_under_drift() {
    let windows = 5;
    let streams = StreamSet::generate(DatasetKind::Cityscapes, 2, windows, 21);
    let cfg = runner_cfg(1.0, 3);

    // "Never retrain": uniform with 100% inference share.
    let grid = cfg.retrain_grid.clone();
    let mut frozen = UniformPolicy::new(grid[0], 1.0, "No retraining");
    let frozen_report = run_windows(&mut frozen, &streams, &cfg, windows);

    let mut ekya = EkyaPolicy::new(SchedulerParams::new(1.0));
    let ekya_report = run_windows(&mut ekya, &streams, &cfg, windows);

    // After the bootstrap window the frozen model should fall behind.
    let late = |r: &RunReport| {
        r.windows[2..].iter().map(|w| w.mean_accuracy()).sum::<f64>() / (windows - 2) as f64
    };
    assert!(
        late(&ekya_report) > late(&frozen_report) + 0.05,
        "continuous retraining {:.3} must beat frozen {:.3}",
        late(&ekya_report),
        late(&frozen_report)
    );
}

/// More GPUs never meaningfully hurt Ekya (Fig 7's monotone trend).
#[test]
fn ekya_scales_with_gpus() {
    let windows = 3;
    let streams = StreamSet::generate(DatasetKind::UrbanTraffic, 4, windows, 31);
    let acc = |gpus: f64| {
        let mut policy = EkyaPolicy::new(SchedulerParams::new(gpus));
        run_windows(&mut policy, &streams, &runner_cfg(gpus, 3), windows).mean_accuracy()
    };
    let one = acc(1.0);
    let four = acc(4.0);
    assert!(four >= one - 0.03, "4 GPUs ({four:.3}) should not lose to 1 GPU ({one:.3})");
}

/// The trace-driven simulator agrees with the mechanistic runner on the
/// ordering of schedulers (the paper "verified that it produced similar
/// results as the implementation at small-scale", §6.2).
#[test]
fn trace_replay_preserves_scheduler_ordering() {
    let windows = 4;
    let streams = StreamSet::generate(DatasetKind::Cityscapes, 4, windows, 51);
    let cfg = runner_cfg(1.0, 9);
    let (c1, _c2) = holdout_configs(DatasetKind::Cityscapes, &cfg.retrain_grid, &cfg.cost, 999);

    // Mechanistic.
    let mut ekya = EkyaPolicy::new(SchedulerParams::new(1.0));
    let mech_ekya = run_windows(&mut ekya, &streams, &cfg, windows).mean_accuracy();
    let mut uni = UniformPolicy::new(c1, 0.5, "Uniform (C1, 50%)");
    let mech_uni = run_windows(&mut uni, &streams, &cfg, windows).mean_accuracy();

    // Trace replay.
    let trace = record_trace(&streams, &cfg, windows, 4);
    let harness = ReplayPolicyHarness::new(1.0);
    let mut ekya2 = EkyaPolicy::new(SchedulerParams::new(1.0));
    let replay_ekya = harness.run(&mut ekya2, &trace).mean_accuracy();
    let mut uni2 = UniformPolicy::new(c1, 0.5, "Uniform (C1, 50%)");
    let replay_uni = harness.run(&mut uni2, &trace).mean_accuracy();

    assert_eq!(
        mech_ekya > mech_uni,
        replay_ekya > replay_uni,
        "replay must preserve ordering: mech ({mech_ekya:.3} vs {mech_uni:.3}), \
         replay ({replay_ekya:.3} vs {replay_uni:.3})"
    );
}

/// Cloud retraining on a congested cellular link loses to edge retraining
/// (Table 4's shape) in the paper's 8-camera, 400-second setting.
#[test]
fn edge_beats_congested_cloud() {
    use ekya::video::DatasetSpec;
    let windows = 3;
    let base = DatasetSpec {
        window_secs: 400.0,
        ..DatasetSpec::new(DatasetKind::Cityscapes, windows, 77)
    };
    let streams = StreamSet::generate_from_spec(base, 8);
    let cfg = runner_cfg(4.0, 11);

    let mut ekya = EkyaPolicy::new(SchedulerParams::new(4.0));
    let edge = run_windows(&mut ekya, &streams, &cfg, windows).mean_accuracy();

    let cloud = run_cloud_retraining(
        &streams,
        &CloudRunConfig::new(LinkModel::cellular(), cfg.clone()),
        windows,
    )
    .mean_accuracy();
    assert!(edge > cloud, "edge ({edge:.3}) must beat cloud over congested cellular ({cloud:.3})");
}

/// Determinism across the whole stack: same seeds, same report.
#[test]
fn full_pipeline_is_deterministic() {
    let streams = StreamSet::generate(DatasetKind::Waymo, 3, 3, 13);
    let run = || {
        let mut policy = EkyaPolicy::new(SchedulerParams::new(2.0));
        run_windows(&mut policy, &streams, &runner_cfg(2.0, 17), 3)
    };
    assert_eq!(run(), run());
}
