//! Integration tests for the extension features (DESIGN.md §5b): max-min
//! scheduling, golden-model outages, per-class diagnostics, and the
//! wall-clock actor deployment.

use ekya::core::SchedulerObjective;
use ekya::nn::data::DataView;
use ekya::nn::ConfusionMatrix;
use ekya::prelude::*;
use ekya::server::{EdgeServer, EdgeServerConfig};
use ekya::video::DatasetSpec;

/// The max-min objective must not leave any stream far behind the mean
/// objective's worst stream.
#[test]
fn maxmin_objective_end_to_end() {
    let windows = 3;
    let streams = StreamSet::generate(DatasetKind::Cityscapes, 4, windows, 42);
    let cfg = RunnerConfig { total_gpus: 1.0, seed: 7, ..RunnerConfig::default() };

    let run = |objective: SchedulerObjective| {
        let params =
            ekya::core::SchedulerParams { objective, ..ekya::core::SchedulerParams::new(1.0) };
        let mut policy = EkyaPolicy::new(params);
        run_windows(&mut policy, &streams, &cfg, windows)
    };
    let mean_run = run(SchedulerObjective::Mean);
    let mm_run = run(SchedulerObjective::MaxMin);

    // Worst-stream accuracy over the run (skip the bootstrap window).
    let worst = |r: &RunReport| {
        r.windows[1..]
            .iter()
            .flat_map(|w| w.streams.iter().map(|s| s.avg_accuracy))
            .fold(f64::INFINITY, f64::min)
    };
    assert!(
        worst(&mm_run) >= worst(&mean_run) - 0.1,
        "max-min should protect the worst stream: {:.3} vs {:.3}",
        worst(&mm_run),
        worst(&mean_run)
    );
    // And both objectives must produce functioning systems.
    assert!(mm_run.mean_accuracy() > 0.3);
}

/// Per-class diagnostics: after drift, the model's weakest class recall is
/// visibly below its overall accuracy — the signal the confusion matrix
/// exists to expose.
#[test]
fn confusion_matrix_reveals_class_local_drift() {
    use ekya::core::{RetrainConfig, RetrainExecution, TrainHyper};
    use ekya::nn::golden::{distill_labels, OracleTeacher};
    use ekya::nn::{Mlp, MlpArch};

    let ds = VideoDataset::generate(DatasetSpec::new(DatasetKind::Cityscapes, 6, 77));
    let mut teacher = OracleTeacher::new(0.02, ds.num_classes, 3);
    let labelled = distill_labels(&mut teacher, &ds.window(0).train_pool);
    let base = Mlp::new(MlpArch::edge(ds.feature_dim, ds.num_classes, 16), 5);
    let mut exec = RetrainExecution::new(
        &base,
        &labelled,
        RetrainConfig {
            epochs: 30,
            batch_size: 32,
            last_layer_neurons: 16,
            layers_trained: 3,
            data_fraction: 1.0,
        },
        ds.num_classes,
        TrainHyper::default(),
        9,
    );
    exec.run_to_completion();
    let model = exec.model().clone();

    // On drifted data several windows later, the worst class trails the
    // overall accuracy.
    let drifted = DataView::new(&ds.window(5).val, ds.num_classes);
    let cm = ConfusionMatrix::compute(&model, drifted);
    let overall = cm.accuracy();
    let worst = cm.min_recall().expect("classes present");
    assert!(
        worst <= overall + 1e-9,
        "worst class recall {worst:.3} cannot exceed overall {overall:.3}"
    );
    assert!(overall < 1.0, "drift should cost something");
}

/// Outage + recovery through the full pipeline, checked via report fields.
#[test]
fn outage_windows_reported_correctly() {
    let windows = 4;
    let streams = StreamSet::generate(DatasetKind::Waymo, 2, windows, 13);
    let cfg = RunnerConfig {
        total_gpus: 2.0,
        seed: 3,
        outage_windows: vec![1],
        ..RunnerConfig::default()
    };
    let mut policy = EkyaPolicy::new(SchedulerParams::new(2.0));
    let report = run_windows(&mut policy, &streams, &cfg, windows);
    let outage_window = &report.windows[1];
    assert!(outage_window.streams.iter().all(|s| !s.retrained));
    assert!(outage_window.streams.iter().all(|s| s.profiling_gpu_seconds == 0.0));
    // Bootstrap window (0) retrains as usual.
    assert!(report.windows[0].streams.iter().any(|s| s.retrained));
}

/// The wall-clock actor server agrees qualitatively with the virtual-time
/// runner: continuous retraining lifts accuracy over the bootstrap state.
#[test]
fn actor_server_matches_runner_direction() {
    let streams = StreamSet::generate(DatasetKind::UrbanTraffic, 2, 3, 31);
    let mut server = EdgeServer::new(
        streams.clone(),
        EdgeServerConfig { seed: 11, ..EdgeServerConfig::new(2.0) },
    );
    let w0 = server.run_window();
    let w1 = server.run_window();
    server.shutdown();
    let end0: f64 = w0.iter().map(|o| o.end_accuracy).sum::<f64>() / w0.len() as f64;
    let start0: f64 = w0.iter().map(|o| o.start_accuracy).sum::<f64>() / w0.len() as f64;
    assert!(end0 > start0, "bootstrap retraining must lift accuracy");
    let end1: f64 = w1.iter().map(|o| o.end_accuracy).sum::<f64>() / w1.len() as f64;
    assert!(end1 > 0.4, "steady state should be useful: {end1:.3}");
}

/// Custom-spec stream sets honour overridden window lengths.
#[test]
fn generate_from_spec_respects_overrides() {
    let base = DatasetSpec {
        window_secs: 400.0,
        label_fraction: 0.05,
        ..DatasetSpec::new(DatasetKind::Cityscapes, 2, 5)
    };
    let set = StreamSet::generate_from_spec(base, 3);
    assert_eq!(set.len(), 3);
    for (_, ds) in set.iter() {
        assert_eq!(ds.spec.window_secs, 400.0);
        assert_eq!(ds.spec.label_fraction, 0.05);
        // 400 s at 30 fps, 5% labelled -> 600 training samples.
        assert_eq!(ds.window(0).train_pool.len(), 600);
    }
}
