//! Workspace wiring smoke tests: every prelude symbol is importable and
//! every integration suite in `tests/` is registered with cargo (i.e.
//! compiled into this very test run, not silently skipped).

#![allow(unused_imports)]

use ekya::prelude::*;

/// Every symbol `ekya::prelude` promises, referenced by name so a broken
/// re-export fails compilation of this suite (not just the docs).
#[test]
fn prelude_symbols_importable() {
    // ekya-baselines
    let _: fn(
        ekya::video::DatasetKind,
        &[RetrainConfig],
        &ekya::nn::CostModel,
        u64,
    ) -> (RetrainConfig, RetrainConfig) = holdout_configs;
    let _ = std::any::type_name::<CloudRunConfig>();
    let _ = std::any::type_name::<EkyaFixedConfig>();
    let _ = std::any::type_name::<EkyaFixedRes>();
    let _ = std::any::type_name::<OraclePolicy>();
    let _ = std::any::type_name::<UniformPolicy>();
    let _ = run_cloud_retraining as *const ();
    let _ = run_fig2b as *const ();
    let _ = run_model_cache as *const ();

    // ekya-core
    let _ = default_inference_grid as fn() -> Vec<InferenceConfig>;
    let _ = default_retrain_grid as fn() -> Vec<RetrainConfig>;
    let _ = std::any::type_name::<EkyaPolicy>();
    let _ = std::any::type_name::<MicroProfiler>();
    let _ = std::any::type_name::<MicroProfilerParams>();
    let _ = std::any::type_name::<SchedulerParams>();
    fn _policy_is_object_safe(_: &dyn Policy) {}

    // ekya-net / ekya-nn
    let _ = std::any::type_name::<LinkModel>();
    let _ = std::any::type_name::<CostModel>();
    let _ = std::any::type_name::<LearningCurve>();
    let _ = std::any::type_name::<Mlp>();
    let _ = std::any::type_name::<MlpArch>();

    // ekya-server
    let _ = std::any::type_name::<EdgeServer>();
    let _ = std::any::type_name::<EdgeServerConfig>();

    // ekya-sim
    let _ = record_trace as *const ();
    let _ = run_windows::<EkyaPolicy> as *const ();
    let _ = std::any::type_name::<ReplayPolicyHarness>();
    let _ = std::any::type_name::<RunReport>();
    let _ = std::any::type_name::<RunnerConfig>();
    let _ = std::any::type_name::<Trace>();

    // ekya-video
    let _ = std::any::type_name::<DatasetKind>();
    let _ = std::any::type_name::<DatasetSpec>();
    let _ = std::any::type_name::<StreamSet>();
    let _ = std::any::type_name::<VideoDataset>();
}

/// The experiment harness surface of `ekya-bench` (scenario grids, the
/// work-stealing pool, the policy registry) stays importable — these are
/// the entry points CI's quick tier and the fig/table bins ride on.
#[test]
fn harness_symbols_importable() {
    // ekya-baselines registry
    let _ = std::any::type_name::<ekya::baselines::PolicySpec>();
    let _ = std::any::type_name::<ekya::baselines::PolicyBuildCtx>();
    let _ = std::any::type_name::<ekya::baselines::HoldoutPick>();
    let _ = ekya::baselines::standard_policies as fn() -> Vec<ekya::baselines::PolicySpec>;

    // ekya-bench grid + harness (dev-dependency of the facade)
    let _ = std::any::type_name::<ekya_bench::Scenario>();
    let _ = std::any::type_name::<ekya_bench::Grid>();
    let _ = std::any::type_name::<ekya_bench::Knobs>();
    let _ = std::any::type_name::<ekya_bench::CellResult>();
    let _ = std::any::type_name::<ekya_bench::HarnessReport>();
    let _ = std::any::type_name::<ekya_bench::BenchRecord>();
    let _ = ekya_bench::run_grid as fn(&ekya_bench::Grid, usize) -> ekya_bench::GridRun;
    let _ = ekya_bench::fig06_grid as fn(bool, usize, u64) -> ekya_bench::Grid;
    let _ = ekya_bench::cell_seed as *const ();
    let _ = ekya_bench::run_parallel::<u8, u8, fn(usize, u8) -> u8> as *const ();

    // Sharded + resumable execution surface (EKYA_SHARD / EKYA_RESUME +
    // the grid_merge bin ride on these).
    let _ = std::any::type_name::<ekya_bench::ShardSpec>();
    let _ = std::any::type_name::<ekya_bench::GridExec>();
    let _ = std::any::type_name::<ekya_bench::GridRun>();
    let _ = std::any::type_name::<ekya_bench::RunStats>();
    let _ = std::any::type_name::<ekya_bench::ConfigPoint>();
    let _ = std::any::type_name::<ekya_bench::ConfigShard>();
    let _ = ekya_bench::merge_reports
        as fn(&[ekya_bench::HarnessReport]) -> Result<ekya_bench::HarnessReport, String>;
    let _ = ekya_bench::merge_config_shards as *const ();
    let _ = ekya_bench::run_grid_bin as *const ();
    let _ = ekya_bench::load_report as *const ();
    let _ = ekya_bench::report_path as *const ();
    let _ = ekya_bench::coverage_order as *const ();

    // The pool's building blocks in the crossbeam shim.
    let _ = std::any::type_name::<crossbeam::deque::Injector<u8>>();
    let _ = std::any::type_name::<crossbeam::deque::Worker<u8>>();
    let _ = std::any::type_name::<crossbeam::deque::Stealer<u8>>();

    // Policies are thread-safe by construction: `Policy: Send` holds for
    // boxed registry output.
    fn assert_send<T: Send + ?Sized>() {}
    assert_send::<dyn Policy>();
}

/// The orchestration surface: the shardable-bin registry + custom-eval
/// grid execution in `ekya-bench`, the perf trajectory, and the
/// plan/spawn/monitor/retry/merge layers of `ekya-orchestrate` that the
/// `ekya_grid` launcher (and its tests) ride on.
#[test]
fn orchestrator_symbols_importable() {
    // ekya-bench: bin registry + programmatic knob surface.
    let _ = std::any::type_name::<ekya_bench::BinWorkload>();
    let _ = std::any::type_name::<ekya_bench::ConfigSweep>();
    let _ = ekya_bench::bin_workload as *const ();
    let _ = ekya_bench::run_bin as *const ();
    let _ = ekya_bench::run_config_bin as *const ();
    let _ = ekya_bench::run_fig08_bin as *const ();
    let _ = ekya_bench::run_fig07_bin as *const ();
    let _ = ekya_bench::run_table4_bin as *const ();
    let _ = ekya_bench::run_table5_bin as *const ();
    let _ = ekya_bench::run_fig09_bin as *const ();
    let _ = ekya_bench::run_fig11_bin as *const ();
    let _ = ekya_bench::run_ablation_bin as *const ();
    let _ = ekya_bench::shardable_bins as fn() -> [&'static str; 11];
    let _ = ekya_bench::config_grid as *const ();
    let _ = ekya_bench::table3_grid as *const ();
    let _ = ekya_bench::fig08_grid as *const ();
    let _ = ekya_bench::fig07_grid as *const ();
    let _ = ekya_bench::fig10_grid as *const ();
    let _ = ekya_bench::table4_grid_for as *const ();
    let _ = ekya_bench::table5_grid_for as *const ();
    let _ = ekya_bench::fig09_grid_for as *const ();
    let _ = ekya_bench::fig11_grid_for as *const ();
    let _ = ekya_bench::ablation_grid_for as *const ();
    let _ = std::any::type_name::<ekya_bench::ReplayTraces>();
    // The registry-buildable §6.5 / ablation policy surface.
    let _ = std::any::type_name::<ekya::baselines::CloudNetwork>();
    let _ = std::any::type_name::<ekya::baselines::DesignToggle>();
    let _ = std::any::type_name::<ekya::baselines::InferenceOnlyPolicy>();
    let _ = ekya_bench::run_grid_bin_with::<fn(&ekya_bench::Scenario) -> ekya_bench::CellResult>
        as *const ();

    // ekya-bench: perf trajectory.
    let _ = std::any::type_name::<ekya_bench::BenchSeriesEntry>();
    let _ = ekya_bench::append_bench_series as *const ();
    let _ = ekya_bench::latest_bench_entry as *const ();
    let _ = ekya_bench::git_describe as fn() -> String;

    // ekya-orchestrate: plan / spawn / monitor / retry / merge.
    let _ = std::any::type_name::<ekya_orchestrate::Plan>();
    let _ = std::any::type_name::<ekya_orchestrate::PlanEnv>();
    let _ = std::any::type_name::<ekya_orchestrate::ShardPlan>();
    let _ = std::any::type_name::<ekya_orchestrate::WorkloadKind>();
    let _ = std::any::type_name::<ekya_orchestrate::Spawner>();
    let _ = std::any::type_name::<ekya_orchestrate::Status>();
    let _ = std::any::type_name::<ekya_orchestrate::ShardStatus>();
    let _ = std::any::type_name::<ekya_orchestrate::ShardState>();
    let _ = std::any::type_name::<ekya_orchestrate::ShardFailure>();
    let _ = std::any::type_name::<ekya_orchestrate::RunState>();
    let _ = std::any::type_name::<ekya_orchestrate::SuperviseOpts>();
    let _ = std::any::type_name::<ekya_orchestrate::MergedInfo>();
    let _ = ekya_orchestrate::supervise as *const ();
    let _ = ekya_orchestrate::merge_run as *const ();
    let _ = ekya_orchestrate::promote as *const ();
    let _ = ekya_orchestrate::probe_shard as *const ();
    let _ = ekya_orchestrate::read_status as *const ();
    let _ = ekya_orchestrate::write_status as *const ();
    let _ = ekya_orchestrate::backoff_delay as fn(u64, usize) -> std::time::Duration;
}

/// The facade re-exports all nine sub-crates as modules.
#[test]
fn facade_modules_present() {
    let _ = std::any::type_name::<ekya::actors::ActorSystem<DummyActor>>();
    let _ = std::any::type_name::<ekya::baselines::uniform::UniformPolicy>();
    let _ = std::any::type_name::<ekya::core::Schedule>();
    let _ = std::any::type_name::<ekya::net::Direction>();
    let _ = std::any::type_name::<ekya::nn::Matrix>();
    let _ = std::any::type_name::<ekya::server::TrainOutcome>();
    let _ = std::any::type_name::<ekya::sim::SimTime>();
    let _ = std::any::type_name::<ekya::telemetry::TraceRecord>();
    let _ = std::any::type_name::<ekya::video::ObjectClass>();
}

struct DummyActor;

impl ekya::actors::Actor for DummyActor {
    type Msg = ();
    type Reply = ();

    fn handle(&mut self, _msg: ()) {}
}

/// The determinism lint (`ekya-lint`): its API surface stays importable,
/// its rule set stays at five, and both of its integration suites — the
/// per-rule fixture tests and the workspace-is-lint-clean self-test —
/// exist where cargo auto-discovers them.
#[test]
fn ekya_lint_registered() {
    let _ = std::any::type_name::<ekya_lint::Violation>();
    let _ = std::any::type_name::<ekya_lint::Config>();
    let _ =
        ekya_lint::lint_source as fn(&str, &str, &ekya_lint::Config) -> Vec<ekya_lint::Violation>;
    let _ = ekya_lint::lint_workspace as *const ();
    assert_eq!(ekya_lint::RULES.len(), 5);

    let suites_dir =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("crates/ekya-lint/tests");
    for suite in ["fixtures.rs", "workspace_clean.rs"] {
        let path = suites_dir.join(suite);
        assert!(path.is_file(), "ekya-lint suite {suite} missing from crates/ekya-lint/tests/");
        let src = std::fs::read_to_string(&path).expect("suite readable");
        assert!(src.contains("#[test]"), "ekya-lint suite {suite} contains no #[test] functions");
    }
}

/// The serving path: the multi-tenant daemon surface in `ekya-server`,
/// the loadgen surface in `ekya-bench`, both serving suites registered
/// where cargo discovers them, and the headline determinism contract —
/// two fleet runs with one seed serialize byte-identically.
#[test]
fn serving_path_registered() {
    // ekya-server daemon surface.
    let _ = std::any::type_name::<ekya::server::EdgeServer>();
    let _ = std::any::type_name::<ekya::server::EdgeServerConfig>();
    let _ = std::any::type_name::<ekya::server::EdgeDaemon>();
    let _ = std::any::type_name::<ekya::server::ServeConfig>();
    let _ = std::any::type_name::<ekya::server::DaemonClient>();
    let _ = std::any::type_name::<ekya::server::AdmissionError>();
    let _ = std::any::type_name::<ekya::server::ServeError>();
    let _ = std::any::type_name::<ekya::server::ArrivalPattern>();
    let _ = std::any::type_name::<ekya::server::InferenceShard>();
    let _ = std::any::type_name::<ekya::server::SwapTarget>();
    let _ = std::any::type_name::<ekya::server::StatusSnapshot>();
    let _ = std::any::type_name::<ekya::server::StreamStatus>();
    // Backpressure substrate the daemon's shards ride on (exercised, not
    // just named: `impl Into<String>` params cannot be turbofished).
    let bounded = ekya::actors::spawn_bounded("smoke-bounded", DummyActor, 1);
    bounded.ask(()).expect("bounded mailbox delivers");
    bounded.stop();
    let supervised = ekya::actors::spawn_supervised_bounded("smoke-sup", || DummyActor, 1);
    supervised.ask(()).expect("bounded supervised mailbox delivers");
    supervised.stop();

    // ekya-bench loadgen surface.
    let _ = std::any::type_name::<ekya_bench::FleetConfig>();
    let _ = std::any::type_name::<ekya_bench::LoadgenReport>();
    let _ = ekya_bench::run_fleet as *const ();
    let _ = ekya_bench::build_daemon as *const ();
    let _ = ekya_bench::quick_fleet as *const ();
    let _ = ekya_bench::knob::streams_live as fn() -> Option<usize>;
    let _ = ekya_bench::knob::serve_crash_after as fn() -> Option<usize>;
    let _ = ekya_bench::knob::arrival as fn() -> String;

    // Both serving suites exist where cargo auto-discovers them.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    for (dir, suite) in
        [("crates/ekya-server/tests", "serve.rs"), ("crates/ekya-bench/tests", "serve_path.rs")]
    {
        let path = root.join(dir).join(suite);
        assert!(path.is_file(), "serving suite {suite} missing from {dir}/");
        let src = std::fs::read_to_string(&path).expect("suite readable");
        assert!(src.contains("#[test]"), "serving suite {suite} contains no #[test] functions");
    }

    // Determinism: one seed, two runs, byte-identical snapshots.
    let a = ekya_bench::run_fleet(&ekya_bench::FleetConfig::serial(2, 1, 7)).0;
    let b = ekya_bench::run_fleet(&ekya_bench::FleetConfig::serial(2, 1, 7)).0;
    assert_eq!(
        serde_json::to_string_pretty(&a.snapshot).unwrap(),
        serde_json::to_string_pretty(&b.snapshot).unwrap(),
        "serving snapshots must be byte-identical for one seed"
    );
}

/// The telemetry surface (`ekya-telemetry`): both planes' entry points
/// stay importable through the facade, the logical-plane toolkit
/// (parse / merge / validate / summarize / chrome export) stays intact,
/// the `EKYA_TRACE` knob stays on the knob surface, and the trace
/// integration suite exists where cargo auto-discovers it.
#[test]
fn telemetry_registered() {
    // Session control + the disabled-fast-path check.
    let _ = ekya::telemetry::start as fn(Option<std::path::PathBuf>);
    let _ = ekya::telemetry::stop as fn();
    let _ = ekya::telemetry::enabled as fn() -> bool;
    let _ = ekya::telemetry::flush as fn() -> std::io::Result<()>;
    let _ = ekya::telemetry::render as fn() -> String;

    // Logical-plane emission + context keying.
    let _ = std::any::type_name::<ekya::telemetry::Ctx>();
    let _ = std::any::type_name::<ekya::telemetry::CtxGuard>();
    let _ = std::any::type_name::<ekya::telemetry::TraceRecord>();
    let _ = ekya::telemetry::span as fn(&str, &str, f64, &str);
    let _ = ekya::telemetry::event as fn(&str, &str, &str);
    let _ = ekya::telemetry::counter_add as fn(&str, &str, u64);
    let _ = ekya::telemetry::hist_observe as fn(&str, &str, f64);

    // Trace toolkit the ekya_trace bin rides on.
    let _ = ekya::telemetry::parse_trace as *const ();
    let _ = ekya::telemetry::merge_traces as *const ();
    let _ = ekya::telemetry::validate_trace as fn(&str) -> Vec<String>;
    let _ = ekya::telemetry::chrome_trace as *const ();
    let _ = ekya::telemetry::summarize as *const ();
    let _ = ekya::telemetry::timeline as *const ();
    let _ = std::any::type_name::<ekya::telemetry::SummaryRow>();
    let _ = ekya::telemetry::HIST_BUCKETS;

    // Wall-clock plane: quarantined in the timing module, sidecar-only.
    let _ =
        ekya::telemetry::wall_span as fn(&'static str, &'static str) -> ekya::telemetry::WallSpan;
    let _ = ekya::telemetry::wall_gauge_max as fn(&'static str, &'static str, u64);

    // The EKYA_TRACE knob + the trace-path policy live on ekya-bench.
    let _ = ekya_bench::knob::trace as fn() -> Option<String>;
    let _ = ekya_bench::trace_path as *const ();

    // The trace integration suite exists where cargo discovers it.
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("crates/ekya-bench/tests/trace.rs");
    assert!(path.is_file(), "trace suite missing from crates/ekya-bench/tests/");
    let src = std::fs::read_to_string(&path).expect("suite readable");
    assert!(src.contains("#[test]"), "trace suite contains no #[test] functions");
}

/// All integration suites exist where cargo auto-discovers them. Each
/// `tests/*.rs` file is its own test target, so presence in this
/// directory == registration; a deleted or moved suite fails here
/// instead of silently dropping out of CI.
#[test]
fn integration_suites_registered() {
    let tests_dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests");
    for suite in ["end_to_end.rs", "extensions.rs", "properties.rs"] {
        let path = tests_dir.join(suite);
        assert!(path.is_file(), "integration suite {suite} missing from tests/");
        let src = std::fs::read_to_string(&path).expect("suite readable");
        assert!(src.contains("#[test]"), "integration suite {suite} contains no #[test] functions");
    }
}

/// The quickstart pipeline from the crate docs runs end to end (the same
/// flow as the `src/lib.rs` doctest, kept here as a plain test so it is
/// exercised even under `--tests`-only runs).
#[test]
fn quickstart_pipeline_runs() {
    let streams = StreamSet::generate(DatasetKind::UrbanTraffic, 2, 3, 42);
    let mut policy = EkyaPolicy::new(SchedulerParams::new(1.0));
    let cfg = RunnerConfig { total_gpus: 1.0, ..RunnerConfig::default() };
    let report = run_windows(&mut policy, &streams, &cfg, 3);
    assert!(report.mean_accuracy() > 0.0);
}
