#!/usr/bin/env sh
# ssh_worker.sh — run an ekya_grid shard worker on a remote machine.
#
# The ekya_grid supervisor launches each shard as
#   <program> worker --bin <BIN>
# with the shard's knobs in EKYA_* environment variables. The program is
# a plain path (--worker-program), so this wrapper is a complete
# multi-machine fan-out hook: it forwards the knobs over ssh and invokes
# a remote ekya_grid binary in worker mode. No supervisor change needed.
#
# Requirements:
#   * EKYA_SSH_HOST    — user@host to run the shard on (required).
#   * EKYA_SSH_BIN     — path of the ekya_grid binary on the remote
#                        (default: ekya_grid on the remote PATH).
#   * The run directory must be a SHARED path (NFS or similar) visible
#     at the same location on both machines: the supervisor monitors the
#     shard's .partial.json checkpoint and reads its final report from
#     EKYA_RESULTS_DIR, which this wrapper forwards verbatim. Override
#     the remote-side path with EKYA_SSH_RESULTS_DIR if the share is
#     mounted elsewhere (heartbeat monitoring then rides the share's
#     attribute freshness — mount with actimeo low enough to beat your
#     --stall-timeout).
#
# Usage (one shard per remote host class):
#   cargo run --release -p ekya-orchestrate --bin ekya_grid -- \
#     run --bin fig07_provisioning --shards 8 \
#     --worker-program examples/ssh_worker.sh
#
# See "Multi-machine fan-out over ssh" in crates/ekya-bench/README.md.
set -eu

: "${EKYA_SSH_HOST:?set EKYA_SSH_HOST to user@host}"
REMOTE_BIN="${EKYA_SSH_BIN:-ekya_grid}"
REMOTE_RESULTS="${EKYA_SSH_RESULTS_DIR:-${EKYA_RESULTS_DIR:?supervisor did not set EKYA_RESULTS_DIR}}"

# Forward every supervisor-owned knob that is set. Values are the
# supervisor's own (digits, i/N, 0/1), so plain quoting is safe.
ENV_ARGS="EKYA_RESULTS_DIR='$REMOTE_RESULTS'"
for var in EKYA_SHARD EKYA_RESUME EKYA_SEED EKYA_WINDOWS EKYA_STREAMS \
           EKYA_QUICK EKYA_WORKERS EKYA_ORCH_CRASH_AFTER; do
  eval "val=\${$var:-}"
  if [ -n "$val" ]; then
    ENV_ARGS="$ENV_ARGS $var='$val'"
  fi
done

# $* is the worker argv the supervisor passed: `worker --bin <BIN>`.
exec ssh "$EKYA_SSH_HOST" "env $ENV_ARGS '$REMOTE_BIN' $*"
