//! Actor-based edge server (the paper's §5 implementation shape).
//!
//! Ekya's real implementation runs every module as a long-running Ray
//! actor: inference jobs keep serving while a retraining actor works, and
//! requests queue while a model's new weights load. This example wires
//! the `ekya-actors` runtime to real models: per-stream inference actors
//! answer classification requests, a trainer actor retrains on the next
//! window's data, and the updated weights are hot-swapped in — with the
//! mid-swap requests transparently queued. A supervised actor also
//! demonstrates restart-on-panic recovery.
//!
//! Run with: `cargo run --release --example edge_server_actors`

use ekya::actors::{spawn, spawn_supervised, Actor};
use ekya::core::{RetrainConfig, RetrainExecution, TrainHyper};
use ekya::nn::data::{DataView, Sample};
use ekya::nn::golden::{distill_labels, OracleTeacher};
use ekya::nn::mlp::{Mlp, MlpArch};
use ekya::video::{DatasetKind, DatasetSpec, VideoDataset};

/// Messages understood by a per-stream inference actor.
enum InferMsg {
    /// Classify one frame's feature vector.
    Classify(Vec<f32>),
    /// Replace the serving model (checkpoint / retrained weights).
    SwapModel(Box<Mlp>),
    /// Measure accuracy on a labelled batch.
    Evaluate(Vec<Sample>),
}

enum InferReply {
    Class(usize),
    Swapped,
    Accuracy(f64),
}

struct InferenceActor {
    model: Mlp,
    served: u64,
}

impl Actor for InferenceActor {
    type Msg = InferMsg;
    type Reply = InferReply;

    fn handle(&mut self, msg: InferMsg) -> InferReply {
        match msg {
            InferMsg::Classify(x) => {
                self.served += 1;
                let s = Sample::new(x, 0);
                InferReply::Class(self.model.predict(std::slice::from_ref(&s))[0])
            }
            InferMsg::SwapModel(m) => {
                // Weight loading takes a moment; requests queue meanwhile.
                std::thread::sleep(std::time::Duration::from_millis(20));
                self.model = *m;
                InferReply::Swapped
            }
            InferMsg::Evaluate(batch) => {
                InferReply::Accuracy(self.model.accuracy(DataView::new(&batch, 6)))
            }
        }
    }
}

fn main() {
    let ds = VideoDataset::generate(DatasetSpec::new(DatasetKind::UrbanBuilding, 3, 55));
    let mut teacher = OracleTeacher::new(0.02, ds.num_classes, 9);
    let model = {
        // Bootstrap on window 0.
        let pool = distill_labels(&mut teacher, &ds.window(0).train_pool);
        let base = Mlp::new(MlpArch::edge(ds.feature_dim, ds.num_classes, 16), 1);
        let mut exec = RetrainExecution::new(
            &base,
            &pool,
            RetrainConfig {
                epochs: 30,
                batch_size: 32,
                last_layer_neurons: 16,
                layers_trained: 3,
                data_fraction: 1.0,
            },
            ds.num_classes,
            TrainHyper::default(),
            2,
        );
        exec.run_to_completion();
        exec.model().clone()
    };

    // Serve window 1 with the window-0 model while retraining for it.
    let infer = spawn("inference-0", InferenceActor { model: model.clone(), served: 0 });
    let w1 = ds.window(1);
    let InferReply::Accuracy(before) = infer.ask(InferMsg::Evaluate(w1.val.clone())).unwrap()
    else {
        unreachable!()
    };
    println!("serving accuracy before retraining: {before:.3}");

    // Retrain on window 1's labelled data in a trainer "actor" thread.
    let pool = distill_labels(&mut teacher, &w1.train_pool);
    let trainer_model = model.clone();
    let trainer = std::thread::spawn(move || {
        let mut exec = RetrainExecution::new(
            &trainer_model,
            &pool,
            RetrainConfig {
                epochs: 15,
                batch_size: 32,
                last_layer_neurons: 16,
                layers_trained: 3,
                data_fraction: 1.0,
            },
            6,
            TrainHyper::default(),
            3,
        );
        exec.run_to_completion();
        exec.model().clone()
    });

    // Meanwhile inference keeps serving live frames.
    let mut classified = 0;
    for s in w1.val.iter().take(200) {
        let InferReply::Class(_) = infer.ask(InferMsg::Classify(s.x.clone())).unwrap() else {
            unreachable!()
        };
        classified += 1;
    }
    println!("classified {classified} frames while retraining ran");

    // Hot-swap the retrained weights; queued requests drain afterwards.
    let retrained = trainer.join().expect("trainer finished");
    infer.ask(InferMsg::SwapModel(Box::new(retrained))).unwrap();
    let InferReply::Accuracy(after) = infer.ask(InferMsg::Evaluate(w1.val.clone())).unwrap() else {
        unreachable!()
    };
    println!("serving accuracy after hot-swap:    {after:.3}");
    infer.stop();

    // Failure recovery: a supervised actor rebuilt from its factory.
    let flaky = spawn_supervised("flaky-profiler", || InferenceActor {
        model: Mlp::new(MlpArch::edge(16, 6, 8), 4),
        served: 0,
    });
    // Poison one request by sending an empty feature vector (panics in
    // the matrix shape check); the supervisor restarts the actor. The
    // panic hook is muted so the expected panic does not clutter output.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let poisoned = flaky.ask(InferMsg::Classify(vec![]));
    std::panic::set_hook(default_hook);
    println!(
        "poisoned request -> {:?}; actor restarted {} time(s)",
        poisoned.err(),
        flaky.stats().restarts
    );
    let InferReply::Class(c) = flaky.ask(InferMsg::Classify(vec![0.1; 16])).unwrap() else {
        unreachable!()
    };
    println!("post-restart classification still works (class {c})");
    flaky.stop();
}
