//! Cloud-offload vs on-edge continuous learning (the §6.5 comparison).
//!
//! Uploading training data to the cloud and downloading retrained models
//! competes with Ekya's edge-local retraining — but only if the network
//! cooperates. This example reproduces the paper's setting (8 cameras,
//! 400-second retraining windows, a shared half-duplex link): per window
//! each camera ships ~160 Mb of sampled video up and pulls a 398 Mb model
//! back, which saturates cellular/satellite links so retrained models
//! arrive late or miss the window entirely.
//!
//! Run with: `cargo run --release --example cloud_vs_edge`

use ekya::prelude::*;
use ekya::video::DatasetSpec;

fn main() {
    let gpus = 4.0;
    let windows = 4;
    // The paper's §6.5 setting: 8 videos, 400 s windows.
    let base = DatasetSpec {
        window_secs: 400.0,
        ..DatasetSpec::new(DatasetKind::Cityscapes, windows, 2024)
    };
    let streams = StreamSet::generate_from_spec(base, 8);
    let cfg = RunnerConfig { total_gpus: gpus, seed: 17, ..RunnerConfig::default() };

    let mut ekya = EkyaPolicy::new(SchedulerParams::new(gpus));
    let ekya_report = run_windows(&mut ekya, &streams, &cfg, windows);

    println!("{} cameras, {} GPUs, {} windows of 400 s\n", streams.len(), gpus, windows);
    println!("{:<22} | accuracy | models arriving in-window", "design");
    println!("{:-<22}-+----------+---------------------------", "");
    println!("{:<22} | {:>8.3} | (retrains locally)", "Ekya (edge)", ekya_report.mean_accuracy());

    for link in LinkModel::table4_presets() {
        let mut cloud_cfg = CloudRunConfig::new(link, cfg.clone());
        cloud_cfg.upload_sampling = 0.1;
        let report = run_cloud_retraining(&streams, &cloud_cfg, windows);
        let total: usize = report.windows.iter().map(|w| w.streams.len()).sum();
        let on_time: usize =
            report.windows.iter().flat_map(|w| &w.streams).filter(|s| s.retrain_completed).count();
        println!(
            "{:<22} | {:>8.3} | {}/{}",
            format!("Cloud ({})", link.name),
            report.mean_accuracy(),
            on_time,
            total
        );
    }

    println!(
        "\nThe edge keeps all video on-premise (privacy) and uses no uplink;\n\
         the cloud designs ship {:.0} Mb of video per camera per window and\n\
         pull {:.0} Mb models back over the shared link.",
        4.0 * 0.1 * 400.0,
        cfg.cost.model_size_mbits
    );
}
