//! Live edge server: the full actor deployment (`ekya-server`).
//!
//! Boots one inference actor and one trainer actor per camera, then runs
//! three retraining windows end to end in wall-clock time: the
//! micro-profiler and thief scheduler plan each window, trainer actors
//! run real SGD on their own threads, checkpoints hot-swap into serving,
//! and — crucially — the inference actors never stop classifying frames
//! while all of that happens.
//!
//! Run with: `cargo run --release --example live_edge_server`

use ekya::prelude::*;

fn main() {
    let cameras = 3;
    let windows = 3;
    let streams = StreamSet::generate(DatasetKind::UrbanBuilding, cameras, windows, 99);
    let mut server =
        EdgeServer::new(streams, EdgeServerConfig { seed: 5, ..EdgeServerConfig::new(2.0) });

    println!("edge server up: {cameras} cameras, 2 GPUs\n");
    for w in 0..windows {
        let outcomes = server.run_window();
        println!("window {w}:");
        for o in &outcomes {
            println!(
                "  {}: {:.3} -> {:.3}  {}  served {} frames during retraining ({} swaps)",
                o.id,
                o.start_accuracy,
                o.end_accuracy,
                match &o.config {
                    Some(c) => format!("retrained with {}", c.label()),
                    None => "no retraining".to_string(),
                },
                o.frames_served_during_training,
                o.checkpoints_swapped,
            );
        }
    }
    server.shutdown();
    println!("\nserver shut down cleanly");
}
