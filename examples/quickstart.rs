//! Quickstart: continuous learning on one edge server.
//!
//! Generates two synthetic camera streams, runs Ekya (micro-profiler +
//! thief scheduler) for five retraining windows on one GPU, and prints
//! the per-window inference accuracy against a uniform baseline.
//!
//! Run with: `cargo run --release --example quickstart`

use ekya::prelude::*;

fn main() {
    let gpus = 1.0;
    let windows = 5;
    let streams = StreamSet::generate(DatasetKind::Cityscapes, 2, windows, 42);
    let cfg = RunnerConfig { total_gpus: gpus, seed: 7, ..RunnerConfig::default() };

    // Ekya: micro-profiled configurations + thief scheduler.
    let mut ekya = EkyaPolicy::new(SchedulerParams::new(gpus));
    let ekya_report = run_windows(&mut ekya, &streams, &cfg, windows);

    // Uniform baseline: fixed config (hold-out Pareto), static 50/50 split.
    let (config1, _config2) =
        holdout_configs(DatasetKind::Cityscapes, &cfg.retrain_grid, &cfg.cost, 999);
    let mut uniform = UniformPolicy::new(config1, 0.5, "Uniform (Config 1, 50%)");
    let uniform_report = run_windows(&mut uniform, &streams, &cfg, windows);

    println!("window |   Ekya | Uniform");
    println!("-------+--------+--------");
    for w in 0..windows {
        println!(
            "{:>6} | {:>6.3} | {:>6.3}",
            w,
            ekya_report.windows[w].mean_accuracy(),
            uniform_report.windows[w].mean_accuracy(),
        );
    }
    println!("-------+--------+--------");
    println!(
        "  mean | {:>6.3} | {:>6.3}",
        ekya_report.mean_accuracy(),
        uniform_report.mean_accuracy()
    );
    println!(
        "\nEkya retrained in {:.0}% of stream-windows; uniform in {:.0}%.",
        100.0 * ekya_report.retrain_rate(),
        100.0 * uniform_report.retrain_rate()
    );
}
