//! Traffic-junction scenario: five 24-hour intersection cameras on one
//! edge box (the paper's "Urban Traffic" workload).
//!
//! Rush-hour class mixes and day/night lighting drive periodic data
//! drift; the example shows Ekya deciding *when* each camera's model is
//! worth retraining and how GPU allocations shift between cameras across
//! windows (the behaviour behind the paper's Fig 9).
//!
//! Run with: `cargo run --release --example traffic_junction`

use ekya::prelude::*;

fn main() {
    let gpus = 2.0;
    let windows = 6;
    let cameras = 5;
    let streams = StreamSet::generate(DatasetKind::UrbanTraffic, cameras, windows, 1234);
    let cfg = RunnerConfig { total_gpus: gpus, seed: 99, ..RunnerConfig::default() };

    let mut policy = EkyaPolicy::new(SchedulerParams::new(gpus));
    let report = run_windows(&mut policy, &streams, &cfg, windows);

    println!("Urban Traffic: {cameras} cameras, {gpus} GPUs, {windows} windows of 200 s\n");
    println!("Per-window training GPU allocation (camera rows, window columns):");
    print!("{:>8}", "camera");
    for w in 0..windows {
        print!(" | w{w:<4}");
    }
    println!();
    for c in 0..cameras {
        print!("{c:>8}");
        for w in &report.windows {
            let s = &w.streams[c];
            if s.retrained {
                print!(" | {:>4.2}", s.train_gpus);
            } else {
                print!(" | {:>4}", "-");
            }
        }
        println!();
    }

    println!("\nPer-window mean inference accuracy:");
    for w in &report.windows {
        let retrains = w.streams.iter().filter(|s| s.retrained).count();
        println!(
            "  window {:>2}: accuracy {:.3}  ({} of {} cameras retrained)",
            w.window_idx,
            w.mean_accuracy(),
            retrains,
            cameras
        );
    }
    println!(
        "\nOverall: {:.3} mean accuracy, {:.0}% of camera-windows retrained",
        report.mean_accuracy(),
        100.0 * report.retrain_rate()
    );

    // The load-bearing observation of Fig 9: allocations differ across
    // cameras because drift differs — show the spread.
    let mut spreads = Vec::new();
    for w in &report.windows {
        let allocs: Vec<f64> = w.streams.iter().map(|s| s.train_gpus).collect();
        let max = allocs.iter().cloned().fold(0.0, f64::max);
        let min = allocs.iter().cloned().fold(f64::INFINITY, f64::min);
        spreads.push(max - min);
    }
    println!(
        "Training-allocation spread across cameras per window: {:?}",
        spreads.iter().map(|s| format!("{s:.2}")).collect::<Vec<_>>()
    );
}
