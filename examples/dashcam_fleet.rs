//! Dashcam-fleet scenario: mixed Waymo + Cityscapes dashboard cameras
//! streaming to one edge server, compared across schedulers.
//!
//! Dashcams drift fast (scene cuts as the car changes neighbourhoods), so
//! retraining pressure is high and scheduler quality matters most — the
//! regime of the paper's Fig 6. The example runs Ekya, both uniform
//! baselines, and the two Fig 8 ablations on the same fleet.
//!
//! Run with: `cargo run --release --example dashcam_fleet`

use ekya::core::Policy;
use ekya::prelude::*;

fn main() {
    let gpus = 2.0;
    let windows = 5;
    let streams = StreamSet::generate_mixed(
        &[(DatasetKind::Waymo, 3), (DatasetKind::Cityscapes, 3)],
        windows,
        777,
    );
    let cfg = RunnerConfig { total_gpus: gpus, seed: 5, ..RunnerConfig::default() };
    let (config1, config2) =
        holdout_configs(DatasetKind::Waymo, &cfg.retrain_grid, &cfg.cost, 31337);

    println!(
        "Dashcam fleet: {} cameras ({} GPUs), hold-out configs: high={} low={}\n",
        streams.len(),
        gpus,
        config1.label(),
        config2.label()
    );

    let mut results: Vec<(String, f64, f64)> = Vec::new();
    let mut run = |policy: &mut dyn Policy| {
        let report = run_windows(policy, &streams, &cfg, windows);
        results.push((report.policy.clone(), report.mean_accuracy(), report.retrain_rate()));
    };

    run(&mut EkyaPolicy::new(SchedulerParams::new(gpus)));
    run(&mut UniformPolicy::new(config1, 0.5, "Uniform (Config 1, 50%)"));
    run(&mut UniformPolicy::new(config2, 0.9, "Uniform (Config 2, 90%)"));
    run(&mut EkyaFixedRes::new(SchedulerParams::new(gpus), 0.5));
    run(&mut EkyaFixedConfig::new(SchedulerParams::new(gpus), config2));

    println!("{:<26} | accuracy | retrain rate", "scheduler");
    println!("{:-<26}-+----------+-------------", "");
    for (name, acc, rate) in &results {
        println!("{name:<26} | {acc:>8.3} | {:>10.0}%", rate * 100.0);
    }

    let ekya_acc = results[0].1;
    let best_baseline = results[1..].iter().map(|r| r.1).fold(f64::MIN, f64::max);
    println!("\nEkya vs best alternative: {:+.1}% accuracy", (ekya_acc - best_baseline) * 100.0);
}
