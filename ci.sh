#!/usr/bin/env bash
# Tiered verification for the Ekya workspace. Run from the repo root.
#
#   ./ci.sh quick   — fmt + clippy + a quick-mode harness smoke across
#                     several bins (including a 2-shard + grid_merge
#                     byte-identity check and a supervised ekya_grid run
#                     with an injected shard kill) + the harness perf
#                     gate. Minutes, not tens of minutes; what the CI
#                     quick job runs.
#   ./ci.sh full    — the complete sweep: formatting, lints, rustdoc
#                     (deny warnings), the release build, every target
#                     (examples, benches, bins), and the full test
#                     suite. The default.
set -euo pipefail
cd "$(dirname "$0")"

MODE="${1:-full}"

lint() {
  echo "==> cargo fmt --check"
  # Formatting is enforced on the workspace's own crates. Vendored shims in
  # vendor/ are also covered — they are first-party code here.
  cargo fmt --all --check

  echo "==> cargo clippy --workspace --all-targets -- -D warnings"
  cargo clippy --workspace --all-targets -- -D warnings

  # Determinism & reproducibility rules (unordered-iter, ambient-env,
  # wallclock-in-cell, ambient-rng, silent-default-metric) — see
  # crates/ekya-bench/README.md, "Determinism invariants and ekya-lint".
  echo "==> ekya-lint (workspace determinism rules)"
  cargo run --release -q -p ekya-lint --bin ekya_lint
}

case "$MODE" in
  quick)
    lint

    echo "==> cargo build --release -p ekya-bench -p ekya-orchestrate (harness + launcher bins)"
    cargo build --release -p ekya-bench -p ekya-orchestrate --bins

    # Quick-mode grid smoke across several bins: the declarative grids
    # shrink under EKYA_QUICK=1 and the harness fans them out across
    # EKYA_WORKERS threads. harness_bench additionally asserts that the
    # parallel run is byte-identical to the serial run (for the fig06
    # grid and the fig03 config sweep) and appends the measurements to
    # the results/BENCH_series.json trajectory for the perf gate.
    echo "==> harness smoke: fig06_streams (quick grid)"
    EKYA_QUICK=1 EKYA_WINDOWS=2 cargo run --release -q -p ekya-bench --bin fig06_streams

    # Sharded execution smoke: split the same quick grid across two
    # shard processes, merge the shard reports, and require the merged
    # file to be byte-identical to the unsharded run above (the harness's
    # sharding guarantee, checked with plain cmp).
    echo "==> harness smoke: 2-shard fig06 + grid_merge (union ≡ unsharded, byte for byte)"
    mkdir -p target
    cp results/fig06_streams.json target/fig06_unsharded.json
    EKYA_QUICK=1 EKYA_WINDOWS=2 EKYA_SHARD=0/2 \
      cargo run --release -q -p ekya-bench --bin fig06_streams
    EKYA_QUICK=1 EKYA_WINDOWS=2 EKYA_SHARD=1/2 \
      cargo run --release -q -p ekya-bench --bin fig06_streams
    cargo run --release -q -p ekya-bench --bin grid_merge -- \
      results/fig06_streams_shard0of2.json results/fig06_streams_shard1of2.json \
      -o results/fig06_streams.json
    cmp results/fig06_streams.json target/fig06_unsharded.json
    echo "    shard union ≡ unsharded ✓"

    # Supervised execution smoke: one ekya_grid command replaces the
    # N-terminal workflow above. It runs fig07_provisioning — the
    # per-dataset trace-record + replay bin ported onto Scenario cells —
    # across 4 shard processes, kills shard 0 on purpose after its first
    # cell, retries it with resume, merges in-process, and verifies the
    # merged report against an unsharded reference run. The plain cmp
    # repeats the byte-identity check independently of the supervisor's
    # own verify.
    echo "==> harness smoke: fig07_provisioning (quick replay grid, unsharded reference)"
    EKYA_QUICK=1 EKYA_WINDOWS=2 EKYA_STREAMS=4 \
      cargo run --release -q -p ekya-bench --bin fig07_provisioning
    cp results/fig07_provisioning.json target/fig07_unsharded.json

    echo "==> orchestrator smoke: ekya_grid run fig07 (4 shards, 1 injected kill) ≡ unsharded"
    rm -rf target/orchestrate_smoke
    EKYA_QUICK=1 EKYA_WINDOWS=2 EKYA_STREAMS=4 \
      cargo run --release -q -p ekya-orchestrate --bin ekya_grid -- \
      run --bin fig07_provisioning --shards 4 --max-retries 2 --inject-crash 0:1 \
      --backoff-ms 100 --run-dir target/orchestrate_smoke --no-promote \
      --verify-against target/fig07_unsharded.json
    cargo run --release -q -p ekya-orchestrate --bin ekya_grid -- \
      status --run-dir target/orchestrate_smoke
    cmp target/orchestrate_smoke/fig07_provisioning.json target/fig07_unsharded.json
    echo "    supervised run (crash-retried) ≡ unsharded ✓"

    echo "==> harness smoke: fig08_factors (quick replay grid)"
    EKYA_QUICK=1 EKYA_WINDOWS=2 EKYA_STREAMS=4 \
      cargo run --release -q -p ekya-bench --bin fig08_factors

    # Serving-path smoke: a short ekya_serve daemon run (admission +
    # per-window atomic snapshots), its own snapshot validator, and a
    # small ekya_loadgen pass over the same seed — whose snapshot must be
    # byte-identical to the daemon's (the serving determinism contract,
    # checked with plain cmp because both bins ran the same fleet).
    # The daemon run is traced (EKYA_TRACE=1): the logical-plane window
    # trace lands in results/TRACE_serve.jsonl — a separate artifact, so
    # the serve_status.json byte-identity cmp below is unaffected — and
    # ekya_trace validates its invariants (sorted records, contiguous
    # windows, merge-safe counters) as part of the smoke.
    echo "==> serving smoke: ekya_serve (8 streams × 2 windows, traced) + snapshot validation"
    EKYA_STREAMS_LIVE=8 EKYA_WINDOWS=2 EKYA_TRACE=1 \
      cargo run --release -q -p ekya-bench --bin ekya_serve
    cargo run --release -q -p ekya-bench --bin ekya_serve -- --validate
    echo "==> serving smoke: ekya_trace validate (window trace invariants)"
    cargo run --release -q -p ekya-bench --bin ekya_trace -- \
      validate results/TRACE_serve.jsonl
    cp results/serve_status.json target/serve_status_daemon.json
    echo "==> serving smoke: ekya_loadgen (same fleet) ≡ ekya_serve snapshot"
    EKYA_STREAMS_LIVE=8 EKYA_WINDOWS=2 \
      cargo run --release -q -p ekya-bench --bin ekya_loadgen
    cmp results/serve_status.json target/serve_status_daemon.json
    echo "    loadgen snapshot ≡ daemon snapshot ✓"

    echo "==> harness smoke: harness_bench (serial ≡ parallel + throughput)"
    EKYA_WINDOWS=2 cargo run --release -q -p ekya-bench --bin harness_bench

    echo "==> perf gate"
    # Throughput is machine-dependent, so the quick tier gates against a
    # baseline recorded on *this* machine (self-seeded on the first run,
    # gitignored under target/). Hosted CI overrides EKYA_BENCH_BASELINE
    # with a runner-cached path; pass ci/bench_baseline.json explicitly
    # to compare against the committed reference record instead. The
    # nightly lane sets EKYA_PERF_GATE_FLAGS=--all to require every
    # baseline record (it measures the full-size one too).
    # shellcheck disable=SC2086
    EKYA_BENCH_BASELINE="${EKYA_BENCH_BASELINE:-target/perf_baseline.json}" \
      ./ci/check_bench.sh ${EKYA_PERF_GATE_FLAGS:-}

    # harness_bench appended its record set above, so by this point the
    # trajectory file exists even on the very first green run of a fresh
    # checkout — assert that and render it, so a missing trajectory is a
    # quick-tier failure rather than a silently empty artifact.
    echo "==> perf trajectory (results/BENCH_series.json)"
    test -s results/BENCH_series.json
    cargo run --release -q -p ekya-bench --bin bench_series

    echo "ci.sh quick: all green"
    ;;

  full)
    lint

    echo "==> cargo doc --workspace --no-deps (deny warnings)"
    RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

    echo "==> cargo build --release"
    cargo build --release

    echo "==> cargo build --examples --benches --bins"
    cargo build --examples --benches --bins

    echo "==> cargo test -q"
    cargo test -q

    echo "ci.sh full: all green"
    ;;

  *)
    echo "usage: $0 [quick|full]" >&2
    exit 2
    ;;
esac
