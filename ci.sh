#!/usr/bin/env bash
# Tier-1 verification for the Ekya workspace. Run from the repo root.
#
# Mirrors what CI should run: formatting, lints, the release build, every
# target (examples, benches, bins), and the full test suite.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
# Formatting is enforced on the workspace's own crates. Vendored shims in
# vendor/ are also covered — they are first-party code here.
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo build --examples --benches --bins"
cargo build --examples --benches --bins

echo "==> cargo test -q"
cargo test -q

echo "ci.sh: all green"
