//! Minimal dense row-major matrix used by the MLP substrate.
//!
//! Design goals mirror the networking guides' idioms: simplicity and
//! robustness over cleverness. No BLAS, no SIMD intrinsics, no lifetime
//! tricks — just `Vec<f32>` with explicit shape checks that panic early on
//! programmer error (shape mismatches are bugs, not runtime conditions).

use serde::{Deserialize, Serialize};

/// A dense row-major `rows x cols` matrix of `f32`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a matrix from a generator function `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Creates a matrix that takes ownership of `data` (row-major).
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix data length mismatch");
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of the underlying row-major buffer.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Returns element `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Sets element `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Reshapes the matrix to `rows x cols` and fills it with zeros,
    /// reusing the existing allocation when the capacity suffices — the
    /// building block of the `*_into` GEMM variants and the training
    /// scratch buffers, which would otherwise allocate a fresh `Vec` per
    /// minibatch.
    pub fn resize_zeroed(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Makes `self` an exact copy of `other`, reusing the existing
    /// allocation when possible.
    pub fn copy_from(&mut self, other: &Matrix) {
        self.rows = other.rows;
        self.cols = other.cols;
        self.data.clear();
        self.data.extend_from_slice(&other.data);
    }

    /// `self (m x k) * rhs (k x n) -> (m x n)`.
    ///
    /// # Panics
    /// Panics if inner dimensions disagree.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_into(rhs, &mut out);
        out
    }

    /// [`Matrix::matmul`] writing into a caller-owned output matrix
    /// (reshaped and zeroed here), so hot loops can reuse one allocation
    /// across calls. Numerically identical to `matmul`.
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, rhs.rows, "matmul inner dimension mismatch");
        let (m, k, n) = (self.rows, self.cols, rhs.cols);
        out.resize_zeroed(m, n);
        // i-k-j loop order keeps the inner loop sequential over both
        // `rhs` and `out` rows, which is the cache-friendly ordering for
        // row-major data. Each output element accumulates over k in
        // ascending order, which pins the (non-associative) f32 sum.
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            let out_row = &mut out.data[i * n..(i + 1) * n];
            for (kk, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &rhs.data[kk * n..(kk + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
    }

    /// `self^T (k x m) * rhs (k x n)` computed without materialising the
    /// transpose. `self` is `k x m`. Result is `m x n`.
    pub fn t_matmul(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.t_matmul_into(rhs, &mut out);
        out
    }

    /// [`Matrix::t_matmul`] writing into a caller-owned output matrix —
    /// the backprop weight-gradient kernel, allocation-free when the
    /// caller reuses `out`. Numerically identical to `t_matmul`.
    pub fn t_matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(self.rows, rhs.rows, "t_matmul leading dimension mismatch");
        let (k, m, n) = (self.rows, self.cols, rhs.cols);
        out.resize_zeroed(m, n);
        for kk in 0..k {
            let a_row = &self.data[kk * m..(kk + 1) * m];
            let b_row = &rhs.data[kk * n..(kk + 1) * n];
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * n..(i + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
    }

    /// `self (m x k) * rhs^T (n x k)` computed without materialising the
    /// transpose. Result is `m x n`.
    pub fn matmul_t(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_t_into(rhs, &mut out);
        out
    }

    /// [`Matrix::matmul_t`] writing into a caller-owned output matrix.
    ///
    /// Register-blocked along the output columns: four columns per pass
    /// share one read of the `self` row and run four independent
    /// accumulator chains (instruction-level parallelism the scalar
    /// dot-product loop cannot reach, since a single f32 accumulator is
    /// a serial dependency chain). Every accumulator still sums over k
    /// in ascending order, so results are bit-identical to the scalar
    /// reference.
    pub fn matmul_t_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, rhs.cols, "matmul_t trailing dimension mismatch");
        let (m, k, n) = (self.rows, self.cols, rhs.rows);
        out.resize_zeroed(m, n);
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            let out_row = &mut out.data[i * n..(i + 1) * n];
            let mut j = 0;
            while j + 4 <= n {
                let b0 = &rhs.data[j * k..(j + 1) * k];
                let b1 = &rhs.data[(j + 1) * k..(j + 2) * k];
                let b2 = &rhs.data[(j + 2) * k..(j + 3) * k];
                let b3 = &rhs.data[(j + 3) * k..(j + 4) * k];
                let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
                for (kk, &a) in a_row.iter().enumerate() {
                    s0 += a * b0[kk];
                    s1 += a * b1[kk];
                    s2 += a * b2[kk];
                    s3 += a * b3[kk];
                }
                out_row[j] = s0;
                out_row[j + 1] = s1;
                out_row[j + 2] = s2;
                out_row[j + 3] = s3;
                j += 4;
            }
            while j < n {
                let b_row = &rhs.data[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (&a, &b) in a_row.iter().zip(b_row.iter()) {
                    acc += a * b;
                }
                out_row[j] = acc;
                j += 1;
            }
        }
    }

    /// Adds `other * scale` element-wise in place.
    pub fn add_scaled(&mut self, other: &Matrix, scale: f32) {
        assert_eq!(self.rows, other.rows, "add_scaled shape mismatch");
        assert_eq!(self.cols, other.cols, "add_scaled shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b * scale;
        }
    }

    /// Multiplies every element by `scale` in place.
    pub fn scale(&mut self, scale: f32) {
        for a in self.data.iter_mut() {
            *a *= scale;
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Fills the matrix with zeros, preserving shape.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }
}

/// Applies ReLU in place and returns the activation mask used for backprop
/// (`true` where the input was positive).
pub fn relu_inplace(m: &mut Matrix) -> Vec<bool> {
    let mut mask = Vec::new();
    relu_inplace_into(m, &mut mask);
    mask
}

/// [`relu_inplace`] writing the mask into a caller-owned buffer (cleared
/// here), so the training loop reuses one mask allocation per layer.
pub fn relu_inplace_into(m: &mut Matrix, mask: &mut Vec<bool>) {
    mask.clear();
    mask.reserve(m.data.len());
    for v in m.data.iter_mut() {
        if *v > 0.0 {
            mask.push(true);
        } else {
            *v = 0.0;
            mask.push(false);
        }
    }
}

/// Row-wise softmax in place. Numerically stabilised by subtracting the
/// row max before exponentiating.
pub fn softmax_rows(m: &mut Matrix) {
    let cols = m.cols;
    for r in 0..m.rows {
        let row = m.row_mut(r);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        debug_assert!(sum > 0.0);
        for v in row.iter_mut() {
            *v /= sum;
        }
        let _ = cols;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small_known_values() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 2);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        let a = Matrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![1., 0., 0., 1., 1., 1.]);
        // a^T is 2x3; result is 2x2.
        let c = a.t_matmul(&b);
        let at = Matrix::from_vec(2, 3, vec![1., 3., 5., 2., 4., 6.]);
        let expected = at.matmul(&b);
        assert_eq!(c, expected);
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(4, 3, vec![1., 0., 0., 0., 1., 0., 0., 0., 1., 1., 1., 1.]);
        let c = a.matmul_t(&b);
        let bt = Matrix::from_fn(3, 4, |r, cidx| b.get(cidx, r));
        let expected = a.matmul(&bt);
        assert_eq!(c, expected);
    }

    #[test]
    fn relu_masks_negatives() {
        let mut m = Matrix::from_vec(1, 4, vec![-1.0, 0.0, 2.0, -0.5]);
        let mask = relu_inplace(&mut m);
        assert_eq!(m.data(), &[0.0, 0.0, 2.0, 0.0]);
        assert_eq!(mask, vec![false, false, true, false]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        softmax_rows(&mut m);
        for r in 0..2 {
            let s: f32 = m.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
        // Softmax is monotone: larger logits -> larger probabilities.
        assert!(m.get(0, 2) > m.get(0, 1));
        assert!(m.get(0, 1) > m.get(0, 0));
    }

    #[test]
    fn softmax_handles_large_logits() {
        let mut m = Matrix::from_vec(1, 3, vec![1000.0, 1000.0, 1000.0]);
        softmax_rows(&mut m);
        for &v in m.data() {
            assert!((v - 1.0 / 3.0).abs() < 1e-5);
        }
    }

    #[test]
    fn add_scaled_accumulates() {
        let mut a = Matrix::zeros(2, 2);
        let b = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        a.add_scaled(&b, 0.5);
        assert_eq!(a.data(), &[0.5, 1.0, 1.5, 2.0]);
    }

    #[test]
    #[should_panic(expected = "matmul inner dimension mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    /// Deterministic non-zero pseudo-random fill (no RNG dependency).
    fn fill(rows: usize, cols: usize, salt: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| {
            ((r * 31 + c * 17 + salt * 101) % 97) as f32 / 97.0 - 0.5
        })
    }

    /// Asserts two matrices are **bit**-identical — stricter than `==`
    /// (which would let `-0.0` slide) and the contract the kernel
    /// optimisations pin: same shapes, same ascending-k accumulation
    /// order, same bits.
    fn assert_bits(label: &str, got: &Matrix, want: &Matrix) {
        assert_eq!((got.rows(), got.cols()), (want.rows(), want.cols()), "{label}: shape");
        for (i, (g, w)) in got.data().iter().zip(want.data().iter()).enumerate() {
            assert_eq!(g.to_bits(), w.to_bits(), "{label}: element {i}: {g} vs {w}");
        }
    }

    /// The optimised kernels (i-k-j `matmul`, transpose-free `t_matmul`,
    /// register-blocked `matmul_t`) against naive triple loops that
    /// accumulate over ascending k — the pre-optimisation order. Shapes
    /// make the 4-wide block cover one full block *and* a scalar
    /// remainder (n = 6).
    #[test]
    fn gemm_kernels_are_bit_identical_to_naive_reference() {
        let (m, k, n) = (5, 7, 6);
        let a = fill(m, k, 1);

        let b = fill(k, n, 2);
        let c = a.matmul(&b);
        let naive = Matrix::from_fn(m, n, |i, j| {
            (0..k).fold(0.0f32, |acc, kk| acc + a.get(i, kk) * b.get(kk, j))
        });
        assert_bits("matmul", &c, &naive);

        let at = fill(k, m, 3); // k x m — t_matmul computes at^T * b
        let c = at.t_matmul(&b);
        let naive = Matrix::from_fn(m, n, |i, j| {
            (0..k).fold(0.0f32, |acc, kk| acc + at.get(kk, i) * b.get(kk, j))
        });
        assert_bits("t_matmul", &c, &naive);

        let bt = fill(n, k, 4); // n x k — matmul_t computes a * bt^T
        let c = a.matmul_t(&bt);
        let naive = Matrix::from_fn(m, n, |i, j| {
            (0..k).fold(0.0f32, |acc, kk| acc + a.get(i, kk) * bt.get(j, kk))
        });
        assert_bits("matmul_t", &c, &naive);
    }

    /// One scratch buffer reused across all three `_into` kernels, each
    /// with a different output shape, primed with NaNs: any residue from
    /// a previous occupant would surface as a NaN or a wrong bit.
    #[test]
    fn into_kernels_reuse_dirty_buffers_without_residue() {
        let a = fill(5, 7, 5);
        let b = fill(7, 6, 6);
        let at = fill(7, 5, 7);
        let bt = fill(6, 7, 8);

        let mut out = Matrix::from_fn(9, 9, |_, _| f32::NAN);
        a.matmul_into(&b, &mut out);
        assert_bits("matmul_into (dirty)", &out, &a.matmul(&b));
        at.t_matmul_into(&b, &mut out);
        assert_bits("t_matmul_into (dirty)", &out, &at.t_matmul(&b));
        a.matmul_t_into(&bt, &mut out);
        assert_bits("matmul_t_into (dirty)", &out, &a.matmul_t(&bt));
    }
}
