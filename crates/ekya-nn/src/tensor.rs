//! Minimal dense row-major matrix used by the MLP substrate.
//!
//! Design goals mirror the networking guides' idioms: simplicity and
//! robustness over cleverness. No BLAS, no SIMD intrinsics, no lifetime
//! tricks — just `Vec<f32>` with explicit shape checks that panic early on
//! programmer error (shape mismatches are bugs, not runtime conditions).

use serde::{Deserialize, Serialize};

/// A dense row-major `rows x cols` matrix of `f32`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a matrix from a generator function `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Creates a matrix that takes ownership of `data` (row-major).
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix data length mismatch");
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of the underlying row-major buffer.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Returns element `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Sets element `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self (m x k) * rhs (k x n) -> (m x n)`.
    ///
    /// # Panics
    /// Panics if inner dimensions disagree.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "matmul inner dimension mismatch");
        let (m, k, n) = (self.rows, self.cols, rhs.cols);
        let mut out = Matrix::zeros(m, n);
        // i-k-j loop order keeps the inner loop sequential over both
        // `rhs` and `out` rows, which is the cache-friendly ordering for
        // row-major data.
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            let out_row = &mut out.data[i * n..(i + 1) * n];
            for (kk, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &rhs.data[kk * n..(kk + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self^T (k x m) * rhs (k x n)` computed without materialising the
    /// transpose. `self` is `k x m`. Result is `m x n`.
    pub fn t_matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "t_matmul leading dimension mismatch");
        let (k, m, n) = (self.rows, self.cols, rhs.cols);
        let mut out = Matrix::zeros(m, n);
        for kk in 0..k {
            let a_row = &self.data[kk * m..(kk + 1) * m];
            let b_row = &rhs.data[kk * n..(kk + 1) * n];
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * n..(i + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self (m x k) * rhs^T (n x k)` computed without materialising the
    /// transpose. Result is `m x n`.
    pub fn matmul_t(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.cols, "matmul_t trailing dimension mismatch");
        let (m, k, n) = (self.rows, self.cols, rhs.rows);
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            for j in 0..n {
                let b_row = &rhs.data[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (&a, &b) in a_row.iter().zip(b_row.iter()) {
                    acc += a * b;
                }
                out.data[i * n + j] = acc;
            }
        }
        out
    }

    /// Adds `other * scale` element-wise in place.
    pub fn add_scaled(&mut self, other: &Matrix, scale: f32) {
        assert_eq!(self.rows, other.rows, "add_scaled shape mismatch");
        assert_eq!(self.cols, other.cols, "add_scaled shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b * scale;
        }
    }

    /// Multiplies every element by `scale` in place.
    pub fn scale(&mut self, scale: f32) {
        for a in self.data.iter_mut() {
            *a *= scale;
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Fills the matrix with zeros, preserving shape.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }
}

/// Applies ReLU in place and returns the activation mask used for backprop
/// (`true` where the input was positive).
pub fn relu_inplace(m: &mut Matrix) -> Vec<bool> {
    let mut mask = Vec::with_capacity(m.data.len());
    for v in m.data.iter_mut() {
        if *v > 0.0 {
            mask.push(true);
        } else {
            *v = 0.0;
            mask.push(false);
        }
    }
    mask
}

/// Row-wise softmax in place. Numerically stabilised by subtracting the
/// row max before exponentiating.
pub fn softmax_rows(m: &mut Matrix) {
    let cols = m.cols;
    for r in 0..m.rows {
        let row = m.row_mut(r);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        debug_assert!(sum > 0.0);
        for v in row.iter_mut() {
            *v /= sum;
        }
        let _ = cols;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small_known_values() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 2);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        let a = Matrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![1., 0., 0., 1., 1., 1.]);
        // a^T is 2x3; result is 2x2.
        let c = a.t_matmul(&b);
        let at = Matrix::from_vec(2, 3, vec![1., 3., 5., 2., 4., 6.]);
        let expected = at.matmul(&b);
        assert_eq!(c, expected);
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(4, 3, vec![1., 0., 0., 0., 1., 0., 0., 0., 1., 1., 1., 1.]);
        let c = a.matmul_t(&b);
        let bt = Matrix::from_fn(3, 4, |r, cidx| b.get(cidx, r));
        let expected = a.matmul(&bt);
        assert_eq!(c, expected);
    }

    #[test]
    fn relu_masks_negatives() {
        let mut m = Matrix::from_vec(1, 4, vec![-1.0, 0.0, 2.0, -0.5]);
        let mask = relu_inplace(&mut m);
        assert_eq!(m.data(), &[0.0, 0.0, 2.0, 0.0]);
        assert_eq!(mask, vec![false, false, true, false]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        softmax_rows(&mut m);
        for r in 0..2 {
            let s: f32 = m.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
        // Softmax is monotone: larger logits -> larger probabilities.
        assert!(m.get(0, 2) > m.get(0, 1));
        assert!(m.get(0, 1) > m.get(0, 0));
    }

    #[test]
    fn softmax_handles_large_logits() {
        let mut m = Matrix::from_vec(1, 3, vec![1000.0, 1000.0, 1000.0]);
        softmax_rows(&mut m);
        for &v in m.data() {
            assert!((v - 1.0 / 3.0).abs() < 1e-5);
        }
    }

    #[test]
    fn add_scaled_accumulates() {
        let mut a = Matrix::zeros(2, 2);
        let b = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        a.add_scaled(&b, 0.5);
        assert_eq!(a.data(), &[0.5, 1.0, 1.5, 2.0]);
    }

    #[test]
    #[should_panic(expected = "matmul inner dimension mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
