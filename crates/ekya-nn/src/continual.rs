//! iCaRL-flavoured continual-learning support.
//!
//! Ekya retrains incrementally "even as some knowledge from before is
//! retained", using "a modified version of iCaRL" (§2.2). The part of
//! iCaRL that matters to the system (as opposed to the vision model) is
//! its **class-balanced exemplar memory**: a bounded set of
//! representative samples from past windows that is mixed into each
//! retraining batch so the model does not catastrophically forget classes
//! that are rare in the current window.
//!
//! Implemented: per-class bounded exemplar sets with herding-style
//! selection (keep the samples closest to the running class mean), and
//! mixing of exemplars into a window's training set. Omitted:
//! nearest-mean-of-exemplars classification (our student classifies with
//! its own head, as Ekya's ResNet18 does).

use crate::data::Sample;
use serde::{Deserialize, Serialize};

/// Bounded, class-balanced exemplar memory.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExemplarMemory {
    num_classes: usize,
    capacity_per_class: usize,
    per_class: Vec<Vec<Sample>>,
}

impl ExemplarMemory {
    /// Creates an empty memory holding at most `capacity_per_class`
    /// exemplars for each of `num_classes` classes.
    pub fn new(num_classes: usize, capacity_per_class: usize) -> Self {
        Self { num_classes, capacity_per_class, per_class: vec![Vec::new(); num_classes] }
    }

    /// Total number of stored exemplars.
    pub fn len(&self) -> usize {
        self.per_class.iter().map(Vec::len).sum()
    }

    /// True when no exemplars are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of exemplars stored for `class`.
    pub fn class_len(&self, class: usize) -> usize {
        self.per_class.get(class).map_or(0, Vec::len)
    }

    /// Ingests a window's labeled samples, then re-selects exemplars per
    /// class by herding: the kept samples are those closest (L2) to the
    /// class's mean feature vector, which approximates iCaRL's
    /// mean-preserving selection.
    pub fn update(&mut self, samples: &[Sample]) {
        for s in samples {
            if s.y < self.num_classes {
                self.per_class[s.y].push(s.clone());
            }
        }
        for class in 0..self.num_classes {
            let pool = &mut self.per_class[class];
            if pool.len() <= self.capacity_per_class {
                continue;
            }
            let dim = pool[0].x.len();
            let mut mean = vec![0.0f64; dim];
            for s in pool.iter() {
                for (m, &v) in mean.iter_mut().zip(s.x.iter()) {
                    *m += v as f64;
                }
            }
            for m in mean.iter_mut() {
                *m /= pool.len() as f64;
            }
            let mut scored: Vec<(f64, usize)> = pool
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    let d: f64 =
                        s.x.iter().zip(mean.iter()).map(|(&v, &m)| (v as f64 - m).powi(2)).sum();
                    (d, i)
                })
                .collect();
            scored.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            scored.truncate(self.capacity_per_class);
            let mut keep_idx: Vec<usize> = scored.into_iter().map(|(_, i)| i).collect();
            keep_idx.sort_unstable();
            let kept: Vec<Sample> = keep_idx.into_iter().map(|i| pool[i].clone()).collect();
            *pool = kept;
        }
    }

    /// Builds a retraining set: the window's fresh samples plus all stored
    /// exemplars. Fresh data comes first; the caller shuffles per epoch.
    pub fn training_mix(&self, window_samples: &[Sample]) -> Vec<Sample> {
        let mut out = window_samples.to_vec();
        for pool in &self.per_class {
            out.extend(pool.iter().cloned());
        }
        out
    }

    /// Clears all exemplars (used when a stream's model is reset).
    pub fn clear(&mut self) {
        for pool in self.per_class.iter_mut() {
            pool.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(class: usize, v: f32) -> Sample {
        Sample::new(vec![v, v], class)
    }

    #[test]
    fn memory_respects_capacity() {
        let mut mem = ExemplarMemory::new(3, 5);
        let samples: Vec<Sample> = (0..30).map(|i| mk(i % 3, i as f32)).collect();
        mem.update(&samples);
        for c in 0..3 {
            assert!(mem.class_len(c) <= 5);
        }
        assert_eq!(mem.len(), 15);
    }

    #[test]
    fn herding_keeps_samples_near_mean() {
        let mut mem = ExemplarMemory::new(1, 3);
        // Mean of {0,1,2,3,100} is ~21.2; the kept three must exclude 100.
        let samples = vec![mk(0, 0.0), mk(0, 1.0), mk(0, 2.0), mk(0, 3.0), mk(0, 100.0)];
        mem.update(&samples);
        assert_eq!(mem.class_len(0), 3);
        let mix = mem.training_mix(&[]);
        assert!(mix.iter().all(|s| s.x[0] < 50.0), "outlier must be herded out: {mix:?}");
    }

    #[test]
    fn training_mix_combines_fresh_and_exemplars() {
        let mut mem = ExemplarMemory::new(2, 2);
        mem.update(&[mk(0, 1.0), mk(1, 2.0)]);
        let fresh = vec![mk(0, 9.0)];
        let mix = mem.training_mix(&fresh);
        assert_eq!(mix.len(), 3);
        assert_eq!(mix[0].x[0], 9.0, "fresh data first");
    }

    #[test]
    fn out_of_range_labels_are_ignored() {
        let mut mem = ExemplarMemory::new(2, 4);
        mem.update(&[mk(5, 1.0)]);
        assert!(mem.is_empty());
    }

    #[test]
    fn repeated_updates_preserve_balance() {
        let mut mem = ExemplarMemory::new(2, 4);
        for w in 0..10 {
            let samples: Vec<Sample> = (0..8).map(|i| mk(i % 2, (w * 8 + i) as f32)).collect();
            mem.update(&samples);
        }
        assert_eq!(mem.class_len(0), 4);
        assert_eq!(mem.class_len(1), 4);
    }

    #[test]
    fn clear_empties_memory() {
        let mut mem = ExemplarMemory::new(2, 4);
        mem.update(&[mk(0, 1.0), mk(1, 2.0)]);
        assert!(!mem.is_empty());
        mem.clear();
        assert!(mem.is_empty());
    }
}
