//! GPU resource cost model.
//!
//! Maps training and inference work onto *simulated GPU-seconds*, playing
//! the role of the paper's testbed measurements ("measure the GPU-time
//! taken to retrain for each epoch when 100% of the GPU is allocated",
//! §4.3). Constants are calibrated so the default edge model reproduces
//! the ranges reported in the paper:
//!
//! * retraining configurations span roughly 1–200 GPU-seconds (Fig 3b);
//! * a V100-class GPU sustains ~120 fps of full-resolution inference for
//!   the compressed model, so a 30 fps stream needs ~0.25 GPU;
//! * the golden model is ~13x more expensive than the edge model (§2.3);
//! * the edge model download is 398 Mbit (§6.5, torchvision ResNet18).
//!
//! Implemented: per-epoch training cost scaling with sample count, batch
//! efficiency, trainable-parameter fraction, and model width; inference
//! throughput scaling with resolution and model size; linear scale-out of
//! retraining time with fractional GPU allocation. Omitted: memory
//! capacity limits, PCIe transfer costs, multi-GPU communication (the
//! placement layer avoids spanning GPUs precisely so this cannot matter).

use crate::mlp::Mlp;
use serde::{Deserialize, Serialize};

/// Calibrated cost model shared by the simulator, micro-profiler and
/// scheduler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Forward-pass GPU-seconds per sample for the *reference* edge model
    /// at 100% allocation.
    pub fwd_seconds_per_sample: f64,
    /// Parameter count of the reference edge model; differently sized
    /// models scale linearly against this.
    pub reference_params: f64,
    /// Batch size at which GPU efficiency reaches 50% (kernel-launch
    /// overhead amortisation).
    pub batch_half_size: f64,
    /// Inference throughput (frames/second) of the reference edge model on
    /// one full GPU at resolution scale 1.0.
    pub infer_base_fps: f64,
    /// Cost multiplier of the golden model relative to the edge model.
    pub golden_cost_factor: f64,
    /// Serialized edge-model size in megabits (for cloud download, §6.5).
    pub model_size_mbits: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            fwd_seconds_per_sample: 0.0033,
            reference_params: 1000.0,
            batch_half_size: 8.0,
            infer_base_fps: 120.0,
            golden_cost_factor: 13.0,
            model_size_mbits: 398.0,
        }
    }
}

impl CostModel {
    /// GPU efficiency for a given batch size, in `(0, 1)`: larger batches
    /// amortise per-batch overhead.
    pub fn batch_efficiency(&self, batch_size: u32) -> f64 {
        let b = batch_size.max(1) as f64;
        b / (b + self.batch_half_size)
    }

    /// Relative size factor of a model vs. the reference edge model.
    pub fn size_factor(&self, model: &Mlp) -> f64 {
        (model.num_params() as f64 / self.reference_params).max(0.05)
    }

    /// GPU-seconds for one training epoch over `n_samples` at **100% GPU
    /// allocation** — the quantity Ekya's micro-profiler measures and the
    /// scheduler scales (§4.3 opportunity (i)).
    ///
    /// Cost = samples x fwd_cost x size x (1 + 2 x trainable_fraction) /
    /// batch_efficiency: the backward pass costs about twice the forward
    /// pass but only for the portion of the network that still trains.
    pub fn train_epoch_gpu_seconds(&self, model: &Mlp, n_samples: usize, batch_size: u32) -> f64 {
        let per_sample = self.fwd_seconds_per_sample
            * self.size_factor(model)
            * (1.0 + 2.0 * model.trainable_param_fraction());
        n_samples as f64 * per_sample / self.batch_efficiency(batch_size)
    }

    /// Wall-clock seconds for one epoch when only `alloc` (fraction of a
    /// GPU, or several GPUs when `> 1`) is granted. Linear scale-out, as
    /// assumed by the paper's estimator.
    ///
    /// Returns `f64::INFINITY` for a zero allocation.
    pub fn train_epoch_wall_seconds(
        &self,
        model: &Mlp,
        n_samples: usize,
        batch_size: u32,
        alloc: f64,
    ) -> f64 {
        if alloc <= 0.0 {
            return f64::INFINITY;
        }
        self.train_epoch_gpu_seconds(model, n_samples, batch_size) / alloc
    }

    /// Inference throughput (frames/second) at resolution scale
    /// `resolution` (1.0 = native) on one full GPU, for a model of the
    /// given size factor. Compute scales with the square of resolution.
    pub fn infer_fps_per_gpu(&self, size_factor: f64, resolution: f64) -> f64 {
        let r = resolution.clamp(0.05, 1.0);
        self.infer_base_fps / (size_factor.max(0.05) * r * r)
    }

    /// GPU fraction needed for an inference job to keep up with a live
    /// stream: `stream_fps` frames/second arriving, of which `sampling`
    /// fraction are analysed at scale `resolution`.
    pub fn infer_gpu_demand(
        &self,
        size_factor: f64,
        stream_fps: f64,
        sampling: f64,
        resolution: f64,
    ) -> f64 {
        let analysed = stream_fps * sampling.clamp(0.0, 1.0);
        analysed / self.infer_fps_per_gpu(size_factor, resolution)
    }

    /// GPU-seconds for the golden model to label `n_samples` frames
    /// (knowledge-distillation labelling, §2.2).
    pub fn golden_label_gpu_seconds(&self, n_samples: usize) -> f64 {
        n_samples as f64 * self.fwd_seconds_per_sample * self.golden_cost_factor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlp::{Mlp, MlpArch};

    fn edge_model() -> Mlp {
        Mlp::new(MlpArch::edge(16, 6, 16), 0)
    }

    #[test]
    fn batch_efficiency_monotone() {
        let cm = CostModel::default();
        assert!(cm.batch_efficiency(64) > cm.batch_efficiency(8));
        assert!(cm.batch_efficiency(8) > cm.batch_efficiency(1));
        assert!(cm.batch_efficiency(4096) < 1.0);
    }

    #[test]
    fn frozen_layers_cost_less() {
        let cm = CostModel::default();
        let mut m = edge_model();
        let full = cm.train_epoch_gpu_seconds(&m, 500, 32);
        m.set_layers_trained(1);
        let head_only = cm.train_epoch_gpu_seconds(&m, 500, 32);
        assert!(
            head_only < full * 0.75,
            "head-only training should be materially cheaper: {head_only} vs {full}"
        );
    }

    #[test]
    fn cost_scales_linearly_with_samples() {
        let cm = CostModel::default();
        let m = edge_model();
        let a = cm.train_epoch_gpu_seconds(&m, 100, 32);
        let b = cm.train_epoch_gpu_seconds(&m, 300, 32);
        assert!((b / a - 3.0).abs() < 1e-9);
    }

    #[test]
    fn wall_time_scales_inverse_with_allocation() {
        let cm = CostModel::default();
        let m = edge_model();
        let full = cm.train_epoch_wall_seconds(&m, 200, 32, 1.0);
        let half = cm.train_epoch_wall_seconds(&m, 200, 32, 0.5);
        assert!((half / full - 2.0).abs() < 1e-9);
        assert!(cm.train_epoch_wall_seconds(&m, 200, 32, 0.0).is_infinite());
    }

    #[test]
    fn calibration_matches_paper_ranges() {
        // A heavyweight retraining configuration (30 epochs, 600 samples,
        // everything trainable) should land in the 100-250 GPU-second range
        // of Fig 3b; a light one (3 epochs, 60 samples, head only) under
        // 2 GPU-seconds — giving the ~200x spread the paper reports.
        let cm = CostModel::default();
        let mut m = edge_model();
        let heavy = 30.0 * cm.train_epoch_gpu_seconds(&m, 600, 16);
        m.set_layers_trained(1);
        let light = 3.0 * cm.train_epoch_gpu_seconds(&m, 60, 64);
        assert!(heavy > 100.0 && heavy < 400.0, "heavy = {heavy}");
        assert!(light < 3.0, "light = {light}");
        assert!(heavy / light > 80.0, "spread = {}", heavy / light);
    }

    #[test]
    fn inference_demand_realistic() {
        // A 30 fps stream at native resolution needs roughly a quarter GPU.
        let cm = CostModel::default();
        let d = cm.infer_gpu_demand(1.0, 30.0, 1.0, 1.0);
        assert!(d > 0.2 && d < 0.3, "demand = {d}");
        // Subsampling halves demand.
        let half = cm.infer_gpu_demand(1.0, 30.0, 0.5, 1.0);
        assert!((half * 2.0 - d).abs() < 1e-9);
        // Lower resolution lowers demand quadratically.
        let low = cm.infer_gpu_demand(1.0, 30.0, 1.0, 0.5);
        assert!((low * 4.0 - d).abs() < 1e-6);
    }

    #[test]
    fn golden_labeling_is_expensive() {
        let cm = CostModel::default();
        let golden = cm.golden_label_gpu_seconds(100);
        let edge_fwd = 100.0 * cm.fwd_seconds_per_sample;
        assert!((golden / edge_fwd - 13.0).abs() < 1e-9);
    }
}
