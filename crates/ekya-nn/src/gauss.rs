//! Dependency-free Gaussian sampling, shared workspace-wide.
//!
//! Three call sites used to sample normals three different ways (a local
//! Box–Muller closure in `mlp`, a private module in
//! `ekya-core::microprofiler`, and `rand_distr::Normal` in
//! `ekya-video::drift`). This module is the single replacement: one
//! Box–Muller implementation, no `rand_distr` dependency anywhere.

use rand::Rng;

/// One sample from the zero-mean Gaussian `N(0, std²)`.
///
/// Box–Muller from two uniforms; `u1` is bounded away from 0 so the log
/// is always finite. Deterministic given the RNG state.
pub fn sample_gaussian<R: Rng>(rng: &mut R, std: f64) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos() * std
}

/// One sample from `N(mean, std²)`.
pub fn sample_normal<R: Rng>(rng: &mut R, mean: f64, std: f64) -> f64 {
    mean + sample_gaussian(rng, std)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn moments_match() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_gaussian(&mut rng, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn mean_shift() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mean = (0..n).map(|_| sample_normal(&mut rng, 10.0, 0.5)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn zero_std_is_degenerate() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(sample_gaussian(&mut rng, 0.0), 0.0);
    }
}
