//! Multi-layer perceptron classifier — the stand-in for the paper's
//! compressed edge DNN (ResNet18) and the high-capacity golden model
//! (ResNeXt101).
//!
//! The scheduler and micro-profiler only ever interact with the model
//! through its learning behaviour (accuracy as a function of epochs, data
//! size, frozen layers, batch size), so a small but *genuinely trained*
//! classifier preserves the phenomena Ekya exploits:
//!
//! * diminishing-returns learning curves (fit by the micro-profiler);
//! * a capacity ceiling — narrow models cannot memorise many appearance
//!   modes (§2.2 "fewer weights and shallower architectures");
//! * layer freezing trading accuracy for cheaper epochs (Fig 3a);
//! * accuracy collapse under data drift and recovery after retraining.
//!
//! Implemented: dense layers, ReLU, softmax cross-entropy, minibatch SGD
//! with momentum, per-layer freezing, last-hidden-layer resizing ("number
//! of neurons in the last layer" hyperparameter), seeded determinism.
//! Omitted (not needed by any experiment): convolutions, dropout,
//! batch-norm, weight decay, GPU execution.

use crate::data::{DataView, Sample};
use crate::tensor::{relu_inplace_into, softmax_rows, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// One dense (fully connected) layer: `y = x W + b`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dense {
    /// Weights, `in_dim x out_dim`.
    pub w: Matrix,
    /// Bias, length `out_dim`.
    pub b: Vec<f32>,
}

impl Dense {
    /// He-initialised layer (suits ReLU activations).
    pub fn he_init(in_dim: usize, out_dim: usize, rng: &mut StdRng) -> Self {
        let std = (2.0 / in_dim as f32).sqrt();
        let w = Matrix::from_fn(in_dim, out_dim, |_, _| {
            crate::gauss::sample_gaussian(rng, 1.0) as f32 * std
        });
        Self { w, b: vec![0.0; out_dim] }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.w.rows()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.w.cols()
    }

    /// Parameter count (weights + biases).
    pub fn num_params(&self) -> usize {
        self.w.rows() * self.w.cols() + self.b.len()
    }
}

/// Architecture description for [`Mlp`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MlpArch {
    /// Input feature dimensionality.
    pub input_dim: usize,
    /// Hidden layer widths, in order. The last entry is the "last layer
    /// neurons" hyperparameter from the paper's retraining configurations.
    pub hidden: Vec<usize>,
    /// Number of output classes.
    pub num_classes: usize,
}

impl MlpArch {
    /// A compact edge-model architecture (the "compressed ResNet18" stand-in).
    pub fn edge(input_dim: usize, num_classes: usize, last_layer_neurons: usize) -> Self {
        Self { input_dim, hidden: vec![24, last_layer_neurons], num_classes }
    }

    /// A heavyweight golden-model architecture (the "ResNeXt101" stand-in).
    pub fn golden(input_dim: usize, num_classes: usize) -> Self {
        Self { input_dim, hidden: vec![128, 128, 64], num_classes }
    }

    /// Total number of trainable layers (hidden layers + output layer).
    pub fn num_layers(&self) -> usize {
        self.hidden.len() + 1
    }
}

/// Multi-layer perceptron with per-layer freezing.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    arch: MlpArch,
    layers: Vec<Dense>,
    /// `trainable[i]` is false when layer `i` is frozen (its parameters are
    /// not updated and no gradient flows below the lowest trainable layer).
    trainable: Vec<bool>,
}

/// Reusable buffers for one training run: batch features and labels,
/// per-layer activations/masks, softmax probabilities, the two backprop
/// delta buffers, and the per-layer gradients. One workspace serves
/// every minibatch of an epoch (buffers are reshaped in place as batch
/// sizes change), which removes the per-batch allocation churn the
/// original loop paid — the dominant cost of many small training runs
/// like the micro-profiler's.
struct Workspace {
    x: Matrix,
    labels: Vec<usize>,
    acts: Vec<Matrix>,
    masks: Vec<Vec<bool>>,
    probs: Matrix,
    delta: Matrix,
    delta_next: Matrix,
    gw: Vec<Matrix>,
    gb: Vec<Vec<f32>>,
}

impl Workspace {
    fn new(model: &Mlp) -> Self {
        Self {
            x: Matrix::zeros(0, 0),
            labels: Vec::new(),
            acts: (0..=model.layers.len()).map(|_| Matrix::zeros(0, 0)).collect(),
            masks: (1..model.layers.len()).map(|_| Vec::new()).collect(),
            probs: Matrix::zeros(0, 0),
            delta: Matrix::zeros(0, 0),
            delta_next: Matrix::zeros(0, 0),
            gw: model.layers.iter().map(|l| Matrix::zeros(l.w.rows(), l.w.cols())).collect(),
            gb: model.layers.iter().map(|l| vec![0.0; l.b.len()]).collect(),
        }
    }
}

/// Reusable forward-pass buffers for batched prediction — the public,
/// serving-path analogue of the private training [`Workspace`]. One
/// scratch serves any sequence of [`Mlp::predict_into`] /
/// [`Mlp::accuracy_with`] calls: batch features, per-layer activations
/// and ReLU masks, softmax probabilities, and the prediction vector all
/// reuse one allocation each, reshaped in place as batch sizes — and
/// even *models* (a hot-swap to a deeper, shallower, wider, or narrower
/// network) — change underneath it. Every `_into` kernel fully rewrites
/// its output for the current shape, so a dirty oversized buffer can
/// never leak stale tail bytes into a result; the scratch path is
/// bit-identical to the allocating [`Mlp::predict`].
#[derive(Debug)]
pub struct PredictScratch {
    x: Matrix,
    acts: Vec<Matrix>,
    masks: Vec<Vec<bool>>,
    probs: Matrix,
    preds: Vec<usize>,
}

impl PredictScratch {
    /// An empty scratch: buffers grow on first use, then are reused.
    pub fn new() -> Self {
        Self {
            x: Matrix::zeros(0, 0),
            acts: Vec::new(),
            masks: Vec::new(),
            probs: Matrix::zeros(0, 0),
            preds: Vec::new(),
        }
    }

    /// Fits the per-layer buffer *counts* to `model`'s depth (`acts`
    /// needs `layers + 1` slots, `masks` `layers - 1`). The matrices
    /// inside reshape themselves inside the forward kernels, so layer
    /// count is the scratch's only model-shape dependence.
    fn fit(&mut self, model: &Mlp) {
        self.acts.resize_with(model.layers.len() + 1, || Matrix::zeros(0, 0));
        self.masks.resize_with(model.layers.len().saturating_sub(1), Vec::new);
    }
}

impl Default for PredictScratch {
    fn default() -> Self {
        Self::new()
    }
}

impl Mlp {
    /// Builds a freshly initialised MLP. Deterministic for a fixed seed.
    pub fn new(arch: MlpArch, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut dims = vec![arch.input_dim];
        dims.extend_from_slice(&arch.hidden);
        dims.push(arch.num_classes);
        let layers: Vec<Dense> =
            dims.windows(2).map(|d| Dense::he_init(d[0], d[1], &mut rng)).collect();
        let trainable = vec![true; layers.len()];
        Self { arch, layers, trainable }
    }

    /// The architecture this model was built with.
    pub fn arch(&self) -> &MlpArch {
        &self.arch
    }

    /// Total number of layers (hidden + output).
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Total parameter count.
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(Dense::num_params).sum()
    }

    /// Freezes all but the last `layers_trained` layers.
    ///
    /// `layers_trained = 1` trains only the output layer; values greater
    /// than the layer count unfreeze everything. This is the paper's
    /// "number of layers to retrain" hyperparameter (§3.1).
    pub fn set_layers_trained(&mut self, layers_trained: usize) {
        let n = self.layers.len();
        let trained = layers_trained.clamp(1, n);
        for (i, t) in self.trainable.iter_mut().enumerate() {
            *t = i >= n - trained;
        }
    }

    /// Number of currently trainable layers.
    pub fn layers_trained(&self) -> usize {
        self.trainable.iter().filter(|t| **t).count()
    }

    /// Fraction of parameters that are currently trainable, in `[0, 1]`.
    pub fn trainable_param_fraction(&self) -> f64 {
        let total: usize = self.layers.iter().map(Dense::num_params).sum();
        let trainable: usize = self
            .layers
            .iter()
            .zip(&self.trainable)
            .filter(|(_, t)| **t)
            .map(|(l, _)| l.num_params())
            .sum();
        if total == 0 {
            0.0
        } else {
            trainable as f64 / total as f64
        }
    }

    /// Replaces the last hidden layer (and the output layer it feeds) with
    /// freshly initialised layers of width `neurons`.
    ///
    /// This models the "number of neurons in the last layer" retraining
    /// hyperparameter: earlier layers keep their learned weights, so the
    /// model retains its representation while the head is re-learned.
    pub fn resize_last_hidden(&mut self, neurons: usize, seed: u64) {
        assert!(!self.arch.hidden.is_empty(), "cannot resize a linear model head");
        let mut rng = StdRng::seed_from_u64(seed);
        let h = self.arch.hidden.len();
        let in_dim = if h >= 2 { self.arch.hidden[h - 2] } else { self.arch.input_dim };
        self.arch.hidden[h - 1] = neurons;
        // Layer index h-1 is the last hidden layer; layer h is the output.
        self.layers[h - 1] = Dense::he_init(in_dim, neurons, &mut rng);
        self.layers[h] = Dense::he_init(neurons, self.arch.num_classes, &mut rng);
    }

    /// Forward pass on a batch. Returns per-layer pre-activation inputs
    /// (needed for backprop) plus the softmax probabilities.
    fn forward_full(&self, x: &Matrix) -> (Vec<Matrix>, Vec<Vec<bool>>, Matrix) {
        let mut acts: Vec<Matrix> = (0..=self.layers.len()).map(|_| Matrix::zeros(0, 0)).collect();
        let mut masks: Vec<Vec<bool>> = (1..self.layers.len()).map(|_| Vec::new()).collect();
        let mut probs = Matrix::zeros(0, 0);
        self.forward_into(x, &mut acts, &mut masks, &mut probs);
        (acts, masks, probs)
    }

    /// [`Mlp::forward_full`] writing into caller-owned buffers (a
    /// [`Workspace`]'s), so the per-batch activations, masks, and
    /// probabilities reuse one allocation each across an epoch.
    /// `acts` must hold `layers + 1` slots and `masks` `layers - 1`.
    fn forward_into(
        &self,
        x: &Matrix,
        acts: &mut [Matrix],
        masks: &mut [Vec<bool>],
        probs: &mut Matrix,
    ) {
        acts[0].copy_from(x);
        for (i, layer) in self.layers.iter().enumerate() {
            let (prev, rest) = acts.split_at_mut(i + 1);
            let z = &mut rest[0];
            prev[i].matmul_into(&layer.w, z);
            for r in 0..z.rows() {
                let row = z.row_mut(r);
                for (v, &b) in row.iter_mut().zip(layer.b.iter()) {
                    *v += b;
                }
            }
            if i + 1 < self.layers.len() {
                relu_inplace_into(z, &mut masks[i]);
            }
        }
        probs.copy_from(&acts[self.layers.len()]);
        softmax_rows(probs);
    }

    /// Predicted class indices for a batch of samples.
    pub fn predict(&self, samples: &[Sample]) -> Vec<usize> {
        if samples.is_empty() {
            return Vec::new();
        }
        let x = batch_features(samples, self.arch.input_dim);
        let (_, _, probs) = self.forward_full(&x);
        (0..probs.rows())
            .map(|r| {
                let row = probs.row(r);
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// [`Mlp::predict`] through caller-owned scratch buffers: the
    /// steady-state serving path, allocation-free once the scratch has
    /// warmed up. Returns the predictions as a slice borrowed from
    /// `scratch`; results are bit-identical to [`Mlp::predict`].
    pub fn predict_into<'a>(
        &self,
        samples: &[Sample],
        scratch: &'a mut PredictScratch,
    ) -> &'a [usize] {
        scratch.preds.clear();
        if samples.is_empty() {
            return &scratch.preds;
        }
        scratch.fit(self);
        let PredictScratch { x, acts, masks, probs, preds } = scratch;
        let input_dim = self.arch.input_dim;
        x.resize_zeroed(samples.len(), input_dim);
        for (r, s) in samples.iter().enumerate() {
            assert_eq!(s.x.len(), input_dim, "sample dimensionality mismatch");
            x.row_mut(r).copy_from_slice(&s.x);
        }
        self.forward_into(x, acts, masks, probs);
        for r in 0..probs.rows() {
            let row = probs.row(r);
            let best = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(i, _)| i)
                .unwrap_or(0);
            preds.push(best);
        }
        &scratch.preds
    }

    /// [`Mlp::accuracy`] through a [`PredictScratch`] — the same value,
    /// computed without per-call allocation.
    pub fn accuracy_with(&self, data: DataView<'_>, scratch: &mut PredictScratch) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let preds = self.predict_into(data.samples, scratch);
        let correct = preds.iter().zip(data.samples).filter(|(p, s)| **p == s.y).count();
        correct as f64 / data.len() as f64
    }

    /// Classification accuracy on a dataset view, in `[0, 1]`.
    /// Returns 0 for an empty view.
    pub fn accuracy(&self, data: DataView<'_>) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let preds = self.predict(data.samples);
        let correct = preds.iter().zip(data.samples).filter(|(p, s)| **p == s.y).count();
        correct as f64 / data.len() as f64
    }

    /// Mean cross-entropy loss on a dataset view.
    pub fn loss(&self, data: DataView<'_>) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let x = batch_features(data.samples, self.arch.input_dim);
        let (_, _, probs) = self.forward_full(&x);
        let mut total = 0.0f64;
        for (r, s) in data.samples.iter().enumerate() {
            let p = probs.get(r, s.y).max(1e-12);
            total -= (p as f64).ln();
        }
        total / data.len() as f64
    }

    /// Backward pass for a batch, writing gradients for trainable layers
    /// into `gw`/`gb` (frozen layers keep whatever the buffers held; the
    /// optimiser skips them via the trainable mask). `delta`/`delta_next`
    /// are scratch buffers for the backpropagated error.
    #[allow(clippy::too_many_arguments)]
    fn backward_into(
        &self,
        activations: &[Matrix],
        masks: &[Vec<bool>],
        probs: &Matrix,
        labels: &[usize],
        delta: &mut Matrix,
        delta_next: &mut Matrix,
        gw: &mut [Matrix],
        gb: &mut [Vec<f32>],
    ) {
        let batch = labels.len();
        let n_layers = self.layers.len();
        let lowest_trainable = self.trainable.iter().position(|t| *t).unwrap_or(n_layers);

        // dL/dz for the output layer of softmax cross-entropy: (p - y)/batch.
        delta.copy_from(probs);
        for (r, &y) in labels.iter().enumerate() {
            let v = delta.get(r, y);
            delta.set(r, y, v - 1.0);
        }
        delta.scale(1.0 / batch as f32);

        for i in (0..n_layers).rev() {
            if i < lowest_trainable {
                // No trainable layer below: gradient flow can stop here.
                break;
            }
            if self.trainable[i] {
                // grad_W = a_{i}^T * delta ; grad_b = column sums of delta.
                activations[i].t_matmul_into(delta, &mut gw[i]);
                gb[i].clear();
                gb[i].resize(self.layers[i].b.len(), 0.0);
                for r in 0..delta.rows() {
                    for (bi, &d) in gb[i].iter_mut().zip(delta.row(r).iter()) {
                        *bi += d;
                    }
                }
            }
            if i > lowest_trainable {
                // delta_{i-1} = (delta * W_i^T) ⊙ relu'(z_{i-1})
                delta.matmul_t_into(&self.layers[i].w, delta_next);
                let mask = &masks[i - 1];
                for (v, &m) in delta_next.data_mut().iter_mut().zip(mask.iter()) {
                    if !m {
                        *v = 0.0;
                    }
                }
                std::mem::swap(delta, delta_next);
            }
        }
    }

    /// Runs one epoch of minibatch SGD over `data`, with the given optimiser
    /// state. Sample order is shuffled deterministically from `epoch_seed`.
    ///
    /// Returns the mean training loss over the epoch.
    pub fn train_epoch(
        &mut self,
        data: DataView<'_>,
        opt: &mut Sgd,
        batch_size: usize,
        epoch_seed: u64,
    ) -> f64 {
        use rand::seq::SliceRandom;
        if data.is_empty() {
            return 0.0;
        }
        let batch_size = batch_size.max(1);
        let mut order: Vec<usize> = (0..data.len()).collect();
        let mut rng = StdRng::seed_from_u64(epoch_seed);
        order.shuffle(&mut rng);

        let mut ws = Workspace::new(self);
        let input_dim = self.arch.input_dim;
        let mut total_loss = 0.0f64;
        let mut batches = 0usize;
        for chunk in order.chunks(batch_size) {
            ws.labels.clear();
            ws.x.resize_zeroed(chunk.len(), input_dim);
            for (r, &i) in chunk.iter().enumerate() {
                let s = &data.samples[i];
                assert_eq!(s.x.len(), input_dim, "sample dimensionality mismatch");
                ws.x.row_mut(r).copy_from_slice(&s.x);
                ws.labels.push(s.y);
            }
            self.forward_into(&ws.x, &mut ws.acts, &mut ws.masks, &mut ws.probs);

            // Batch loss (before the update), for curve fitting.
            let mut loss = 0.0f64;
            for (r, &y) in ws.labels.iter().enumerate() {
                loss -= (ws.probs.get(r, y).max(1e-12) as f64).ln();
            }
            total_loss += loss / ws.labels.len() as f64;
            batches += 1;

            self.backward_into(
                &ws.acts,
                &ws.masks,
                &ws.probs,
                &ws.labels,
                &mut ws.delta,
                &mut ws.delta_next,
                &mut ws.gw,
                &mut ws.gb,
            );
            opt.apply(self, &ws.gw, &ws.gb);
        }
        if batches == 0 {
            0.0
        } else {
            total_loss / batches as f64
        }
    }
}

/// Stacks sample features into a batch matrix.
fn batch_features(samples: &[Sample], input_dim: usize) -> Matrix {
    let mut m = Matrix::zeros(samples.len(), input_dim);
    for (r, s) in samples.iter().enumerate() {
        assert_eq!(s.x.len(), input_dim, "sample dimensionality mismatch");
        m.row_mut(r).copy_from_slice(&s.x);
    }
    m
}

/// Minibatch SGD with classical momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient in `[0, 1)`.
    pub momentum: f32,
    vel_w: Vec<Matrix>,
    vel_b: Vec<Vec<f32>>,
}

impl Sgd {
    /// Creates an optimiser for `model` with the given hyperparameters.
    pub fn new(model: &Mlp, lr: f32, momentum: f32) -> Self {
        let vel_w = model.layers.iter().map(|l| Matrix::zeros(l.w.rows(), l.w.cols())).collect();
        let vel_b = model.layers.iter().map(|l| vec![0.0; l.b.len()]).collect();
        Self { lr, momentum, vel_w, vel_b }
    }

    fn apply(&mut self, model: &mut Mlp, gw: &[Matrix], gb: &[Vec<f32>]) {
        for i in 0..model.layers.len() {
            if !model.trainable[i] {
                continue;
            }
            // Velocity shapes can go stale after a head resize; re-zero them.
            if self.vel_w[i].rows() != gw[i].rows() || self.vel_w[i].cols() != gw[i].cols() {
                self.vel_w[i] = Matrix::zeros(gw[i].rows(), gw[i].cols());
                self.vel_b[i] = vec![0.0; gb[i].len()];
            }
            self.vel_w[i].scale(self.momentum);
            self.vel_w[i].add_scaled(&gw[i], 1.0);
            model.layers[i].w.add_scaled(&self.vel_w[i], -self.lr);
            for ((v, &g), b) in
                self.vel_b[i].iter_mut().zip(gb[i].iter()).zip(model.layers[i].b.iter_mut())
            {
                *v = *v * self.momentum + g;
                *b -= self.lr * *v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Sample;
    use rand::Rng;

    /// A linearly separable 2-class toy problem.
    fn toy_data(n: usize, seed: u64) -> Vec<Sample> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let y = rng.gen_range(0..2usize);
                let cx = if y == 0 { -1.0 } else { 1.0 };
                let x = vec![cx + rng.gen_range(-0.3..0.3), -cx + rng.gen_range(-0.3..0.3)];
                Sample::new(x, y)
            })
            .collect()
    }

    #[test]
    fn construction_is_deterministic() {
        let arch = MlpArch::edge(4, 3, 8);
        let a = Mlp::new(arch.clone(), 99);
        let b = Mlp::new(arch, 99);
        assert_eq!(a.layers[0].w, b.layers[0].w);
    }

    #[test]
    fn training_learns_separable_data() {
        let data = toy_data(200, 1);
        let view = DataView::new(&data, 2);
        let mut model = Mlp::new(MlpArch { input_dim: 2, hidden: vec![8], num_classes: 2 }, 7);
        let before = model.accuracy(view);
        let mut opt = Sgd::new(&model, 0.1, 0.9);
        for e in 0..20 {
            model.train_epoch(view, &mut opt, 16, e);
        }
        let after = model.accuracy(view);
        assert!(after > 0.95, "expected >0.95 accuracy, got {after} (before: {before})");
    }

    #[test]
    fn loss_decreases_with_training() {
        let data = toy_data(100, 2);
        let view = DataView::new(&data, 2);
        let mut model = Mlp::new(MlpArch { input_dim: 2, hidden: vec![8], num_classes: 2 }, 3);
        let initial = model.loss(view);
        let mut opt = Sgd::new(&model, 0.05, 0.9);
        for e in 0..10 {
            model.train_epoch(view, &mut opt, 16, e);
        }
        assert!(model.loss(view) < initial);
    }

    #[test]
    fn frozen_layers_do_not_change() {
        let data = toy_data(50, 3);
        let view = DataView::new(&data, 2);
        let mut model = Mlp::new(MlpArch { input_dim: 2, hidden: vec![8, 8], num_classes: 2 }, 11);
        model.set_layers_trained(1); // only the output layer trains
        let frozen_before = model.layers[0].w.clone();
        let head_before = model.layers[2].w.clone();
        let mut opt = Sgd::new(&model, 0.1, 0.0);
        model.train_epoch(view, &mut opt, 8, 0);
        assert_eq!(model.layers[0].w, frozen_before, "frozen layer moved");
        assert_ne!(model.layers[2].w, head_before, "trainable head did not move");
    }

    #[test]
    fn layers_trained_clamps() {
        let mut model = Mlp::new(MlpArch { input_dim: 2, hidden: vec![4, 4], num_classes: 2 }, 0);
        model.set_layers_trained(100);
        assert_eq!(model.layers_trained(), 3);
        model.set_layers_trained(0);
        assert_eq!(model.layers_trained(), 1);
    }

    #[test]
    fn trainable_param_fraction_reflects_freezing() {
        let mut model = Mlp::new(MlpArch { input_dim: 8, hidden: vec![16, 8], num_classes: 4 }, 0);
        assert!((model.trainable_param_fraction() - 1.0).abs() < 1e-9);
        model.set_layers_trained(1);
        let frac = model.trainable_param_fraction();
        assert!(frac > 0.0 && frac < 0.5, "head-only fraction should be small, got {frac}");
    }

    #[test]
    fn resize_last_hidden_changes_width_and_keeps_trunk() {
        let mut model = Mlp::new(MlpArch { input_dim: 4, hidden: vec![8, 8], num_classes: 3 }, 5);
        let trunk = model.layers[0].w.clone();
        model.resize_last_hidden(16, 42);
        assert_eq!(model.arch().hidden, vec![8, 16]);
        assert_eq!(model.layers[1].out_dim(), 16);
        assert_eq!(model.layers[2].in_dim(), 16);
        assert_eq!(model.layers[0].w, trunk, "trunk must be preserved");
        // Model still functions end to end.
        let s = Sample::new(vec![0.1, 0.2, 0.3, 0.4], 0);
        let _ = model.predict(&[s]);
    }

    #[test]
    fn training_works_after_resize() {
        let data = toy_data(150, 4);
        let view = DataView::new(&data, 2);
        let mut model = Mlp::new(MlpArch { input_dim: 2, hidden: vec![8, 4], num_classes: 2 }, 5);
        model.resize_last_hidden(12, 6);
        let mut opt = Sgd::new(&model, 0.1, 0.9);
        for e in 0..20 {
            model.train_epoch(view, &mut opt, 16, e);
        }
        assert!(model.accuracy(view) > 0.9);
    }

    /// Forward passes through a reused [`Workspace`] — including a
    /// *shrinking* batch, which leaves the buffers dirty and oversized —
    /// must be bit-identical to fresh-buffer passes. This pins the
    /// scratch-buffer optimisation to the pre-optimisation numerics.
    #[test]
    fn workspace_reuse_is_bit_identical_to_fresh_buffers() {
        let model = Mlp::new(MlpArch::edge(6, 4, 10), 7);
        let x_big = Matrix::from_fn(5, 6, |r, c| ((r * 13 + c * 7) % 11) as f32 / 11.0 - 0.3);
        let x_small = Matrix::from_fn(3, 6, |r, c| ((r * 17 + c * 5) % 13) as f32 / 13.0 - 0.4);

        let mut ws = Workspace::new(&model);
        for (pass, x) in [&x_big, &x_small].into_iter().enumerate() {
            model.forward_into(x, &mut ws.acts, &mut ws.masks, &mut ws.probs);
            let (acts, masks, probs) = model.forward_full(x);
            assert_eq!(masks, ws.masks, "pass {pass}: masks diverged");
            for (i, (fresh, reused)) in acts.iter().zip(&ws.acts).enumerate() {
                assert_eq!((fresh.rows(), fresh.cols()), (reused.rows(), reused.cols()));
                for (f, r) in fresh.data().iter().zip(reused.data().iter()) {
                    assert_eq!(f.to_bits(), r.to_bits(), "pass {pass}: activation {i} diverged");
                }
            }
            for (f, r) in probs.data().iter().zip(ws.probs.data().iter()) {
                assert_eq!(f.to_bits(), r.to_bits(), "pass {pass}: probabilities diverged");
            }
        }
    }

    /// Two identical training runs — same seeds, same data — must
    /// produce bit-identical weights: buffer reuse across an epoch's
    /// minibatches (of uneven sizes) must not leak state between
    /// batches or runs.
    #[test]
    fn train_epoch_is_deterministic_with_reused_workspace() {
        let data = toy_data(50, 9);
        let view = DataView::new(&data, 2);
        let run = || {
            let mut model = Mlp::new(MlpArch { input_dim: 2, hidden: vec![8], num_classes: 2 }, 7);
            let mut opt = Sgd::new(&model, 0.1, 0.9);
            let mut losses = Vec::new();
            for e in 0..3 {
                // batch 16 over 50 samples → a ragged final minibatch.
                losses.push(model.train_epoch(view, &mut opt, 16, e));
            }
            // Debug rendering of f32 is shortest-round-trip, so equal
            // strings mean equal bits (and -0.0 still shows its sign).
            (format!("{:?}", model.layers), losses)
        };
        let (w1, l1) = run();
        let (w2, l2) = run();
        assert_eq!(w1, w2, "weights diverged between identical runs");
        assert_eq!(l1, l2, "losses diverged between identical runs");
    }

    /// The public serving-path scratch must match [`Mlp::predict`]
    /// bit-for-bit across growing *and* shrinking batches — a shrinking
    /// batch leaves every buffer dirty and oversized, the exact state a
    /// long-lived serving slot operates in.
    #[test]
    fn predict_scratch_reuse_matches_predict_exactly() {
        let model = Mlp::new(MlpArch::edge(6, 4, 10), 7);
        let big: Vec<Sample> = (0..5)
            .map(|i| {
                Sample::new((0..6).map(|c| ((i * 13 + c * 7) % 11) as f32 / 11.0).collect(), 0)
            })
            .collect();
        let small: Vec<Sample> = (0..2)
            .map(|i| {
                Sample::new((0..6).map(|c| ((i * 17 + c * 5) % 13) as f32 / 13.0).collect(), 1)
            })
            .collect();
        let mut scratch = PredictScratch::new();
        for (pass, batch) in [&big, &small, &big].into_iter().enumerate() {
            let reused = model.predict_into(batch, &mut scratch).to_vec();
            assert_eq!(reused, model.predict(batch), "pass {pass} diverged");
        }
        let labelled: Vec<Sample> = big.to_vec();
        let view = DataView::new(&labelled, 4);
        assert_eq!(model.accuracy_with(view, &mut scratch), model.accuracy(view));
    }

    /// One scratch shared across *different models* — deeper, then
    /// shallower and narrower (the serving hot-swap case) — must never
    /// read stale tail bytes left by the larger model's pass.
    #[test]
    fn predict_scratch_survives_hot_swap_to_smaller_model() {
        let deep = Mlp::new(MlpArch { input_dim: 6, hidden: vec![24, 16, 12], num_classes: 5 }, 3);
        let shallow = Mlp::new(MlpArch { input_dim: 6, hidden: vec![4], num_classes: 3 }, 4);
        let batch: Vec<Sample> = (0..7)
            .map(|i| {
                Sample::new((0..6).map(|c| ((i * 31 + c * 3) % 17) as f32 / 17.0).collect(), 0)
            })
            .collect();
        let mut scratch = PredictScratch::new();
        // Dirty the scratch with the deep model's large buffers…
        assert_eq!(deep.predict_into(&batch, &mut scratch).to_vec(), deep.predict(&batch));
        // …then swap to the smaller model: same scratch, same answers.
        assert_eq!(shallow.predict_into(&batch, &mut scratch).to_vec(), shallow.predict(&batch));
        // And back up to the deep model again.
        assert_eq!(deep.predict_into(&batch, &mut scratch).to_vec(), deep.predict(&batch));
    }

    #[test]
    fn empty_data_is_harmless() {
        let model = Mlp::new(MlpArch { input_dim: 2, hidden: vec![4], num_classes: 2 }, 0);
        let empty: Vec<Sample> = vec![];
        let view = DataView::new(&empty, 2);
        assert_eq!(model.accuracy(view), 0.0);
        assert_eq!(model.loss(view), 0.0);
    }

    #[test]
    fn predict_is_deterministic() {
        let data = toy_data(30, 9);
        let model = Mlp::new(MlpArch { input_dim: 2, hidden: vec![6], num_classes: 2 }, 1);
        assert_eq!(model.predict(&data), model.predict(&data));
    }
}
