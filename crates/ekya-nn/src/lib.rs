#![warn(missing_docs)]

//! # ekya-nn — learning substrate for the Ekya reproduction
//!
//! The paper trains compressed edge DNNs (ResNet18) supervised by an
//! expensive golden model (ResNeXt101) on PyTorch. This crate provides the
//! Rust stand-in that preserves every learning *behaviour* Ekya's
//! scheduler and micro-profiler rely on, while being small enough to run
//! thousands of retraining jobs inside a simulation:
//!
//! * [`mlp`] — genuinely trained MLP classifiers with per-layer freezing
//!   and head resizing (the paper's retraining hyperparameters, §3.1);
//! * [`fit`] — the micro-profiler's learning-curve model and the
//!   Lawson–Hanson NNLS solver it is fitted with (§4.3);
//! * [`cost`] — the calibrated GPU-time cost model (GPU-seconds per epoch
//!   at 100% allocation; inference fps per GPU);
//! * [`golden`] — teachers for knowledge-distillation labelling (§2.2);
//! * [`continual`] — iCaRL-style class-balanced exemplar memory (§2.2);
//! * [`data`] / [`tensor`] — the sample and matrix primitives.
//!
//! Everything is deterministic for a fixed seed; no global RNG state.

pub mod continual;
pub mod cost;
pub mod data;
pub mod eval;
pub mod fit;
pub mod gauss;
pub mod golden;
pub mod labeling;
pub mod mlp;
pub mod tensor;

pub use continual::ExemplarMemory;
pub use cost::CostModel;
pub use data::{subsample, DataView, Sample};
pub use eval::ConfusionMatrix;
pub use fit::{lstsq, nnls, solve_linear, LearningCurve};
pub use gauss::{sample_gaussian, sample_normal};
pub use golden::{distill_labels, ModelTeacher, OracleTeacher, Teacher};
pub use labeling::{label_with_budget, LabelStrategy, LabeledBatch};
pub use mlp::{Dense, Mlp, MlpArch, PredictScratch, Sgd};
pub use tensor::Matrix;
