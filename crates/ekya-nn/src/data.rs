//! Labeled sample types shared between the learning substrate and the video
//! workload generator.

use serde::{Deserialize, Serialize};

/// A single labeled training/validation sample: a feature vector (the
/// stand-in for a video frame's DNN embedding) plus a class label.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Feature vector. All samples in a dataset share one dimensionality.
    pub x: Vec<f32>,
    /// Class index in `0..num_classes`.
    pub y: usize,
}

impl Sample {
    /// Creates a new sample.
    pub fn new(x: Vec<f32>, y: usize) -> Self {
        Self { x, y }
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.x.len()
    }
}

/// A borrowed dataset view: slice of samples with a known class count.
#[derive(Debug, Clone, Copy)]
pub struct DataView<'a> {
    /// The samples.
    pub samples: &'a [Sample],
    /// Number of classes labels may take.
    pub num_classes: usize,
}

impl<'a> DataView<'a> {
    /// Creates a view over `samples`.
    pub fn new(samples: &'a [Sample], num_classes: usize) -> Self {
        Self { samples, num_classes }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when the view holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Per-class frequency histogram, normalised to sum to 1 (all zeros for
    /// an empty view).
    pub fn class_distribution(&self) -> Vec<f64> {
        let mut hist = vec![0.0f64; self.num_classes];
        for s in self.samples {
            if s.y < self.num_classes {
                hist[s.y] += 1.0;
            }
        }
        let total: f64 = hist.iter().sum();
        if total > 0.0 {
            for h in hist.iter_mut() {
                *h /= total;
            }
        }
        hist
    }
}

/// Deterministically subsamples `fraction` of `samples` with the given seed,
/// using uniform random sampling without replacement.
///
/// Uniform sampling is what Ekya's micro-profiler uses (§4.3): it preserves
/// the window's data distribution, which weighted schemes do not.
pub fn subsample(samples: &[Sample], fraction: f64, seed: u64) -> Vec<Sample> {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let fraction = fraction.clamp(0.0, 1.0);
    let n = ((samples.len() as f64) * fraction).round() as usize;
    let n = n.min(samples.len());
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut idx: Vec<usize> = (0..samples.len()).collect();
    idx.shuffle(&mut rng);
    idx.truncate(n);
    idx.sort_unstable();
    idx.into_iter().map(|i| samples[i].clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(n: usize) -> Vec<Sample> {
        (0..n).map(|i| Sample::new(vec![i as f32], i % 3)).collect()
    }

    #[test]
    fn class_distribution_normalises() {
        let samples = mk(9);
        let view = DataView::new(&samples, 3);
        let d = view.class_distribution();
        assert_eq!(d.len(), 3);
        for v in &d {
            assert!((*v - 1.0 / 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn class_distribution_empty_is_zero() {
        let samples: Vec<Sample> = vec![];
        let view = DataView::new(&samples, 4);
        assert_eq!(view.class_distribution(), vec![0.0; 4]);
    }

    #[test]
    fn subsample_respects_fraction() {
        let samples = mk(100);
        let sub = subsample(&samples, 0.25, 42);
        assert_eq!(sub.len(), 25);
    }

    #[test]
    fn subsample_is_deterministic() {
        let samples = mk(50);
        let a = subsample(&samples, 0.5, 7);
        let b = subsample(&samples, 0.5, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn subsample_different_seeds_differ() {
        let samples = mk(200);
        let a = subsample(&samples, 0.5, 1);
        let b = subsample(&samples, 0.5, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn subsample_clamps_fraction() {
        let samples = mk(10);
        assert_eq!(subsample(&samples, 2.0, 0).len(), 10);
        assert_eq!(subsample(&samples, -1.0, 0).len(), 0);
    }
}
