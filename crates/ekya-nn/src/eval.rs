//! Classification evaluation beyond plain accuracy.
//!
//! Continuous-learning failures are often *class-local*: a class that
//! surged in the current window (Fig 2a) may be the one the stale model
//! misses, even when overall accuracy still looks acceptable. Per-class
//! recall and the confusion matrix make that visible; they power the
//! drift diagnostics in the examples and tests.

use crate::data::DataView;
use crate::mlp::Mlp;
use serde::{Deserialize, Serialize};

/// Row-major confusion matrix: `counts[truth][predicted]`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    num_classes: usize,
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// Builds the confusion matrix of `model` on `data`.
    pub fn compute(model: &Mlp, data: DataView<'_>) -> Self {
        let mut counts = vec![0u64; data.num_classes * data.num_classes];
        if !data.is_empty() {
            let preds = model.predict(data.samples);
            for (s, &p) in data.samples.iter().zip(preds.iter()) {
                if s.y < data.num_classes && p < data.num_classes {
                    counts[s.y * data.num_classes + p] += 1;
                }
            }
        }
        Self { num_classes: data.num_classes, counts }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Count of samples with ground truth `truth` predicted as `pred`.
    pub fn count(&self, truth: usize, pred: usize) -> u64 {
        self.counts[truth * self.num_classes + pred]
    }

    /// Total samples of ground-truth class `truth`.
    pub fn class_total(&self, truth: usize) -> u64 {
        (0..self.num_classes).map(|p| self.count(truth, p)).sum()
    }

    /// Recall of class `truth` (`None` when the class has no samples).
    pub fn recall(&self, truth: usize) -> Option<f64> {
        let total = self.class_total(truth);
        if total == 0 {
            None
        } else {
            Some(self.count(truth, truth) as f64 / total as f64)
        }
    }

    /// Precision of class `pred` (`None` when nothing was predicted as it).
    pub fn precision(&self, pred: usize) -> Option<f64> {
        let total: u64 = (0..self.num_classes).map(|t| self.count(t, pred)).sum();
        if total == 0 {
            None
        } else {
            Some(self.count(pred, pred) as f64 / total as f64)
        }
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let correct: u64 = (0..self.num_classes).map(|c| self.count(c, c)).sum();
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }

    /// Per-class recall vector (`None` entries for absent classes).
    pub fn recalls(&self) -> Vec<Option<f64>> {
        (0..self.num_classes).map(|c| self.recall(c)).collect()
    }

    /// The lowest per-class recall among classes present in the data —
    /// the "worst-served class" signal a fairness-minded operator watches.
    pub fn min_recall(&self) -> Option<f64> {
        self.recalls().into_iter().flatten().fold(None, |acc, r| {
            Some(match acc {
                None => r,
                Some(a) => a.min(r),
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Sample;
    use crate::mlp::{MlpArch, Sgd};

    fn separable(n: usize, seed: u64) -> Vec<Sample> {
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let y = rng.gen_range(0..3usize);
                let c = y as f32 * 2.0 - 2.0;
                Sample::new(vec![c + rng.gen_range(-0.3..0.3), -c + rng.gen_range(-0.3..0.3)], y)
            })
            .collect()
    }

    fn trained_model(data: &[Sample]) -> Mlp {
        let view = DataView::new(data, 3);
        let mut m = Mlp::new(MlpArch { input_dim: 2, hidden: vec![8], num_classes: 3 }, 1);
        let mut opt = Sgd::new(&m, 0.1, 0.9);
        for e in 0..25 {
            m.train_epoch(view, &mut opt, 16, e);
        }
        m
    }

    #[test]
    fn confusion_matrix_totals_match_data() {
        let data = separable(120, 5);
        let model = trained_model(&data);
        let cm = ConfusionMatrix::compute(&model, DataView::new(&data, 3));
        let total: u64 = (0..3).map(|c| cm.class_total(c)).sum();
        assert_eq!(total, 120);
        assert_eq!(cm.num_classes(), 3);
    }

    #[test]
    fn accuracy_matches_model_accuracy() {
        let data = separable(200, 6);
        let model = trained_model(&data);
        let view = DataView::new(&data, 3);
        let cm = ConfusionMatrix::compute(&model, view);
        assert!((cm.accuracy() - model.accuracy(view)).abs() < 1e-12);
        assert!(cm.accuracy() > 0.9, "separable data should be learnable");
    }

    #[test]
    fn recall_and_precision_bounds() {
        let data = separable(150, 7);
        let model = trained_model(&data);
        let cm = ConfusionMatrix::compute(&model, DataView::new(&data, 3));
        for c in 0..3 {
            let r = cm.recall(c).expect("class present");
            assert!((0.0..=1.0).contains(&r));
            if let Some(p) = cm.precision(c) {
                assert!((0.0..=1.0).contains(&p));
            }
        }
        assert!(cm.min_recall().unwrap() <= cm.accuracy() + 1e-9);
    }

    #[test]
    fn absent_class_has_no_recall() {
        let data: Vec<Sample> = (0..10).map(|i| Sample::new(vec![i as f32, 0.0], 0)).collect();
        let model = Mlp::new(MlpArch { input_dim: 2, hidden: vec![4], num_classes: 3 }, 2);
        let cm = ConfusionMatrix::compute(&model, DataView::new(&data, 3));
        assert!(cm.recall(1).is_none());
        assert!(cm.recall(2).is_none());
        assert!(cm.recall(0).is_some());
    }

    #[test]
    fn empty_data_is_all_zero() {
        let model = Mlp::new(MlpArch { input_dim: 2, hidden: vec![4], num_classes: 2 }, 3);
        let empty: Vec<Sample> = vec![];
        let cm = ConfusionMatrix::compute(&model, DataView::new(&empty, 2));
        assert_eq!(cm.accuracy(), 0.0);
        assert!(cm.min_recall().is_none());
    }
}
