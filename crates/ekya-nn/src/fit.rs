//! Learning-curve fitting for the micro-profiler.
//!
//! Ekya's micro-profiler trains each candidate configuration for a handful
//! of epochs on a small data sample, then fits the observed accuracy-epoch
//! points to a non-linear curve model (the one used by Optimus) with a
//! non-negative least squares solver, and extrapolates to the full
//! training run (§4.3). This module implements:
//!
//! * a dense linear least-squares solver (normal equations + Gaussian
//!   elimination with partial pivoting);
//! * the Lawson–Hanson active-set NNLS algorithm, from scratch;
//! * the saturating curve model `acc(k) = c - 1/(a·k + b)` with `a, b >= 0`,
//!   fitted by a grid search over the asymptote `c` with NNLS solving for
//!   `(a, b)` at each candidate `c`.
//!
//! The curve is monotone non-decreasing in `k` and saturates at `c`, which
//! matches the empirical shape of DNN fine-tuning curves.

use serde::{Deserialize, Serialize};

/// Solves the square system `m x = rhs` by Gaussian elimination with
/// partial pivoting. Returns `None` when the matrix is singular
/// (pivot below `1e-12`).
pub fn solve_linear(m: &[Vec<f64>], rhs: &[f64]) -> Option<Vec<f64>> {
    let n = rhs.len();
    assert_eq!(m.len(), n, "matrix/rhs size mismatch");
    let mut a: Vec<Vec<f64>> = m
        .iter()
        .zip(rhs.iter())
        .map(|(row, &r)| {
            assert_eq!(row.len(), n, "matrix must be square");
            let mut v = row.clone();
            v.push(r);
            v
        })
        .collect();

    for col in 0..n {
        // Partial pivot.
        let pivot_row = (col..n)
            .max_by(|&i, &j| {
                a[i][col].abs().partial_cmp(&a[j][col].abs()).unwrap_or(std::cmp::Ordering::Equal)
            })
            .unwrap();
        if a[pivot_row][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot_row);
        let pivot: Vec<f64> = a[col].clone();
        for below in a.iter_mut().take(n).skip(col + 1) {
            let factor = below[col] / pivot[col];
            for (v, p) in below[col..=n].iter_mut().zip(&pivot[col..=n]) {
                *v -= factor * p;
            }
        }
    }
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = a[row][n];
        for col in (row + 1)..n {
            acc -= a[row][col] * x[col];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

/// Unconstrained linear least squares: minimises `||A x - y||_2` via the
/// normal equations. `a` is row-major with `a.len()` rows of `n` columns.
pub fn lstsq(a: &[Vec<f64>], y: &[f64]) -> Option<Vec<f64>> {
    let rows = a.len();
    assert_eq!(rows, y.len(), "row count mismatch");
    if rows == 0 {
        return None;
    }
    let n = a[0].len();
    // ata = A^T A (n x n), aty = A^T y (n).
    let mut ata = vec![vec![0.0; n]; n];
    let mut aty = vec![0.0; n];
    for (row, &yi) in a.iter().zip(y.iter()) {
        assert_eq!(row.len(), n, "ragged design matrix");
        for i in 0..n {
            aty[i] += row[i] * yi;
            for j in i..n {
                ata[i][j] += row[i] * row[j];
            }
        }
    }
    for i in 0..n {
        let (above, below) = ata.split_at_mut(i);
        for (j, upper_row) in above.iter().enumerate() {
            below[0][j] = upper_row[i]; // symmetric fill
        }
    }
    solve_linear(&ata, &aty)
}

/// Non-negative least squares: minimises `||A x - y||_2` subject to
/// `x >= 0`, using the Lawson–Hanson active-set method.
///
/// This is the same primitive the paper delegates to
/// `scipy.optimize.nnls` \[3\].
pub fn nnls(a: &[Vec<f64>], y: &[f64]) -> Vec<f64> {
    let rows = a.len();
    assert_eq!(rows, y.len(), "row count mismatch");
    if rows == 0 {
        return Vec::new();
    }
    let n = a[0].len();
    let mut x = vec![0.0f64; n];
    let mut passive = vec![false; n];
    let tol = 1e-10;
    let max_outer = 3 * n + 10;

    // Solves LS restricted to the passive set; entries outside it are 0.
    let solve_passive = |passive: &[bool]| -> Option<Vec<f64>> {
        let idx: Vec<usize> = (0..n).filter(|&i| passive[i]).collect();
        if idx.is_empty() {
            return Some(vec![0.0; n]);
        }
        let sub: Vec<Vec<f64>> =
            a.iter().map(|row| idx.iter().map(|&i| row[i]).collect()).collect();
        let sol = lstsq(&sub, y)?;
        let mut full = vec![0.0; n];
        for (&i, &v) in idx.iter().zip(sol.iter()) {
            full[i] = v;
        }
        Some(full)
    };

    for _ in 0..max_outer {
        // Gradient of the residual: w = A^T (y - A x).
        let mut w = vec![0.0f64; n];
        for (row, &yi) in a.iter().zip(y.iter()) {
            let pred: f64 = row.iter().zip(x.iter()).map(|(&ai, &xi)| ai * xi).sum();
            let r = yi - pred;
            for (wi, &ai) in w.iter_mut().zip(row.iter()) {
                *wi += ai * r;
            }
        }
        // Most-violating active variable.
        let candidate = (0..n)
            .filter(|&i| !passive[i])
            .max_by(|&i, &j| w[i].partial_cmp(&w[j]).unwrap_or(std::cmp::Ordering::Equal));
        let Some(j) = candidate else { break };
        if w[j] <= tol {
            break;
        }
        passive[j] = true;

        let mut z = match solve_passive(&passive) {
            Some(z) => z,
            None => {
                passive[j] = false;
                break;
            }
        };
        // Inner loop: retreat until the passive solution is feasible.
        let mut inner_guard = 0;
        while passive.iter().enumerate().any(|(i, &p)| p && z[i] <= tol) {
            inner_guard += 1;
            if inner_guard > n + 2 {
                break;
            }
            let mut alpha = f64::INFINITY;
            for i in 0..n {
                if passive[i] && z[i] <= tol {
                    let denom = x[i] - z[i];
                    if denom.abs() > 1e-15 {
                        alpha = alpha.min(x[i] / denom);
                    } else {
                        alpha = 0.0;
                    }
                }
            }
            if !alpha.is_finite() {
                break;
            }
            for i in 0..n {
                if passive[i] {
                    x[i] += alpha * (z[i] - x[i]);
                    if x[i] <= tol {
                        x[i] = 0.0;
                        passive[i] = false;
                    }
                }
            }
            z = match solve_passive(&passive) {
                Some(z) => z,
                None => break,
            };
        }
        x = z;
        for (xi, &p) in x.iter_mut().zip(passive.iter()) {
            if !p {
                *xi = 0.0;
            }
        }
    }
    for xi in x.iter_mut() {
        if *xi < 0.0 {
            *xi = 0.0;
        }
    }
    x
}

/// The fitted saturating learning curve `acc(k) = c - 1/(a k + b)`.
///
/// `k` is training progress measured in *full-data epoch equivalents*:
/// training for `e` epochs on a `f` fraction of the data advances `k` by
/// `e * f`, so curves observed on micro-profiling samples extrapolate
/// directly to full retraining runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LearningCurve {
    /// Slope parameter (`>= 0`).
    pub a: f64,
    /// Offset parameter (`> 0`).
    pub b: f64,
    /// Asymptotic accuracy in `(0, 1]`.
    pub c: f64,
}

impl LearningCurve {
    /// A degenerate flat curve pinned at `acc` (used when there are too few
    /// observations to fit).
    pub fn flat(acc: f64) -> Self {
        let acc = acc.clamp(0.0, 1.0);
        // 1/(a*k+b) == 0 requires b -> inf; emulate with a huge offset.
        Self { a: 0.0, b: 1e12, c: acc }
    }

    /// Predicted accuracy after `k` full-data epoch equivalents, clamped
    /// to `[0, 1]`.
    pub fn predict(&self, k: f64) -> f64 {
        let k = k.max(0.0);
        let denom = self.a * k + self.b;
        let v = if denom <= 1e-12 { 0.0 } else { self.c - 1.0 / denom };
        v.clamp(0.0, 1.0)
    }

    /// The asymptotic accuracy.
    pub fn asymptote(&self) -> f64 {
        self.c.clamp(0.0, 1.0)
    }

    /// Fits the curve to `(k, accuracy)` observations with the asymptote
    /// allowed anywhere up to 1.0. See [`LearningCurve::fit_capped`].
    pub fn fit(points: &[(f64, f64)]) -> Self {
        Self::fit_capped(points, 1.0)
    }

    /// Fits the curve to `(k, accuracy)` observations.
    ///
    /// Uses the linearisation `1/(c - acc) = a k + b` for each candidate
    /// asymptote `c` on a grid, solves `(a, b)` with [`nnls`], and keeps
    /// the candidate with the lowest squared error in accuracy space
    /// (ties break towards the *smallest* asymptote, so the fit does not
    /// hallucinate headroom the observations cannot support).
    ///
    /// `c_max` caps the asymptote: early-terminated micro-profiling runs
    /// only observe the start of the curve, where the data often cannot
    /// distinguish "fast rise to a low ceiling" from "slow rise to a high
    /// ceiling". Callers that know how much headroom is plausible (e.g.
    /// the micro-profiler, which bounds it relative to the best observed
    /// accuracy) pass it here.
    ///
    /// Falls back to [`LearningCurve::flat`] at the best observed accuracy
    /// when fewer than two distinct points are available.
    pub fn fit_capped(points: &[(f64, f64)], c_max: f64) -> Self {
        let pts: Vec<(f64, f64)> = points
            .iter()
            .filter(|(k, acc)| k.is_finite() && acc.is_finite() && *k >= 0.0)
            .map(|&(k, acc)| (k, acc.clamp(0.0, 1.0)))
            .collect();
        if pts.len() < 2 {
            let best = pts.iter().map(|p| p.1).fold(0.0, f64::max);
            return Self::flat(best);
        }
        let max_acc = pts.iter().map(|p| p.1).fold(0.0, f64::max);
        // The asymptote must sit above every observation but never above
        // 1.0 (perfect accuracy); when both collide (max_acc == 1.0) the
        // grid degenerates to the single candidate c = 1.0.
        let c_floor = (max_acc + 0.005).min(1.0);
        let c_cap = c_max.clamp(c_floor, 1.0);

        let mut best: Option<(f64, LearningCurve)> = None;
        // Design matrix rows [k, 1]: identical for every asymptote candidate,
        // so build it (and the target buffer) once outside the grid loop.
        let a_mat: Vec<Vec<f64>> = pts.iter().map(|&(k, _)| vec![k, 1.0]).collect();
        let mut yv: Vec<f64> = vec![0.0; pts.len()];
        // Asymptote candidates strictly above every observation, up to the
        // cap. The ascending grid plus strict improvement means equal-error
        // fits resolve to the smallest plausible asymptote.
        let mut c = c_floor.min(c_cap);
        loop {
            // Target 1/(c - acc) for this candidate asymptote.
            for (y, &(_, acc)) in yv.iter_mut().zip(pts.iter()) {
                *y = 1.0 / (c - acc).max(1e-9);
            }
            let sol = nnls(&a_mat, &yv);
            let (a, b) = (sol[0], sol[1].max(1e-9));
            let curve = LearningCurve { a, b, c };
            let err: f64 = pts.iter().map(|&(k, acc)| (curve.predict(k) - acc).powi(2)).sum();
            if best.as_ref().map(|(e, _)| err < *e).unwrap_or(true) {
                best = Some((err, curve));
            }
            if c >= c_cap {
                break;
            }
            c = (c + 0.01).min(c_cap);
        }
        best.map(|(_, c)| c).unwrap_or_else(|| Self::flat(max_acc))
    }

    /// Root-mean-square error of the fit on `points`.
    pub fn rmse(&self, points: &[(f64, f64)]) -> f64 {
        if points.is_empty() {
            return 0.0;
        }
        let sq: f64 = points.iter().map(|&(k, acc)| (self.predict(k) - acc).powi(2)).sum();
        (sq / points.len() as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_linear_identity() {
        let m = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let x = solve_linear(&m, &[3.0, 4.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn solve_linear_singular_returns_none() {
        let m = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert!(solve_linear(&m, &[1.0, 2.0]).is_none());
    }

    #[test]
    fn solve_linear_needs_pivoting() {
        // Zero on the diagonal forces a row swap.
        let m = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let x = solve_linear(&m, &[5.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn lstsq_recovers_line() {
        // y = 2x + 1 with exact data.
        let a: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, 1.0]).collect();
        let y: Vec<f64> = (0..10).map(|i| 2.0 * i as f64 + 1.0).collect();
        let sol = lstsq(&a, &y).unwrap();
        assert!((sol[0] - 2.0).abs() < 1e-9);
        assert!((sol[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn nnls_matches_lstsq_when_unconstrained_solution_is_positive() {
        let a: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64, 1.0]).collect();
        let y: Vec<f64> = (0..20).map(|i| 0.5 * i as f64 + 2.0).collect();
        let x = nnls(&a, &y);
        assert!((x[0] - 0.5).abs() < 1e-6, "got {x:?}");
        assert!((x[1] - 2.0).abs() < 1e-6, "got {x:?}");
    }

    #[test]
    fn nnls_clamps_negative_solution_to_zero() {
        // Unconstrained solution has a negative slope; NNLS must pin it at 0.
        let a: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, 1.0]).collect();
        let y: Vec<f64> = (0..10).map(|i| 5.0 - 0.3 * i as f64).collect();
        let x = nnls(&a, &y);
        assert_eq!(x[0], 0.0, "slope must be clamped: {x:?}");
        assert!(x[1] > 0.0);
    }

    #[test]
    fn nnls_all_zero_target() {
        let a: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64 + 1.0]).collect();
        let y = vec![0.0; 5];
        let x = nnls(&a, &y);
        assert!(x[0].abs() < 1e-9);
    }

    #[test]
    fn nnls_never_negative_randomised() {
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(12345);
        for _ in 0..50 {
            let rows = rng.gen_range(3..12);
            let cols = rng.gen_range(1..4);
            let a: Vec<Vec<f64>> =
                (0..rows).map(|_| (0..cols).map(|_| rng.gen_range(-2.0..2.0)).collect()).collect();
            let y: Vec<f64> = (0..rows).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let x = nnls(&a, &y);
            assert_eq!(x.len(), cols);
            for v in &x {
                assert!(*v >= 0.0, "negative NNLS output: {x:?}");
            }
        }
    }

    #[test]
    fn nnls_beats_or_matches_zero_vector() {
        // The NNLS residual can never exceed the residual of x = 0 when
        // that is checked against the returned solution.
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(777);
        for _ in 0..30 {
            let rows = rng.gen_range(4..10);
            let a: Vec<Vec<f64>> = (0..rows).map(|_| vec![rng.gen_range(0.0..2.0), 1.0]).collect();
            let y: Vec<f64> = (0..rows).map(|_| rng.gen_range(0.0..3.0)).collect();
            let x = nnls(&a, &y);
            let res = |xv: &[f64]| -> f64 {
                a.iter()
                    .zip(y.iter())
                    .map(|(row, &yi)| {
                        let p: f64 = row.iter().zip(xv).map(|(&ai, &xi)| ai * xi).sum();
                        (p - yi).powi(2)
                    })
                    .sum()
            };
            assert!(res(&x) <= res(&[0.0, 0.0]) + 1e-9);
        }
    }

    #[test]
    fn curve_fit_recovers_synthetic_curve() {
        let truth = LearningCurve { a: 0.8, b: 1.6, c: 0.9 };
        let pts: Vec<(f64, f64)> = (1..=5).map(|k| (k as f64, truth.predict(k as f64))).collect();
        let fit = LearningCurve::fit(&pts);
        // Extrapolation to 30 epochs should be close to the true curve.
        let err = (fit.predict(30.0) - truth.predict(30.0)).abs();
        assert!(err < 0.03, "extrapolation error {err} too high: fit {fit:?}");
    }

    #[test]
    fn curve_is_monotone_and_saturates() {
        let c = LearningCurve::fit(&[(0.5, 0.4), (1.0, 0.55), (2.0, 0.65), (4.0, 0.72)]);
        let mut prev = 0.0;
        for i in 0..200 {
            let v = c.predict(i as f64 * 0.5);
            assert!(v + 1e-9 >= prev, "curve must be monotone");
            assert!(v <= 1.0);
            prev = v;
        }
        assert!(c.predict(1e9) <= c.asymptote() + 1e-9);
    }

    #[test]
    fn flat_curve_predicts_constant() {
        let c = LearningCurve::flat(0.66);
        assert!((c.predict(0.0) - 0.66).abs() < 1e-6);
        assert!((c.predict(100.0) - 0.66).abs() < 1e-6);
    }

    #[test]
    fn fit_with_single_point_falls_back_to_flat() {
        let c = LearningCurve::fit(&[(1.0, 0.5)]);
        assert!((c.predict(50.0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn fit_ignores_non_finite_points() {
        let c = LearningCurve::fit(&[(1.0, 0.5), (f64::NAN, 0.9), (2.0, 0.6), (3.0, f64::NAN)]);
        assert!(c.predict(3.0) >= 0.5);
    }

    #[test]
    fn fit_tolerates_perfect_accuracy_observations() {
        // Regression: observations hitting 1.0 used to panic the clamp.
        let c = LearningCurve::fit_capped(&[(0.1, 0.9), (0.2, 1.0), (0.3, 1.0)], 1.0);
        assert!(c.predict(10.0) <= 1.0);
        assert!(c.predict(10.0) > 0.9);
        let c2 = LearningCurve::fit(&[(0.1, 1.0), (0.2, 1.0)]);
        assert!(c2.predict(5.0) <= 1.0);
    }

    #[test]
    fn rmse_zero_on_perfect_fit() {
        let truth = LearningCurve { a: 1.0, b: 2.0, c: 0.85 };
        let pts: Vec<(f64, f64)> = (1..=6).map(|k| (k as f64, truth.predict(k as f64))).collect();
        assert!(truth.rmse(&pts) < 1e-12);
    }
}
