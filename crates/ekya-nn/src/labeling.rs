//! Golden-model labelling budgets.
//!
//! The golden model is ~13x the edge model's cost, so it "cannot keep up
//! with inference on the live videos and we use it to label only a small
//! fraction of the videos in the retraining window" (§2.2). This module
//! decides *which* frames get that scarce labelling budget:
//!
//! * [`LabelStrategy::Uniform`] — uniform random sampling, the paper's
//!   choice for micro-profiling data because it "preserves all the data
//!   distributions and variations" (§4.3);
//! * [`LabelStrategy::ClassBalanced`] — equalise labelled counts across
//!   the classes the teacher *predicts*, protecting rare classes at the
//!   cost of distorting the distribution;
//! * [`LabelStrategy::Disagreement`] — prioritise frames where the edge
//!   model disagrees with the teacher (an active-learning heuristic: those
//!   frames carry the most corrective signal).

use crate::data::Sample;
use crate::golden::Teacher;
use crate::mlp::Mlp;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// How to spend the labelling budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LabelStrategy {
    /// Uniform random sampling (distribution-preserving).
    Uniform,
    /// Class-balanced by the teacher's predicted class.
    ClassBalanced,
    /// Frames where the edge model disagrees with the teacher first.
    Disagreement,
}

/// Output of a budgeted labelling pass.
#[derive(Debug, Clone)]
pub struct LabeledBatch {
    /// Teacher-labelled samples (at most `budget`).
    pub samples: Vec<Sample>,
    /// Frames inspected by the teacher (its GPU cost driver; for
    /// [`LabelStrategy::Uniform`] equals `samples.len()`, for the others
    /// the teacher scans the full pool).
    pub teacher_inspections: usize,
}

/// Labels up to `budget` frames from `pool` with `teacher`, choosing
/// frames per `strategy`. `edge_model` is needed only for
/// [`LabelStrategy::Disagreement`].
pub fn label_with_budget<T: Teacher>(
    teacher: &mut T,
    pool: &[Sample],
    budget: usize,
    strategy: LabelStrategy,
    edge_model: Option<&Mlp>,
    seed: u64,
) -> LabeledBatch {
    let budget = budget.min(pool.len());
    let mut rng = StdRng::seed_from_u64(seed);
    match strategy {
        LabelStrategy::Uniform => {
            let mut idx: Vec<usize> = (0..pool.len()).collect();
            idx.shuffle(&mut rng);
            idx.truncate(budget);
            idx.sort_unstable();
            let samples = idx
                .into_iter()
                .map(|i| Sample::new(pool[i].x.clone(), teacher.label(&pool[i].x, pool[i].y)))
                .collect();
            LabeledBatch { samples, teacher_inspections: budget }
        }
        LabelStrategy::ClassBalanced => {
            // Teacher labels everything, then we keep a balanced subset.
            let labelled: Vec<Sample> =
                pool.iter().map(|s| Sample::new(s.x.clone(), teacher.label(&s.x, s.y))).collect();
            let num_classes = labelled.iter().map(|s| s.y).max().map_or(0, |m| m + 1);
            let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); num_classes];
            for (i, s) in labelled.iter().enumerate() {
                buckets[s.y].push(i);
            }
            for b in buckets.iter_mut() {
                b.shuffle(&mut rng);
            }
            // Round-robin across classes until the budget is spent.
            let mut keep: Vec<usize> = Vec::with_capacity(budget);
            let mut level = 0usize;
            while keep.len() < budget {
                let mut advanced = false;
                for b in &buckets {
                    if keep.len() >= budget {
                        break;
                    }
                    if let Some(&i) = b.get(level) {
                        keep.push(i);
                        advanced = true;
                    }
                }
                if !advanced {
                    break;
                }
                level += 1;
            }
            keep.sort_unstable();
            let inspections = labelled.len();
            LabeledBatch {
                samples: keep.into_iter().map(|i| labelled[i].clone()).collect(),
                teacher_inspections: inspections,
            }
        }
        LabelStrategy::Disagreement => {
            let model = edge_model.expect("Disagreement strategy needs the edge model");
            let labelled: Vec<Sample> =
                pool.iter().map(|s| Sample::new(s.x.clone(), teacher.label(&s.x, s.y))).collect();
            let preds = model.predict(&labelled);
            let mut disagree: Vec<usize> = Vec::new();
            let mut agree: Vec<usize> = Vec::new();
            for (i, (s, &p)) in labelled.iter().zip(preds.iter()).enumerate() {
                if p == s.y {
                    agree.push(i);
                } else {
                    disagree.push(i);
                }
            }
            disagree.shuffle(&mut rng);
            agree.shuffle(&mut rng);
            let mut keep: Vec<usize> = disagree;
            keep.extend(agree);
            keep.truncate(budget);
            keep.sort_unstable();
            let inspections = labelled.len();
            LabeledBatch {
                samples: keep.into_iter().map(|i| labelled[i].clone()).collect(),
                teacher_inspections: inspections,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::DataView;
    use crate::golden::OracleTeacher;
    use crate::mlp::MlpArch;
    use rand::Rng;

    fn skewed_pool(n: usize, seed: u64) -> Vec<Sample> {
        // 90% class 0, 10% split over classes 1-2.
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let y = if rng.gen_bool(0.9) { 0 } else { rng.gen_range(1..3) };
                let c = y as f32 * 2.0;
                Sample::new(vec![c + rng.gen_range(-0.3..0.3), -c], y)
            })
            .collect()
    }

    #[test]
    fn uniform_respects_budget_and_cost() {
        let pool = skewed_pool(200, 1);
        let mut teacher = OracleTeacher::new(0.0, 3, 2);
        let out = label_with_budget(&mut teacher, &pool, 50, LabelStrategy::Uniform, None, 3);
        assert_eq!(out.samples.len(), 50);
        assert_eq!(out.teacher_inspections, 50, "uniform only inspects what it labels");
    }

    #[test]
    fn class_balanced_lifts_rare_classes() {
        let pool = skewed_pool(300, 4);
        let mut teacher = OracleTeacher::new(0.0, 3, 5);
        let uniform = label_with_budget(&mut teacher, &pool, 60, LabelStrategy::Uniform, None, 6);
        let mut teacher2 = OracleTeacher::new(0.0, 3, 5);
        let balanced =
            label_with_budget(&mut teacher2, &pool, 60, LabelStrategy::ClassBalanced, None, 6);
        let rare = |samples: &[Sample]| samples.iter().filter(|s| s.y != 0).count();
        assert!(
            rare(&balanced.samples) > rare(&uniform.samples),
            "balanced ({}) should label more rare-class frames than uniform ({})",
            rare(&balanced.samples),
            rare(&uniform.samples)
        );
        assert!(balanced.teacher_inspections > balanced.samples.len());
    }

    #[test]
    fn disagreement_prefers_frames_the_edge_model_gets_wrong() {
        let pool = skewed_pool(200, 7);
        let mut teacher = OracleTeacher::new(0.0, 3, 8);
        // An untrained edge model disagrees a lot; all kept frames should
        // be disagreements while any exist beyond the budget.
        let model = Mlp::new(MlpArch { input_dim: 2, hidden: vec![4], num_classes: 3 }, 9);
        let out = label_with_budget(
            &mut teacher,
            &pool,
            30,
            LabelStrategy::Disagreement,
            Some(&model),
            10,
        );
        assert_eq!(out.samples.len(), 30);
        let preds = model.predict(&out.samples);
        let disagreements = out.samples.iter().zip(&preds).filter(|(s, &p)| p != s.y).count();
        // The untrained model is wrong on most frames, so the selected 30
        // should be dominated by disagreements.
        assert!(disagreements >= 20, "got {disagreements} disagreements of 30");
    }

    #[test]
    fn budget_larger_than_pool_is_clamped() {
        let pool = skewed_pool(10, 11);
        let mut teacher = OracleTeacher::new(0.0, 3, 12);
        let out = label_with_budget(&mut teacher, &pool, 100, LabelStrategy::Uniform, None, 13);
        assert_eq!(out.samples.len(), 10);
    }

    #[test]
    fn strategies_are_deterministic() {
        let pool = skewed_pool(100, 14);
        let run = |strategy| {
            let mut teacher = OracleTeacher::new(0.02, 3, 15);
            label_with_budget(&mut teacher, &pool, 40, strategy, None, 16).samples
        };
        assert_eq!(run(LabelStrategy::Uniform), run(LabelStrategy::Uniform));
        assert_eq!(run(LabelStrategy::ClassBalanced), run(LabelStrategy::ClassBalanced));
    }

    #[test]
    fn labelled_batches_train_fine() {
        // End-to-end sanity: a balanced batch trains a usable model.
        let pool = skewed_pool(300, 17);
        let mut teacher = OracleTeacher::new(0.02, 3, 18);
        let out =
            label_with_budget(&mut teacher, &pool, 120, LabelStrategy::ClassBalanced, None, 19);
        let mut model = Mlp::new(MlpArch { input_dim: 2, hidden: vec![8], num_classes: 3 }, 20);
        let view = DataView::new(&out.samples, 3);
        let mut opt = crate::mlp::Sgd::new(&model, 0.1, 0.9);
        for e in 0..25 {
            model.train_epoch(view, &mut opt, 16, e);
        }
        assert!(model.accuracy(view) > 0.85);
    }
}
