//! Golden-model teachers for knowledge-distillation labelling.
//!
//! Manual labelling is infeasible for continuous training on the edge, so
//! Ekya labels retraining data with an expensive, highly accurate "golden
//! model" (§2.2) — a teacher supervising a low-cost student. Two teachers
//! are provided:
//!
//! * [`OracleTeacher`] — returns the ground-truth label with probability
//!   `1 - error_rate`, otherwise a uniformly random *wrong* label. This is
//!   the stand-in for ResNeXt101, whose labels the paper verified to be
//!   "very similar to human-annotated labels" (§6.1).
//! * [`ModelTeacher`] — wraps an actual high-capacity [`Mlp`]; used in
//!   tests that exercise the full distillation path where the teacher
//!   itself was trained on data.

use crate::data::Sample;
use crate::mlp::Mlp;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// A source of (possibly imperfect) labels for unlabeled frames.
pub trait Teacher {
    /// Labels a feature vector. `true_y` is the simulation's ground truth,
    /// available because the workload is synthetic; a real teacher model
    /// may ignore it.
    fn label(&mut self, x: &[f32], true_y: usize) -> usize;

    /// The teacher's expected labelling accuracy, in `[0, 1]`.
    fn expected_accuracy(&self) -> f64;
}

/// Ground-truth oracle with injected label noise.
#[derive(Debug, Clone)]
pub struct OracleTeacher {
    error_rate: f64,
    num_classes: usize,
    rng: StdRng,
}

impl OracleTeacher {
    /// Creates an oracle teacher. `error_rate` is clamped to `[0, 1]`.
    pub fn new(error_rate: f64, num_classes: usize, seed: u64) -> Self {
        assert!(num_classes >= 2, "need at least two classes");
        Self {
            error_rate: error_rate.clamp(0.0, 1.0),
            num_classes,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Teacher for OracleTeacher {
    fn label(&mut self, _x: &[f32], true_y: usize) -> usize {
        if self.rng.gen_bool(self.error_rate) {
            // Uniformly random wrong label.
            let offset = self.rng.gen_range(1..self.num_classes);
            (true_y + offset) % self.num_classes
        } else {
            true_y
        }
    }

    fn expected_accuracy(&self) -> f64 {
        1.0 - self.error_rate
    }
}

/// A teacher backed by a real (large) model.
#[derive(Debug, Clone)]
pub struct ModelTeacher {
    model: Mlp,
    expected_accuracy: f64,
}

impl ModelTeacher {
    /// Wraps a trained model; `expected_accuracy` is its measured held-out
    /// accuracy (reported by [`Teacher::expected_accuracy`]).
    pub fn new(model: Mlp, expected_accuracy: f64) -> Self {
        Self { model, expected_accuracy: expected_accuracy.clamp(0.0, 1.0) }
    }

    /// The wrapped model.
    pub fn model(&self) -> &Mlp {
        &self.model
    }
}

impl Teacher for ModelTeacher {
    fn label(&mut self, x: &[f32], _true_y: usize) -> usize {
        let s = Sample::new(x.to_vec(), 0);
        self.model.predict(std::slice::from_ref(&s))[0]
    }

    fn expected_accuracy(&self) -> f64 {
        self.expected_accuracy
    }
}

/// Labels `(features, ground_truth)` pairs with a teacher, producing
/// training samples whose `y` is the *teacher's* label (the student never
/// sees ground truth — §2.2).
pub fn distill_labels<T: Teacher>(teacher: &mut T, frames: &[Sample]) -> Vec<Sample> {
    frames.iter().map(|f| Sample::new(f.x.clone(), teacher.label(&f.x, f.y))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_error_oracle_is_exact() {
        let mut t = OracleTeacher::new(0.0, 6, 1);
        for y in 0..6 {
            assert_eq!(t.label(&[0.0], y), y);
        }
        assert_eq!(t.expected_accuracy(), 1.0);
    }

    #[test]
    fn oracle_error_rate_is_respected() {
        let mut t = OracleTeacher::new(0.1, 6, 2);
        let n = 10_000;
        let wrong = (0..n).filter(|_| t.label(&[0.0], 3) != 3).count();
        let rate = wrong as f64 / n as f64;
        assert!((rate - 0.1).abs() < 0.02, "observed error rate {rate}");
    }

    #[test]
    fn oracle_errors_are_always_wrong_labels() {
        // The error branch must never return the true label.
        let mut t = OracleTeacher::new(1.0, 4, 3);
        for _ in 0..100 {
            assert_ne!(t.label(&[0.0], 2), 2);
        }
    }

    #[test]
    fn oracle_labels_in_range() {
        let mut t = OracleTeacher::new(0.5, 5, 4);
        for y in 0..5 {
            for _ in 0..50 {
                let l = t.label(&[0.0], y);
                assert!(l < 5);
            }
        }
    }

    #[test]
    fn distill_preserves_features() {
        let mut t = OracleTeacher::new(0.0, 3, 5);
        let frames = vec![Sample::new(vec![1.0, 2.0], 1), Sample::new(vec![3.0, 4.0], 2)];
        let labeled = distill_labels(&mut t, &frames);
        assert_eq!(labeled.len(), 2);
        assert_eq!(labeled[0].x, vec![1.0, 2.0]);
        assert_eq!(labeled[0].y, 1);
        assert_eq!(labeled[1].y, 2);
    }

    #[test]
    fn model_teacher_labels_with_model() {
        use crate::mlp::MlpArch;
        let model = Mlp::new(MlpArch { input_dim: 2, hidden: vec![4], num_classes: 2 }, 9);
        let mut t = ModelTeacher::new(model.clone(), 0.9);
        let x = [0.5f32, -0.5];
        let expected = model.predict(&[Sample::new(x.to_vec(), 0)])[0];
        assert_eq!(t.label(&x, 1), expected);
        assert!((t.expected_accuracy() - 0.9).abs() < 1e-12);
    }
}
