//! Chrome trace-event export (`chrome://tracing` / Perfetto).
//!
//! The logical plane has no wall-clock timestamps — that is the point —
//! so the exporter synthesizes a deterministic timeline from logical
//! coordinates: each window spans one synthetic millisecond-scale band,
//! records inside it are laid out by sequence number, and lanes (`tid`)
//! come from the stream or shard id. The output is a valid trace-event
//! JSON document; durations are layout, not measurements.

use crate::record::TraceRecord;

/// Microseconds of synthetic timeline per window band.
const WINDOW_BAND_US: u64 = 1_000_000;
/// Microseconds between consecutive records of one scope.
const SEQ_STEP_US: u64 = 1_000;
/// Synthetic duration of a span event.
const SPAN_DUR_US: u64 = 800;

fn q(s: &str) -> String {
    serde_json::to_string(&s.to_string()).expect("string serializes")
}

fn ts_of(r: &TraceRecord) -> u64 {
    let band = (r.window + 1).max(0) as u64;
    band * WINDOW_BAND_US + r.seq * SEQ_STEP_US
}

fn tid_of(r: &TraceRecord) -> i64 {
    if r.stream >= 0 {
        r.stream
    } else if r.shard >= 0 {
        1000 + r.shard
    } else {
        0
    }
}

/// Renders records (canonical order in, stable output out) as a Chrome
/// trace-event JSON document.
pub fn chrome_trace(records: &[TraceRecord]) -> String {
    let mut events = Vec::with_capacity(records.len());
    for r in records {
        let name = q(&format!("{}/{}", r.layer, r.name));
        let ts = ts_of(r);
        let tid = tid_of(r);
        let args = format!(
            "{{\"detail\": {}, \"value\": {}, \"count\": {}, \"cell\": {}, \"window\": {}, \"model_version\": {}}}",
            q(&r.detail),
            if r.value.is_finite() { r.value.to_string() } else { "0".to_string() },
            r.count,
            q(&r.cell),
            r.window,
            r.model_version
        );
        match r.kind.as_str() {
            "span" => events.push(format!(
                "{{\"name\": {name}, \"cat\": {}, \"ph\": \"X\", \"ts\": {ts}, \"dur\": {SPAN_DUR_US}, \"pid\": 1, \"tid\": {tid}, \"args\": {args}}}",
                q(&r.layer)
            )),
            "event" => events.push(format!(
                "{{\"name\": {name}, \"cat\": {}, \"ph\": \"i\", \"ts\": {ts}, \"s\": \"t\", \"pid\": 1, \"tid\": {tid}, \"args\": {args}}}",
                q(&r.layer)
            )),
            "counter" | "hist" => events.push(format!(
                "{{\"name\": {name}, \"cat\": {}, \"ph\": \"C\", \"ts\": {ts}, \"pid\": 1, \"tid\": {tid}, \"args\": {{\"count\": {}}}}}",
                q(&r.layer),
                r.count
            )),
            _ => {}
        }
    }
    let mut out = String::from("{\"traceEvents\": [\n");
    out.push_str(&events.join(",\n"));
    out.push_str("\n], \"displayTimeUnit\": \"ms\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(kind: &str, window: i64, seq: u64) -> TraceRecord {
        TraceRecord {
            kind: kind.into(),
            layer: "test".into(),
            name: "thing \"quoted\"".into(),
            window,
            stream: 2,
            cell: "abcd".into(),
            shard: -1,
            model_version: 1,
            seq,
            value: 1.5,
            count: 3,
            detail: "d".into(),
            buckets: Vec::new(),
        }
    }

    #[test]
    fn export_is_valid_json_with_one_event_per_record() {
        let records = vec![rec("span", 0, 0), rec("event", 0, 1), rec("counter", 1, 0)];
        let out = chrome_trace(&records);
        let doc: serde::Value = serde_json::from_str(&out).expect("valid JSON");
        let events = doc.get("traceEvents").expect("traceEvents key");
        let serde::Value::Seq(items) = events else { panic!("traceEvents must be an array") };
        assert_eq!(items.len(), 3);
    }

    #[test]
    fn timestamps_are_pure_functions_of_logical_coordinates() {
        assert_eq!(ts_of(&rec("span", -1, 0)), 0);
        assert_eq!(ts_of(&rec("span", 0, 2)), WINDOW_BAND_US + 2 * SEQ_STEP_US);
        assert_eq!(tid_of(&rec("span", 0, 0)), 2);
    }
}
