//! The logical-plane trace record: one JSONL line per record.
//!
//! Every field is logical — derived from the workload and seed, never
//! from the clock, the thread schedule, or the process layout. Fields
//! that do not apply to a record carry sentinel values (`-1` for
//! indices, `""` for the cell fingerprint) rather than `Option`s, so
//! the serialized line set is flat and trivially sortable.

use serde::{Deserialize, Serialize};

/// One logical-plane trace record.
///
/// `kind` is one of:
/// * `"span"` — a completed unit of logical work; `value` carries its
///   deterministic magnitude (GPU-seconds, evaluations, streams —
///   whatever the emitting layer documents).
/// * `"event"` — a point occurrence; `detail` carries the payload.
/// * `"counter"` — an aggregated `u64` total in `count` (summed
///   commutatively, so worker count cannot change it).
/// * `"hist"` — an aggregated fixed-bucket histogram in `buckets`
///   (see [`crate::hist`]), total observations in `count`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Record kind: `span`, `event`, `counter`, or `hist`.
    pub kind: String,
    /// Emitting layer, dotted (`core.scheduler`, `bench.grid`,
    /// `serve.daemon`, ...).
    pub layer: String,
    /// Span/event/counter/histogram name within the layer.
    pub name: String,
    /// Logical retraining-window index; `-1` when not in a window.
    pub window: i64,
    /// Stream id; `-1` when not stream-scoped.
    pub stream: i64,
    /// Grid-cell fingerprint (hex); empty when not cell-scoped. Note
    /// this is the cell's *identity*, never the executing shard — which
    /// process ran the cell is placement, i.e. wall-plane.
    pub cell: String,
    /// Logical shard id (e.g. the daemon's inference-shard index a
    /// stream hashes to); `-1` when not shard-scoped.
    pub shard: i64,
    /// Serving-model version; `-1` when not model-scoped.
    pub model_version: i64,
    /// Per-context sequence number: position of this record within its
    /// logical scope (reset to 0 on every context push). Orders records
    /// that share all other key fields.
    pub seq: u64,
    /// Deterministic magnitude for spans/events (must be finite; the
    /// serializer rejects NaN/inf).
    pub value: f64,
    /// Aggregated total for counters and histograms; 0 otherwise.
    pub count: u64,
    /// Free-form deterministic payload (config indices, steal ledgers,
    /// rejection reasons).
    pub detail: String,
    /// Histogram bucket counts ([`crate::HIST_BUCKETS`] entries) for
    /// `hist` records; empty otherwise.
    pub buckets: Vec<u64>,
}

impl TraceRecord {
    /// The sort key that makes the flushed line order total and
    /// schedule-independent: logical coordinates first, then layer /
    /// kind / name / seq. Ties beyond this key are broken by the full
    /// serialized line (see [`crate::recorder::render`]), so the order
    /// is total even for duplicate records.
    pub fn sort_key(&self) -> (i64, i64, String, i64, String, String, String, u64) {
        (
            self.window,
            self.stream,
            self.cell.clone(),
            self.shard,
            self.layer.clone(),
            self.kind.clone(),
            self.name.clone(),
            self.seq,
        )
    }

    /// The identity under which `counter` and `hist` records merge
    /// across shard traces: every field that names the measurement,
    /// none that describe its magnitude.
    pub fn merge_key(&self) -> (String, String, String, i64, i64, String, i64, i64) {
        (
            self.kind.clone(),
            self.layer.clone(),
            self.name.clone(),
            self.window,
            self.stream,
            self.cell.clone(),
            self.shard,
            self.model_version,
        )
    }
}
