//! The logical-plane recorder: context, emission, flush, merge,
//! validate.
//!
//! One global session per process (bins run one workload per process;
//! in-process tests serialize sessions themselves). Records buffer in
//! memory; [`flush`] sorts them globally and rewrites the whole file
//! atomically (tmp sibling + rename), so a process killed mid-window
//! leaves the *previous* flush — a valid, window-boundary-truncated
//! trace — on disk, exactly like the daemon's status snapshots.
//!
//! Determinism rules enforced here:
//! * counters are `u64` and histograms are `u64` bucket arrays, so
//!   aggregation is commutative and worker count cannot change a byte;
//! * span/event order is recovered by a global sort over logical
//!   coordinates plus a per-context sequence number (reset on every
//!   context push — a logical scope runs on one thread, so its sequence
//!   is schedule-independent);
//! * nothing in this module reads the clock; wall-clock sampling lives
//!   in [`crate::timing`] and writes to a sidecar, never to the JSONL.

use crate::hist::{bucket_of, HIST_BUCKETS};
use crate::record::TraceRecord;
use parking_lot::Mutex;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};

/// Whether a session is active. Relaxed is sufficient: the flag only
/// gates emission, and session start/stop happen-before any traced work
/// through the state mutex.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Aggregation key for counters and histograms: (layer, name, window,
/// stream, cell, shard, model_version).
type AggKey = (String, String, i64, i64, String, i64, i64);

struct State {
    path: Option<PathBuf>,
    records: Vec<TraceRecord>,
    counters: BTreeMap<AggKey, u64>,
    hists: BTreeMap<AggKey, (u64, Vec<u64>)>,
}

static STATE: Mutex<Option<State>> = Mutex::new(None);

thread_local! {
    static CTX: RefCell<(Ctx, u64)> = RefCell::new((Ctx::default(), 0));
}

/// The logical coordinates every emission is stamped with. Thread-local
/// and scoped: [`Ctx::enter`] installs a context (resetting the
/// sequence counter) and returns a guard that restores the previous one
/// on drop.
#[derive(Debug, Clone, PartialEq)]
pub struct Ctx {
    /// Logical window index (`-1` outside a window).
    pub window: i64,
    /// Stream id (`-1` when not stream-scoped).
    pub stream: i64,
    /// Cell fingerprint (empty when not cell-scoped).
    pub cell: String,
    /// Logical shard id (`-1` when not shard-scoped).
    pub shard: i64,
    /// Serving-model version (`-1` when not model-scoped).
    pub model_version: i64,
}

impl Default for Ctx {
    fn default() -> Self {
        Self { window: -1, stream: -1, cell: String::new(), shard: -1, model_version: -1 }
    }
}

impl Ctx {
    /// Snapshot of the calling thread's current context — the base to
    /// refine with the builder methods below.
    pub fn current() -> Self {
        CTX.with(|c| c.borrow().0.clone())
    }

    /// Sets the window index.
    pub fn window(mut self, w: i64) -> Self {
        self.window = w;
        self
    }

    /// Sets the stream id.
    pub fn stream(mut self, s: i64) -> Self {
        self.stream = s;
        self
    }

    /// Sets the cell fingerprint.
    pub fn cell(mut self, c: impl Into<String>) -> Self {
        self.cell = c.into();
        self
    }

    /// Sets the logical shard id.
    pub fn shard(mut self, s: i64) -> Self {
        self.shard = s;
        self
    }

    /// Sets the model version.
    pub fn model_version(mut self, v: i64) -> Self {
        self.model_version = v;
        self
    }

    /// Installs this context on the calling thread and resets its
    /// sequence counter; the previous context (and its counter) are
    /// restored when the guard drops.
    pub fn enter(self) -> CtxGuard {
        CTX.with(|c| {
            let mut cur = c.borrow_mut();
            let prev = std::mem::replace(&mut *cur, (self, 0));
            CtxGuard { prev: Some(prev) }
        })
    }
}

/// Restores the previously installed [`Ctx`] (and its sequence counter)
/// on drop.
pub struct CtxGuard {
    prev: Option<(Ctx, u64)>,
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            CTX.with(|c| *c.borrow_mut() = prev);
        }
    }
}

/// Whether a trace session is active. Instrumentation hooks branch on
/// this first; when it is false (the default) an instrumented call
/// costs one relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Starts a session: clears all buffered state (both planes) and
/// enables emission. `path` is where [`flush`] writes the logical JSONL
/// (`None` buffers in memory only — the in-process test mode; use
/// [`render`] to read it back).
pub fn start(path: Option<PathBuf>) {
    let mut st = STATE.lock();
    *st = Some(State {
        path,
        records: Vec::new(),
        counters: BTreeMap::new(),
        hists: BTreeMap::new(),
    });
    crate::timing::reset();
    ENABLED.store(true, Ordering::Relaxed);
}

/// Ends the session and discards all buffered state. Does *not* flush —
/// crash-consistency semantics are "what the last [`flush`] wrote".
pub fn stop() {
    ENABLED.store(false, Ordering::Relaxed);
    *STATE.lock() = None;
}

fn emit(record: TraceRecord) {
    let mut st = STATE.lock();
    if let Some(state) = st.as_mut() {
        state.records.push(record);
    }
}

fn stamp(kind: &str, layer: &str, name: &str, value: f64, detail: &str) -> TraceRecord {
    let (ctx, seq) = CTX.with(|c| {
        let mut cur = c.borrow_mut();
        let seq = cur.1;
        cur.1 += 1;
        (cur.0.clone(), seq)
    });
    TraceRecord {
        kind: kind.to_string(),
        layer: layer.to_string(),
        name: name.to_string(),
        window: ctx.window,
        stream: ctx.stream,
        cell: ctx.cell,
        shard: ctx.shard,
        model_version: ctx.model_version,
        seq,
        value,
        count: 0,
        detail: detail.to_string(),
        buckets: Vec::new(),
    }
}

/// Records a completed logical span. `value` must be deterministic
/// (derived from the workload/seed, never the clock) and finite.
pub fn span(layer: &str, name: &str, value: f64, detail: &str) {
    if !enabled() {
        return;
    }
    emit(stamp("span", layer, name, value, detail));
}

/// Records a point event with a deterministic `detail` payload.
pub fn event(layer: &str, name: &str, detail: &str) {
    if !enabled() {
        return;
    }
    emit(stamp("event", layer, name, 0.0, detail));
}

fn agg_key(layer: &str, name: &str) -> AggKey {
    let ctx = Ctx::current();
    (
        layer.to_string(),
        name.to_string(),
        ctx.window,
        ctx.stream,
        ctx.cell,
        ctx.shard,
        ctx.model_version,
    )
}

/// Adds to a `u64` counter under the current context. Addition is
/// commutative, so worker count cannot change the flushed total.
pub fn counter_add(layer: &str, name: &str, n: u64) {
    if !enabled() {
        return;
    }
    let key = agg_key(layer, name);
    let mut st = STATE.lock();
    if let Some(state) = st.as_mut() {
        *state.counters.entry(key).or_insert(0) += n;
    }
}

/// Observes a value into a fixed-bucket histogram under the current
/// context (see [`crate::hist`] for the bucket ladder).
pub fn hist_observe(layer: &str, name: &str, value: f64) {
    if !enabled() {
        return;
    }
    let key = agg_key(layer, name);
    let bucket = bucket_of(value);
    let mut st = STATE.lock();
    if let Some(state) = st.as_mut() {
        let (count, buckets) =
            state.hists.entry(key).or_insert_with(|| (0, vec![0u64; HIST_BUCKETS]));
        *count += 1;
        buckets[bucket] += 1;
    }
}

fn aggregate_records(state: &State) -> Vec<TraceRecord> {
    let mut out = state.records.clone();
    for ((layer, name, window, stream, cell, shard, model_version), total) in &state.counters {
        out.push(TraceRecord {
            kind: "counter".to_string(),
            layer: layer.clone(),
            name: name.clone(),
            window: *window,
            stream: *stream,
            cell: cell.clone(),
            shard: *shard,
            model_version: *model_version,
            seq: 0,
            value: 0.0,
            count: *total,
            detail: String::new(),
            buckets: Vec::new(),
        });
    }
    for ((layer, name, window, stream, cell, shard, model_version), (count, buckets)) in
        &state.hists
    {
        out.push(TraceRecord {
            kind: "hist".to_string(),
            layer: layer.clone(),
            name: name.clone(),
            window: *window,
            stream: *stream,
            cell: cell.clone(),
            shard: *shard,
            model_version: *model_version,
            seq: 0,
            value: 0.0,
            count: *count,
            detail: String::new(),
            buckets: buckets.clone(),
        });
    }
    out
}

/// [`TraceRecord::sort_key`]'s shape, named for clippy's sake.
type SortKey = (i64, i64, String, i64, String, String, String, u64);
/// [`TraceRecord::merge_key`]'s shape.
type MergeKey = (String, String, String, i64, i64, String, i64, i64);

fn render_records(records: Vec<TraceRecord>) -> String {
    let mut lines: Vec<(SortKey, String)> = records
        .into_iter()
        .map(|r| {
            let line = serde_json::to_string(&r).expect("trace record serializes (finite floats)");
            (r.sort_key(), line)
        })
        .collect();
    // Primary: logical coordinates. Final tiebreak: the serialized line
    // itself, making the order total even for duplicate records.
    lines.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
    let mut out = String::new();
    for (_, line) in lines {
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// The session's logical plane as sorted JSONL bytes — exactly what
/// [`flush`] writes. Empty string when no session is active.
pub fn render() -> String {
    let st = STATE.lock();
    match st.as_ref() {
        Some(state) => render_records(aggregate_records(state)),
        None => String::new(),
    }
}

/// Atomic write: tmp sibling + rename, the same pattern as the
/// harness's checkpoints and the daemon's status snapshots, so a kill
/// between flushes never leaves a torn file.
fn write_atomic(path: &Path, bytes: &str) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let tmp = path.with_extension("jsonl.tmp");
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)
}

/// Flushes the session: sorts and rewrites the complete logical JSONL
/// at the session path (no-op on in-memory sessions), plus the
/// wall-plane sidecar (`<path>.wall.json` — never part of any
/// byte-identity check). Call at every consistency boundary (end of
/// run; end of every daemon window): the file on disk is then always a
/// valid trace truncated at the last boundary, whatever kills the
/// process afterwards.
pub fn flush() -> std::io::Result<()> {
    let (bytes, path) = {
        let st = STATE.lock();
        match st.as_ref() {
            Some(state) => (render_records(aggregate_records(state)), state.path.clone()),
            None => return Ok(()),
        }
    };
    if let Some(path) = path {
        write_atomic(&path, &bytes)?;
        let wall = crate::timing::sidecar_json();
        let wall_path = path.with_extension("wall.json");
        std::fs::write(wall_path, wall)?;
    }
    Ok(())
}

/// Parses a logical-plane JSONL string back into records. Errors name
/// the offending line.
pub fn parse_trace(jsonl: &str) -> Result<Vec<TraceRecord>, String> {
    let mut out = Vec::new();
    for (i, line) in jsonl.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let rec: TraceRecord =
            serde_json::from_str(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        out.push(rec);
    }
    Ok(out)
}

/// Merges shard traces into the trace the unsharded run would have
/// written: `counter`/`hist` records with the same [`TraceRecord::merge_key`]
/// sum (totals and bucket arrays), `span`/`event` records concatenate,
/// and the union re-sorts. Because cell records carry the cell's
/// identity and never its executing shard, merging the shard traces of
/// a split grid reproduces the serial trace byte for byte.
pub fn merge_traces(parts: &[&str]) -> Result<String, String> {
    let mut spans = Vec::new();
    let mut aggs: BTreeMap<MergeKey, TraceRecord> = BTreeMap::new();
    for part in parts {
        for rec in parse_trace(part)? {
            match rec.kind.as_str() {
                "counter" | "hist" => {
                    let key = rec.merge_key();
                    match aggs.get_mut(&key) {
                        Some(acc) => {
                            acc.count += rec.count;
                            if acc.buckets.len() != rec.buckets.len() {
                                return Err(format!(
                                    "histogram {}/{} bucket arity mismatch",
                                    rec.layer, rec.name
                                ));
                            }
                            for (a, b) in acc.buckets.iter_mut().zip(rec.buckets.iter()) {
                                *a += b;
                            }
                        }
                        None => {
                            aggs.insert(key, rec);
                        }
                    }
                }
                _ => spans.push(rec),
            }
        }
    }
    spans.extend(aggs.into_values());
    Ok(render_records(spans))
}

/// Checks a logical-plane trace's internal consistency; returns every
/// violated invariant (empty means valid). This is the contract the
/// killed-daemon test holds a recovered trace to: whatever window the
/// process died in, the last flushed trace must be a well-formed,
/// window-contiguous prefix of the run.
pub fn validate_trace(jsonl: &str) -> Vec<String> {
    let mut errs = Vec::new();
    let records = match parse_trace(jsonl) {
        Ok(r) => r,
        Err(e) => return vec![format!("unparseable trace: {e}")],
    };
    let rerendered = render_records(records.clone());
    if rerendered != jsonl {
        errs.push("trace is not in canonical sorted form".to_string());
    }
    let mut windows = std::collections::BTreeSet::new();
    for (i, r) in records.iter().enumerate() {
        let tag = format!("record {}", i + 1);
        match r.kind.as_str() {
            "span" | "event" | "counter" | "hist" => {}
            other => errs.push(format!("{tag}: unknown kind `{other}`")),
        }
        if r.kind == "hist" && r.buckets.len() != HIST_BUCKETS {
            errs.push(format!(
                "{tag}: hist has {} buckets, expected {HIST_BUCKETS}",
                r.buckets.len()
            ));
        }
        if r.kind != "hist" && !r.buckets.is_empty() {
            errs.push(format!("{tag}: non-hist record carries buckets"));
        }
        if r.kind == "hist" && r.count != r.buckets.iter().sum::<u64>() {
            errs.push(format!("{tag}: hist count does not equal bucket sum"));
        }
        if r.window < -1 {
            errs.push(format!("{tag}: window {} below -1", r.window));
        }
        if !r.value.is_finite() {
            errs.push(format!("{tag}: non-finite value"));
        }
        if r.window >= 0 {
            windows.insert(r.window);
        }
    }
    // Window-contiguity: a trace truncated at a flush boundary covers
    // windows 0..=max with no holes.
    if let (Some(&min), Some(&max)) = (windows.iter().next(), windows.iter().last()) {
        if min != 0 {
            errs.push(format!("first window is {min}, expected 0"));
        }
        if windows.len() as i64 != max - min + 1 {
            errs.push("window indices are not contiguous".to_string());
        }
    }
    errs
}

/// Sessions are process-global; tests that open one serialize here.
#[cfg(test)]
pub(crate) static SESSION_TEST_LOCK: Mutex<()> = Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    fn emit_workload(tag: &str) {
        let _w = Ctx::current().window(0).enter();
        {
            let _s = Ctx::current().stream(3).enter();
            span("test.layer", "work", 2.5, tag);
            event("test.layer", "tick", "first");
            event("test.layer", "tick", "second");
        }
        counter_add("test.layer", "items", 4);
        counter_add("test.layer", "items", 3);
        hist_observe("test.layer", "cost", 0.5);
        hist_observe("test.layer", "cost", 700.0);
    }

    #[test]
    fn disabled_emission_is_a_noop() {
        let _l = SESSION_TEST_LOCK.lock();
        stop();
        assert!(!enabled());
        span("x", "y", 1.0, "");
        counter_add("x", "y", 1);
        assert_eq!(render(), "");
    }

    #[test]
    fn render_is_sorted_valid_and_repeatable() {
        let _l = SESSION_TEST_LOCK.lock();
        start(None);
        emit_workload("a");
        let first = render();
        stop();
        start(None);
        emit_workload("a");
        let second = render();
        stop();
        assert_eq!(first, second, "same workload, same bytes");
        assert!(!first.is_empty());
        assert_eq!(validate_trace(&first), Vec::<String>::new());
        // Round-trip: parse + re-render is the identity on canonical form.
        let parsed = parse_trace(&first).unwrap();
        assert_eq!(parsed.len(), first.lines().count());
    }

    #[test]
    fn context_guard_restores_and_resets_seq() {
        let _l = SESSION_TEST_LOCK.lock();
        start(None);
        {
            let _a = Ctx::current().window(1).enter();
            span("t", "outer", 0.0, "");
            {
                let _b = Ctx::current().stream(7).enter();
                span("t", "inner", 0.0, "");
            }
            span("t", "outer2", 0.0, "");
        }
        let records = parse_trace(&render()).unwrap();
        stop();
        let outer: Vec<_> = records.iter().filter(|r| r.stream == -1).collect();
        let inner: Vec<_> = records.iter().filter(|r| r.stream == 7).collect();
        assert_eq!(outer.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(inner[0].seq, 0, "nested scope restarts its sequence");
        assert!(records.iter().all(|r| r.window == 1));
    }

    #[test]
    fn counters_merge_commutatively_across_shard_traces() {
        let _l = SESSION_TEST_LOCK.lock();
        // Serial reference: the whole workload in one session.
        start(None);
        emit_workload("a");
        emit_workload("b");
        let serial = render();
        stop();
        // Two "shards", each half the workload.
        start(None);
        emit_workload("a");
        let shard0 = render();
        stop();
        start(None);
        emit_workload("b");
        let shard1 = render();
        stop();
        let merged = merge_traces(&[&shard0, &shard1]).unwrap();
        assert_eq!(merged, serial, "shard union ≡ serial, byte for byte");
    }

    #[test]
    fn validate_catches_malformed_traces() {
        assert!(!validate_trace("not json\n").is_empty());
        // A hand-built record with a window hole.
        let r0 = r#"{"kind":"event","layer":"l","name":"n","window":0,"stream":-1,"cell":"","shard":-1,"model_version":-1,"seq":0,"value":0.0,"count":0,"detail":"","buckets":[]}"#;
        let r2 = r#"{"kind":"event","layer":"l","name":"n","window":2,"stream":-1,"cell":"","shard":-1,"model_version":-1,"seq":0,"value":0.0,"count":0,"detail":"","buckets":[]}"#;
        let trace = format!("{r0}\n{r2}\n");
        assert!(
            validate_trace(&trace).iter().any(|e| e.contains("contiguous")),
            "window hole must be reported"
        );
    }

    #[test]
    fn flush_writes_atomically_and_survives_reload() {
        let _l = SESSION_TEST_LOCK.lock();
        let dir = std::env::temp_dir().join("ekya_telemetry_test");
        let path = dir.join("trace.jsonl");
        start(Some(path.clone()));
        emit_workload("a");
        flush().unwrap();
        let on_disk = std::fs::read_to_string(&path).unwrap();
        assert_eq!(on_disk, render());
        assert_eq!(validate_trace(&on_disk), Vec::<String>::new());
        assert!(path.with_extension("wall.json").exists(), "wall sidecar written");
        stop();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
