//! Fixed-bucket histograms for the logical plane.
//!
//! Buckets are a fixed power-of-two ladder shared by every histogram in
//! the workspace, so two shards' bucket arrays merge by element-wise
//! `u64` addition — commutative, hence schedule-independent — and the
//! `ekya_trace summary` view can quote p50/p95 without ever having
//! stored the raw samples.

/// Number of buckets in every histogram.
pub const HIST_BUCKETS: usize = 40;

/// Exponent of the upper bound of bucket 0: bucket 0 holds every value
/// `<= 2^FIRST_EXP` (including zero and negatives, which logical values
/// never are but a histogram must not panic on).
const FIRST_EXP: i32 = -20;

/// The bucket index a value falls into. Bucket `i` (for `0 < i <
/// HIST_BUCKETS-1`) holds values in `(2^(FIRST_EXP+i-1),
/// 2^(FIRST_EXP+i)]`; the last bucket is the overflow. The mapping is a
/// pure function of the value's bits — no rounding mode or platform
/// dependence — so identical logical values bucket identically
/// everywhere.
pub fn bucket_of(value: f64) -> usize {
    if value.is_nan() || value <= 0.0 {
        return 0;
    }
    for i in 0..HIST_BUCKETS - 1 {
        if value <= bucket_bound(i) {
            return i;
        }
    }
    HIST_BUCKETS - 1
}

/// Upper bound of bucket `i` (the last bucket is unbounded and reports
/// `f64::INFINITY`).
pub fn bucket_bound(i: usize) -> f64 {
    if i >= HIST_BUCKETS - 1 {
        f64::INFINITY
    } else {
        (2.0f64).powi(FIRST_EXP + i as i32)
    }
}

/// The `q`-quantile (`0.0..=1.0`) estimated from bucket counts: the
/// upper bound of the first bucket where the cumulative count reaches
/// `q` of the total. Returns 0.0 for an empty histogram. The estimate
/// is conservative (quotes the bucket ceiling), which is the right bias
/// for a regression watchdog.
pub fn quantile(buckets: &[u64], q: f64) -> f64 {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let rank = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
    let mut cum = 0u64;
    for (i, &c) in buckets.iter().enumerate() {
        cum += c;
        if cum >= rank {
            return bucket_bound(i);
        }
    }
    bucket_bound(buckets.len().saturating_sub(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_positive_line() {
        for v in [1e-9, 0.001, 0.5, 1.0, 1.5, 1024.0, 1e9] {
            let i = bucket_of(v);
            assert!(v <= bucket_bound(i), "{v} above its bucket bound");
            if i > 0 {
                assert!(v > bucket_bound(i - 1), "{v} not above previous bound");
            }
        }
    }

    #[test]
    fn degenerate_values_land_in_bucket_zero() {
        assert_eq!(bucket_of(0.0), 0);
        assert_eq!(bucket_of(-3.0), 0);
        assert_eq!(bucket_of(f64::NAN), 0);
    }

    #[test]
    fn overflow_lands_in_last_bucket() {
        assert_eq!(bucket_of(f64::INFINITY), HIST_BUCKETS - 1);
        assert_eq!(bucket_of(1e30), HIST_BUCKETS - 1);
    }

    #[test]
    fn quantile_walks_the_cumulative_counts() {
        let mut b = vec![0u64; HIST_BUCKETS];
        // 10 observations of ~1.0 (bucket of 1.0), 10 of ~1000.
        let lo = bucket_of(1.0);
        let hi = bucket_of(1000.0);
        b[lo] = 10;
        b[hi] = 10;
        assert_eq!(quantile(&b, 0.5), bucket_bound(lo));
        assert_eq!(quantile(&b, 0.95), bucket_bound(hi));
        assert_eq!(quantile(&[0u64; HIST_BUCKETS], 0.5), 0.0);
    }

    #[test]
    fn quantile_of_single_observation_is_its_bucket() {
        let mut b = vec![0u64; HIST_BUCKETS];
        b[bucket_of(0.25)] = 1;
        assert_eq!(quantile(&b, 0.5), bucket_bound(bucket_of(0.25)));
        assert_eq!(quantile(&b, 0.95), bucket_bound(bucket_of(0.25)));
    }
}
