//! Pure trace views: the aggregation behind `ekya_trace summary` and
//! the ASCII lanes behind `ekya_trace timeline`.
//!
//! Both take records in canonical (sorted) order and are pure string
//! functions of them, so the views are as deterministic as the trace.

use crate::hist::quantile;
use crate::record::TraceRecord;
use std::collections::BTreeMap;

/// One row of the per-span aggregate table.
#[derive(Debug, Clone, PartialEq)]
pub struct SummaryRow {
    /// Emitting layer.
    pub layer: String,
    /// Record name.
    pub name: String,
    /// Record kind (`span`, `event`, `counter`, `hist`).
    pub kind: String,
    /// Occurrences (span/event records, counter totals, or histogram
    /// observation counts).
    pub count: u64,
    /// Sum of span values (0 for other kinds).
    pub total_value: f64,
    /// p50 from histogram buckets (0 for other kinds).
    pub p50: f64,
    /// p95 from histogram buckets (0 for other kinds).
    pub p95: f64,
}

/// Aggregates records by (layer, name, kind). Counter totals and
/// histogram buckets sum across contexts; span values sum in canonical
/// record order (deterministic because the input order is).
pub fn summarize(records: &[TraceRecord]) -> Vec<SummaryRow> {
    let mut rows: BTreeMap<(String, String, String), SummaryRow> = BTreeMap::new();
    let mut buckets: BTreeMap<(String, String, String), Vec<u64>> = BTreeMap::new();
    for r in records {
        let key = (r.layer.clone(), r.name.clone(), r.kind.clone());
        let row = rows.entry(key.clone()).or_insert_with(|| SummaryRow {
            layer: r.layer.clone(),
            name: r.name.clone(),
            kind: r.kind.clone(),
            count: 0,
            total_value: 0.0,
            p50: 0.0,
            p95: 0.0,
        });
        match r.kind.as_str() {
            "counter" | "hist" => row.count += r.count,
            _ => {
                row.count += 1;
                row.total_value += r.value;
            }
        }
        if r.kind == "hist" {
            let b = buckets.entry(key).or_insert_with(|| vec![0u64; r.buckets.len()]);
            for (a, v) in b.iter_mut().zip(r.buckets.iter()) {
                *a += v;
            }
        }
    }
    let mut out: Vec<SummaryRow> = rows
        .into_iter()
        .map(|(key, mut row)| {
            if let Some(b) = buckets.get(&key) {
                row.p50 = quantile(b, 0.50);
                row.p95 = quantile(b, 0.95);
            }
            row
        })
        .collect();
    out.sort_by(|a, b| (&a.layer, &a.name, &a.kind).cmp(&(&b.layer, &b.name, &b.kind)));
    out
}

fn lane_label(r: &TraceRecord) -> String {
    if r.stream >= 0 {
        format!("stream{:>4}", r.stream)
    } else if !r.cell.is_empty() {
        format!("cell {}", &r.cell[..r.cell.len().min(8)])
    } else if r.shard >= 0 {
        format!("shard{:>4}", r.shard)
    } else {
        "run       ".trim_end().to_string()
    }
}

/// Renders ASCII lanes: one section per window (`-1` renders as
/// `pre-run`), one lane per stream/cell/shard, span and event names in
/// sequence order. Aggregate records (counters, histograms) are listed
/// under a trailing `totals` section.
pub fn timeline(records: &[TraceRecord]) -> String {
    let mut out = String::new();
    let mut by_window: BTreeMap<i64, BTreeMap<String, Vec<&TraceRecord>>> = BTreeMap::new();
    let mut totals: Vec<&TraceRecord> = Vec::new();
    for r in records {
        match r.kind.as_str() {
            "counter" | "hist" => totals.push(r),
            _ => by_window.entry(r.window).or_default().entry(lane_label(r)).or_default().push(r),
        }
    }
    for (window, lanes) in &by_window {
        if *window < 0 {
            out.push_str("== pre-run ==\n");
        } else {
            out.push_str(&format!("== window {window} ==\n"));
        }
        for (lane, recs) in lanes {
            let mut cells = Vec::with_capacity(recs.len());
            for r in recs {
                let mark = if r.kind == "span" {
                    format!("[{} {:.4}]", r.name, r.value)
                } else {
                    format!("·{}", r.name)
                };
                cells.push(mark);
            }
            out.push_str(&format!("  {lane:<12} {}\n", cells.join(" ")));
        }
    }
    if !totals.is_empty() {
        out.push_str("== totals ==\n");
        for r in totals {
            out.push_str(&format!(
                "  {:<28} {:>12}  {}\n",
                format!("{}/{}", r.layer, r.name),
                r.count,
                r.kind
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::{bucket_bound, bucket_of, HIST_BUCKETS};

    fn span_rec(name: &str, window: i64, stream: i64, seq: u64, value: f64) -> TraceRecord {
        TraceRecord {
            kind: "span".into(),
            layer: "l".into(),
            name: name.into(),
            window,
            stream,
            cell: String::new(),
            shard: -1,
            model_version: -1,
            seq,
            value,
            count: 0,
            detail: String::new(),
            buckets: Vec::new(),
        }
    }

    #[test]
    fn summary_aggregates_spans_counters_and_hists() {
        let mut hist = span_rec("cost", 0, -1, 0, 0.0);
        hist.kind = "hist".into();
        hist.count = 3;
        hist.buckets = vec![0u64; HIST_BUCKETS];
        hist.buckets[bucket_of(1.0)] = 3;
        let mut counter = span_rec("items", 0, -1, 0, 0.0);
        counter.kind = "counter".into();
        counter.count = 7;
        let records =
            vec![span_rec("work", 0, 1, 0, 2.0), span_rec("work", 0, 2, 0, 3.0), counter, hist];
        let rows = summarize(&records);
        let work = rows.iter().find(|r| r.name == "work").unwrap();
        assert_eq!(work.count, 2);
        assert!((work.total_value - 5.0).abs() < 1e-12);
        let items = rows.iter().find(|r| r.name == "items").unwrap();
        assert_eq!(items.count, 7);
        let cost = rows.iter().find(|r| r.name == "cost").unwrap();
        assert_eq!(cost.count, 3);
        assert_eq!(cost.p50, bucket_bound(bucket_of(1.0)));
    }

    #[test]
    fn timeline_groups_by_window_and_lane() {
        let records = vec![
            span_rec("a", 0, 1, 0, 1.0),
            span_rec("b", 0, 1, 1, 2.0),
            span_rec("a", 1, 2, 0, 1.0),
        ];
        let t = timeline(&records);
        assert!(t.contains("== window 0 =="), "got: {t}");
        assert!(t.contains("== window 1 =="), "got: {t}");
        assert!(t.contains("stream   1"), "got: {t}");
        assert!(t.contains("[a 1.0000] [b 2.0000]"), "got: {t}");
    }
}
