//! The wall-clock plane — the *only* sanctioned clock-reading module in
//! the telemetry layer.
//!
//! Everything here is quarantined by construction: wall readings
//! aggregate into process-global maps and serialize to a `.wall.json`
//! sidecar that no byte-identity check ever reads. Nothing in this
//! module can write into the logical JSONL. `ekya-lint`'s
//! `wallclock-in-cell` rule allowlists exactly this file; an
//! `Instant::now()` anywhere else in an instrumented hot path still
//! fails the lint.
//!
//! Aggregates (not raw samples) are kept on purpose: durations and
//! queue depths are noisy per-observation, and the sidecar is for
//! "where did the wall time go" questions, not for replay.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::time::Instant;

/// Wall-duration aggregate for one (layer, name) span family.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WallAgg {
    /// Completed spans.
    pub count: u64,
    /// Total duration, nanoseconds.
    pub total_ns: u64,
    /// Longest single span, nanoseconds.
    pub max_ns: u64,
}

static SPANS: Mutex<BTreeMap<(&'static str, &'static str), WallAgg>> = Mutex::new(BTreeMap::new());
static GAUGES: Mutex<BTreeMap<(&'static str, &'static str), u64>> = Mutex::new(BTreeMap::new());

/// Clears all wall aggregates (called by [`crate::recorder::start`]).
pub fn reset() {
    SPANS.lock().clear();
    GAUGES.lock().clear();
}

/// A wall-clock span: measures from construction to drop and folds the
/// duration into the (layer, name) aggregate. When tracing is disabled
/// the constructor takes no clock reading and drop is a no-op.
pub struct WallSpan {
    start: Option<(Instant, &'static str, &'static str)>,
}

impl Drop for WallSpan {
    fn drop(&mut self) {
        if let Some((start, layer, name)) = self.start.take() {
            let ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            let mut spans = SPANS.lock();
            let agg = spans.entry((layer, name)).or_default();
            agg.count += 1;
            agg.total_ns += ns;
            agg.max_ns = agg.max_ns.max(ns);
        }
    }
}

/// Opens a wall-clock span. `layer`/`name` must be string literals —
/// the aggregate key is static so the hot path never allocates.
pub fn wall_span(layer: &'static str, name: &'static str) -> WallSpan {
    if !crate::recorder::enabled() {
        return WallSpan { start: None };
    }
    WallSpan { start: Some((Instant::now(), layer, name)) }
}

/// Records a high-water-mark gauge (e.g. queue depth): keeps the
/// maximum value observed for (layer, name) this session.
pub fn wall_gauge_max(layer: &'static str, name: &'static str, value: u64) {
    if !crate::recorder::enabled() {
        return;
    }
    let mut gauges = GAUGES.lock();
    let g = gauges.entry((layer, name)).or_insert(0);
    *g = (*g).max(value);
}

/// The wall-plane sidecar document: span aggregates and gauges as one
/// JSON object. Deliberately *not* deterministic — it reports this
/// run's wall time — which is exactly why it lives beside, never
/// inside, the fingerprinted trace.
pub fn sidecar_json() -> String {
    let spans = SPANS.lock();
    let gauges = GAUGES.lock();
    let mut out = String::from("{\n  \"wall_spans\": {");
    for (i, ((layer, name), agg)) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let mean_ns = agg.total_ns.checked_div(agg.count).unwrap_or(0);
        out.push_str(&format!(
            "\n    \"{layer}/{name}\": {{\"count\": {}, \"total_ns\": {}, \"mean_ns\": {}, \"max_ns\": {}}}",
            agg.count, agg.total_ns, mean_ns, agg.max_ns
        ));
    }
    out.push_str("\n  },\n  \"gauges\": {");
    for (i, ((layer, name), v)) in gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n    \"{layer}/{name}\": {v}"));
    }
    out.push_str("\n  }\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_take_no_reading() {
        let _l = crate::recorder::SESSION_TEST_LOCK.lock();
        crate::recorder::stop();
        reset();
        drop(wall_span("t", "noop"));
        wall_gauge_max("t", "depth", 9);
        assert!(SPANS.lock().is_empty());
        assert!(GAUGES.lock().is_empty());
    }

    #[test]
    fn enabled_spans_aggregate_and_render() {
        let _l = crate::recorder::SESSION_TEST_LOCK.lock();
        crate::recorder::start(None);
        drop(wall_span("t", "work"));
        drop(wall_span("t", "work"));
        wall_gauge_max("t", "depth", 3);
        wall_gauge_max("t", "depth", 11);
        wall_gauge_max("t", "depth", 5);
        let side = sidecar_json();
        crate::recorder::stop();
        assert!(side.contains("\"t/work\": {\"count\": 2"), "got: {side}");
        assert!(side.contains("\"t/depth\": 11"), "got: {side}");
        assert!(serde_json::from_str::<serde::Value>(&side).is_ok(), "sidecar is JSON");
    }
}
