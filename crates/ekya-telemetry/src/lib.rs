//! Two-plane structured tracing + metrics for the Ekya workspace.
//!
//! The workspace's determinism contract (parallel ≡ serial ≡ sharded,
//! byte for byte) extends to its observability: a trace that changes
//! with thread timing cannot diff two runs, and a trace that feeds
//! wall-clock readings into fingerprinted bytes breaks the contract it
//! is meant to watch. So telemetry is split into two planes with
//! different rules:
//!
//! * the **logical plane** ([`recorder`]) — spans and events keyed by
//!   logical time (window index, cell fingerprint, shard id, model
//!   version), plus `u64` counters and fixed-bucket histograms. It
//!   serializes as JSONL that is a pure function of `(workload, seed)`:
//!   records are buffered in memory, stamped with a per-context
//!   sequence number, and globally sorted at flush, so the file is
//!   byte-identical across runs, worker counts, and shard merges.
//! * the **wall-clock plane** ([`timing`]) — span durations, queue
//!   depths, steal latencies. It is the *only* module in the workspace
//!   outside the existing sanctioned paths that reads
//!   `std::time::Instant` (enforced by `ekya-lint`'s `wallclock-in-cell`
//!   rule), and it never writes into the fingerprinted JSONL: wall
//!   aggregates go to a `.wall.json` sidecar that no byte-identity
//!   check ever reads.
//!
//! Telemetry is off by default. Every hook begins with a branch on a
//! relaxed atomic ([`enabled`]), so instrumented hot paths cost one
//! predictable-untaken branch when tracing is off — `harness_bench`
//! asserts the enabled-vs-disabled throughput ratio stays within the
//! perf-gate tolerance.
//!
//! The crate is dependency-light on purpose (vendored `serde`,
//! `serde_json`, `parking_lot` only) so every layer — `ekya-core`'s
//! microprofiler and thief scheduler, `ekya-bench`'s grid executor, the
//! `ekya-server` daemon, `ekya-orchestrate`'s supervisor — can emit
//! into the same session. The `ekya_trace` bin (in `ekya-bench`)
//! renders sessions: `summary`, `timeline`, `export --chrome`.

#![warn(missing_docs)]

pub mod chrome;
pub mod hist;
pub mod record;
pub mod recorder;
pub mod timing;
pub mod view;

pub use chrome::chrome_trace;
pub use hist::{bucket_bound, bucket_of, quantile, HIST_BUCKETS};
pub use record::TraceRecord;
pub use recorder::{
    counter_add, enabled, event, flush, hist_observe, merge_traces, parse_trace, render, span,
    start, stop, validate_trace, Ctx, CtxGuard,
};
pub use timing::{wall_gauge_max, wall_span, WallSpan};
pub use view::{summarize, timeline, SummaryRow};
