//! Actor system: named registry with coordinated shutdown.
//!
//! Ekya's modules (scheduler, micro-profiler, per-stream training and
//! inference jobs) are "a collection of logically distributed modules …
//! implemented by a long-running actor" (§5). The [`ActorSystem`] is the
//! registry that owns their lifecycles and shuts them down together.

use crate::actor::{spawn, Actor, ActorError, ActorHandle};
use parking_lot::Mutex;
use std::sync::Arc;

/// A registry owning a set of same-typed actors, addressable by name.
///
/// Heterogeneous deployments hold one system per actor type (the typed
/// mailboxes are the point — no `Any`-casting message bags).
pub struct ActorSystem<A: Actor> {
    actors: Vec<(String, ActorHandle<A>)>,
    stopped: Arc<Mutex<bool>>,
}

impl<A: Actor> Default for ActorSystem<A> {
    fn default() -> Self {
        Self::new()
    }
}

impl<A: Actor> ActorSystem<A> {
    /// Creates an empty system.
    pub fn new() -> Self {
        Self { actors: Vec::new(), stopped: Arc::new(Mutex::new(false)) }
    }

    /// Spawns an actor under `name`. Names must be unique.
    ///
    /// # Panics
    /// Panics on duplicate names — configuration bugs should fail fast.
    pub fn spawn(&mut self, name: impl Into<String>, actor: A) -> &ActorHandle<A> {
        let name = name.into();
        assert!(self.actors.iter().all(|(n, _)| *n != name), "duplicate actor name: {name}");
        let handle = spawn(name.clone(), actor);
        self.actors.push((name, handle));
        &self.actors.last().expect("just pushed").1
    }

    /// Looks up an actor by name.
    pub fn get(&self, name: &str) -> Option<&ActorHandle<A>> {
        self.actors.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// Sends `msg` to the named actor (convenience).
    pub fn tell(&self, name: &str, msg: A::Msg) -> Result<(), ActorError> {
        self.get(name).ok_or(ActorError::Stopped)?.tell(msg)
    }

    /// Asks the named actor (convenience).
    pub fn ask(&self, name: &str, msg: A::Msg) -> Result<A::Reply, ActorError> {
        self.get(name).ok_or(ActorError::Stopped)?.ask(msg)
    }

    /// Number of registered actors.
    pub fn len(&self) -> usize {
        self.actors.len()
    }

    /// True when no actors are registered.
    pub fn is_empty(&self) -> bool {
        self.actors.is_empty()
    }

    /// All registered names, in spawn order.
    pub fn names(&self) -> Vec<&str> {
        self.actors.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Graceful shutdown: every actor drains its mailbox and its thread
    /// is joined.
    pub fn shutdown(mut self) {
        *self.stopped.lock() = true;
        for (_, handle) in self.actors.drain(..) {
            handle.stop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo;

    impl Actor for Echo {
        type Msg = String;
        type Reply = String;

        fn handle(&mut self, msg: String) -> String {
            format!("echo:{msg}")
        }
    }

    #[test]
    fn spawn_and_route_by_name() {
        let mut sys: ActorSystem<Echo> = ActorSystem::new();
        sys.spawn("a", Echo);
        sys.spawn("b", Echo);
        assert_eq!(sys.len(), 2);
        assert_eq!(sys.names(), vec!["a", "b"]);
        assert_eq!(sys.ask("a", "hi".into()).unwrap(), "echo:hi");
        assert_eq!(sys.ask("b", "yo".into()).unwrap(), "echo:yo");
        sys.shutdown();
    }

    #[test]
    fn unknown_name_errors() {
        let sys: ActorSystem<Echo> = ActorSystem::new();
        assert_eq!(sys.ask("ghost", "hi".into()), Err(ActorError::Stopped));
        assert!(sys.is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate actor name")]
    fn duplicate_names_panic() {
        let mut sys: ActorSystem<Echo> = ActorSystem::new();
        sys.spawn("a", Echo);
        sys.spawn("a", Echo);
    }

    #[test]
    fn shutdown_joins_all() {
        let mut sys: ActorSystem<Echo> = ActorSystem::new();
        for i in 0..8 {
            sys.spawn(format!("worker-{i}"), Echo);
        }
        sys.shutdown(); // must not hang
    }
}
