//! Supervised actors: restart-on-panic failure recovery.
//!
//! The paper calls out the actor abstraction's "highly optimized
//! initialization cost and failure recovery" (§5). A supervised actor is
//! built from a *factory* so that when a message handler panics, the
//! supervisor discards the poisoned state, rebuilds the actor, and keeps
//! serving the remaining mailbox — the asker whose request caused the
//! panic observes [`ActorError::Panicked`].

use crate::actor::{Actor, ActorError, ActorHandle, Envelope};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::panic::AssertUnwindSafe;
use std::sync::Arc;

/// Statistics exposed by a supervised actor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SupervisorStats {
    /// Number of times the actor state was rebuilt after a panic.
    pub restarts: u64,
    /// Messages processed successfully.
    pub handled: u64,
}

/// Handle to a supervised actor plus its restart statistics.
pub struct SupervisedHandle<A: Actor> {
    handle: ActorHandle<A>,
    stats: Arc<Mutex<SupervisorStats>>,
}

impl<A: Actor> SupervisedHandle<A> {
    /// Fire-and-forget send (see [`ActorHandle::tell`]).
    pub fn tell(&self, msg: A::Msg) -> Result<(), ActorError> {
        self.handle.tell(msg)
    }

    /// Request/response (see [`ActorHandle::ask`]). A panic inside the
    /// handler surfaces as [`ActorError::Panicked`]; the actor itself
    /// restarts and keeps serving.
    pub fn ask(&self, msg: A::Msg) -> Result<A::Reply, ActorError> {
        self.handle.ask(msg)
    }

    /// Current restart/handled counters.
    pub fn stats(&self) -> SupervisorStats {
        *self.stats.lock()
    }

    /// Stops the actor and joins its thread.
    pub fn stop(self) {
        self.handle.stop()
    }
}

/// Spawns a supervised actor. `factory` builds (and rebuilds) the actor
/// state.
pub fn spawn_supervised<A, F>(name: impl Into<String>, factory: F) -> SupervisedHandle<A>
where
    A: Actor,
    F: Fn() -> A + Send + 'static,
{
    let name = name.into();
    let (tx, rx): (Sender<Envelope<A>>, Receiver<Envelope<A>>) = unbounded();
    let stats = Arc::new(Mutex::new(SupervisorStats::default()));
    let thread_stats = Arc::clone(&stats);
    let thread_name = name.clone();
    let join = std::thread::Builder::new()
        .name(thread_name)
        .spawn(move || {
            'supervise: loop {
                let mut actor = factory();
                loop {
                    let Ok(envelope) = rx.recv() else { break 'supervise };
                    match envelope {
                        Envelope::Stop => break 'supervise,
                        Envelope::Tell(msg) => {
                            let result =
                                std::panic::catch_unwind(AssertUnwindSafe(|| actor.handle(msg)));
                            match result {
                                Ok(_) => thread_stats.lock().handled += 1,
                                Err(_) => {
                                    thread_stats.lock().restarts += 1;
                                    continue 'supervise; // rebuild state
                                }
                            }
                        }
                        Envelope::Ask(msg, reply) => {
                            let result =
                                std::panic::catch_unwind(AssertUnwindSafe(|| actor.handle(msg)));
                            match result {
                                Ok(out) => {
                                    thread_stats.lock().handled += 1;
                                    let _ = reply.send(out);
                                }
                                Err(_) => {
                                    thread_stats.lock().restarts += 1;
                                    drop(reply); // asker sees Panicked
                                    continue 'supervise;
                                }
                            }
                        }
                    }
                }
            }
        })
        .expect("spawn supervised actor thread");
    SupervisedHandle { handle: ActorHandle { sender: tx, join: Some(join), name }, stats }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An actor that panics on demand.
    struct Flaky {
        value: i64,
    }

    enum FlakyMsg {
        Set(i64),
        Get,
        Boom,
    }

    impl Actor for Flaky {
        type Msg = FlakyMsg;
        type Reply = i64;

        fn handle(&mut self, msg: FlakyMsg) -> i64 {
            match msg {
                FlakyMsg::Set(v) => {
                    self.value = v;
                    v
                }
                FlakyMsg::Get => self.value,
                FlakyMsg::Boom => panic!("injected failure"),
            }
        }
    }

    #[test]
    fn survives_panics_and_restarts() {
        let h = spawn_supervised("flaky", || Flaky { value: 0 });
        assert_eq!(h.ask(FlakyMsg::Set(42)).unwrap(), 42);
        // Panic: the asker sees the failure...
        assert_eq!(h.ask(FlakyMsg::Boom), Err(ActorError::Panicked));
        // ...and the actor restarts with fresh state from the factory.
        assert_eq!(h.ask(FlakyMsg::Get).unwrap(), 0);
        let stats = h.stats();
        assert_eq!(stats.restarts, 1);
        assert!(stats.handled >= 2);
        h.stop();
    }

    #[test]
    fn multiple_restarts() {
        let h = spawn_supervised("flaky", || Flaky { value: 7 });
        for _ in 0..5 {
            assert_eq!(h.ask(FlakyMsg::Boom), Err(ActorError::Panicked));
        }
        assert_eq!(h.stats().restarts, 5);
        assert_eq!(h.ask(FlakyMsg::Get).unwrap(), 7);
        h.stop();
    }

    #[test]
    fn tell_panics_do_not_kill_service() {
        let h = spawn_supervised("flaky", || Flaky { value: 1 });
        h.tell(FlakyMsg::Boom).unwrap();
        h.tell(FlakyMsg::Boom).unwrap();
        assert_eq!(h.ask(FlakyMsg::Get).unwrap(), 1);
        assert_eq!(h.stats().restarts, 2);
        h.stop();
    }

    #[test]
    fn queued_messages_survive_restart() {
        let h = spawn_supervised("flaky", || Flaky { value: 0 });
        h.tell(FlakyMsg::Boom).unwrap();
        h.tell(FlakyMsg::Set(9)).unwrap(); // queued behind the panic
        assert_eq!(h.ask(FlakyMsg::Get).unwrap(), 9, "message after panic must be served");
        h.stop();
    }
}
