//! Supervised actors: restart-on-panic failure recovery.
//!
//! The paper calls out the actor abstraction's "highly optimized
//! initialization cost and failure recovery" (§5). A supervised actor is
//! built from a *factory* so that when a message handler panics, the
//! supervisor discards the poisoned state, rebuilds the actor, and keeps
//! serving the remaining mailbox — the asker whose request caused the
//! panic observes [`ActorError::Panicked`].

use crate::actor::{Actor, ActorError, ActorHandle, Address, Envelope};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::panic::AssertUnwindSafe;
use std::sync::Arc;

/// Statistics exposed by a supervised actor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SupervisorStats {
    /// Number of times the actor state was rebuilt after a panic.
    pub restarts: u64,
    /// Messages processed successfully.
    pub handled: u64,
}

/// Handle to a supervised actor plus its restart statistics.
pub struct SupervisedHandle<A: Actor> {
    handle: ActorHandle<A>,
    stats: Arc<Mutex<SupervisorStats>>,
}

impl<A: Actor> SupervisedHandle<A> {
    /// Fire-and-forget send (see [`ActorHandle::tell`]).
    pub fn tell(&self, msg: A::Msg) -> Result<(), ActorError> {
        self.handle.tell(msg)
    }

    /// Request/response (see [`ActorHandle::ask`]). A panic inside the
    /// handler surfaces as [`ActorError::Panicked`]; the actor itself
    /// restarts and keeps serving.
    pub fn ask(&self, msg: A::Msg) -> Result<A::Reply, ActorError> {
        self.handle.ask(msg)
    }

    /// A cloneable address for this actor (see [`ActorHandle::address`]).
    /// Sends through the address get the same supervision: a panic
    /// surfaces as [`ActorError::Panicked`] and the actor restarts.
    pub fn address(&self) -> Address<A> {
        self.handle.address()
    }

    /// Current restart/handled counters.
    pub fn stats(&self) -> SupervisorStats {
        *self.stats.lock()
    }

    /// Stops the actor and joins its thread.
    pub fn stop(self) {
        self.handle.stop()
    }
}

/// Spawns a supervised actor. `factory` builds (and rebuilds) the actor
/// state.
pub fn spawn_supervised<A, F>(name: impl Into<String>, factory: F) -> SupervisedHandle<A>
where
    A: Actor,
    F: Fn() -> A + Send + 'static,
{
    let (tx, rx): (Sender<Envelope<A>>, Receiver<Envelope<A>>) = unbounded();
    supervise_on(name.into(), factory, tx, rx)
}

/// Spawns a supervised actor with a **bounded** mailbox of `capacity`
/// messages (floored at 1): [`spawn_supervised`]'s failure recovery plus
/// [`crate::spawn_bounded`]'s producer backpressure. A restart does not
/// disturb the mailbox — the channel outlives the actor state, so
/// messages queued behind a panic are served in their original order by
/// the rebuilt actor.
pub fn spawn_supervised_bounded<A, F>(
    name: impl Into<String>,
    factory: F,
    capacity: usize,
) -> SupervisedHandle<A>
where
    A: Actor,
    F: Fn() -> A + Send + 'static,
{
    let (tx, rx): (Sender<Envelope<A>>, Receiver<Envelope<A>>) = bounded(capacity.max(1));
    supervise_on(name.into(), factory, tx, rx)
}

/// The shared supervise loop of [`spawn_supervised`] and
/// [`spawn_supervised_bounded`]: rebuild actor state on panic, keep
/// draining the same mailbox.
fn supervise_on<A, F>(
    name: String,
    factory: F,
    tx: Sender<Envelope<A>>,
    rx: Receiver<Envelope<A>>,
) -> SupervisedHandle<A>
where
    A: Actor,
    F: Fn() -> A + Send + 'static,
{
    let stats = Arc::new(Mutex::new(SupervisorStats::default()));
    let thread_stats = Arc::clone(&stats);
    let thread_name = name.clone();
    let join = std::thread::Builder::new()
        .name(thread_name)
        .spawn(move || {
            'supervise: loop {
                let mut actor = factory();
                loop {
                    let Ok(envelope) = rx.recv() else { break 'supervise };
                    match envelope {
                        Envelope::Stop => break 'supervise,
                        Envelope::Tell(msg) => {
                            let result =
                                std::panic::catch_unwind(AssertUnwindSafe(|| actor.handle(msg)));
                            match result {
                                Ok(_) => thread_stats.lock().handled += 1,
                                Err(_) => {
                                    thread_stats.lock().restarts += 1;
                                    continue 'supervise; // rebuild state
                                }
                            }
                        }
                        Envelope::Ask(msg, reply) => {
                            let result =
                                std::panic::catch_unwind(AssertUnwindSafe(|| actor.handle(msg)));
                            match result {
                                Ok(out) => {
                                    thread_stats.lock().handled += 1;
                                    let _ = reply.send(out);
                                }
                                Err(_) => {
                                    thread_stats.lock().restarts += 1;
                                    drop(reply); // asker sees Panicked
                                    continue 'supervise;
                                }
                            }
                        }
                    }
                }
            }
        })
        .expect("spawn supervised actor thread");
    SupervisedHandle { handle: ActorHandle { sender: tx, join: Some(join), name }, stats }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An actor that panics on demand.
    struct Flaky {
        value: i64,
    }

    enum FlakyMsg {
        Set(i64),
        Get,
        Boom,
    }

    impl Actor for Flaky {
        type Msg = FlakyMsg;
        type Reply = i64;

        fn handle(&mut self, msg: FlakyMsg) -> i64 {
            match msg {
                FlakyMsg::Set(v) => {
                    self.value = v;
                    v
                }
                FlakyMsg::Get => self.value,
                FlakyMsg::Boom => panic!("injected failure"),
            }
        }
    }

    #[test]
    fn survives_panics_and_restarts() {
        let h = spawn_supervised("flaky", || Flaky { value: 0 });
        assert_eq!(h.ask(FlakyMsg::Set(42)).unwrap(), 42);
        // Panic: the asker sees the failure...
        assert_eq!(h.ask(FlakyMsg::Boom), Err(ActorError::Panicked));
        // ...and the actor restarts with fresh state from the factory.
        assert_eq!(h.ask(FlakyMsg::Get).unwrap(), 0);
        let stats = h.stats();
        assert_eq!(stats.restarts, 1);
        assert!(stats.handled >= 2);
        h.stop();
    }

    #[test]
    fn multiple_restarts() {
        let h = spawn_supervised("flaky", || Flaky { value: 7 });
        for _ in 0..5 {
            assert_eq!(h.ask(FlakyMsg::Boom), Err(ActorError::Panicked));
        }
        assert_eq!(h.stats().restarts, 5);
        assert_eq!(h.ask(FlakyMsg::Get).unwrap(), 7);
        h.stop();
    }

    #[test]
    fn tell_panics_do_not_kill_service() {
        let h = spawn_supervised("flaky", || Flaky { value: 1 });
        h.tell(FlakyMsg::Boom).unwrap();
        h.tell(FlakyMsg::Boom).unwrap();
        assert_eq!(h.ask(FlakyMsg::Get).unwrap(), 1);
        assert_eq!(h.stats().restarts, 2);
        h.stop();
    }

    #[test]
    fn queued_messages_survive_restart() {
        let h = spawn_supervised("flaky", || Flaky { value: 0 });
        h.tell(FlakyMsg::Boom).unwrap();
        h.tell(FlakyMsg::Set(9)).unwrap(); // queued behind the panic
        assert_eq!(h.ask(FlakyMsg::Get).unwrap(), 9, "message after panic must be served");
        h.stop();
    }

    /// An actor that records every value it was handed, so message order
    /// is observable from the outside.
    struct Recorder {
        log: Arc<Mutex<Vec<i64>>>,
    }

    enum RecorderMsg {
        Record(i64),
        Boom,
    }

    impl Actor for Recorder {
        type Msg = RecorderMsg;
        type Reply = ();

        fn handle(&mut self, msg: RecorderMsg) {
            match msg {
                RecorderMsg::Record(v) => self.log.lock().push(v),
                RecorderMsg::Boom => panic!("injected failure"),
            }
        }
    }

    #[test]
    fn bounded_supervised_preserves_order_across_restart() {
        // The bounded mailbox outlives the actor state: messages queued
        // behind a panic must be served by the rebuilt actor in their
        // original arrival order, with nothing dropped or reordered.
        let log = Arc::new(Mutex::new(Vec::new()));
        let factory_log = Arc::clone(&log);
        let h = spawn_supervised_bounded(
            "recorder",
            move || Recorder { log: Arc::clone(&factory_log) },
            4,
        );
        h.tell(RecorderMsg::Record(1)).unwrap();
        h.tell(RecorderMsg::Record(2)).unwrap();
        h.tell(RecorderMsg::Boom).unwrap();
        h.tell(RecorderMsg::Record(3)).unwrap(); // queued behind the panic
        h.tell(RecorderMsg::Record(4)).unwrap();
        // Synchronise: the ask drains everything queued before it.
        h.ask(RecorderMsg::Record(5)).unwrap();
        assert_eq!(*log.lock(), vec![1, 2, 3, 4, 5], "order must survive the restart");
        assert_eq!(h.stats().restarts, 1);
        h.stop();
    }

    /// A recorder whose `Record` handler waits for one gate token per
    /// message — a deterministic stand-in for a stalled consumer.
    struct GatedRecorder {
        gate: crossbeam::channel::Receiver<()>,
        log: Arc<Mutex<Vec<i64>>>,
    }

    impl Actor for GatedRecorder {
        type Msg = RecorderMsg;
        type Reply = ();

        fn handle(&mut self, msg: RecorderMsg) {
            match msg {
                RecorderMsg::Record(v) => {
                    self.gate.recv().expect("gate token");
                    self.log.lock().push(v);
                }
                RecorderMsg::Boom => panic!("injected failure"),
            }
        }
    }

    /// Coalesced (`try_send_many`) batches must keep both bounded-mailbox
    /// contracts across a supervised restart: the non-blocking send stops
    /// at capacity while the consumer stalls (backpressure stays with the
    /// caller — a capacity-2 mailbox absorbs at most 1 in-handler + 2
    /// queued), and everything eventually delivered — including messages
    /// queued behind a panic — is served in original FIFO order by the
    /// rebuilt actor.
    #[test]
    fn coalesced_sends_preserve_backpressure_and_fifo_across_restart() {
        let (gate_tx, gate_rx) = unbounded::<()>();
        let log = Arc::new(Mutex::new(Vec::new()));
        let factory_log = Arc::clone(&log);
        let h = spawn_supervised_bounded(
            "recorder",
            move || GatedRecorder { gate: gate_rx.clone(), log: Arc::clone(&factory_log) },
            2,
        );
        let addr = h.address();
        let mut batch = vec![
            RecorderMsg::Record(1),
            RecorderMsg::Boom,
            RecorderMsg::Record(2),
            RecorderMsg::Record(3),
            RecorderMsg::Record(4),
            RecorderMsg::Record(5),
        ];
        // Gate closed: the first coalesced send cannot push the whole
        // batch — at most Record(1) into the handler plus two queued.
        let sent = addr.try_send_many(&mut batch).unwrap();
        assert!(sent <= 3, "sent {sent} messages past a stalled capacity-2 mailbox");
        assert_eq!(batch.len(), 6 - sent, "unsent tail stays with the caller");
        // Open the gate (one token per Record, Boom takes none) and keep
        // coalescing the tail through; the panic + restart happens
        // mid-batch.
        for _ in 0..5 {
            gate_tx.send(()).unwrap();
        }
        while !batch.is_empty() {
            if addr.try_send_many(&mut batch).unwrap() == 0 {
                std::thread::yield_now();
            }
        }
        // Synchronise: the ask drains everything queued before it.
        gate_tx.send(()).unwrap();
        h.ask(RecorderMsg::Record(6)).unwrap();
        assert_eq!(*log.lock(), vec![1, 2, 3, 4, 5, 6], "FIFO must survive the restart");
        assert_eq!(h.stats().restarts, 1, "the Boom mid-batch restarts the actor once");
        h.stop();
    }

    #[test]
    fn bounded_supervised_panics_surface_to_asker() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let factory_log = Arc::clone(&log);
        let h = spawn_supervised_bounded(
            "recorder",
            move || Recorder { log: Arc::clone(&factory_log) },
            2,
        );
        assert_eq!(h.ask(RecorderMsg::Boom), Err(ActorError::Panicked));
        h.ask(RecorderMsg::Record(1)).unwrap();
        assert_eq!(*log.lock(), vec![1]);
        assert_eq!(h.stats().restarts, 1);
        h.stop();
    }

    #[test]
    fn supervised_address_routes_and_survives_panics() {
        let h = spawn_supervised("flaky", || Flaky { value: 3 });
        let addr = h.address();
        assert_eq!(addr.ask(FlakyMsg::Boom), Err(ActorError::Panicked));
        assert_eq!(addr.ask(FlakyMsg::Get).unwrap(), 3, "address keeps working after restart");
        assert_eq!(h.stats().restarts, 1);
        h.stop();
    }
}
