//! Core actor abstraction: long-running worker threads with typed
//! mailboxes.
//!
//! Ekya's implementation runs its scheduler, micro-profiler and
//! training/inference jobs as long-running Ray actors (§5): "a benefit of
//! using the actor abstraction is its highly optimized initialization
//! cost and failure recovery", and request queueing while a model's
//! weights reload comes for free because messages wait in the mailbox.
//! This module is the same abstraction on OS threads + crossbeam
//! channels — CPU-bound work belongs on threads, not an async runtime.

use crossbeam::channel::{bounded, unbounded, Receiver, Sender, TrySendError};
use std::thread::JoinHandle;

/// A message-handling actor. One instance runs on one thread; `handle`
/// is invoked for each message in arrival order.
pub trait Actor: Send + 'static {
    /// Message type.
    type Msg: Send + 'static;
    /// Reply type (use `()` for fire-and-forget actors).
    type Reply: Send + 'static;

    /// Processes one message.
    fn handle(&mut self, msg: Self::Msg) -> Self::Reply;
}

/// Errors from interacting with an actor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActorError {
    /// The actor's mailbox is closed (actor stopped).
    Stopped,
    /// The actor panicked while processing this request.
    Panicked,
}

impl std::fmt::Display for ActorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ActorError::Stopped => write!(f, "actor stopped"),
            ActorError::Panicked => write!(f, "actor panicked"),
        }
    }
}

impl std::error::Error for ActorError {}

pub(crate) enum Envelope<A: Actor> {
    Tell(A::Msg),
    Ask(A::Msg, Sender<A::Reply>),
    Stop,
}

/// An in-flight reply from [`Address::ask_deferred`]: the request is
/// already queued with the actor; [`Pending::wait`] blocks for the
/// reply. Splitting *send* from *wait* lets one thread fan a request
/// out to several actors and only then start waiting, so the actors
/// work concurrently instead of serialising behind one blocking `ask`
/// at a time.
#[must_use = "a deferred ask does nothing until waited on"]
pub struct Pending<R> {
    rx: Receiver<R>,
}

impl<R> Pending<R> {
    /// Blocks until the actor replies. A dropped reply sender means the
    /// actor died (or panicked) while holding the request.
    pub fn wait(self) -> Result<R, ActorError> {
        self.rx.recv().map_err(|_| ActorError::Panicked)
    }
}

/// Shared body of [`Address::try_send_many`] / [`ActorHandle::try_send_many`].
fn try_send_many_on<A: Actor>(
    sender: &Sender<Envelope<A>>,
    batch: &mut Vec<A::Msg>,
) -> Result<usize, ActorError> {
    let mut pending = std::mem::take(batch).into_iter();
    let mut sent = 0usize;
    let mut result = Ok(());
    for msg in pending.by_ref() {
        match sender.try_send(Envelope::Tell(msg)) {
            Ok(()) => sent += 1,
            Err(TrySendError::Full(env)) => {
                if let Envelope::Tell(msg) = env {
                    batch.push(msg);
                }
                break;
            }
            Err(TrySendError::Disconnected(env)) => {
                if let Envelope::Tell(msg) = env {
                    batch.push(msg);
                }
                result = Err(ActorError::Stopped);
                break;
            }
        }
    }
    batch.extend(pending);
    result.map(|()| sent)
}

/// A cloneable, lifecycle-free address of an actor: lets other actors (or
/// threads) send messages without owning the actor's join handle. Sends
/// fail with [`ActorError::Stopped`] once the actor shuts down.
pub struct Address<A: Actor> {
    sender: Sender<Envelope<A>>,
    name: String,
}

impl<A: Actor> Clone for Address<A> {
    fn clone(&self) -> Self {
        Self { sender: self.sender.clone(), name: self.name.clone() }
    }
}

impl<A: Actor> Address<A> {
    /// The actor's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Fire-and-forget send (see [`ActorHandle::tell`]).
    pub fn tell(&self, msg: A::Msg) -> Result<(), ActorError> {
        self.sender.send(Envelope::Tell(msg)).map_err(|_| ActorError::Stopped)
    }

    /// Request/response (see [`ActorHandle::ask`]).
    pub fn ask(&self, msg: A::Msg) -> Result<A::Reply, ActorError> {
        let (tx, rx) = bounded(1);
        self.sender.send(Envelope::Ask(msg, tx)).map_err(|_| ActorError::Stopped)?;
        rx.recv().map_err(|_| ActorError::Panicked)
    }

    /// Queues a request and returns immediately with a [`Pending`] reply
    /// slot; [`Pending::wait`] blocks for the answer. Backpressure is
    /// unchanged — on a full bounded mailbox the *send* blocks, exactly
    /// like [`Address::ask`].
    pub fn ask_deferred(&self, msg: A::Msg) -> Result<Pending<A::Reply>, ActorError> {
        let (tx, rx) = bounded(1);
        self.sender.send(Envelope::Ask(msg, tx)).map_err(|_| ActorError::Stopped)?;
        Ok(Pending { rx })
    }

    /// Fire-and-forget a *batch*: sends messages from the front of
    /// `batch`, in order, for as long as the mailbox accepts them
    /// **without blocking**, removing the sent prefix from `batch`.
    /// Returns the number sent; the unsent tail stays in `batch` (FIFO
    /// intact), so the caller keeps the backpressure decision — block
    /// via [`Address::tell`], retry later, or shed load.
    pub fn try_send_many(&self, batch: &mut Vec<A::Msg>) -> Result<usize, ActorError> {
        try_send_many_on(&self.sender, batch)
    }
}

/// Handle for sending messages to a spawned actor.
pub struct ActorHandle<A: Actor> {
    pub(crate) sender: Sender<Envelope<A>>,
    pub(crate) join: Option<JoinHandle<()>>,
    pub(crate) name: String,
}

impl<A: Actor> ActorHandle<A> {
    /// The actor's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// A cloneable address for this actor (e.g. to hand to another
    /// actor), independent of the handle's lifecycle ownership.
    pub fn address(&self) -> Address<A> {
        Address { sender: self.sender.clone(), name: self.name.clone() }
    }

    /// Fire-and-forget send. Messages queue in arrival order — including
    /// while the actor is busy with a long request (e.g. reloading model
    /// weights, §5).
    pub fn tell(&self, msg: A::Msg) -> Result<(), ActorError> {
        self.sender.send(Envelope::Tell(msg)).map_err(|_| ActorError::Stopped)
    }

    /// Request/response: blocks until the actor replies.
    pub fn ask(&self, msg: A::Msg) -> Result<A::Reply, ActorError> {
        let (tx, rx) = bounded(1);
        self.sender.send(Envelope::Ask(msg, tx)).map_err(|_| ActorError::Stopped)?;
        // A dropped reply sender means the actor died (or panicked) while
        // holding our request.
        rx.recv().map_err(|_| ActorError::Panicked)
    }

    /// Queues a request without waiting (see [`Address::ask_deferred`]).
    pub fn ask_deferred(&self, msg: A::Msg) -> Result<Pending<A::Reply>, ActorError> {
        let (tx, rx) = bounded(1);
        self.sender.send(Envelope::Ask(msg, tx)).map_err(|_| ActorError::Stopped)?;
        Ok(Pending { rx })
    }

    /// Non-blocking batch send (see [`Address::try_send_many`]).
    pub fn try_send_many(&self, batch: &mut Vec<A::Msg>) -> Result<usize, ActorError> {
        try_send_many_on(&self.sender, batch)
    }

    /// Number of messages waiting in the mailbox.
    pub fn mailbox_len(&self) -> usize {
        self.sender.len()
    }

    /// Stops the actor after it drains messages queued before this call,
    /// and joins its thread.
    pub fn stop(mut self) {
        let _ = self.sender.send(Envelope::Stop);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl<A: Actor> Drop for ActorHandle<A> {
    fn drop(&mut self) {
        // Graceful: ask the thread to stop and detach.
        let _ = self.sender.send(Envelope::Stop);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

/// Spawns `actor` on a dedicated thread with an unbounded mailbox.
pub fn spawn<A: Actor>(name: impl Into<String>, actor: A) -> ActorHandle<A> {
    let (tx, rx): (Sender<Envelope<A>>, Receiver<Envelope<A>>) = unbounded();
    spawn_on(name.into(), actor, tx, rx)
}

/// Spawns `actor` on a dedicated thread with a **bounded** mailbox of
/// `capacity` messages (floored at 1).
///
/// Backpressure, not buffering: a `tell` or `ask` issued while the
/// mailbox is full *blocks the producer* until the actor drains a slot.
/// This is what keeps a fast producer (e.g. a load generator pumping
/// inference batches) from growing an unbounded queue behind a slow
/// consumer — the §5 concern that a busy trainer must not let the
/// inference queue eat all memory. Message order is unchanged: arrival
/// order, exactly as with [`spawn`].
pub fn spawn_bounded<A: Actor>(
    name: impl Into<String>,
    actor: A,
    capacity: usize,
) -> ActorHandle<A> {
    let (tx, rx): (Sender<Envelope<A>>, Receiver<Envelope<A>>) = bounded(capacity.max(1));
    spawn_on(name.into(), actor, tx, rx)
}

/// The shared dispatch loop of [`spawn`] and [`spawn_bounded`]: one
/// thread, messages handled strictly in arrival order.
fn spawn_on<A: Actor>(
    name: String,
    mut actor: A,
    tx: Sender<Envelope<A>>,
    rx: Receiver<Envelope<A>>,
) -> ActorHandle<A> {
    let thread_name = name.clone();
    let join = std::thread::Builder::new()
        .name(thread_name)
        .spawn(move || {
            while let Ok(envelope) = rx.recv() {
                match envelope {
                    Envelope::Tell(msg) => {
                        let _ = actor.handle(msg);
                    }
                    Envelope::Ask(msg, reply) => {
                        let out = actor.handle(msg);
                        let _ = reply.send(out);
                    }
                    Envelope::Stop => break,
                }
            }
        })
        .expect("spawn actor thread");
    ActorHandle { sender: tx, join: Some(join), name }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    struct Counter {
        count: u64,
    }

    enum CounterMsg {
        Add(u64),
        Get,
        SlowReload(Duration),
    }

    impl Actor for Counter {
        type Msg = CounterMsg;
        type Reply = u64;

        fn handle(&mut self, msg: CounterMsg) -> u64 {
            match msg {
                CounterMsg::Add(n) => {
                    self.count += n;
                    self.count
                }
                CounterMsg::Get => self.count,
                CounterMsg::SlowReload(d) => {
                    // Stands in for "loading new model weights" (§5).
                    std::thread::sleep(d);
                    self.count
                }
            }
        }
    }

    #[test]
    fn ask_roundtrip() {
        let h = spawn("counter", Counter { count: 0 });
        assert_eq!(h.ask(CounterMsg::Add(5)).unwrap(), 5);
        assert_eq!(h.ask(CounterMsg::Add(3)).unwrap(), 8);
        assert_eq!(h.ask(CounterMsg::Get).unwrap(), 8);
        h.stop();
    }

    #[test]
    fn tell_is_processed_in_order() {
        let h = spawn("counter", Counter { count: 0 });
        for _ in 0..100 {
            h.tell(CounterMsg::Add(1)).unwrap();
        }
        assert_eq!(h.ask(CounterMsg::Get).unwrap(), 100);
        h.stop();
    }

    #[test]
    fn requests_queue_during_slow_reload() {
        // Messages sent while the actor is busy reloading must queue and
        // then be served — the §5 checkpoint-reload behaviour.
        let h = spawn("model", Counter { count: 7 });
        h.tell(CounterMsg::SlowReload(Duration::from_millis(100))).unwrap();
        let start = std::time::Instant::now();
        // This ask arrives during the reload and waits its turn.
        assert_eq!(h.ask(CounterMsg::Get).unwrap(), 7);
        assert!(start.elapsed() >= Duration::from_millis(80), "should have queued");
        h.stop();
    }

    #[test]
    fn stop_after_drain() {
        let h = spawn("counter", Counter { count: 0 });
        h.tell(CounterMsg::Add(2)).unwrap();
        h.tell(CounterMsg::Add(2)).unwrap();
        h.stop(); // must not lose the queued adds
                  // (No way to observe post-stop; absence of deadlock is the check.)
    }

    #[test]
    fn ask_after_stop_fails() {
        let h = spawn("counter", Counter { count: 0 });
        let sender = h.sender.clone();
        h.stop();
        // `stop` joins the actor thread, which owns the receiver, so the
        // channel is disconnected by the time `stop` returns.
        assert!(sender.send(Envelope::Tell(CounterMsg::Add(1))).is_err());
    }

    #[test]
    fn mailbox_length_visible() {
        let h = spawn("model", Counter { count: 0 });
        h.tell(CounterMsg::SlowReload(Duration::from_millis(50))).unwrap();
        h.tell(CounterMsg::Add(1)).unwrap();
        h.tell(CounterMsg::Add(1)).unwrap();
        // At least one message should still be queued while the reload
        // runs (timing-tolerant: >= 0 always true, check it drains).
        assert_eq!(h.ask(CounterMsg::Get).unwrap(), 2);
        assert_eq!(h.mailbox_len(), 0);
        h.stop();
    }

    #[test]
    fn address_is_cloneable_and_routes() {
        let h = spawn("counter", Counter { count: 0 });
        let addr = h.address();
        let addr2 = addr.clone();
        assert_eq!(addr.name(), "counter");
        addr.tell(CounterMsg::Add(2)).unwrap();
        assert_eq!(addr2.ask(CounterMsg::Get).unwrap(), 2);
        h.stop();
        // After stop, the address reports the actor as gone.
        assert_eq!(addr2.tell(CounterMsg::Add(1)), Err(ActorError::Stopped));
    }

    /// An actor that must be explicitly released (one token per message)
    /// before it processes anything — a deterministic stand-in for "the
    /// consumer is busy" without sleeping and hoping.
    struct Gated {
        release: Receiver<()>,
        seen: Vec<u64>,
    }

    enum GatedMsg {
        Record(u64),
        Seen,
    }

    impl Actor for Gated {
        type Msg = GatedMsg;
        type Reply = Vec<u64>;

        fn handle(&mut self, msg: GatedMsg) -> Vec<u64> {
            match msg {
                GatedMsg::Record(v) => {
                    self.release.recv().expect("gate token");
                    self.seen.push(v);
                    Vec::new()
                }
                GatedMsg::Seen => self.seen.clone(),
            }
        }
    }

    #[test]
    fn bounded_mailbox_blocks_producer_instead_of_growing() {
        // Backpressure contract: with a capacity-2 mailbox and a stalled
        // consumer, a producer pumping 10 messages must get stuck after
        // at most 3 sends (1 in the handler + 2 queued) — the queue must
        // NOT absorb all 10. Releasing the gate then drains everything,
        // in order.
        use std::sync::atomic::{AtomicU64, Ordering};

        let (gate_tx, gate_rx) = unbounded::<()>();
        let h = spawn_bounded("gated", Gated { release: gate_rx, seen: Vec::new() }, 2);
        let addr = h.address();
        let sent = std::sync::Arc::new(AtomicU64::new(0));
        let sent_in_producer = std::sync::Arc::clone(&sent);
        let producer = std::thread::spawn(move || {
            for v in 0..10 {
                addr.tell(GatedMsg::Record(v)).unwrap();
                sent_in_producer.fetch_add(1, Ordering::SeqCst);
            }
        });
        // Give the producer ample time to run ahead if the mailbox were
        // unbounded; with the gate closed it can complete at most 3 sends.
        std::thread::sleep(Duration::from_millis(150));
        let stuck_at = sent.load(Ordering::SeqCst);
        assert!(stuck_at <= 3, "producer sent {stuck_at} messages past a full capacity-2 mailbox");
        // Release one token per message: the producer unblocks and every
        // message is processed in arrival order.
        for _ in 0..10 {
            gate_tx.send(()).unwrap();
        }
        producer.join().unwrap();
        let seen = h.ask(GatedMsg::Seen).unwrap();
        assert_eq!(seen, (0..10).collect::<Vec<u64>>(), "order must be preserved");
        h.stop();
    }

    /// `try_send_many` on a full bounded mailbox must stop at the first
    /// rejection — never block, never reorder — leaving the unsent tail
    /// with the caller, and the tail must drain FIFO once the consumer
    /// frees up.
    #[test]
    fn try_send_many_respects_backpressure_and_fifo() {
        let (gate_tx, gate_rx) = unbounded::<()>();
        let h = spawn_bounded("gated", Gated { release: gate_rx, seen: Vec::new() }, 2);
        let addr = h.address();
        let mut batch: Vec<GatedMsg> = (0..10).map(GatedMsg::Record).collect();
        // Stalled consumer: at most 1 in the handler + 2 queued slots.
        let sent = addr.try_send_many(&mut batch).unwrap();
        assert!(sent <= 3, "sent {sent} messages past a full capacity-2 mailbox");
        assert_eq!(batch.len(), 10 - sent, "unsent tail stays with the caller");
        // Release the gate and push the tail through blocking tells.
        for _ in 0..10 {
            gate_tx.send(()).unwrap();
        }
        for msg in batch.drain(..) {
            addr.tell(msg).unwrap();
        }
        let seen = h.ask(GatedMsg::Seen).unwrap();
        assert_eq!(seen, (0..10).collect::<Vec<u64>>(), "coalesced send must stay FIFO");
        h.stop();
    }

    #[test]
    fn try_send_many_reports_stopped_actor() {
        let h = spawn_bounded("counter", Counter { count: 0 }, 4);
        let addr = h.address();
        h.stop();
        let mut batch = vec![CounterMsg::Add(1), CounterMsg::Add(2)];
        assert_eq!(addr.try_send_many(&mut batch), Err(ActorError::Stopped));
        assert_eq!(batch.len(), 2, "nothing is silently dropped on a dead mailbox");
    }

    /// Deferred asks let one producer put work on several actors before
    /// waiting on any reply — and each `Pending` resolves to its own
    /// actor's answer.
    #[test]
    fn ask_deferred_overlaps_requests() {
        let a = spawn("counter-a", Counter { count: 10 });
        let b = spawn("counter-b", Counter { count: 20 });
        let pa = a.ask_deferred(CounterMsg::Add(1)).unwrap();
        let pb = b.address().ask_deferred(CounterMsg::Add(2)).unwrap();
        assert_eq!(pb.wait().unwrap(), 22);
        assert_eq!(pa.wait().unwrap(), 11);
        a.stop();
        b.stop();
    }

    #[test]
    fn bounded_capacity_is_floored_at_one() {
        let h = spawn_bounded("counter", Counter { count: 0 }, 0);
        assert_eq!(h.ask(CounterMsg::Add(1)).unwrap(), 1);
        h.stop();
    }

    #[test]
    fn address_usable_from_other_threads() {
        let h = spawn("counter", Counter { count: 0 });
        let addr = h.address();
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let a = addr.clone();
                std::thread::spawn(move || {
                    for _ in 0..25 {
                        a.tell(CounterMsg::Add(1)).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.ask(CounterMsg::Get).unwrap(), 100);
        h.stop();
    }
}
