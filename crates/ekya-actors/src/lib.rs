#![warn(missing_docs)]

//! # ekya-actors — actor runtime substrate for the Ekya reproduction
//!
//! The paper implements Ekya's modules — scheduler, micro-profiler and
//! per-stream training/inference jobs — as long-running Ray actors (§5).
//! This crate is the dependency-light Rust stand-in: typed mailboxes over
//! crossbeam channels on OS threads (CPU-bound work does not belong on an
//! async runtime), `ask`/`tell` messaging, request queueing while an
//! actor is busy (the §5 model-reload behaviour), and supervised restart
//! on panic (the §5 "failure recovery").
//!
//! Implemented: typed actors, blocking ask, ordered mailboxes, panic
//! supervision with state rebuild, named registries with coordinated
//! shutdown, and backpressure-bounded mailboxes ([`spawn_bounded`],
//! [`spawn_supervised_bounded`]) so a slow consumer (a trainer hogging
//! its thread) blocks producers instead of growing an unbounded queue.
//! Omitted: distribution across machines, actor migration — neither is
//! needed for a single edge server.

pub mod actor;
pub mod supervisor;
pub mod system;

pub use actor::{spawn, spawn_bounded, Actor, ActorError, ActorHandle, Address, Pending};
pub use supervisor::{
    spawn_supervised, spawn_supervised_bounded, SupervisedHandle, SupervisorStats,
};
pub use system::ActorSystem;
