//! One-shot training comparisons (Fig 2b).
//!
//! The motivation experiment: on one stream, compare per-window accuracy
//! of (1) a model continuously retrained on the most recent data, (2) a
//! model trained once on the stream's first windows, and (3) a model
//! trained once on *other* streams ("other cities" in the Cityscapes
//! analysis). The paper reports continuous retraining winning by up to
//! 22%.

use ekya_core::{RetrainConfig, RetrainExecution, TrainHyper};
use ekya_nn::cost::CostModel;
use ekya_nn::data::{DataView, Sample};
use ekya_nn::golden::{distill_labels, OracleTeacher};
use ekya_nn::mlp::{Mlp, MlpArch};
use ekya_video::{DatasetKind, DatasetSpec, VideoDataset};
use serde::{Deserialize, Serialize};

/// Per-window accuracies of the three training options.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig2bResult {
    /// Evaluated window indices (the second half of the stream).
    pub windows: Vec<usize>,
    /// Continuous retraining on the most recent window's data.
    pub continuous: Vec<f64>,
    /// Trained once on the first half of this stream's windows.
    pub once_first_half: Vec<f64>,
    /// Trained once on other streams' data.
    pub other_streams: Vec<f64>,
}

impl Fig2bResult {
    /// Maximum advantage of continuous retraining over the best one-shot
    /// option in any window (the paper's "up to 22%" number).
    pub fn max_advantage(&self) -> f64 {
        self.windows
            .iter()
            .enumerate()
            .map(|(i, _)| self.continuous[i] - self.once_first_half[i].max(self.other_streams[i]))
            .fold(f64::MIN, f64::max)
    }

    /// Mean advantage over the evaluation windows.
    pub fn mean_advantage(&self) -> f64 {
        let n = self.windows.len().max(1) as f64;
        self.windows
            .iter()
            .enumerate()
            .map(|(i, _)| self.continuous[i] - self.once_first_half[i].max(self.other_streams[i]))
            .sum::<f64>()
            / n
    }
}

fn full_config() -> RetrainConfig {
    RetrainConfig {
        epochs: 30,
        batch_size: 32,
        last_layer_neurons: 16,
        layers_trained: 3,
        data_fraction: 1.0,
    }
}

fn train_on(base: &Mlp, pool: &[Sample], num_classes: usize, seed: u64) -> Mlp {
    let mut exec =
        RetrainExecution::new(base, pool, full_config(), num_classes, TrainHyper::default(), seed);
    exec.run_to_completion();
    let mut m = exec.model().clone();
    m.set_layers_trained(usize::MAX);
    m
}

/// Runs the Fig 2b experiment on `num_windows` windows of one stream of
/// `kind` (evaluating the second half).
pub fn run_fig2b(
    kind: DatasetKind,
    num_windows: usize,
    seed: u64,
    _cost: &CostModel,
) -> Fig2bResult {
    assert!(num_windows >= 4, "need at least 4 windows");
    let ds = VideoDataset::generate(DatasetSpec::new(kind, num_windows, seed));
    let half = num_windows / 2;
    let num_classes = ds.num_classes;
    let mut teacher = OracleTeacher::new(0.02, num_classes, seed ^ 0xC0);

    let base = Mlp::new(MlpArch::edge(ds.feature_dim, num_classes, 16), seed);

    // (2) Trained once on the stream's first half.
    let first_half_pool = distill_labels(&mut teacher, &ds.pooled_train_data(0..half));
    let once_model = train_on(&base, &first_half_pool, num_classes, seed ^ 1);

    // (3) Trained once on other streams ("other cities"): three other
    // streams of the same kind with different seeds.
    let mut other_pool = Vec::new();
    for i in 1..=3u64 {
        let other =
            VideoDataset::generate(DatasetSpec::new(kind, half, seed.wrapping_add(i * 5000)));
        other_pool.extend(other.pooled_train_data(0..half));
    }
    let other_pool = distill_labels(&mut teacher, &other_pool);
    let other_model = train_on(&base, &other_pool, num_classes, seed ^ 2);

    // (1) Continuous: warm on the first half, then retrain per window on
    // the previous window's data.
    let mut continuous_model = train_on(&base, &first_half_pool, num_classes, seed ^ 3);

    let mut result = Fig2bResult {
        windows: Vec::new(),
        continuous: Vec::new(),
        once_first_half: Vec::new(),
        other_streams: Vec::new(),
    };
    for w_idx in half..num_windows {
        // Retrain continuous on the most recent (previous) window.
        let prev = distill_labels(&mut teacher, &ds.window(w_idx - 1).train_pool);
        continuous_model =
            train_on(&continuous_model, &prev, num_classes, seed.wrapping_add(w_idx as u64));

        let val = DataView::new(&ds.window(w_idx).val, num_classes);
        result.windows.push(w_idx);
        result.continuous.push(continuous_model.accuracy(val));
        result.once_first_half.push(once_model.accuracy(val));
        result.other_streams.push(other_model.accuracy(val));
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn continuous_wins_on_average() {
        let r = run_fig2b(DatasetKind::Cityscapes, 10, 81, &CostModel::default());
        assert_eq!(r.windows.len(), 5);
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&r.continuous) > mean(&r.once_first_half),
            "continuous {:.3} must beat one-shot {:.3}",
            mean(&r.continuous),
            mean(&r.once_first_half)
        );
        assert!(
            mean(&r.continuous) > mean(&r.other_streams),
            "continuous {:.3} must beat other-streams {:.3}",
            mean(&r.continuous),
            mean(&r.other_streams)
        );
        assert!(r.max_advantage() > 0.0);
    }

    #[test]
    fn other_streams_training_is_weakest_or_close() {
        // Training on other cities should generally not beat training on
        // this stream's own history (Fig 2b's ordering).
        let r = run_fig2b(DatasetKind::Cityscapes, 10, 82, &CostModel::default());
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean(&r.other_streams) <= mean(&r.once_first_half) + 0.05);
    }
}
