//! Factor-analysis ablations (Fig 8).
//!
//! * `Ekya-FixedRes` — keeps the micro-profiler's configuration selection
//!   but replaces the thief allocation with the uniform baseline's static
//!   partition.
//! * `Ekya-FixedConfig` — keeps the thief allocation but pins every
//!   stream to one fixed retraining configuration.

use ekya_core::{
    pick_configs_fixed, thief_schedule, InferenceConfig, PlannedRetrain, Policy, PolicyCtx,
    RetrainChoice, RetrainConfig, SchedulerParams, StreamInput, StreamPlan, WindowPlan,
};

fn fallback_infer() -> InferenceConfig {
    InferenceConfig { frame_sampling: 0.05, resolution: 0.5 }
}

/// Ekya without the thief allocator: static 50/50 partition per stream,
/// micro-profiled configuration selection.
#[derive(Debug, Clone)]
pub struct EkyaFixedRes {
    params: SchedulerParams,
    /// Fraction of GPUs for inference (matches the uniform variant it is
    /// compared against).
    pub inference_share: f64,
}

impl EkyaFixedRes {
    /// Creates the ablation with the paper's default 50% split.
    pub fn new(params: SchedulerParams, inference_share: f64) -> Self {
        Self { params, inference_share: inference_share.clamp(0.0, 1.0) }
    }
}

impl Policy for EkyaFixedRes {
    fn name(&self) -> String {
        "Ekya-FixedRes".to_string()
    }

    fn plan_window(&mut self, ctx: &PolicyCtx<'_>) -> WindowPlan {
        let n = ctx.streams.len().max(1) as f64;
        let infer_gpus = ctx.total_gpus * self.inference_share / n;
        let train_gpus = ctx.total_gpus * (1.0 - self.inference_share) / n;
        let inputs: Vec<StreamInput<'_>> = ctx
            .streams
            .iter()
            .map(|s| StreamInput {
                id: s.id,
                serving_accuracy: s.serving_accuracy,
                retrain_profiles: s.retrain_profiles,
                infer_profiles: s.infer_profiles,
                in_progress: None,
            })
            .collect();
        let alloc: Vec<(f64, f64)> = vec![(infer_gpus, train_gpus); ctx.streams.len()];
        let schedule = pick_configs_fixed(&inputs, &alloc, ctx.window_secs, &self.params);
        WindowPlan {
            streams: schedule
                .decisions
                .iter()
                .enumerate()
                .map(|(i, d)| {
                    let s = &ctx.streams[i];
                    StreamPlan {
                        retrain: match d.retrain {
                            RetrainChoice::Start { profile_idx } => Some(PlannedRetrain {
                                config: s.retrain_profiles[profile_idx].config,
                                gpus: train_gpus,
                            }),
                            _ => None,
                        },
                        infer_config: d
                            .infer_profile_idx
                            .map(|idx| s.infer_profiles[idx].config)
                            .unwrap_or_else(fallback_infer),
                        infer_gpus,
                    }
                })
                .collect(),
        }
    }
}

/// Ekya without configuration adaptation: thief allocation over a single
/// pinned retraining configuration.
#[derive(Debug, Clone)]
pub struct EkyaFixedConfig {
    params: SchedulerParams,
    /// The pinned configuration.
    pub config: RetrainConfig,
}

impl EkyaFixedConfig {
    /// Creates the ablation.
    pub fn new(params: SchedulerParams, config: RetrainConfig) -> Self {
        Self { params, config }
    }
}

impl Policy for EkyaFixedConfig {
    fn name(&self) -> String {
        "Ekya-FixedConfig".to_string()
    }

    fn plan_window(&mut self, ctx: &PolicyCtx<'_>) -> WindowPlan {
        // Restrict every stream's candidates to the pinned configuration
        // (the micro-profile for it is still used for cost/accuracy).
        let filtered: Vec<Vec<ekya_core::RetrainProfile>> = ctx
            .streams
            .iter()
            .map(|s| {
                s.retrain_profiles.iter().filter(|p| p.config == self.config).cloned().collect()
            })
            .collect();
        let inputs: Vec<StreamInput<'_>> = ctx
            .streams
            .iter()
            .enumerate()
            .map(|(i, s)| StreamInput {
                id: s.id,
                serving_accuracy: s.serving_accuracy,
                retrain_profiles: &filtered[i],
                infer_profiles: s.infer_profiles,
                in_progress: None,
            })
            .collect();
        let schedule = thief_schedule(&inputs, ctx.window_secs, &self.params);
        WindowPlan {
            streams: schedule
                .decisions
                .iter()
                .enumerate()
                .map(|(i, d)| {
                    let s = &ctx.streams[i];
                    StreamPlan {
                        retrain: match d.retrain {
                            RetrainChoice::Start { profile_idx } => Some(PlannedRetrain {
                                config: filtered[i][profile_idx].config,
                                gpus: d.train_gpus,
                            }),
                            _ => None,
                        },
                        infer_config: d
                            .infer_profile_idx
                            .map(|idx| s.infer_profiles[idx].config)
                            .unwrap_or_else(fallback_infer),
                        infer_gpus: d.infer_gpus,
                    }
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ekya_core::default_retrain_grid;
    use ekya_sim::{run_windows, RunnerConfig};
    use ekya_video::{DatasetKind, StreamSet};

    #[test]
    fn fixed_res_uses_static_partition() {
        let streams = StreamSet::generate(DatasetKind::Cityscapes, 2, 2, 51);
        let mut policy = EkyaFixedRes::new(SchedulerParams::new(2.0), 0.5);
        let cfg = RunnerConfig { total_gpus: 2.0, seed: 2, ..RunnerConfig::default() };
        let report = run_windows(&mut policy, &streams, &cfg, 2);
        for w in &report.windows {
            for s in &w.streams {
                assert!((s.infer_gpus - 0.5).abs() < 1e-9);
            }
        }
        assert_eq!(report.policy, "Ekya-FixedRes");
    }

    #[test]
    fn fixed_config_only_uses_pinned_config() {
        let streams = StreamSet::generate(DatasetKind::Cityscapes, 2, 3, 52);
        let pinned = default_retrain_grid()[7];
        let mut policy = EkyaFixedConfig::new(SchedulerParams::new(2.0), pinned);
        let cfg = RunnerConfig { total_gpus: 2.0, seed: 3, ..RunnerConfig::default() };
        let report = run_windows(&mut policy, &streams, &cfg, 3);
        for w in &report.windows {
            for s in &w.streams {
                if let Some(c) = s.retrain_config {
                    assert_eq!(c, pinned, "only the pinned config may run");
                }
            }
        }
    }
}
