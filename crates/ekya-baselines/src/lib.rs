#![warn(missing_docs)]

//! # ekya-baselines — the paper's comparison points
//!
//! Every scheduler and alternative design Ekya is evaluated against:
//!
//! * [`uniform`] — the uniform scheduler (§6.1): fixed retraining
//!   configuration + static inference/training partition, with hold-out
//!   Pareto selection of Config 1 / Config 2;
//! * [`ablations`] — `Ekya-FixedRes` and `Ekya-FixedConfig` (Fig 8);
//! * [`cloud`] — cloud-offload retraining over constrained links
//!   (Table 4);
//! * [`model_cache`] — cached-model reuse by nearest class distribution
//!   (§6.5);
//! * [`oneshot`] — the one-shot training options of the motivation
//!   experiment (Fig 2b);
//! * [`oracle`] — the exact accuracy-optimal scheduler (Fig 4) via the
//!   knapsack DP;
//! * [`registry`] — declarative `PolicySpec` constructors building
//!   `Box<dyn Policy + Send>` for the parallel experiment harness.

pub mod ablations;
pub mod cloud;
pub mod model_cache;
pub mod oneshot;
pub mod oracle;
pub mod registry;
pub mod uniform;

pub use ablations::{EkyaFixedConfig, EkyaFixedRes};
pub use cloud::{run_cloud_retraining, CloudRunConfig};
pub use model_cache::run_model_cache;
pub use oneshot::{run_fig2b, Fig2bResult};
pub use oracle::OraclePolicy;
pub use registry::{
    standard_policies, CloudNetwork, DesignToggle, HoldoutPick, InferenceOnlyPolicy,
    PolicyBuildCtx, PolicySpec,
};
pub use uniform::{holdout_configs, UniformPolicy};
