//! Declarative, thread-safe policy registry.
//!
//! The experiment harness (`ekya-bench`) describes grid cells as plain
//! data; [`PolicySpec`] is the data form of "which scheduler runs this
//! cell". A spec is `Serialize`/`Deserialize` (so it travels inside cell
//! results) and builds a boxed `Policy + Send` on demand — the build
//! happens *inside* the worker thread that owns the cell, so nothing
//! non-thread-safe ever crosses threads.
//!
//! Uniform-baseline specs need the hold-out Config 1 / Config 2 pair
//! (§6.1), which costs a warm-up training plus an exhaustive profile per
//! (dataset, seed). That derivation is a pure function of its key, so it
//! is memoised process-wide behind a mutex: concurrent cells of one grid
//! pay for it once.

use crate::ablations::{EkyaFixedConfig, EkyaFixedRes};
use crate::uniform::{holdout_configs, UniformPolicy};
use crate::OraclePolicy;
use ekya_core::{default_retrain_grid, EkyaPolicy, Policy, RetrainConfig, SchedulerParams};
use ekya_nn::cost::CostModel;
use ekya_video::DatasetKind;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// Which hold-out Pareto point a uniform-family spec pins (§6.1:
/// Config 1 = high-resource, Config 2 = low-resource).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HoldoutPick {
    /// The most accurate Pareto point.
    Config1,
    /// The cheapest Pareto point within 0.05 accuracy of the knee.
    Config2,
}

impl HoldoutPick {
    fn short(self) -> &'static str {
        match self {
            HoldoutPick::Config1 => "Config 1",
            HoldoutPick::Config2 => "Config 2",
        }
    }
}

/// A declarative policy constructor: plain data naming one scheduler
/// variant. Build it into a live policy with [`PolicySpec::build`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PolicySpec {
    /// Full Ekya: micro-profiles + thief scheduler.
    Ekya,
    /// Ekya with an overridden allocation quantum Δ (Fig 10).
    EkyaDelta {
        /// The allocation quantum.
        delta: f64,
    },
    /// The uniform baseline: fixed hold-out configuration + static
    /// inference/training split.
    Uniform {
        /// Which hold-out Pareto point to pin.
        pick: HoldoutPick,
        /// Fraction of GPUs reserved for inference.
        inference_share: f64,
    },
    /// Ekya without the thief allocator (Fig 8 ablation).
    FixedRes {
        /// Fraction of GPUs reserved for inference.
        inference_share: f64,
    },
    /// Ekya without configuration adaptation (Fig 8 ablation).
    FixedConfig {
        /// Which hold-out Pareto point to pin.
        pick: HoldoutPick,
    },
    /// The exact accuracy-optimal scheduler (knapsack DP).
    Oracle,
}

/// Everything a [`PolicySpec`] needs to turn into a live policy.
#[derive(Debug, Clone)]
pub struct PolicyBuildCtx {
    /// Workload dataset (drives hold-out config derivation).
    pub dataset: DatasetKind,
    /// Total GPUs on the edge server.
    pub gpus: f64,
    /// Seed for the hold-out derivation. Keep it constant across the
    /// cells of one grid so every policy variant is selected on the same
    /// hold-out stream.
    pub holdout_seed: u64,
    /// Candidate retraining configurations Γ.
    pub retrain_grid: Vec<RetrainConfig>,
    /// GPU cost model.
    pub cost: CostModel,
}

impl PolicyBuildCtx {
    /// Paper-default context.
    pub fn new(dataset: DatasetKind, gpus: f64, holdout_seed: u64) -> Self {
        Self {
            dataset,
            gpus,
            holdout_seed,
            retrain_grid: default_retrain_grid(),
            cost: CostModel::default(),
        }
    }
}

/// Process-wide memo of the hold-out (Config 1, Config 2) derivation.
/// The key covers *every* input the derivation depends on — dataset,
/// seed, and a fingerprint of the candidate grid and cost model — so a
/// context with a customised `retrain_grid` or `cost` can never be
/// served configs derived from a different one. The value is a pure
/// function of the key, so caching cannot change results — only skip
/// recomputation.
fn cached_holdout(
    kind: DatasetKind,
    grid: &[RetrainConfig],
    cost: &CostModel,
    seed: u64,
) -> (RetrainConfig, RetrainConfig) {
    type ConfigPair = (RetrainConfig, RetrainConfig);
    type Key = (DatasetKind, u64, u64);
    static CACHE: OnceLock<Mutex<HashMap<Key, ConfigPair>>> = OnceLock::new();
    // Debug output is a complete rendering of both inputs (all fields
    // are plain data), giving a stable within-process fingerprint.
    let fingerprint = fnv1a(format!("{grid:?}|{cost:?}").as_bytes());
    let key = (kind, seed, fingerprint);
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(hit) = cache.lock().expect("holdout cache lock").get(&key) {
        return *hit;
    }
    // Derive outside the lock: the derivation trains a model, and other
    // cells should not serialise behind it. A racing duplicate computes
    // the identical value.
    let pair = holdout_configs(kind, grid, cost, seed);
    cache.lock().expect("holdout cache lock").insert(key, pair);
    pair
}

/// FNV-1a 64-bit (duplicated from `ekya-bench`'s grid module to keep
/// the dependency direction bench → baselines).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

impl PolicySpec {
    /// Stable display label, also used in reports (matches the paper's
    /// figure legends). For every variant except [`PolicySpec::EkyaDelta`]
    /// this equals the built policy's `name()`, so bins may key result
    /// lookups by either; `EkyaDelta` disambiguates the Δ in its label
    /// (several Δs share one grid), so lookups for it must use spec
    /// equality, not the label.
    pub fn label(&self) -> String {
        match self {
            PolicySpec::Ekya => "Ekya".into(),
            PolicySpec::EkyaDelta { delta } => format!("Ekya (Δ={delta})"),
            PolicySpec::Uniform { pick, inference_share } => {
                format!("Uniform ({}, {:.0}%)", pick.short(), inference_share * 100.0)
            }
            PolicySpec::FixedRes { .. } => "Ekya-FixedRes".into(),
            PolicySpec::FixedConfig { .. } => "Ekya-FixedConfig".into(),
            PolicySpec::Oracle => "Accuracy-optimal (oracle)".into(),
        }
    }

    /// Builds the live policy. Thread-safe: call it from any worker.
    pub fn build(&self, ctx: &PolicyBuildCtx) -> Box<dyn Policy + Send> {
        let params = SchedulerParams::new(ctx.gpus);
        let holdout = |pick: HoldoutPick| -> RetrainConfig {
            let (c1, c2) =
                cached_holdout(ctx.dataset, &ctx.retrain_grid, &ctx.cost, ctx.holdout_seed);
            match pick {
                HoldoutPick::Config1 => c1,
                HoldoutPick::Config2 => c2,
            }
        };
        match self {
            PolicySpec::Ekya => Box::new(EkyaPolicy::new(params)),
            PolicySpec::EkyaDelta { delta } => {
                Box::new(EkyaPolicy::new(SchedulerParams { delta: *delta, ..params }))
            }
            PolicySpec::Uniform { pick, inference_share } => {
                Box::new(UniformPolicy::new(holdout(*pick), *inference_share, self.label()))
            }
            PolicySpec::FixedRes { inference_share } => {
                Box::new(EkyaFixedRes::new(params, *inference_share))
            }
            PolicySpec::FixedConfig { pick } => {
                Box::new(EkyaFixedConfig::new(params, holdout(*pick)))
            }
            PolicySpec::Oracle => Box::new(OraclePolicy::new(params)),
        }
    }
}

/// The paper's standard comparison set: Ekya plus the four uniform
/// variants of Figs 6 and 7.
pub fn standard_policies() -> Vec<PolicySpec> {
    vec![
        PolicySpec::Ekya,
        PolicySpec::Uniform { pick: HoldoutPick::Config1, inference_share: 0.5 },
        PolicySpec::Uniform { pick: HoldoutPick::Config2, inference_share: 0.3 },
        PolicySpec::Uniform { pick: HoldoutPick::Config2, inference_share: 0.5 },
        PolicySpec::Uniform { pick: HoldoutPick::Config2, inference_share: 0.9 },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable() {
        assert_eq!(PolicySpec::Ekya.label(), "Ekya");
        assert_eq!(
            PolicySpec::Uniform { pick: HoldoutPick::Config2, inference_share: 0.9 }.label(),
            "Uniform (Config 2, 90%)"
        );
        assert_eq!(PolicySpec::EkyaDelta { delta: 0.25 }.label(), "Ekya (Δ=0.25)");
    }

    #[test]
    fn specs_roundtrip_through_json() {
        for spec in standard_policies() {
            let json = serde_json::to_string(&spec).expect("serialises");
            let back: PolicySpec = serde_json::from_str(&json).expect("parses");
            assert_eq!(spec, back);
        }
    }

    #[test]
    fn build_is_send() {
        fn assert_send<T: Send>(_: &T) {}
        let ctx = PolicyBuildCtx::new(DatasetKind::Waymo, 2.0, 7);
        let policy = PolicySpec::Ekya.build(&ctx);
        assert_send(&policy);
        assert_eq!(policy.name(), "Ekya");
    }

    #[test]
    fn labels_match_built_policy_names() {
        // The fig/table bins key result-table lookups by label(), while
        // reports carry the built policy's name() — these must agree for
        // every variant the bins look up that way (EkyaDelta is the
        // documented exception: its label disambiguates the Δ).
        let ctx = PolicyBuildCtx::new(DatasetKind::Waymo, 2.0, 5);
        let mut specs = standard_policies();
        specs.push(PolicySpec::FixedRes { inference_share: 0.5 });
        specs.push(PolicySpec::FixedConfig { pick: HoldoutPick::Config2 });
        specs.push(PolicySpec::Oracle);
        for spec in specs {
            assert_eq!(spec.label(), spec.build(&ctx).name(), "label/name mismatch: {spec:?}");
        }
    }

    #[test]
    fn holdout_cache_keyed_by_grid() {
        // A customised retrain grid must not be served configs derived
        // from the default grid (the cache key fingerprints the grid).
        let cost = CostModel::default();
        let full = default_retrain_grid();
        let trimmed: Vec<_> = full.iter().copied().take(4).collect();
        let (a1, a2) = cached_holdout(DatasetKind::Waymo, &full, &cost, 123);
        let (b1, b2) = cached_holdout(DatasetKind::Waymo, &trimmed, &cost, 123);
        assert!(trimmed.contains(&b1) && trimmed.contains(&b2));
        // The full-grid pair stays cached and unchanged.
        assert_eq!(cached_holdout(DatasetKind::Waymo, &full, &cost, 123), (a1, a2));
    }

    #[test]
    fn holdout_cache_consistent_with_direct_derivation() {
        let grid = default_retrain_grid();
        let cost = CostModel::default();
        let a = cached_holdout(DatasetKind::UrbanTraffic, &grid, &cost, 99);
        let b = cached_holdout(DatasetKind::UrbanTraffic, &grid, &cost, 99);
        assert_eq!(a, b);
        let direct = holdout_configs(DatasetKind::UrbanTraffic, &grid, &cost, 99);
        assert_eq!(a, direct);
    }
}
