//! Declarative, thread-safe policy registry.
//!
//! The experiment harness (`ekya-bench`) describes grid cells as plain
//! data; [`PolicySpec`] is the data form of "which scheduler runs this
//! cell". A spec is `Serialize`/`Deserialize` (so it travels inside cell
//! results) and builds a boxed `Policy + Send` on demand — the build
//! happens *inside* the worker thread that owns the cell, so nothing
//! non-thread-safe ever crosses threads.
//!
//! Uniform-baseline specs need the hold-out Config 1 / Config 2 pair
//! (§6.1), which costs a warm-up training plus an exhaustive profile per
//! (dataset, seed). That derivation is a pure function of its key, so it
//! is memoised process-wide behind a mutex: concurrent cells of one grid
//! pay for it once.

use crate::ablations::{EkyaFixedConfig, EkyaFixedRes};
use crate::uniform::{holdout_configs, UniformPolicy};
use crate::OraclePolicy;
use ekya_core::{
    default_retrain_grid, fnv1a, EkyaPolicy, InferenceConfig, Policy, PolicyCtx, RetrainConfig,
    SchedulerParams, StreamPlan, WindowPlan,
};
use ekya_net::LinkModel;
use ekya_nn::cost::CostModel;
use ekya_sim::RunnerConfig;
use ekya_video::DatasetKind;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// Which hold-out Pareto point a uniform-family spec pins (§6.1:
/// Config 1 = high-resource, Config 2 = low-resource).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HoldoutPick {
    /// The most accurate Pareto point.
    Config1,
    /// The cheapest Pareto point within 0.05 accuracy of the knee.
    Config2,
}

impl HoldoutPick {
    fn short(self) -> &'static str {
        match self {
            HoldoutPick::Config1 => "Config 1",
            HoldoutPick::Config2 => "Config 2",
        }
    }
}

/// The Table 4 network presets as plain serializable data — the
/// [`LinkModel`] itself embeds a `&'static str` name, so this enum is
/// what travels inside a [`PolicySpec`] (and therefore inside cell
/// results on disk).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CloudNetwork {
    /// 4G cellular (5.1 / 17.5 Mbps).
    Cellular,
    /// Satellite broadband (8.5 / 15 Mbps).
    Satellite,
    /// Two bonded cellular subscriptions (10.2 / 35 Mbps).
    Cellular2x,
}

impl CloudNetwork {
    /// All presets, in Table 4's row order.
    pub const ALL: [CloudNetwork; 3] =
        [CloudNetwork::Cellular, CloudNetwork::Satellite, CloudNetwork::Cellular2x];

    /// The concrete link model this preset names.
    pub fn link(self) -> LinkModel {
        match self {
            CloudNetwork::Cellular => LinkModel::cellular(),
            CloudNetwork::Satellite => LinkModel::satellite(),
            CloudNetwork::Cellular2x => LinkModel::cellular_2x(),
        }
    }

    /// The link's human-readable name (matches the paper's table rows).
    pub fn name(self) -> &'static str {
        self.link().name
    }
}

/// One §5 implementation mechanism the `ablation_design` sweep can
/// switch off independently (see [`PolicySpec::DesignAblation`]). The
/// toggle itself acts on the *runner* configuration — the scheduling
/// policy stays full Ekya — so [`DesignToggle::apply`] is what the bin's
/// cell evaluator calls before executing the windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DesignToggle {
    /// Disable checkpoint hot-swaps (§5 "model checkpointing and
    /// reloading").
    NoCheckpointSwaps,
    /// Disable mid-window estimate correction + rescheduling (§5).
    NoAdaptEstimates,
    /// Disable the iCaRL exemplar memory (§2.2).
    NoExemplarMemory,
    /// Quantise allocations to inverse powers of two before placement
    /// (§5 "placement onto GPUs").
    QuantizedPlacement,
    /// Do not charge micro-profiling GPU time (idealised profiler, §4.3).
    FreeProfiling,
}

impl DesignToggle {
    /// Every toggle, in the ablation table's row order.
    pub const ALL: [DesignToggle; 5] = [
        DesignToggle::NoCheckpointSwaps,
        DesignToggle::NoAdaptEstimates,
        DesignToggle::NoExemplarMemory,
        DesignToggle::QuantizedPlacement,
        DesignToggle::FreeProfiling,
    ];

    /// Human-readable row label (matches the original ablation table).
    pub fn label(self) -> &'static str {
        match self {
            DesignToggle::NoCheckpointSwaps => "no checkpoint hot-swaps",
            DesignToggle::NoAdaptEstimates => "no mid-window estimate correction",
            DesignToggle::NoExemplarMemory => "no exemplar memory (iCaRL off)",
            DesignToggle::QuantizedPlacement => "quantised MPS placement (inverse powers of two)",
            DesignToggle::FreeProfiling => "profiling not charged (idealised)",
        }
    }

    /// Returns `cfg` with this mechanism toggled.
    pub fn apply(self, cfg: RunnerConfig) -> RunnerConfig {
        match self {
            DesignToggle::NoCheckpointSwaps => {
                RunnerConfig { checkpoint_every_epochs: None, ..cfg }
            }
            DesignToggle::NoAdaptEstimates => RunnerConfig { adapt_estimates: false, ..cfg },
            DesignToggle::NoExemplarMemory => RunnerConfig { exemplar_per_class: 0, ..cfg },
            DesignToggle::QuantizedPlacement => RunnerConfig { quantize_placement: true, ..cfg },
            DesignToggle::FreeProfiling => RunnerConfig { charge_profiling: false, ..cfg },
        }
    }
}

/// A declarative policy constructor: plain data naming one scheduler
/// variant. Build it into a live policy with [`PolicySpec::build`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PolicySpec {
    /// Full Ekya: micro-profiles + thief scheduler.
    Ekya,
    /// Ekya with an overridden allocation quantum Δ (Fig 10).
    EkyaDelta {
        /// The allocation quantum.
        delta: f64,
    },
    /// The uniform baseline: fixed hold-out configuration + static
    /// inference/training split.
    Uniform {
        /// Which hold-out Pareto point to pin.
        pick: HoldoutPick,
        /// Fraction of GPUs reserved for inference.
        inference_share: f64,
    },
    /// Ekya without the thief allocator (Fig 8 ablation).
    FixedRes {
        /// Fraction of GPUs reserved for inference.
        inference_share: f64,
    },
    /// Ekya without configuration adaptation (Fig 8 ablation).
    FixedConfig {
        /// Which hold-out Pareto point to pin.
        pick: HoldoutPick,
    },
    /// The exact accuracy-optimal scheduler (knapsack DP).
    Oracle,
    /// Cloud-offload retraining over a constrained link (Table 4): the
    /// edge keeps every GPU on inference while the cloud retrains and
    /// ships models back over `network`. Builds an
    /// [`InferenceOnlyPolicy`] for the edge side; the network-arrival
    /// accuracy simulation lives in
    /// [`run_cloud_retraining`](crate::run_cloud_retraining), which the
    /// `table4_cloud` bin's cell evaluator drives keyed on this spec.
    CloudDelay {
        /// Which network connects the edge to the cloud.
        network: CloudNetwork,
        /// Bandwidth multiplier on both directions of the link (Table 4's
        /// "how much fatter must the link get" axis); `1.0` is the preset
        /// as measured.
        bandwidth_scale: f64,
    },
    /// Cached-model reuse by nearest class distribution (§6.5): no
    /// retraining, every GPU on inference. Builds an
    /// [`InferenceOnlyPolicy`]; the cache simulation lives in
    /// [`run_model_cache`](crate::run_model_cache), driven by the
    /// `table5_cache` bin's evaluator keyed on this spec.
    ModelCache,
    /// Full Ekya under controlled Gaussian noise ε injected into the
    /// micro-profiler's accuracy estimates (Fig 11b). The noise is a
    /// *runner* property (`RunnerConfig::profiler.noise_std`), applied by
    /// the `fig11_profiler` evaluator; `build` returns plain
    /// [`EkyaPolicy`], so — like [`PolicySpec::EkyaDelta`] — the label
    /// disambiguates and lookups must use spec equality.
    EkyaNoise {
        /// Standard deviation of the injected estimate noise.
        noise_std: f64,
    },
    /// Full Ekya with one §5 implementation mechanism switched off
    /// (the `ablation_design` sweep). The toggle acts on the runner
    /// configuration ([`DesignToggle::apply`], called by the bin's
    /// evaluator); `build` returns plain [`EkyaPolicy`] — label
    /// disambiguates, lookups use spec equality.
    DesignAblation {
        /// Which mechanism is off.
        toggle: DesignToggle,
    },
}

/// Everything a [`PolicySpec`] needs to turn into a live policy.
#[derive(Debug, Clone)]
pub struct PolicyBuildCtx {
    /// Workload dataset (drives hold-out config derivation).
    pub dataset: DatasetKind,
    /// Total GPUs on the edge server.
    pub gpus: f64,
    /// Seed for the hold-out derivation. Keep it constant across the
    /// cells of one grid so every policy variant is selected on the same
    /// hold-out stream.
    pub holdout_seed: u64,
    /// Candidate retraining configurations Γ.
    pub retrain_grid: Vec<RetrainConfig>,
    /// GPU cost model.
    pub cost: CostModel,
}

impl PolicyBuildCtx {
    /// Paper-default context.
    pub fn new(dataset: DatasetKind, gpus: f64, holdout_seed: u64) -> Self {
        Self {
            dataset,
            gpus,
            holdout_seed,
            retrain_grid: default_retrain_grid(),
            cost: CostModel::default(),
        }
    }
}

/// Process-wide memo of the hold-out (Config 1, Config 2) derivation.
/// The key covers *every* input the derivation depends on — dataset,
/// seed, and a fingerprint of the candidate grid and cost model — so a
/// context with a customised `retrain_grid` or `cost` can never be
/// served configs derived from a different one. The value is a pure
/// function of the key, so caching cannot change results — only skip
/// recomputation.
fn cached_holdout(
    kind: DatasetKind,
    grid: &[RetrainConfig],
    cost: &CostModel,
    seed: u64,
) -> (RetrainConfig, RetrainConfig) {
    type ConfigPair = (RetrainConfig, RetrainConfig);
    type Key = (DatasetKind, u64, u64);
    // Keyed get/insert only — nothing ever iterates this memo, so hash
    // order cannot reach any serialized byte (and DatasetKind has no Ord
    // for a BTreeMap to use).
    // ekya-lint: allow(unordered-iter)
    static CACHE: OnceLock<Mutex<HashMap<Key, ConfigPair>>> = OnceLock::new();
    // Debug output is a complete rendering of both inputs (all fields
    // are plain data), giving a stable within-process fingerprint.
    let fingerprint = fnv1a(format!("{grid:?}|{cost:?}").as_bytes());
    let key = (kind, seed, fingerprint);
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new())); // ekya-lint: allow(unordered-iter)
    if let Some(hit) = cache.lock().expect("holdout cache lock").get(&key) {
        return *hit;
    }
    // Derive outside the lock: the derivation trains a model, and other
    // cells should not serialise behind it. A racing duplicate computes
    // the identical value.
    let pair = holdout_configs(kind, grid, cost, seed);
    cache.lock().expect("holdout cache lock").insert(key, pair);
    pair
}

impl PolicySpec {
    /// Stable display label, also used in reports (matches the paper's
    /// figure legends). For most variants this equals the built policy's
    /// `name()`, so bins may key result lookups by either. The documented
    /// exceptions — [`PolicySpec::EkyaDelta`], [`PolicySpec::EkyaNoise`],
    /// and [`PolicySpec::DesignAblation`], whose built policy is plain
    /// Ekya, and [`PolicySpec::CloudDelay`] with a non-unit
    /// `bandwidth_scale` — disambiguate the variant parameter in the
    /// label, so lookups for them must use spec equality, not the label.
    pub fn label(&self) -> String {
        match self {
            PolicySpec::Ekya => "Ekya".into(),
            PolicySpec::EkyaDelta { delta } => format!("Ekya (Δ={delta})"),
            PolicySpec::Uniform { pick, inference_share } => {
                format!("Uniform ({}, {:.0}%)", pick.short(), inference_share * 100.0)
            }
            PolicySpec::FixedRes { .. } => "Ekya-FixedRes".into(),
            PolicySpec::FixedConfig { .. } => "Ekya-FixedConfig".into(),
            PolicySpec::Oracle => "Accuracy-optimal (oracle)".into(),
            // The ×1.0 label matches run_cloud_retraining's report name.
            PolicySpec::CloudDelay { network, bandwidth_scale } if *bandwidth_scale == 1.0 => {
                format!("Cloud ({})", network.name())
            }
            PolicySpec::CloudDelay { network, bandwidth_scale } => {
                format!("Cloud ({} ×{bandwidth_scale})", network.name())
            }
            PolicySpec::ModelCache => "Model cache".into(),
            PolicySpec::EkyaNoise { noise_std } => format!("Ekya (ε={noise_std})"),
            PolicySpec::DesignAblation { toggle } => format!("Ekya ({})", toggle.label()),
        }
    }

    /// Builds the live policy. Thread-safe: call it from any worker.
    pub fn build(&self, ctx: &PolicyBuildCtx) -> Box<dyn Policy + Send> {
        let params = SchedulerParams::new(ctx.gpus);
        let holdout = |pick: HoldoutPick| -> RetrainConfig {
            let (c1, c2) =
                cached_holdout(ctx.dataset, &ctx.retrain_grid, &ctx.cost, ctx.holdout_seed);
            match pick {
                HoldoutPick::Config1 => c1,
                HoldoutPick::Config2 => c2,
            }
        };
        match self {
            PolicySpec::Ekya => Box::new(EkyaPolicy::new(params)),
            PolicySpec::EkyaDelta { delta } => {
                Box::new(EkyaPolicy::new(SchedulerParams { delta: *delta, ..params }))
            }
            PolicySpec::Uniform { pick, inference_share } => {
                Box::new(UniformPolicy::new(holdout(*pick), *inference_share, self.label()))
            }
            PolicySpec::FixedRes { inference_share } => {
                Box::new(EkyaFixedRes::new(params, *inference_share))
            }
            PolicySpec::FixedConfig { pick } => {
                Box::new(EkyaFixedConfig::new(params, holdout(*pick)))
            }
            PolicySpec::Oracle => Box::new(OraclePolicy::new(params)),
            PolicySpec::CloudDelay { .. } | PolicySpec::ModelCache => {
                Box::new(InferenceOnlyPolicy::new(self.label()))
            }
            // Noise and design toggles are runner-side (see the variant
            // docs); the edge scheduling policy is full Ekya.
            PolicySpec::EkyaNoise { .. } | PolicySpec::DesignAblation { .. } => {
                Box::new(EkyaPolicy::new(params))
            }
        }
    }
}

/// The edge-side schedule of the §6.5 alternative designs (cloud
/// offload, cached models): never retrain, split every GPU evenly across
/// the streams, serve each with its best feasible inference
/// configuration. [`PolicySpec::CloudDelay`] and
/// [`PolicySpec::ModelCache`] build this, so their cells carry a live
/// `Policy` like every other spec; the designs' *accuracy* simulations
/// (network arrival delays, cache lookups) stay in
/// [`run_cloud_retraining`](crate::run_cloud_retraining) and
/// [`run_model_cache`](crate::run_model_cache), which the table bins'
/// evaluators drive keyed on the spec.
#[derive(Debug, Clone)]
pub struct InferenceOnlyPolicy {
    name: String,
}

impl InferenceOnlyPolicy {
    /// A policy reporting under `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into() }
    }
}

impl Policy for InferenceOnlyPolicy {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn needs_profiles(&self) -> bool {
        false
    }

    fn plan_window(&mut self, ctx: &PolicyCtx<'_>) -> WindowPlan {
        let share = ctx.total_gpus / ctx.streams.len().max(1) as f64;
        let streams = ctx
            .streams
            .iter()
            .map(|s| {
                let infer_config = s
                    .infer_profiles
                    .iter()
                    .filter(|p| p.gpu_demand <= share + 1e-9)
                    .max_by(|a, b| {
                        a.accuracy_factor
                            .partial_cmp(&b.accuracy_factor)
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .map(|p| p.config)
                    .unwrap_or(InferenceConfig { frame_sampling: 0.05, resolution: 0.5 });
                StreamPlan { retrain: None, infer_config, infer_gpus: share }
            })
            .collect();
        WindowPlan { streams }
    }
}

/// The paper's standard comparison set: Ekya plus the four uniform
/// variants of Figs 6 and 7.
pub fn standard_policies() -> Vec<PolicySpec> {
    vec![
        PolicySpec::Ekya,
        PolicySpec::Uniform { pick: HoldoutPick::Config1, inference_share: 0.5 },
        PolicySpec::Uniform { pick: HoldoutPick::Config2, inference_share: 0.3 },
        PolicySpec::Uniform { pick: HoldoutPick::Config2, inference_share: 0.5 },
        PolicySpec::Uniform { pick: HoldoutPick::Config2, inference_share: 0.9 },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable() {
        assert_eq!(PolicySpec::Ekya.label(), "Ekya");
        assert_eq!(
            PolicySpec::Uniform { pick: HoldoutPick::Config2, inference_share: 0.9 }.label(),
            "Uniform (Config 2, 90%)"
        );
        assert_eq!(PolicySpec::EkyaDelta { delta: 0.25 }.label(), "Ekya (Δ=0.25)");
        // ×1.0 cloud labels match run_cloud_retraining's report names.
        assert_eq!(
            PolicySpec::CloudDelay { network: CloudNetwork::Cellular, bandwidth_scale: 1.0 }
                .label(),
            "Cloud (Cellular)"
        );
        assert_eq!(
            PolicySpec::CloudDelay { network: CloudNetwork::Satellite, bandwidth_scale: 2.0 }
                .label(),
            "Cloud (Satellite ×2)"
        );
        assert_eq!(PolicySpec::ModelCache.label(), "Model cache");
        assert_eq!(PolicySpec::EkyaNoise { noise_std: 0.2 }.label(), "Ekya (ε=0.2)");
        assert_eq!(
            PolicySpec::DesignAblation { toggle: DesignToggle::NoExemplarMemory }.label(),
            "Ekya (no exemplar memory (iCaRL off))"
        );
    }

    #[test]
    fn specs_roundtrip_through_json() {
        let mut specs = standard_policies();
        specs.push(PolicySpec::CloudDelay {
            network: CloudNetwork::Cellular2x,
            bandwidth_scale: 1.5,
        });
        specs.push(PolicySpec::ModelCache);
        specs.push(PolicySpec::EkyaNoise { noise_std: 0.05 });
        specs.push(PolicySpec::DesignAblation { toggle: DesignToggle::FreeProfiling });
        for spec in specs {
            let json = serde_json::to_string(&spec).expect("serialises");
            let back: PolicySpec = serde_json::from_str(&json).expect("parses");
            assert_eq!(spec, back);
        }
    }

    #[test]
    fn inference_only_policy_never_retrains_and_splits_evenly() {
        use ekya_core::{build_inference_profiles, PolicyStream};
        use ekya_nn::cost::CostModel;
        use ekya_video::StreamId;
        let infer = build_inference_profiles(
            &CostModel::default(),
            1.0,
            30.0,
            &ekya_core::default_inference_grid(),
        );
        let class_dist = vec![1.0 / 6.0; 6];
        let ctx = PolicyCtx {
            window_idx: 0,
            window_secs: 200.0,
            total_gpus: 4.0,
            streams: (0..2)
                .map(|i| PolicyStream {
                    id: StreamId(i),
                    fps: 30.0,
                    serving_accuracy: 0.5,
                    class_dist: &class_dist,
                    drift_magnitude: 0.1,
                    retrain_profiles: &[],
                    infer_profiles: &infer,
                })
                .collect(),
        };
        let spec = PolicySpec::CloudDelay { network: CloudNetwork::Cellular, bandwidth_scale: 1.0 };
        let build_ctx = PolicyBuildCtx::new(DatasetKind::Cityscapes, 4.0, 7);
        let mut policy = spec.build(&build_ctx);
        assert_eq!(policy.name(), spec.label());
        assert!(!policy.needs_profiles());
        let plan = policy.plan_window(&ctx);
        assert!(plan.streams.iter().all(|s| s.retrain.is_none()));
        assert!(plan.streams.iter().all(|s| (s.infer_gpus - 2.0).abs() < 1e-9));
    }

    #[test]
    fn design_toggles_act_on_the_runner_config() {
        let base = RunnerConfig::default();
        assert!(DesignToggle::NoCheckpointSwaps
            .apply(base.clone())
            .checkpoint_every_epochs
            .is_none());
        assert!(!DesignToggle::NoAdaptEstimates.apply(base.clone()).adapt_estimates);
        assert_eq!(DesignToggle::NoExemplarMemory.apply(base.clone()).exemplar_per_class, 0);
        assert!(DesignToggle::QuantizedPlacement.apply(base.clone()).quantize_placement);
        assert!(!DesignToggle::FreeProfiling.apply(base).charge_profiling);
    }

    #[test]
    fn build_is_send() {
        fn assert_send<T: Send>(_: &T) {}
        let ctx = PolicyBuildCtx::new(DatasetKind::Waymo, 2.0, 7);
        let policy = PolicySpec::Ekya.build(&ctx);
        assert_send(&policy);
        assert_eq!(policy.name(), "Ekya");
    }

    #[test]
    fn labels_match_built_policy_names() {
        // The fig/table bins key result-table lookups by label(), while
        // reports carry the built policy's name() — these must agree for
        // every variant the bins look up that way (EkyaDelta is the
        // documented exception: its label disambiguates the Δ).
        let ctx = PolicyBuildCtx::new(DatasetKind::Waymo, 2.0, 5);
        let mut specs = standard_policies();
        specs.push(PolicySpec::FixedRes { inference_share: 0.5 });
        specs.push(PolicySpec::FixedConfig { pick: HoldoutPick::Config2 });
        specs.push(PolicySpec::Oracle);
        for spec in specs {
            assert_eq!(spec.label(), spec.build(&ctx).name(), "label/name mismatch: {spec:?}");
        }
    }

    #[test]
    fn holdout_cache_keyed_by_grid() {
        // A customised retrain grid must not be served configs derived
        // from the default grid (the cache key fingerprints the grid).
        let cost = CostModel::default();
        let full = default_retrain_grid();
        let trimmed: Vec<_> = full.iter().copied().take(4).collect();
        let (a1, a2) = cached_holdout(DatasetKind::Waymo, &full, &cost, 123);
        let (b1, b2) = cached_holdout(DatasetKind::Waymo, &trimmed, &cost, 123);
        assert!(trimmed.contains(&b1) && trimmed.contains(&b2));
        // The full-grid pair stays cached and unchanged.
        assert_eq!(cached_holdout(DatasetKind::Waymo, &full, &cost, 123), (a1, a2));
    }

    #[test]
    fn holdout_cache_consistent_with_direct_derivation() {
        let grid = default_retrain_grid();
        let cost = CostModel::default();
        let a = cached_holdout(DatasetKind::UrbanTraffic, &grid, &cost, 99);
        let b = cached_holdout(DatasetKind::UrbanTraffic, &grid, &cost, 99);
        assert_eq!(a, b);
        let direct = holdout_configs(DatasetKind::UrbanTraffic, &grid, &cost, 99);
        assert_eq!(a, direct);
    }
}
