//! Accuracy-optimal oracle policy.
//!
//! Solves each window's joint problem (Eq. 1) exactly with the knapsack
//! DP of `ekya-core` — feasible only on small instances (few streams,
//! coarse granularity). This is the "accuracy-optimized scheduler" of the
//! illustrative example (§3.2, Fig 4) and the upper bound the thief
//! heuristic is judged against in tests.

use ekya_core::{
    optimal_schedule, InferenceConfig, PlannedRetrain, Policy, PolicyCtx, RetrainChoice,
    SchedulerParams, StreamInput, StreamPlan, WindowPlan,
};

/// The oracle policy.
#[derive(Debug, Clone)]
pub struct OraclePolicy {
    params: SchedulerParams,
}

impl OraclePolicy {
    /// Creates the oracle with the given scheduler parameters. Keep
    /// `granularity` coarse (e.g. 0.25) — the DP is quadratic in
    /// `G/granularity`.
    pub fn new(params: SchedulerParams) -> Self {
        Self { params }
    }
}

impl Policy for OraclePolicy {
    fn name(&self) -> String {
        "Accuracy-optimal (oracle)".to_string()
    }

    fn plan_window(&mut self, ctx: &PolicyCtx<'_>) -> WindowPlan {
        let inputs: Vec<StreamInput<'_>> = ctx
            .streams
            .iter()
            .map(|s| StreamInput {
                id: s.id,
                serving_accuracy: s.serving_accuracy,
                retrain_profiles: s.retrain_profiles,
                infer_profiles: s.infer_profiles,
                in_progress: None,
            })
            .collect();
        let schedule = optimal_schedule(&inputs, ctx.window_secs, &self.params);
        WindowPlan {
            streams: schedule
                .decisions
                .iter()
                .enumerate()
                .map(|(i, d)| {
                    let s = &ctx.streams[i];
                    StreamPlan {
                        retrain: match d.retrain {
                            RetrainChoice::Start { profile_idx } => Some(PlannedRetrain {
                                config: s.retrain_profiles[profile_idx].config,
                                gpus: d.train_gpus,
                            }),
                            _ => None,
                        },
                        infer_config: d
                            .infer_profile_idx
                            .map(|idx| s.infer_profiles[idx].config)
                            .unwrap_or(InferenceConfig { frame_sampling: 0.05, resolution: 0.5 }),
                        infer_gpus: d.infer_gpus,
                    }
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ekya_core::EkyaPolicy;
    use ekya_sim::{run_windows, RunnerConfig};
    use ekya_video::{DatasetKind, StreamSet};

    #[test]
    fn oracle_runs_and_is_competitive_with_thief() {
        let streams = StreamSet::generate(DatasetKind::Cityscapes, 2, 3, 91);
        let params =
            SchedulerParams { granularity: 0.25, delta: 0.25, ..SchedulerParams::new(2.0) };
        let cfg = RunnerConfig { total_gpus: 2.0, seed: 6, ..RunnerConfig::default() };

        let mut oracle = OraclePolicy::new(params);
        let oracle_report = run_windows(&mut oracle, &streams, &cfg, 3);

        let mut thief = EkyaPolicy::new(params);
        let thief_report = run_windows(&mut thief, &streams, &cfg, 3);

        // Measured accuracies include execution noise, so allow a small
        // band; the heuristic should be close to the oracle.
        assert!(
            thief_report.mean_accuracy() >= oracle_report.mean_accuracy() - 0.1,
            "thief {:.3} vs oracle {:.3}",
            thief_report.mean_accuracy(),
            oracle_report.mean_accuracy()
        );
    }
}
