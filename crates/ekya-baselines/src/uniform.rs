//! The uniform scheduler baseline (§6.1).
//!
//! "Our baseline, called uniform scheduler, uses (a) a fixed retraining
//! configuration, and (b) a static retraining/inference resource
//! allocation (these are adopted by prior schedulers [7, 31, 73])." The
//! fixed configurations are two points on a hold-out dataset's Pareto
//! frontier: Config 1 ("high" resource usage) and Config 2 ("low").
//! A variant is labelled e.g. "Uniform (Config 2, 90%)" when 90% of the
//! GPUs go to inference and 10% to retraining.

use ekya_core::{
    exhaustive_profile, pareto_frontier, InferenceConfig, PlannedRetrain, Policy, PolicyCtx,
    RetrainConfig, RetrainProfile, StreamPlan, TrainHyper, WindowPlan,
};
use ekya_nn::cost::CostModel;
use ekya_nn::fit::LearningCurve;
use ekya_nn::golden::{distill_labels, OracleTeacher};
use ekya_nn::mlp::{Mlp, MlpArch};
use ekya_video::{DatasetKind, DatasetSpec, VideoDataset};

/// The uniform baseline policy.
#[derive(Debug, Clone)]
pub struct UniformPolicy {
    /// The fixed retraining configuration every stream uses every window.
    pub retrain_config: RetrainConfig,
    /// Fraction of total GPUs reserved for inference (the rest retrains).
    pub inference_share: f64,
    /// Label for reports, e.g. "Uniform (Config 2, 90%)".
    pub label: String,
}

impl UniformPolicy {
    /// Creates a uniform policy.
    pub fn new(
        retrain_config: RetrainConfig,
        inference_share: f64,
        label: impl Into<String>,
    ) -> Self {
        Self {
            retrain_config,
            inference_share: inference_share.clamp(0.0, 1.0),
            label: label.into(),
        }
    }
}

impl Policy for UniformPolicy {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn needs_profiles(&self) -> bool {
        false // fixed configuration: no profiling cost
    }

    fn plan_window(&mut self, ctx: &PolicyCtx<'_>) -> WindowPlan {
        let n = ctx.streams.len().max(1) as f64;
        let infer_gpus = ctx.total_gpus * self.inference_share / n;
        let train_gpus = ctx.total_gpus * (1.0 - self.inference_share) / n;
        let streams = ctx
            .streams
            .iter()
            .map(|s| {
                // Even a static scheduler picks the best *feasible*
                // inference configuration (prior work's inference
                // profilers are cheap, §3.1).
                let infer_config = s
                    .infer_profiles
                    .iter()
                    .filter(|p| p.gpu_demand <= infer_gpus + 1e-9)
                    .max_by(|a, b| {
                        a.accuracy_factor
                            .partial_cmp(&b.accuracy_factor)
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .map(|p| p.config)
                    .unwrap_or(InferenceConfig { frame_sampling: 0.05, resolution: 0.5 });
                StreamPlan {
                    retrain: if train_gpus > 0.0 {
                        Some(PlannedRetrain { config: self.retrain_config, gpus: train_gpus })
                    } else {
                        None
                    },
                    infer_config,
                    infer_gpus,
                }
            })
            .collect();
        WindowPlan { streams }
    }
}

/// Derives the uniform baseline's Config 1 / Config 2 from a **hold-out**
/// stream, mirroring §6.1: profile every configuration on hold-out data,
/// take the Pareto frontier, and pick a high-resource point (the most
/// accurate) and a low-resource point (the cheapest within 0.05 accuracy
/// of the knee).
pub fn holdout_configs(
    kind: DatasetKind,
    grid: &[RetrainConfig],
    cost: &CostModel,
    seed: u64,
) -> (RetrainConfig, RetrainConfig) {
    // Two hold-out windows: warm the model on the first, profile on the
    // second (the steady-state regime).
    let ds = VideoDataset::generate(DatasetSpec::new(kind, 2, seed ^ 0xD15C));
    let mut teacher = OracleTeacher::new(0.02, ds.num_classes, seed ^ 0x7EAC);
    let w0 = distill_labels(&mut teacher, &ds.window(0).train_pool);
    let w1 = distill_labels(&mut teacher, &ds.window(1).train_pool);
    let val = distill_labels(&mut teacher, &ds.window(1).val);

    let mut model = Mlp::new(MlpArch::edge(ds.feature_dim, ds.num_classes, 16), seed);
    let mut warm = ekya_core::RetrainExecution::new(
        &model,
        &w0,
        RetrainConfig {
            epochs: 30,
            batch_size: 32,
            last_layer_neurons: 16,
            layers_trained: 3,
            data_fraction: 1.0,
        },
        ds.num_classes,
        TrainHyper::default(),
        seed,
    );
    warm.run_to_completion();
    model = warm.model().clone();
    model.set_layers_trained(usize::MAX);

    let (accs, _) = exhaustive_profile(
        &model,
        &w1,
        &val,
        grid,
        ds.num_classes,
        TrainHyper::default(),
        cost,
        seed,
    );
    // Wrap measured accuracies as flat-curve profiles for the frontier.
    let profiles: Vec<RetrainProfile> = grid
        .iter()
        .zip(&accs)
        .map(|(&config, &acc)| {
            let variant = ekya_core::build_variant(&model, &config, seed);
            let n = ((w1.len() as f64) * config.data_fraction).round().max(1.0) as usize;
            RetrainProfile {
                config,
                curve: flat_at(acc, config.k_total()),
                gpu_seconds_per_epoch: cost.train_epoch_gpu_seconds(&variant, n, config.batch_size),
            }
        })
        .collect();
    let frontier = pareto_frontier(&profiles);
    assert!(!frontier.is_empty(), "frontier cannot be empty");

    let config1_idx = *frontier
        .iter()
        .max_by(|&&a, &&b| {
            profiles[a]
                .post_accuracy()
                .partial_cmp(&profiles[b].post_accuracy())
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .expect("non-empty");
    let max_acc = profiles[config1_idx].post_accuracy();
    let config2_idx = frontier
        .iter()
        .copied()
        .filter(|&i| profiles[i].post_accuracy() >= max_acc - 0.05)
        .min_by(|&a, &b| {
            profiles[a]
                .total_gpu_seconds()
                .partial_cmp(&profiles[b].total_gpu_seconds())
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .unwrap_or(config1_idx);
    (profiles[config1_idx].config, profiles[config2_idx].config)
}

/// A curve that evaluates to `acc` at `k` (and saturates there) — used to
/// embed point measurements in profile structures.
fn flat_at(acc: f64, _k: f64) -> LearningCurve {
    LearningCurve::flat(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ekya_core::default_retrain_grid;
    use ekya_sim::{run_windows, RunnerConfig};
    use ekya_video::StreamSet;

    #[test]
    fn uniform_policy_splits_resources_evenly() {
        let grid = default_retrain_grid();
        let mut policy = UniformPolicy::new(grid[0], 0.5, "Uniform (C1, 50%)");
        assert!(!policy.needs_profiles());
        let streams = StreamSet::generate(DatasetKind::Waymo, 2, 2, 41);
        let cfg = RunnerConfig { total_gpus: 2.0, seed: 1, ..RunnerConfig::default() };
        let report = run_windows(&mut policy, &streams, &cfg, 2);
        for w in &report.windows {
            for s in &w.streams {
                assert!((s.infer_gpus - 0.5).abs() < 1e-9);
                assert!((s.train_gpus - 0.5).abs() < 1e-9);
                assert!(s.retrained, "uniform retrains every window");
            }
        }
    }

    #[test]
    fn inference_share_90_leaves_little_training() {
        let grid = default_retrain_grid();
        let mut policy = UniformPolicy::new(grid[0], 0.9, "Uniform (C1, 90%)");
        let streams = StreamSet::generate(DatasetKind::Waymo, 3, 1, 42);
        let ctx_total = 1.0;
        let cfg = RunnerConfig { total_gpus: ctx_total, seed: 1, ..RunnerConfig::default() };
        let report = run_windows(&mut policy, &streams, &cfg, 1);
        let s = &report.windows[0].streams[0];
        assert!((s.infer_gpus - 0.3).abs() < 1e-9);
        assert!((s.train_gpus - ctx_total * 0.1 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn holdout_config_selection() {
        let grid = default_retrain_grid();
        let (c1, c2) = holdout_configs(DatasetKind::Cityscapes, &grid, &CostModel::default(), 77);
        // Config 1 must cost at least as much as Config 2 (it is the
        // high-resource point).
        let cost_of = |c: &RetrainConfig| c.epochs as f64 * c.data_fraction;
        assert!(cost_of(&c1) >= cost_of(&c2), "config1 {c1:?} should out-cost config2 {c2:?}");
        assert!(grid.contains(&c1));
        assert!(grid.contains(&c2));
    }
}
