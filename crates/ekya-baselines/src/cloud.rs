//! Cloud-based retraining alternative (§6.5, Table 4).
//!
//! The edge uploads each stream's sampled training video to the cloud,
//! the cloud retrains instantaneously (a conservative assumption in the
//! cloud's favour), and the retrained model downloads back over the same
//! constrained link. All edge GPUs serve inference. The retrained model
//! helps only from its arrival time — which, at edge-typical bandwidths,
//! is mid-window at best.

use ekya_core::TrainHyper;
use ekya_net::{simulate_cloud_window, CloudJobSpec, LinkModel};
use ekya_nn::data::DataView;
use ekya_nn::golden::{distill_labels, OracleTeacher};
use ekya_nn::mlp::{Mlp, MlpArch};
use ekya_sim::{RunReport, RunnerConfig, StreamWindowReport, Timeline, WindowReport};
use ekya_video::StreamSet;

/// Configuration for the cloud-retraining run.
#[derive(Debug, Clone)]
pub struct CloudRunConfig {
    /// The edge↔cloud link.
    pub link: LinkModel,
    /// Stream bitrate in Mbps (the paper's example uses 4 Mbps HD).
    pub video_bitrate_mbps: f64,
    /// Fraction of the stream uploaded for training (10% in §6.5).
    pub upload_sampling: f64,
    /// Shared runner settings (cost model, teacher, seeds, grids).
    pub runner: RunnerConfig,
}

impl CloudRunConfig {
    /// Paper-default cloud configuration over the given link.
    pub fn new(link: LinkModel, runner: RunnerConfig) -> Self {
        Self { link, video_bitrate_mbps: 4.0, upload_sampling: 0.1, runner }
    }
}

/// Runs cloud-based retraining for `num_windows` windows and returns the
/// same report shape as the edge runner, so accuracies are directly
/// comparable.
pub fn run_cloud_retraining(
    streams: &StreamSet,
    cfg: &CloudRunConfig,
    num_windows: usize,
) -> RunReport {
    assert!(!streams.is_empty(), "need at least one stream");
    let datasets: Vec<_> = streams.iter().collect();
    let n = datasets.len();
    let window_secs = datasets[0].1.spec.window_secs;
    let num_classes = datasets[0].1.num_classes;
    let rc = &cfg.runner;

    // The cloud always retrains with the richest configuration (it has
    // "infinitely fast" GPUs).
    let full_config = *rc
        .retrain_grid
        .iter()
        .max_by(|a, b| {
            (a.layers_trained, a.k_total())
                .partial_cmp(&(b.layers_trained, b.k_total()))
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .expect("non-empty grid");

    let mut teachers: Vec<OracleTeacher> = (0..n)
        .map(|s| {
            OracleTeacher::new(
                rc.teacher_error_rate,
                num_classes,
                rc.seed.wrapping_add(7919 * s as u64) ^ 0xC0,
            )
        })
        .collect();
    let mut models: Vec<Mlp> = (0..n)
        .map(|s| {
            Mlp::new(
                MlpArch::edge(datasets[s].1.feature_dim, num_classes, rc.initial_head_width),
                rc.seed.wrapping_add(7919 * s as u64),
            )
        })
        .collect();

    // All GPUs to inference, split evenly.
    let infer_gpus = rc.total_gpus / n as f64;

    let mut report =
        RunReport { policy: format!("Cloud ({})", cfg.link.name), windows: Vec::new() };
    for w_idx in 0..num_windows {
        // Network: all streams share the link each window.
        let upload_mbits =
            CloudJobSpec::upload_for(cfg.video_bitrate_mbps, cfg.upload_sampling, window_secs);
        let jobs: Vec<CloudJobSpec> = (0..n)
            .map(|s| CloudJobSpec {
                tag: s as u32,
                upload_mbits,
                model_mbits: rc.cost.model_size_mbits,
            })
            .collect();
        let net = simulate_cloud_window(&cfg.link, &jobs, window_secs);

        let mut stream_reports = Vec::with_capacity(n);
        for s in 0..n {
            let (id, ds) = datasets[s];
            let w = ds.window(w_idx);
            let labelled = distill_labels(&mut teachers[s], &w.train_pool);
            let true_view = DataView::new(&w.val, num_classes);
            let serving_true = models[s].accuracy(true_view);

            // Best feasible inference configuration under the even split.
            let profiles = ekya_core::build_inference_profiles(
                &rc.cost,
                rc.cost.size_factor(&models[s]),
                ds.spec.fps,
                &rc.inference_grid,
            );
            let af = profiles
                .iter()
                .filter(|p| p.gpu_demand <= infer_gpus + 1e-9)
                .map(|p| p.accuracy_factor)
                .fold(0.0, f64::max);
            let infer_config = profiles
                .iter()
                .filter(|p| p.gpu_demand <= infer_gpus + 1e-9)
                .max_by(|a, b| {
                    a.accuracy_factor
                        .partial_cmp(&b.accuracy_factor)
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .map(|p| p.config)
                .unwrap_or(ekya_core::InferenceConfig { frame_sampling: 0.05, resolution: 0.5 });

            // Cloud retraining (instantaneous at upload completion).
            let mut exec = ekya_core::RetrainExecution::new(
                &models[s],
                &labelled,
                full_config,
                num_classes,
                TrainHyper::default(),
                rc.seed.wrapping_add((w_idx as u64) << 20).wrapping_add(s as u64),
            );
            exec.run_to_completion();
            let candidate = exec.model().clone();
            let post_true = candidate.accuracy(true_view);

            let arrival = net.arrival_secs[s];
            let mut timeline = Timeline::new(0.0, serving_true * af);
            let mut end_model = serving_true;
            let completed = arrival.is_finite();
            if completed && post_true > serving_true {
                timeline.set(arrival, post_true * af);
                end_model = post_true;
                let mut adopted = candidate;
                adopted.set_layers_trained(usize::MAX);
                models[s] = adopted;
            } else if completed {
                // Model arrived but is no better; keep the old one.
            }
            // Missed window: the cloud model is stale by next window and
            // is discarded (next window retrains on fresh data anyway).

            let avg = timeline.average(0.0, window_secs);
            stream_reports.push(StreamWindowReport {
                id,
                avg_accuracy: avg,
                min_accuracy: timeline.min_over(0.0, window_secs),
                start_model_accuracy: serving_true,
                end_model_accuracy: end_model,
                retrained: true,
                retrain_config: Some(full_config),
                retrain_completed: completed,
                train_gpus: 0.0,
                infer_gpus,
                infer_config,
                profiling_gpu_seconds: 0.0,
                wasted_gpu_seconds: 0.0,
                timeline: timeline.points().to_vec(),
            });
        }
        report.windows.push(WindowReport { window_idx: w_idx, streams: stream_reports });
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use ekya_video::DatasetKind;

    fn runner_cfg(gpus: f64, seed: u64) -> RunnerConfig {
        RunnerConfig { total_gpus: gpus, seed, ..RunnerConfig::default() }
    }

    #[test]
    fn cloud_run_produces_reports() {
        let streams = StreamSet::generate(DatasetKind::Cityscapes, 2, 3, 61);
        let cfg = CloudRunConfig::new(LinkModel::cellular(), runner_cfg(2.0, 4));
        let report = run_cloud_retraining(&streams, &cfg, 3);
        assert_eq!(report.windows.len(), 3);
        assert!(report.mean_accuracy() > 0.0);
        assert!(report.policy.contains("Cellular"));
    }

    #[test]
    fn congested_link_delays_model_arrivals() {
        // With 8 cameras sharing one cellular link, model deliveries pile
        // up: serialised uploads (8 x 80 Mb / 5.1 Mbps ≈ 126 s) plus
        // downloads (8 x 398 Mb / 17.5 Mbps ≈ 182 s) push most arrivals
        // deep into the 200 s window, so the stale model serves for most
        // of it. We assert the improved models are deployed late: the
        // average accuracy stays close to the stale starting accuracy.
        let streams = StreamSet::generate(DatasetKind::Cityscapes, 8, 2, 62);
        let cfg = CloudRunConfig::new(LinkModel::cellular(), runner_cfg(4.0, 5));
        let report = run_cloud_retraining(&streams, &cfg, 2);
        // Late-arrival signature: the end-of-window model is better than
        // the window average for streams whose model improved.
        let mut improved = 0usize;
        let mut late = 0usize;
        for w in &report.windows {
            for s in &w.streams {
                if s.end_model_accuracy > s.start_model_accuracy + 0.02 {
                    improved += 1;
                    // af <= 1, so avg >= end only if the new model served
                    // most of the window; "late" means avg is much closer
                    // to start than to end.
                    let mid = 0.5 * (s.start_model_accuracy + s.end_model_accuracy);
                    if s.avg_accuracy < mid {
                        late += 1;
                    }
                }
            }
        }
        assert!(improved > 0, "some retrained models should be better");
        assert!(late * 2 >= improved, "most improved models should arrive late: {late}/{improved}");
    }

    #[test]
    fn faster_link_is_at_least_as_accurate() {
        let streams = StreamSet::generate(DatasetKind::Cityscapes, 4, 3, 63);
        let slow = run_cloud_retraining(
            &streams,
            &CloudRunConfig::new(LinkModel::cellular(), runner_cfg(2.0, 6)),
            3,
        );
        let fast = run_cloud_retraining(
            &streams,
            &CloudRunConfig::new(LinkModel::cellular().scaled(8.0), runner_cfg(2.0, 6)),
            3,
        );
        assert!(
            fast.mean_accuracy() >= slow.mean_accuracy() - 0.02,
            "slow {:.3} fast {:.3}",
            slow.mean_accuracy(),
            fast.mean_accuracy()
        );
    }
}
