//! Cached-model reuse alternative (§6.5).
//!
//! Instead of retraining, pre-train and cache models from earlier windows
//! and, in each new window, deploy the cached model whose training-data
//! class distribution is nearest (Euclidean) to the current window's.
//! GPU cycles all go to inference. The paper finds this loses to Ekya
//! (0.72 vs 0.78) because "even though the class distributions may be
//! similar, the models cannot be directly reused from any window as the
//! appearances of objects may still differ considerably" — exactly the
//! appearance-drift component our workload generator models.

use ekya_core::TrainHyper;
use ekya_nn::data::DataView;
use ekya_nn::golden::{distill_labels, OracleTeacher};
use ekya_nn::mlp::{Mlp, MlpArch};
use ekya_sim::{RunReport, RunnerConfig, StreamWindowReport, Timeline, WindowReport};
use ekya_video::{stats::nearest_distribution, StreamSet};

/// Runs the model-cache baseline.
///
/// Windows `0..pretrain_windows` build the cache (training one model per
/// window per stream, continuing from the previous — the paper's "a few
/// tens of DNNs from earlier retraining windows"); the remaining windows
/// are evaluated with cache lookups only and are the reported result.
pub fn run_model_cache(
    streams: &StreamSet,
    rc: &RunnerConfig,
    num_windows: usize,
    pretrain_windows: usize,
) -> RunReport {
    assert!(!streams.is_empty(), "need at least one stream");
    assert!(pretrain_windows >= 1, "need at least one cached model");
    assert!(num_windows > pretrain_windows, "need evaluation windows after the cache phase");
    let datasets: Vec<_> = streams.iter().collect();
    let n = datasets.len();
    let num_classes = datasets[0].1.num_classes;
    let window_secs = datasets[0].1.spec.window_secs;
    let full_config = *rc
        .retrain_grid
        .iter()
        .max_by(|a, b| {
            (a.layers_trained, a.k_total())
                .partial_cmp(&(b.layers_trained, b.k_total()))
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .expect("non-empty grid");

    let mut report = RunReport { policy: "Model cache".to_string(), windows: Vec::new() };
    // Per-stream cache: (class_dist, model).
    let mut caches: Vec<Vec<(Vec<f64>, Mlp)>> = vec![Vec::new(); n];

    // ---- Cache-building phase. ----
    for (s, (_, ds)) in datasets.iter().enumerate() {
        let seed = rc.seed.wrapping_add(7919 * s as u64);
        let mut teacher = OracleTeacher::new(rc.teacher_error_rate, num_classes, seed ^ 0xC0);
        let mut model =
            Mlp::new(MlpArch::edge(ds.feature_dim, num_classes, rc.initial_head_width), seed);
        for w_idx in 0..pretrain_windows {
            let w = ds.window(w_idx);
            let labelled = distill_labels(&mut teacher, &w.train_pool);
            let mut exec = ekya_core::RetrainExecution::new(
                &model,
                &labelled,
                full_config,
                num_classes,
                TrainHyper::default(),
                seed.wrapping_add((w_idx as u64) << 20),
            );
            exec.run_to_completion();
            model = exec.model().clone();
            model.set_layers_trained(usize::MAX);
            caches[s].push((w.class_dist.clone(), model.clone()));
        }
    }

    // ---- Evaluation phase: lookups only, all GPUs to inference. ----
    let infer_gpus = rc.total_gpus / n as f64;
    for w_idx in pretrain_windows..num_windows {
        let mut stream_reports = Vec::with_capacity(n);
        for (s, (id, ds)) in datasets.iter().enumerate() {
            let w = ds.window(w_idx);
            let dists: Vec<Vec<f64>> = caches[s].iter().map(|(d, _)| d.clone()).collect();
            let pick = nearest_distribution(&w.class_dist, &dists).expect("non-empty cache");
            let model = &caches[s][pick].1;
            let serving_true = model.accuracy(DataView::new(&w.val, num_classes));

            let profiles = ekya_core::build_inference_profiles(
                &rc.cost,
                rc.cost.size_factor(model),
                ds.spec.fps,
                &rc.inference_grid,
            );
            let best =
                profiles.iter().filter(|p| p.gpu_demand <= infer_gpus + 1e-9).max_by(|a, b| {
                    a.accuracy_factor
                        .partial_cmp(&b.accuracy_factor)
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
            let (af, infer_config) = best.map(|p| (p.accuracy_factor, p.config)).unwrap_or((
                0.0,
                ekya_core::InferenceConfig { frame_sampling: 0.05, resolution: 0.5 },
            ));

            let timeline = Timeline::new(0.0, serving_true * af);
            stream_reports.push(StreamWindowReport {
                id: *id,
                avg_accuracy: timeline.average(0.0, window_secs),
                min_accuracy: serving_true * af,
                start_model_accuracy: serving_true,
                end_model_accuracy: serving_true,
                retrained: false,
                retrain_config: None,
                retrain_completed: false,
                train_gpus: 0.0,
                infer_gpus,
                infer_config,
                profiling_gpu_seconds: 0.0,
                wasted_gpu_seconds: 0.0,
                timeline: timeline.points().to_vec(),
            });
        }
        report.windows.push(WindowReport { window_idx: w_idx, streams: stream_reports });
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use ekya_video::DatasetKind;

    #[test]
    fn cache_baseline_runs() {
        let streams = StreamSet::generate(DatasetKind::Cityscapes, 2, 6, 71);
        let rc = RunnerConfig { total_gpus: 2.0, seed: 5, ..RunnerConfig::default() };
        let report = run_model_cache(&streams, &rc, 6, 3);
        assert_eq!(report.windows.len(), 3, "only eval windows reported");
        assert!(report.mean_accuracy() > 0.0);
        assert_eq!(report.retrain_rate(), 0.0, "cache baseline never retrains");
    }

    #[test]
    #[should_panic(expected = "need evaluation windows")]
    fn requires_eval_windows() {
        let streams = StreamSet::generate(DatasetKind::Waymo, 1, 3, 72);
        let rc = RunnerConfig::default();
        run_model_cache(&streams, &rc, 3, 3);
    }
}
