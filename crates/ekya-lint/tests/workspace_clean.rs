//! The workspace is lint-clean — the same invariant CI enforces by
//! running the `ekya_lint` bin, kept as a test so a plain `cargo test`
//! catches a fresh determinism hazard without going through `ci.sh`.

#[test]
fn workspace_is_lint_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let violations = ekya_lint::lint_workspace(&root, &ekya_lint::Config::default());
    assert!(
        violations.is_empty(),
        "the workspace has determinism-lint violations:\n{}",
        violations.iter().map(|v| v.to_string()).collect::<Vec<_>>().join("\n")
    );
}
