//! Fixture: linted as if it were a report bin (the harness passes a
//! `src/bin/` pretend path) — zero-defaults on missing metrics.
fn main() {
    let acc: Option<f64> = None;
    let fabricated = acc.unwrap_or(0.0);
    let chosen_floor = acc.unwrap_or(0.25);
    // ekya-lint: allow(silent-default-metric)
    let tolerated = acc.unwrap_or_default();
    println!("{fabricated} {chosen_floor} {tolerated}");
}
