// A telemetry-style wall-clock helper: exactly the code the
// `wallclock-in-cell` allowlist entry for ekya-telemetry's timing
// module sanctions — and exactly what must keep firing anywhere else.
pub struct WallSpan {
    start: std::time::Instant,
}

pub fn wall_span() -> WallSpan {
    WallSpan { start: Instant::now() }
}

pub fn observe(span: WallSpan) -> f64 {
    span.start.elapsed().as_secs_f64()
}
