//! Fixture: code every rule must stay quiet on — a hash map in a file
//! that never serializes, a seeded RNG, compile-time env, and a
//! non-zero fallback.
use std::collections::HashMap;

pub fn keyed_memo() -> HashMap<u32, u32> {
    HashMap::new()
}

pub fn seeded(seed: u64) -> rand::rngs::StdRng {
    use rand::SeedableRng;
    rand::rngs::StdRng::seed_from_u64(seed)
}

pub fn floor(x: Option<f64>) -> f64 {
    x.unwrap_or(0.25)
}

pub fn manifest_dir() -> &'static str {
    env!("CARGO_MANIFEST_DIR")
}
