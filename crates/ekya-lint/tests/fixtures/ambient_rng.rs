//! Fixture: RNG construction not derived from a mixed cell seed.
pub fn ambient() -> f64 {
    rand::random()
}

pub fn seeded(seed: u64) -> rand::rngs::StdRng {
    use rand::SeedableRng;
    rand::rngs::StdRng::seed_from_u64(seed)
}

pub fn tolerated() -> f64 {
    // ekya-lint: allow(ambient-rng)
    rand::random()
}
