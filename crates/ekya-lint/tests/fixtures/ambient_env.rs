//! Fixture: env reads outside the sanctioned knob surfaces.
pub fn stray() -> Option<String> {
    std::env::var("EKYA_STRAY").ok()
}

pub fn tolerated() -> Option<String> {
    // ekya-lint: allow(ambient-env)
    std::env::var("EKYA_TOLERATED").ok()
}

pub fn compile_time() -> &'static str {
    env!("CARGO_MANIFEST_DIR")
}
