//! Fixture: a serialization-sensitive file (serde derive present)
//! holding a hash map — the PR 5 `record_trace` bug class.
use serde::Serialize;
use std::collections::HashMap;

#[derive(Serialize)]
pub struct Report {
    pub rows: Vec<u32>,
}

pub fn build() -> HashMap<u32, u32> {
    HashMap::new() // ekya-lint: allow(unordered-iter)
}
