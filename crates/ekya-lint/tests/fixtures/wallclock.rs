//! Fixture: wall-clock reads outside the sanctioned timing modules.
pub fn leak() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn stamped() -> std::time::SystemTime {
    std::time::SystemTime::now() // ekya-lint: allow(wallclock-in-cell)
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_inside_tests_is_exempt() {
        let _ = std::time::Instant::now();
    }
}
