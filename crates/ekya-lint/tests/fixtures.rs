//! Per-rule fixture tests: each of the five rules fires on its fixture
//! at the expected line, stays quiet on sanctioned idioms, and respects
//! `// ekya-lint: allow(<rule>)` escapes. The fixture files live in
//! `tests/fixtures/` — outside any `src/` tree, so the workspace scan
//! never picks up their deliberate violations.

use ekya_lint::{lint_source, Config};

fn fixture(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    std::fs::read_to_string(&path).expect("fixture readable")
}

/// Lints a fixture under a pretend workspace path, with no path
/// allowlist in play, and returns `(rule, line)` pairs.
fn hits(name: &str, pretend_path: &str) -> Vec<(&'static str, usize)> {
    lint_source(pretend_path, &fixture(name), &Config::bare())
        .into_iter()
        .map(|v| (v.rule, v.line))
        .collect()
}

#[test]
fn unordered_iter_fires_once_and_respects_allow() {
    // Line 11 holds the unescaped HashMap; line 12's carries an allow.
    // Lines 3-4 are `use` declarations, which never fire.
    assert_eq!(
        hits("unordered_iter.rs", "crates/demo/src/report.rs"),
        vec![("unordered-iter", 11)]
    );
}

#[test]
fn ambient_env_fires_once_and_respects_allow() {
    // Line 3 reads the env; line 8's read sits under an allow comment;
    // the env!() macro on line 12 is compile-time and never fires.
    assert_eq!(hits("ambient_env.rs", "crates/demo/src/knobs.rs"), vec![("ambient-env", 3)]);
}

#[test]
fn wallclock_fires_once_respecting_allow_and_test_exemption() {
    // Line 3 is the violation; line 7 carries a trailing allow; the
    // Instant in the #[cfg(test)] module is exempt wholesale.
    assert_eq!(hits("wallclock.rs", "crates/demo/src/cell.rs"), vec![("wallclock-in-cell", 3)]);
}

#[test]
fn ambient_rng_fires_once_and_respects_allow() {
    // Line 3 draws ambient entropy; the seeded StdRng never fires; the
    // final rand::random sits under an allow comment.
    assert_eq!(hits("ambient_rng.rs", "crates/demo/src/policy.rs"), vec![("ambient-rng", 3)]);
}

#[test]
fn silent_default_fires_once_in_bin_scope_only() {
    // Line 5 fabricates 0.0; line 6's non-zero fallback is a deliberate
    // choice; line 8's unwrap_or_default sits under an allow comment.
    let bin_path = "crates/demo/src/bin/report.rs";
    assert_eq!(hits("silent_default.rs", bin_path), vec![("silent-default-metric", 5)]);
    // The same source outside a bin is out of the rule's scope entirely.
    assert_eq!(hits("silent_default.rs", "crates/demo/src/lib.rs"), vec![]);
}

#[test]
fn clean_fixture_is_clean_under_every_rule() {
    assert_eq!(hits("clean.rs", "crates/demo/src/bin/clean.rs"), vec![]);
}

#[test]
fn wall_timing_fires_outside_the_sanctioned_telemetry_module() {
    // Positive half of the telemetry-allowlist pair: the same
    // wall-span helper that timing.rs sanctions keeps firing when it
    // appears anywhere else — even elsewhere inside ekya-telemetry —
    // under the real workspace allowlist, not just Config::bare().
    // (Line 5's `std::time::Instant` type position never fires; line
    // 9's `Instant::now()` call does.)
    let src = fixture("wall_timing.rs");
    let vs = lint_source("crates/ekya-telemetry/src/recorder.rs", &src, &Config::default());
    assert_eq!(
        vs.iter().map(|v| (v.rule, v.line)).collect::<Vec<_>>(),
        vec![("wallclock-in-cell", 9)]
    );
}

#[test]
fn wall_timing_is_sanctioned_inside_telemetry_timing() {
    // Negative half: under the one allowlisted path the wall-clock
    // plane is silent — the quarantine the two-plane design relies on.
    let src = fixture("wall_timing.rs");
    let vs = lint_source("crates/ekya-telemetry/src/timing.rs", &src, &Config::default());
    assert!(vs.is_empty(), "{vs:?}");
}

#[test]
fn path_allowlist_silences_a_whole_file() {
    let cfg = Config { path_allow: vec![("ambient-env", "crates/demo/src/knobs.rs")] };
    let vs = lint_source("crates/demo/src/knobs.rs", &fixture("ambient_env.rs"), &cfg);
    assert!(vs.is_empty(), "{vs:?}");
}
