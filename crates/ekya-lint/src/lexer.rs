//! A minimal Rust-source scanner: strips comments and string/char
//! literals, records `ekya-lint: allow(...)` escape directives, and
//! produces a flat token stream for the rules to pattern-match against.
//!
//! This is deliberately **not** a parser. The five lint rules only need
//! to see identifiers and punctuation outside literals and comments —
//! `HashMap`, `env :: var`, `Instant :: now`, `unwrap_or ( 0.0 )` — so a
//! character-level state machine that understands Rust's comment and
//! literal syntax (nested block comments, raw strings with `#` fences,
//! char vs lifetime ticks) is sufficient, keeps the crate free of
//! external parser dependencies (this workspace builds offline against
//! vendored shims), and cannot be confused by rule patterns appearing
//! inside strings or docs — including this linter's own source.

/// One token of stripped source code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token text. Identifiers and numeric literals keep their full
    /// text; punctuation is single characters except the `::` path
    /// separator, which is kept whole because every rule pattern that
    /// cares about paths matches on it.
    pub text: String,
    /// 1-based source line.
    pub line: usize,
}

/// The scan of one source file.
#[derive(Debug, Default)]
pub struct Scan {
    /// Tokens of the whole file, in order, literals and comments
    /// stripped (string/char literals are dropped entirely — their
    /// content can never trigger a rule).
    pub tokens: Vec<Token>,
    /// Per-line `ekya-lint: allow(rule, ...)` directives, as
    /// `(line, rule-name)` pairs. A trailing directive
    /// (`stmt; // ekya-lint: allow(r)`) suppresses its own line only; a
    /// directive on a comment-only line suppresses the line below it —
    /// never both, so an allow can't silently swallow the statement
    /// after the one it was written for.
    pub allows: Vec<(usize, String)>,
    /// First line of the file's trailing `#[cfg(test)] mod …` block, if
    /// any. Everything from this line on is unit-test code, which the
    /// rules exempt: tests construct fixtures and measure wall clocks
    /// legitimately, and none of their output reaches a report file.
    pub test_code_from: Option<usize>,
}

impl Scan {
    /// True when `line` is suppressed for `rule` by an allow directive
    /// on the same line, or on a comment-only line directly above.
    pub fn allowed(&self, line: usize, rule: &str) -> bool {
        self.allows
            .iter()
            .any(|(l, r)| r == rule && (*l == line || (*l + 1 == line && !self.line_has_code(*l))))
    }

    fn line_has_code(&self, line: usize) -> bool {
        self.tokens.iter().any(|t| t.line == line)
    }

    /// True when `line` falls inside the trailing unit-test block.
    pub fn in_test_code(&self, line: usize) -> bool {
        self.test_code_from.is_some_and(|from| line >= from)
    }
}

/// Scanner state: what kind of region the cursor is inside.
enum State {
    Code,
    LineComment,
    /// Nesting depth — Rust block comments nest.
    BlockComment(usize),
    Str,
    /// Raw string with this many `#` fence characters.
    RawStr(usize),
    Char,
}

/// Scans Rust source into tokens + allow directives.
pub fn scan(src: &str) -> Scan {
    let chars: Vec<char> = src.chars().collect();
    let mut state = State::Code;
    let mut line = 1usize;
    // Code characters of the current file, with a sentinel space where a
    // literal or comment was elided (so `"a""b"` never fuses tokens).
    let mut code: Vec<(char, usize)> = Vec::new();
    let mut comment = String::new();
    let mut comment_line = 0usize;
    let mut allows: Vec<(usize, String)> = Vec::new();

    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match state {
            State::Code => match c {
                '/' if next == Some('/') => {
                    state = State::LineComment;
                    comment.clear();
                    comment_line = line;
                    i += 2;
                    continue;
                }
                '/' if next == Some('*') => {
                    state = State::BlockComment(1);
                    comment.clear();
                    comment_line = line;
                    i += 2;
                    continue;
                }
                '"' => {
                    state = State::Str;
                    code.push((' ', line));
                }
                'r' | 'b' if is_raw_string_start(&chars, i) => {
                    // r"…", r#"…"#, br#"…"# — skip prefix letters, count
                    // the fence.
                    let mut j = i;
                    while chars[j] == 'r' || chars[j] == 'b' {
                        j += 1;
                    }
                    let mut hashes = 0usize;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    state = State::RawStr(hashes);
                    code.push((' ', line));
                    i = j + 1; // past the opening quote
                    continue;
                }
                '\'' if is_char_literal(&chars, i) => {
                    state = State::Char;
                    code.push((' ', line));
                }
                _ => code.push((c, line)),
            },
            State::LineComment => {
                if c == '\n' {
                    harvest_allows(&comment, comment_line, &mut allows);
                    state = State::Code;
                } else {
                    comment.push(c);
                }
            }
            State::BlockComment(depth) => {
                if c == '*' && next == Some('/') {
                    if depth == 1 {
                        harvest_allows(&comment, comment_line, &mut allows);
                        state = State::Code;
                    } else {
                        state = State::BlockComment(depth - 1);
                    }
                    i += 2;
                    if chars.get(i - 1) == Some(&'\n') {
                        line += 1;
                    }
                    continue;
                }
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                    continue;
                }
                comment.push(c);
            }
            State::Str => match c {
                '\\' => {
                    i += 2; // skip the escaped character, whatever it is
                    if next == Some('\n') {
                        line += 1;
                    }
                    continue;
                }
                '"' => state = State::Code,
                _ => {}
            },
            State::RawStr(hashes) => {
                if c == '"' && (1..=hashes).all(|k| chars.get(i + k) == Some(&'#')) {
                    state = State::Code;
                    i += 1 + hashes;
                    continue;
                }
            }
            State::Char => match c {
                '\\' => {
                    i += 2;
                    continue;
                }
                '\'' => state = State::Code,
                _ => {}
            },
        }
        if c == '\n' {
            line += 1;
        }
        i += 1;
    }
    if let State::LineComment = state {
        harvest_allows(&comment, comment_line, &mut allows);
    }

    let tokens = tokenize(&code);
    let test_code_from = find_test_block(&tokens);
    Scan { tokens, allows, test_code_from }
}

/// Is the `'` at `chars[i]` a char literal (vs a lifetime)? A char
/// literal is `'x'` or `'\…'`; a lifetime tick is followed by an
/// identifier with no closing quote right after.
fn is_char_literal(chars: &[char], i: usize) -> bool {
    match chars.get(i + 1) {
        Some('\\') => true,
        Some(_) => chars.get(i + 2) == Some(&'\''),
        None => false,
    }
}

/// Is `chars[i]` the start of a raw (or raw-byte) string literal —
/// `r"`, `r#`, `br"`, `br#`? Plain identifiers starting with `r`/`b`
/// (e.g. `run`) must not match.
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    // Reject when the previous character continues an identifier
    // (`attr"x"` can't happen, but `for r in` must not trip on `r`).
    if i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_') {
        return false;
    }
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return false;
    }
    j += 1;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

/// Extracts `ekya-lint: allow(rule, rule2)` directives from one
/// comment's text.
fn harvest_allows(comment: &str, line: usize, allows: &mut Vec<(usize, String)>) {
    let Some(pos) = comment.find("ekya-lint:") else { return };
    let rest = comment[pos + "ekya-lint:".len()..].trim_start();
    let Some(rest) = rest.strip_prefix("allow") else { return };
    let Some(open) = rest.find('(') else { return };
    let Some(close) = rest[open..].find(')') else { return };
    for rule in rest[open + 1..open + close].split(',') {
        let rule = rule.trim();
        if !rule.is_empty() {
            allows.push((line, rule.to_string()));
        }
    }
}

/// Tokenizes stripped code characters: identifiers, numeric literals,
/// and punctuation (single chars, except `::` which is kept whole).
fn tokenize(code: &[(char, usize)]) -> Vec<Token> {
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        let (c, line) = code[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c.is_alphabetic() || c == '_' {
            let mut text = String::new();
            while i < code.len() && (code[i].0.is_alphanumeric() || code[i].0 == '_') {
                text.push(code[i].0);
                i += 1;
            }
            tokens.push(Token { text, line });
            continue;
        }
        if c.is_ascii_digit() {
            // Numbers, greedily including `.` and suffix/exponent
            // letters so `0.0`, `1e-9` (minus the sign), and `0usize`
            // stay one token — close enough for the rules, which only
            // ever ask "is this literal zero-ish?".
            let mut text = String::new();
            while i < code.len()
                && (code[i].0.is_alphanumeric() || code[i].0 == '.' || code[i].0 == '_')
            {
                // `0..n` is a range, not a decimal point.
                if code[i].0 == '.' && code.get(i + 1).is_some_and(|&(d, _)| d == '.') {
                    break;
                }
                text.push(code[i].0);
                i += 1;
            }
            tokens.push(Token { text, line });
            continue;
        }
        if c == ':' && code.get(i + 1).is_some_and(|&(d, _)| d == ':') {
            tokens.push(Token { text: "::".to_string(), line });
            i += 2;
            continue;
        }
        tokens.push(Token { text: c.to_string(), line });
        i += 1;
    }
    tokens
}

/// Finds the trailing `#[cfg(test)]` block: the token sequence
/// `# [ cfg ( test ) ]` followed by `mod`. Unit-test modules in this
/// workspace are file-trailing by convention, so everything from the
/// attribute on is treated as test code.
fn find_test_block(tokens: &[Token]) -> Option<usize> {
    const PAT: [&str; 7] = ["#", "[", "cfg", "(", "test", ")", "]"];
    for w in tokens.windows(PAT.len() + 1) {
        if w.iter().zip(PAT.iter()).all(|(t, p)| t.text == *p) && w[PAT.len()].text == "mod" {
            return Some(w[0].line);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        scan(src).tokens.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn strips_comments_and_strings() {
        let src = r##"
            let x = "HashMap inside a string"; // HashMap in a comment
            /* HashMap in /* a nested */ block comment */
            let y = r#"raw HashMap"#;
            let z = std::env::var("EKYA_X");
        "##;
        let t = texts(src);
        assert!(!t.contains(&"HashMap".to_string()));
        let joined = t.join(" ");
        assert!(joined.contains("std :: env :: var"), "{joined}");
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let src = "fn f<'a>(arg: &'a str) -> char { let c = '\\''; let d = 'x'; c }";
        let t = texts(src);
        assert!(t.contains(&"a".to_string()), "lifetime ident survives");
        assert!(!t.contains(&"x".to_string()), "char literal content is stripped");
    }

    #[test]
    fn raw_string_fences_respected() {
        let src = r##"let s = r#"quote " inside"#; let after = HashMap::new();"##;
        assert!(texts(src).contains(&"HashMap".to_string()));
    }

    #[test]
    fn numeric_literals_stay_whole() {
        let t = texts("a.unwrap_or(0.0); b.max(1e-9); 0..n");
        assert!(t.contains(&"0.0".to_string()));
        assert!(t.contains(&"1e".to_string()) || t.contains(&"1e9".to_string()));
        assert!(t.contains(&"0".to_string()), "range start is not a decimal: {t:?}");
    }

    #[test]
    fn allow_directives_cover_their_line_and_the_next() {
        let src = "\n// ekya-lint: allow(unordered-iter, ambient-env)\nlet m = HashMap::new();\nlet n = HashMap::new(); // ekya-lint: allow(unordered-iter)\n";
        let s = scan(src);
        assert!(s.allowed(2, "unordered-iter"));
        assert!(s.allowed(3, "unordered-iter"), "directive reaches the following line");
        assert!(s.allowed(3, "ambient-env"));
        assert!(s.allowed(4, "unordered-iter"), "same-line directive");
        assert!(!s.allowed(5, "unordered-iter"), "trailing directives stop at their own line");
        assert!(!s.allowed(3, "wallclock-in-cell"));
    }

    #[test]
    fn trailing_test_block_detected() {
        let src = "fn real() {}\n\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\n";
        let s = scan(src);
        assert_eq!(s.test_code_from, Some(3));
        assert!(s.in_test_code(4));
        assert!(!s.in_test_code(1));
    }

    #[test]
    fn line_numbers_track_multiline_constructs() {
        let src = "let a = \"two\nline string\";\nlet b = Instant::now();\n";
        let s = scan(src);
        let now = s.tokens.iter().find(|t| t.text == "Instant").expect("token present");
        assert_eq!(now.line, 3);
    }
}
