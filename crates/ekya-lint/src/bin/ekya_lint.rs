//! CLI for the workspace determinism lint. Walks `src/` and
//! `crates/*/src/` under the workspace root (or an explicit root given
//! as the first argument), prints one line per violation, and exits 1
//! if anything fired. Wired into `./ci.sh quick` and `full`.

use std::path::PathBuf;

fn main() {
    let root = match std::env::args().nth(1) {
        Some(p) => PathBuf::from(p),
        // The crate sits at crates/ekya-lint, two levels below the root.
        None => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."),
    };
    let root = match root.canonicalize() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ekya-lint: cannot resolve root {}: {e}", root.display());
            std::process::exit(2);
        }
    };

    let violations = ekya_lint::lint_workspace(&root, &ekya_lint::Config::default());
    for v in &violations {
        println!("{v}");
    }
    if violations.is_empty() {
        eprintln!("ekya-lint: clean ({} rules)", ekya_lint::RULES.len());
    } else {
        eprintln!(
            "ekya-lint: {} violation(s). Fix, or see crates/ekya-bench/README.md \
             (\"Determinism invariants and ekya-lint\") for the escape syntax.",
            violations.len()
        );
        std::process::exit(1);
    }
}
