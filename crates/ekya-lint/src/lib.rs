//! # ekya-lint — determinism & reproducibility static analysis
//!
//! Every guarantee this reproduction makes — parallel ≡ serial
//! byte-for-byte, shard union ≡ unsharded, resume-by-fingerprint,
//! plan.json-pinned env — is a determinism invariant that nothing in the
//! type system enforces. This crate is the enforcement: a dependency-free
//! token scanner plus five rules grounded in bug classes the workspace
//! has actually hit (see the rule table in [`rules`]).
//!
//! ## Usage
//!
//! ```text
//! cargo run --release -q -p ekya-lint          # lint the whole workspace
//! cargo run --release -q -p ekya-lint -- PATH  # lint a different root
//! ```
//!
//! The bin exits nonzero on any violation; `./ci.sh quick` and `full`
//! both run it. Escapes, in order of preference:
//!
//! 1. fix the code (almost always right);
//! 2. an inline `// ekya-lint: allow(<rule>)` comment on or directly
//!    above the offending line, with a justification next to it;
//! 3. a whole-file entry in [`rules::Config::default`] — reserved for
//!    the sanctioned home of an effect (the knob module for env reads,
//!    `RunStats` for wall time, …).
//!
//! Trailing `#[cfg(test)] mod` blocks are exempt: tests may build
//! fixtures and measure wall clocks freely because their output never
//! reaches a report file.

pub mod lexer;
pub mod rules;

pub use rules::{lint_source, Config, Violation, RULES};

use std::path::{Path, PathBuf};

/// Lints every production source file under `root`: `src/` and
/// `crates/*/src/`. Deliberately out of scope: `vendor/` (API-subset
/// shims of external crates — not ours to lint), `tests/`, `benches/`,
/// and `examples/` everywhere (test code is exempt by design, and
/// ekya-lint's own rule fixtures live in its `tests/fixtures/`).
///
/// Returns violations sorted by path, then line — the walk order is
/// itself deterministic (paths sorted), practicing what it lints.
pub fn lint_workspace(root: &Path, cfg: &Config) -> Vec<Violation> {
    let mut files = Vec::new();
    collect_rs(&root.join("src"), &mut files);
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        for entry in entries.flatten() {
            collect_rs(&entry.path().join("src"), &mut files);
        }
    }
    files.sort();

    let mut out = Vec::new();
    for file in files {
        let Ok(src) = std::fs::read_to_string(&file) else { continue };
        let rel = rel_path(root, &file);
        out.extend(lint_source(&rel, &src, cfg));
    }
    out
}

/// Recursively collects `.rs` files under `dir` (no-op if absent).
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Workspace-relative path with forward slashes (allowlist keys are
/// written that way; keeps diagnostics identical across platforms).
fn rel_path(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.components().map(|c| c.as_os_str().to_string_lossy()).collect::<Vec<_>>().join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rel_paths_use_forward_slashes() {
        let root = Path::new("/w");
        let file = Path::new("/w/crates/ekya-core/src/lib.rs");
        assert_eq!(rel_path(root, file), "crates/ekya-core/src/lib.rs");
    }

    #[test]
    fn workspace_walk_is_scoped_to_src_dirs() {
        // Walk this crate's own workspace: fixture files with deliberate
        // violations live in crates/ekya-lint/tests/fixtures/ and must
        // never be picked up.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let cfg = Config::default();
        for v in lint_workspace(&root, &cfg) {
            assert!(!v.path.contains("/tests/"), "test-tree file linted: {v}");
            assert!(!v.path.starts_with("vendor/"), "vendor file linted: {v}");
        }
    }
}
