//! The five determinism rules, matched against the stripped token
//! stream from [`crate::lexer`].
//!
//! Each rule is grounded in a bug this repository has actually had (or
//! structurally invites — see `CHANGES.md` PR 5 and the operator guide's
//! "Determinism invariants" section):
//!
//! | rule | invariant protected |
//! |------|---------------------|
//! | `unordered-iter` | serialized/fingerprinted output must not depend on hash-map iteration order |
//! | `ambient-env` | every env read goes through `Knobs::from_env` / the knob module, so `plan.json` pinning covers it |
//! | `wallclock-in-cell` | wall-clock time never leaks into deterministic report files |
//! | `ambient-rng` | all randomness derives from a mixed cell seed |
//! | `silent-default-metric` | a missing cell metric is a hard error, never a silent `0.0` row |

use crate::lexer::{scan, Scan, Token};

/// All rule names, in diagnostic order.
pub const RULES: [&str; 5] =
    ["unordered-iter", "ambient-env", "wallclock-in-cell", "ambient-rng", "silent-default-metric"];

/// One rule violation at one source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which rule fired (one of [`RULES`]).
    pub rule: &'static str,
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.rule, self.message)
    }
}

/// Lint configuration: which whole files are exempt from which rules.
///
/// The allowlist names the *sanctioned homes* of each effect — the one
/// module where env reads, wall clocks, etc. are supposed to live — so
/// the rules stay loud everywhere else. Point fixes use inline
/// `// ekya-lint: allow(<rule>)` comments instead.
#[derive(Debug, Clone)]
pub struct Config {
    /// `(rule, workspace-relative path)` pairs exempted wholesale.
    pub path_allow: Vec<(&'static str, &'static str)>,
}

impl Config {
    /// No path exemptions at all — used by the fixture tests so every
    /// rule fires on its fixture regardless of the fixture's pretend
    /// path.
    pub fn bare() -> Self {
        Self { path_allow: Vec::new() }
    }

    fn path_allowed(&self, rule: &str, rel_path: &str) -> bool {
        self.path_allow.iter().any(|(r, p)| *r == rule && *p == rel_path)
    }
}

impl Default for Config {
    /// The workspace allowlist. Every entry is a sanctioned module with
    /// the reason recorded here, where a reviewer of the allowlist (not
    /// the module) needs it.
    fn default() -> Self {
        Self {
            path_allow: vec![
                // The single sanctioned env surface: Knobs::from_env
                // reads the documented EKYA_* grid knobs, and the knob
                // module houses the non-grid tuning knobs. Both are
                // exactly what plan.json pins.
                ("ambient-env", "crates/ekya-bench/src/harness.rs"),
                ("ambient-env", "crates/ekya-bench/src/knob.rs"),
                // results_dir() resolves EKYA_RESULTS_DIR/CARGO_MANIFEST_DIR
                // to decide *where* reports go — never what's in them.
                ("ambient-env", "crates/ekya-bench/src/lib.rs"),
                // RunStats measures harness wall time for the perf gate;
                // it is reported next to, never inside, cell results.
                ("wallclock-in-cell", "crates/ekya-bench/src/harness.rs"),
                // The telemetry wall-clock plane: `wall_span` /
                // `wall_gauge_max` live here by design, aggregate into
                // the `.wall.json` sidecar only, and are structurally
                // unable to reach the fingerprinted logical-plane
                // trace. This is the *one* sanctioned home for timing
                // in instrumented hot paths.
                ("wallclock-in-cell", "crates/ekya-telemetry/src/timing.rs"),
                // Orchestrator heartbeat ages and retry backoff are
                // wall-clock by nature and never reach report files.
                ("wallclock-in-cell", "crates/ekya-orchestrate/src/retry.rs"),
                ("wallclock-in-cell", "crates/ekya-orchestrate/src/bin/ekya_grid.rs"),
                // Bench mains time whole passes for human-readable
                // stderr/perf-series output, not for cell content.
                ("wallclock-in-cell", "crates/ekya-bench/src/bin/harness_bench.rs"),
                ("wallclock-in-cell", "crates/ekya-bench/src/bin/scheduler_runtime.rs"),
                ("wallclock-in-cell", "crates/ekya-bench/src/bin/fig10_delta.rs"),
                // ekya_loadgen times the whole fleet run for its
                // stream-windows/s throughput line; the wall-clock
                // numbers go to loadgen_metrics.json, never into the
                // deterministic serve_status.json snapshot.
                ("wallclock-in-cell", "crates/ekya-bench/src/bin/ekya_loadgen.rs"),
                // ekya_grid's status table renders Option<String> fields
                // ("-" for absent) — display formatting, not metrics.
                ("silent-default-metric", "crates/ekya-orchestrate/src/bin/ekya_grid.rs"),
            ],
        }
    }
}

/// Lints one file's source text. `rel_path` is the workspace-relative
/// path (forward slashes) — rules use it for path allowlisting and for
/// scoping (`silent-default-metric` only applies to `src/bin/` files).
pub fn lint_source(rel_path: &str, src: &str, cfg: &Config) -> Vec<Violation> {
    let s = scan(src);
    let use_lines = use_statement_lines(&s.tokens);
    let mut out = Vec::new();

    if !cfg.path_allowed("unordered-iter", rel_path) && is_serialization_sensitive(&s) {
        rule_unordered_iter(rel_path, &s, &use_lines, &mut out);
    }
    if !cfg.path_allowed("ambient-env", rel_path) {
        rule_ambient_env(rel_path, &s, &mut out);
    }
    if !cfg.path_allowed("wallclock-in-cell", rel_path) {
        rule_wallclock(rel_path, &s, &mut out);
    }
    if !cfg.path_allowed("ambient-rng", rel_path) {
        rule_ambient_rng(rel_path, &s, &mut out);
    }
    if !cfg.path_allowed("silent-default-metric", rel_path) && rel_path.contains("/bin/") {
        rule_silent_default(rel_path, &s, &mut out);
    }

    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out.dedup_by(|a, b| a.line == b.line && a.rule == b.rule);
    out
}

/// A file is serialization-sensitive when its *code* (not comments or
/// strings) mentions serde derives, JSON emission, or fingerprinting —
/// i.e. when iteration order in it can reach a report file or a
/// resume fingerprint.
fn is_serialization_sensitive(s: &Scan) -> bool {
    const MARKERS: [&str; 6] =
        ["Serialize", "serde_json", "fingerprint", "write_json", "save_json", "to_json"];
    s.tokens.iter().any(|t| !s.in_test_code(t.line) && MARKERS.iter().any(|m| t.text == *m))
}

/// Lines whose first token opens a `use` declaration — importing
/// `HashMap` is fine; iterating one in a sensitive file is not.
fn use_statement_lines(tokens: &[Token]) -> Vec<usize> {
    let mut lines = Vec::new();
    let mut prev_line = 0usize;
    let mut prev_was_pub = false;
    for t in tokens {
        let first_on_line = t.line != prev_line;
        if first_on_line || prev_was_pub {
            if t.text == "use" {
                lines.push(t.line);
            }
            prev_was_pub = first_on_line && t.text == "pub";
        } else {
            prev_was_pub = false;
        }
        prev_line = t.line;
    }
    lines
}

/// Emits `v` unless the line is inside test code or inline-allowed.
fn push(
    rule: &'static str,
    path: &str,
    line: usize,
    msg: String,
    s: &Scan,
    out: &mut Vec<Violation>,
) {
    if s.in_test_code(line) || s.allowed(line, rule) {
        return;
    }
    out.push(Violation { rule, path: path.to_string(), line, message: msg });
}

fn rule_unordered_iter(path: &str, s: &Scan, use_lines: &[usize], out: &mut Vec<Violation>) {
    for t in &s.tokens {
        let map = match t.text.as_str() {
            "HashMap" => "HashMap",
            "HashSet" => "HashSet",
            _ => continue,
        };
        if use_lines.contains(&t.line) {
            continue;
        }
        push(
            "unordered-iter",
            path,
            t.line,
            format!(
                "{map} in a file that serializes/fingerprints: iteration order is \
                 nondeterministic and can leak into report bytes — use a BTree \
                 collection or sort before iterating"
            ),
            s,
            out,
        );
    }
}

fn rule_ambient_env(path: &str, s: &Scan, out: &mut Vec<Violation>) {
    for w in s.tokens.windows(3) {
        if w[0].text == "env"
            && w[1].text == "::"
            && matches!(w[2].text.as_str(), "var" | "var_os" | "vars")
        {
            push(
                "ambient-env",
                path,
                w[0].line,
                "ambient env read bypasses plan.json pinning — route it through \
                 Knobs::from_env or the ekya-bench knob module"
                    .to_string(),
                s,
                out,
            );
        }
    }
}

fn rule_wallclock(path: &str, s: &Scan, out: &mut Vec<Violation>) {
    for w in s.tokens.windows(3) {
        if matches!(w[0].text.as_str(), "Instant" | "SystemTime")
            && w[1].text == "::"
            && w[2].text == "now"
        {
            push(
                "wallclock-in-cell",
                path,
                w[0].line,
                format!(
                    "{}::now outside the sanctioned timing modules — wall-clock must \
                     not be observable from cell evaluation",
                    w[0].text
                ),
                s,
                out,
            );
        }
    }
}

fn rule_ambient_rng(path: &str, s: &Scan, out: &mut Vec<Violation>) {
    for (i, t) in s.tokens.iter().enumerate() {
        let ambient = match t.text.as_str() {
            "thread_rng" | "from_entropy" | "from_os_rng" | "OsRng" => true,
            "random" => {
                // `rand::random()` — bare `random` idents elsewhere are fine.
                i >= 2 && s.tokens[i - 1].text == "::" && s.tokens[i - 2].text == "rand"
            }
            _ => false,
        };
        if ambient {
            push(
                "ambient-rng",
                path,
                t.line,
                format!(
                    "`{}` draws OS/thread entropy — derive every RNG from a mixed \
                     cell seed (e.g. StdRng::seed_from_u64(cell_seed(..)))",
                    t.text
                ),
                s,
                out,
            );
        }
    }
}

fn rule_silent_default(path: &str, s: &Scan, out: &mut Vec<Violation>) {
    for (i, w) in s.tokens.windows(3).enumerate() {
        if w[0].text != "." {
            continue;
        }
        let zero_default = match w[1].text.as_str() {
            "unwrap_or_default" => w[2].text == "(",
            "unwrap_or" => {
                w[2].text == "("
                    && s.tokens.get(i + 3).is_some_and(|t| is_zero_literal(&t.text))
                    && s.tokens.get(i + 4).is_some_and(|t| t.text == ")")
            }
            _ => false,
        };
        if zero_default {
            push(
                "silent-default-metric",
                path,
                w[1].line,
                format!(
                    "`.{}(..)` in a report bin silently fabricates a value for a \
                     missing cell metric — use expect(..) so a poisoned cell fails loudly",
                    w[1].text
                ),
                s,
                out,
            );
        }
    }
}

/// Is this numeric token literally zero (`0`, `0.0`, `0.`, `0usize`,
/// `0.0_f64`, …)?
fn is_zero_literal(text: &str) -> bool {
    let mut digits = String::new();
    for c in text.chars() {
        match c {
            '0'..='9' | '.' => digits.push(c),
            '_' => {}
            // First suffix letter ends the numeric part (`0f64`).
            _ => break,
        }
    }
    !digits.is_empty() && digits.chars().all(|c| c == '0' || c == '.')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(path: &str, src: &str) -> Vec<&'static str> {
        lint_source(path, src, &Config::bare()).into_iter().map(|v| v.rule).collect()
    }

    #[test]
    fn zero_literals() {
        for z in ["0", "0.0", "0.", "0usize", "0.0_f64", "0_0"] {
            assert!(is_zero_literal(z), "{z}");
        }
        for nz in ["1", "0.5", "10", "1.0", "x"] {
            assert!(!is_zero_literal(nz), "{nz}");
        }
    }

    #[test]
    fn unordered_iter_needs_sensitivity() {
        let body = "fn f() { let m: HashMap<u32, u32> = HashMap::new(); }";
        assert!(lint("crates/x/src/a.rs", body).is_empty(), "no serde marker, no violation");
        let sensitive = format!("#[derive(Serialize)] struct S;\n{body}");
        assert_eq!(lint("crates/x/src/a.rs", &sensitive), vec!["unordered-iter"]);
    }

    #[test]
    fn unordered_iter_skips_use_lines() {
        let src = "use std::collections::HashMap;\n#[derive(Serialize)] struct S;\n";
        assert!(lint("crates/x/src/a.rs", src).is_empty());
    }

    #[test]
    fn ambient_env_fires_on_any_env_var_path() {
        assert_eq!(lint("crates/x/src/a.rs", "let v = std::env::var(\"X\");"), vec!["ambient-env"]);
        assert_eq!(lint("crates/x/src/a.rs", "for (k, v) in env::vars() {}"), vec!["ambient-env"]);
        assert!(lint("crates/x/src/a.rs", "let p = env!(\"CARGO_MANIFEST_DIR\");").is_empty());
    }

    #[test]
    fn wallclock_fires_on_both_clocks() {
        assert_eq!(lint("crates/x/src/a.rs", "let t = Instant::now();"), vec!["wallclock-in-cell"]);
        assert_eq!(
            lint("crates/x/src/a.rs", "let t = std::time::SystemTime::now();"),
            vec!["wallclock-in-cell"]
        );
    }

    #[test]
    fn ambient_rng_variants() {
        for src in [
            "let mut r = rand::thread_rng();",
            "let r = StdRng::from_entropy();",
            "let r: f64 = rand::random();",
            "let r = OsRng;",
        ] {
            assert_eq!(lint("crates/x/src/a.rs", src), vec!["ambient-rng"], "{src}");
        }
        assert!(lint("crates/x/src/a.rs", "let r = StdRng::seed_from_u64(seed);").is_empty());
        assert!(lint("crates/x/src/a.rs", "let random = pick(xs);").is_empty(), "bare ident ok");
    }

    #[test]
    fn silent_default_only_in_bins_and_only_zeroish() {
        let zero = "fn main() { let a = acc.unwrap_or(0.0); }";
        assert_eq!(lint("crates/x/src/bin/t.rs", zero), vec!["silent-default-metric"]);
        assert!(lint("crates/x/src/lib.rs", zero).is_empty(), "library code out of scope");
        let default = "fn main() { let a = acc.unwrap_or_default(); }";
        assert_eq!(lint("crates/x/src/bin/t.rs", default), vec!["silent-default-metric"]);
        let nonzero = "fn main() { let a = acc.unwrap_or(1.0); }";
        assert!(lint("crates/x/src/bin/t.rs", nonzero).is_empty(), "non-zero fallback is a choice");
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "#[derive(Serialize)] struct S;\n#[cfg(test)]\nmod tests {\n\
                   fn f() { let m = HashMap::new(); let t = Instant::now(); }\n}\n";
        assert!(lint("crates/x/src/a.rs", src).is_empty());
    }

    #[test]
    fn inline_allow_suppresses_exactly_its_rule() {
        let src = "#[derive(Serialize)] struct S;\n\
                   // ekya-lint: allow(unordered-iter)\n\
                   fn f() { let m = HashMap::new(); }\n\
                   fn g() { let t = Instant::now(); } // ekya-lint: allow(wallclock-in-cell)\n\
                   fn h() { let t = Instant::now(); }\n";
        assert_eq!(lint("crates/x/src/a.rs", src), vec!["wallclock-in-cell"]);
    }

    #[test]
    fn path_allowlist_exempts_whole_file() {
        let cfg = Config { path_allow: vec![("wallclock-in-cell", "crates/x/src/a.rs")] };
        let src = "fn f() { let t = Instant::now(); }";
        assert!(lint_source("crates/x/src/a.rs", src, &cfg).is_empty());
        assert_eq!(lint_source("crates/x/src/b.rs", src, &cfg).len(), 1);
    }

    #[test]
    fn violations_are_line_sorted_and_deduped() {
        let src = "fn f() { let a = Instant::now(); let b = Instant::now(); }\n\
                   fn g() { let v = std::env::var(\"X\"); }\n";
        let vs = lint_source("crates/x/src/a.rs", src, &Config::bare());
        assert_eq!(vs.len(), 2, "{vs:?}");
        assert_eq!(vs[0].line, 1);
        assert_eq!(vs[1].line, 2);
    }
}
