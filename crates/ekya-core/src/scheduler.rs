//! The thief scheduler (§4.2, Algorithms 1 and 2).
//!
//! Ekya's scheduling heuristic makes the joint retraining/inference
//! problem tractable by decoupling resource allocation from configuration
//! selection. Starting from a fair allocation, every job plays "thief" and
//! iteratively steals a quantum Δ of GPU from every other job; after each
//! steal, `PickConfigs` (Algorithm 2) re-selects the best configurations
//! under the tentative allocation and the steal is kept only when the
//! estimated window-averaged accuracy improves.
//!
//! Search-space pruning follows the paper: allocations move in coarse
//! multiples of the granularity δ, configurations come pre-pruned from the
//! micro-profiler, and the schedule is recomputed only at window
//! boundaries and on retraining-job completion (with in-flight jobs'
//! configurations pinned, §5).

use crate::config::RetrainConfig;
use crate::estimator::{estimate_window, AccuracyEstimate, EstimateParams, RetrainWork};
use crate::profile::{InferenceProfile, RetrainProfile};
use ekya_nn::fit::LearningCurve;
use ekya_video::StreamId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The aggregate the thief scheduler optimises across streams.
///
/// The paper optimises the **mean** window accuracy and notes (§3.2,
/// footnote 3) that "the techniques in our scheduler apply to other
/// optimization metrics too, like max-min of accuracy" — implemented here
/// as the future-work extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SchedulerObjective {
    /// Maximise the mean accuracy across streams (Eq. 1).
    #[default]
    Mean,
    /// Maximise the minimum accuracy across streams (fairness), with mean
    /// accuracy as the tie-breaker.
    MaxMin,
}

impl SchedulerObjective {
    /// Scores a vector of per-stream accuracies. Scores are only compared
    /// against scores from the same objective.
    pub fn score(&self, per_stream: &[f64]) -> f64 {
        if per_stream.is_empty() {
            return 0.0;
        }
        let mean = per_stream.iter().sum::<f64>() / per_stream.len() as f64;
        match self {
            SchedulerObjective::Mean => mean,
            SchedulerObjective::MaxMin => {
                let min = per_stream.iter().cloned().fold(f64::INFINITY, f64::min);
                // Lexicographic (min, mean) folded into one scalar: mean is
                // bounded by 1, so a 1e-3 weight cannot override a min
                // difference at the scheduler's decision granularity.
                min + 1e-3 * mean
            }
        }
    }
}

/// Scheduler parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchedulerParams {
    /// Total GPUs `G` on the edge server.
    pub total_gpus: f64,
    /// Smallest allocatable GPU fraction δ.
    pub granularity: f64,
    /// Stealing quantum Δ (a multiple of δ; Fig 10 sweeps this).
    pub delta: f64,
    /// Estimation parameters (`a_MIN`, checkpointing).
    pub estimate: EstimateParams,
    /// Cross-stream aggregate to optimise.
    pub objective: SchedulerObjective,
    /// Extra windows of serving credited to the post-retraining model
    /// when comparing configurations (an extension beyond Eq. 1, which
    /// scores the current window only). A retrained model keeps serving
    /// *after* its window ends, so a configuration that spends most of
    /// the window training to a strong model is worth more than Eq. 1's
    /// within-window average admits; pure per-window greedy reliably
    /// picks throwaway cheap configurations and loses to a static
    /// baseline over multi-window runs. Retraining must still *complete*
    /// within the real window (Eq. 1 constraint 1) — only the averaging
    /// horizon is extended. 0 restores the paper's myopic objective.
    pub lookahead_windows: f64,
}

impl SchedulerParams {
    /// Paper-default parameters for a given GPU count: δ = Δ = 0.1 GPU,
    /// `a_MIN` = 0.4, mean objective, one window of lookahead.
    pub fn new(total_gpus: f64) -> Self {
        Self {
            total_gpus,
            granularity: 0.1,
            delta: 0.1,
            estimate: EstimateParams::default(),
            objective: SchedulerObjective::Mean,
            lookahead_windows: 1.0,
        }
    }
}

/// A retraining job already running when the scheduler is re-invoked
/// mid-window; its configuration is pinned (§5) but its allocation may
/// change.
#[derive(Debug, Clone)]
pub struct InProgressRetrain {
    /// The pinned configuration.
    pub config: RetrainConfig,
    /// Its learning curve (possibly corrected mid-window, §5).
    pub curve: LearningCurve,
    /// Progress already made, in full-pool epoch equivalents.
    pub k_done: f64,
    /// GPU-seconds still required at 100% allocation.
    pub gpu_seconds_remaining: f64,
}

/// Per-stream scheduler inputs.
#[derive(Debug, Clone)]
pub struct StreamInput<'a> {
    /// Stream identity (for reporting).
    pub id: StreamId,
    /// Accuracy of the currently deployed model on current data.
    pub serving_accuracy: f64,
    /// Micro-profiled retraining candidates (empty ⇒ retraining cannot be
    /// chosen for this stream).
    pub retrain_profiles: &'a [RetrainProfile],
    /// Inference configuration profiles.
    pub infer_profiles: &'a [InferenceProfile],
    /// Retraining already in flight (mid-window rescheduling).
    pub in_progress: Option<InProgressRetrain>,
}

/// The retraining decision for one stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RetrainChoice {
    /// Do not retrain in this window.
    Skip,
    /// Start retraining with `retrain_profiles[profile_idx]`.
    Start {
        /// Index into the stream's `retrain_profiles`.
        profile_idx: usize,
    },
    /// Continue the pinned in-progress retraining.
    Continue,
}

/// Scheduler output for one stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamDecision {
    /// Stream identity.
    pub id: StreamId,
    /// Retraining decision.
    pub retrain: RetrainChoice,
    /// GPUs allocated to retraining.
    pub train_gpus: f64,
    /// Index into the stream's `infer_profiles` of the chosen inference
    /// configuration (`None` when no configuration can keep up — the
    /// stream is starved and contributes zero accuracy).
    pub infer_profile_idx: Option<usize>,
    /// GPUs allocated to inference.
    pub infer_gpus: f64,
    /// The accuracy estimate backing this decision.
    pub estimate: AccuracyEstimate,
}

/// A complete schedule for one (remaining) window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    /// Per-stream decisions, in input order.
    pub decisions: Vec<StreamDecision>,
    /// Estimated inference accuracy averaged over streams and the window
    /// (the objective of Eq. 1).
    pub avg_accuracy: f64,
    /// Number of `PickConfigs` evaluations performed (for the Fig 10
    /// runtime analysis).
    pub evaluations: usize,
}

impl Schedule {
    /// Total GPUs allocated across all jobs.
    pub fn total_allocated(&self) -> f64 {
        self.decisions.iter().map(|d| d.train_gpus + d.infer_gpus).sum()
    }
}

/// Per-stream outcome of one `PickConfigs` evaluation.
#[derive(Debug, Clone)]
struct StreamEval {
    retrain: RetrainChoice,
    infer_profile_idx: Option<usize>,
    estimate: AccuracyEstimate,
}

/// The accuracy-averaging horizon for one evaluation: the (remaining)
/// window stretched by the lookahead credit. Shared by the thief and the
/// knapsack oracle so both optimise the *same* objective — the tests
/// bound one against the other.
pub(crate) fn eval_horizon_secs(horizon_secs: f64, lookahead_windows: f64) -> f64 {
    horizon_secs * (1.0 + lookahead_windows.max(0.0))
}

/// Eq. 1 constraint 1: retraining must finish within the *real*
/// (remaining) window — the lookahead extends the averaging horizon only.
pub(crate) fn completes_within(estimate: &AccuracyEstimate, horizon_secs: f64) -> bool {
    estimate.retrain_duration_secs <= horizon_secs + 1e-9
}

/// Runs Algorithm 2 for a single stream under the given allocations.
///
/// Estimates average over [`eval_horizon_secs`] (the post-retraining
/// model keeps serving beyond the window), while retraining must still
/// complete within the real `horizon_secs` ([`completes_within`]).
fn pick_configs_for_stream(
    stream: &StreamInput<'_>,
    train_alloc: f64,
    infer_alloc: f64,
    horizon_secs: f64,
    lookahead_windows: f64,
    params: &EstimateParams,
) -> StreamEval {
    const EPS: f64 = 1e-9;
    let eval_horizon = eval_horizon_secs(horizon_secs, lookahead_windows);
    let zero_estimate = AccuracyEstimate {
        avg_accuracy: 0.0,
        min_accuracy: 0.0,
        retrain_duration_secs: 0.0,
        end_model_accuracy: stream.serving_accuracy,
        completes: true,
    };

    // ---- Inference configuration (Algorithm 2, lines 3-4). ----
    // Among configurations that keep up under `infer_alloc`, prefer those
    // meeting a_MIN on the *current* model; fall back to the most accurate
    // feasible one when the floor is unreachable.
    let Some(infer_idx) = crate::estimator::pick_best_infer(
        stream.infer_profiles,
        infer_alloc,
        stream.serving_accuracy,
        params.a_min,
    ) else {
        return StreamEval {
            retrain: RetrainChoice::Skip,
            infer_profile_idx: None,
            estimate: zero_estimate,
        };
    };
    let infer = &stream.infer_profiles[infer_idx];
    // After a retraining completes, the scheduler re-runs and inference
    // reclaims the training GPUs (§4.2) — the estimate's post-completion
    // phase uses the best configuration feasible at the combined share.
    let infer_after = crate::estimator::pick_best_infer(
        stream.infer_profiles,
        infer_alloc + train_alloc,
        stream.serving_accuracy,
        params.a_min,
    )
    .map(|i| &stream.infer_profiles[i]);

    // ---- Retraining configuration (Algorithm 2, lines 6-12). ----
    let mut best: Option<(RetrainChoice, AccuracyEstimate)> = None;
    let mut consider = |choice: RetrainChoice, est: Option<AccuracyEstimate>| {
        let Some(est) = est else { return };
        let better = match &best {
            None => true,
            Some((_, cur)) => est.avg_accuracy > cur.avg_accuracy + EPS,
        };
        if better {
            best = Some((choice, est));
        }
    };

    if let Some(ip) = &stream.in_progress {
        // Mid-window: the configuration is pinned; only Continue applies.
        let work = RetrainWork {
            curve: &ip.curve,
            k_total: ip.config.k_total(),
            k_done: ip.k_done,
            gpu_seconds_remaining: ip.gpu_seconds_remaining,
        };
        consider(
            RetrainChoice::Continue,
            estimate_window(
                Some(&work),
                stream.serving_accuracy,
                infer,
                infer_after,
                train_alloc,
                infer_alloc,
                eval_horizon,
                params,
            ),
        );
    } else {
        // Option γ = ∅: skip retraining this window.
        consider(
            RetrainChoice::Skip,
            estimate_window(
                None,
                stream.serving_accuracy,
                infer,
                None,
                0.0,
                infer_alloc,
                eval_horizon,
                params,
            ),
        );
        for (idx, profile) in stream.retrain_profiles.iter().enumerate() {
            let work = RetrainWork {
                curve: &profile.curve,
                k_total: profile.config.k_total(),
                k_done: 0.0,
                gpu_seconds_remaining: profile.total_gpu_seconds(),
            };
            let est = estimate_window(
                Some(&work),
                stream.serving_accuracy,
                infer,
                infer_after,
                train_alloc,
                infer_alloc,
                eval_horizon,
                params,
            );
            // Reject configurations whose retraining cannot finish within
            // the *real* window at this allocation (Eq. 1 constraint 1).
            let est = est.filter(|e| completes_within(e, horizon_secs));
            consider(RetrainChoice::Start { profile_idx: idx }, est);
        }
    }

    match best {
        Some((choice, est)) => {
            StreamEval { retrain: choice, infer_profile_idx: Some(infer_idx), estimate: est }
        }
        None => StreamEval {
            retrain: RetrainChoice::Skip,
            infer_profile_idx: Some(infer_idx),
            estimate: zero_estimate,
        },
    }
}

/// The thief scheduler (Algorithm 1).
///
/// `horizon_secs` is the (remaining) window duration ‖T‖. Returns the
/// per-stream allocations, configuration choices, and the estimated
/// accuracy averaged over the lookahead-extended horizon (exactly the
/// window average when `lookahead_windows` is 0 — see
/// [`SchedulerParams::lookahead_windows`]).
pub fn thief_schedule(
    streams: &[StreamInput<'_>],
    horizon_secs: f64,
    params: &SchedulerParams,
) -> Schedule {
    let n = streams.len();
    if n == 0 {
        return Schedule { decisions: Vec::new(), avg_accuracy: 0.0, evaluations: 0 };
    }
    assert!(params.total_gpus > 0.0, "need at least some GPU");
    assert!(params.granularity > 0.0, "granularity must be positive");

    // Allocations are tracked in exact milli-GPU units: Algorithm 1 starts
    // from the *exact* fair share (line 2) and only the stealing moves in
    // Δ quanta. Flooring the fair share to Δ multiples would start some
    // jobs at zero whenever jobs outnumber G/Δ — a regime the paper's
    // evaluation exercises routinely (10 streams on 1 GPU).
    const MILLI: f64 = 1e-3;
    // Floor, not round: rounding up would let the integer representation
    // exceed a fractional GPU budget by up to half a milli-GPU.
    let units_total = (params.total_gpus / MILLI).floor().max(1.0) as i64;
    let delta_units = ((params.delta / MILLI).round() as i64).max(1);
    let num_jobs = 2 * n; // job 2i = inference, job 2i+1 = training

    // Fair initial allocation (Algorithm 1, line 2): equal units per job,
    // remainder spread round-robin.
    let mut alloc: Vec<i64> = vec![units_total / num_jobs as i64; num_jobs];
    for extra in alloc.iter_mut().take((units_total % num_jobs as i64) as usize) {
        *extra += 1;
    }

    // Cache of per-stream evaluations keyed by (stream, infer, train units)
    // — each steal touches two jobs, so most streams are unchanged.
    let mut cache: BTreeMap<(usize, i64, i64), StreamEval> = BTreeMap::new();
    let mut evaluations = 0usize;

    let gran = MILLI;
    // `evaluate` returns (per-stream evals, objective score, mean
    // accuracy); the thief compares scores, the schedule reports the mean.
    let evaluate = |alloc: &[i64],
                    cache: &mut BTreeMap<(usize, i64, i64), StreamEval>,
                    evals: &mut usize|
     -> (Vec<StreamEval>, f64, f64) {
        let mut evals_out = Vec::with_capacity(n);
        let mut per_stream = Vec::with_capacity(n);
        for (s, stream) in streams.iter().enumerate() {
            let iu = alloc[2 * s];
            let tu = alloc[2 * s + 1];
            let eval = cache
                .entry((s, iu, tu))
                .or_insert_with(|| {
                    *evals += 1;
                    pick_configs_for_stream(
                        stream,
                        tu as f64 * gran,
                        iu as f64 * gran,
                        horizon_secs,
                        params.lookahead_windows,
                        &params.estimate,
                    )
                })
                .clone();
            per_stream.push(eval.estimate.avg_accuracy);
            evals_out.push(eval);
        }
        let mean = per_stream.iter().sum::<f64>() / n as f64;
        (evals_out, params.objective.score(&per_stream), mean)
    };

    let (mut best_evals, mut best_score, mut best_mean) =
        evaluate(&alloc, &mut cache, &mut evaluations);
    let mut best_alloc = alloc;

    // Thief resource stealing (Algorithm 1, lines 4-20).
    for thief in 0..num_jobs {
        for victim in 0..num_jobs {
            if thief == victim {
                continue;
            }
            let mut temp = best_alloc.clone();
            loop {
                // Steal a partial quantum when the victim holds less than
                // Δ: under contention the fair share starts *below* Δ
                // (e.g. 10 streams on 1 GPU ⇒ 0.05/job), and refusing
                // sub-Δ steals would freeze Algorithm 1 at the fair
                // allocation — unable to ever pause one stream's
                // retraining to let another's complete, which is the
                // scheduler's entire job in that regime.
                let steal = delta_units.min(temp[victim]);
                if steal <= 0 {
                    break;
                }
                temp[victim] -= steal;
                temp[thief] += steal;
                let (evals, score, mean) = evaluate(&temp, &mut cache, &mut evaluations);
                if score > best_score + 1e-12 {
                    // Logical-plane telemetry: an *accepted* steal with its
                    // before/after quanta. Allocations are exact integer
                    // units and the search is sequential, so the event
                    // stream is a pure function of the inputs.
                    if ekya_telemetry::enabled() {
                        ekya_telemetry::event(
                            "core.scheduler",
                            "steal",
                            &format!(
                                "thief={thief} victim={victim} units={steal} \
                                 thief_units={}->{} victim_units={}->{}",
                                temp[thief] - steal,
                                temp[thief],
                                temp[victim] + steal,
                                temp[victim]
                            ),
                        );
                    }
                    best_alloc = temp.clone();
                    best_score = score;
                    best_mean = mean;
                    best_evals = evals;
                } else {
                    break;
                }
            }
        }
    }

    let decisions = streams
        .iter()
        .zip(best_evals)
        .enumerate()
        .map(|(s, (stream, eval))| StreamDecision {
            id: stream.id,
            retrain: eval.retrain,
            train_gpus: best_alloc[2 * s + 1] as f64 * gran,
            infer_profile_idx: eval.infer_profile_idx,
            infer_gpus: best_alloc[2 * s] as f64 * gran,
            estimate: eval.estimate,
        })
        .collect();

    if ekya_telemetry::enabled() {
        ekya_telemetry::counter_add("core.scheduler", "evaluations", evaluations as u64);
        ekya_telemetry::span(
            "core.scheduler",
            "thief_schedule",
            evaluations as f64,
            &format!("streams={n} avg_accuracy={best_mean:.6}"),
        );
    }

    Schedule { decisions, avg_accuracy: best_mean, evaluations }
}

/// Convenience: evaluates a *fixed* allocation (no stealing), used by the
/// `Ekya-FixedRes` ablation (Fig 8) and the uniform baseline's accuracy
/// accounting. `alloc` lists `(infer_gpus, train_gpus)` per stream.
pub fn pick_configs_fixed(
    streams: &[StreamInput<'_>],
    alloc: &[(f64, f64)],
    horizon_secs: f64,
    params: &SchedulerParams,
) -> Schedule {
    assert_eq!(streams.len(), alloc.len(), "one allocation pair per stream");
    let mut decisions = Vec::with_capacity(streams.len());
    let mut total = 0.0;
    for (stream, &(infer_gpus, train_gpus)) in streams.iter().zip(alloc) {
        let eval = pick_configs_for_stream(
            stream,
            train_gpus,
            infer_gpus,
            horizon_secs,
            params.lookahead_windows,
            &params.estimate,
        );
        total += eval.estimate.avg_accuracy;
        decisions.push(StreamDecision {
            id: stream.id,
            retrain: eval.retrain,
            train_gpus,
            infer_profile_idx: eval.infer_profile_idx,
            infer_gpus,
            estimate: eval.estimate,
        });
    }
    let n = streams.len().max(1);
    Schedule { decisions, avg_accuracy: total / n as f64, evaluations: streams.len() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{default_inference_grid, InferenceConfig};
    use crate::profile::build_inference_profiles;
    use ekya_nn::cost::CostModel;

    fn infer_profiles() -> Vec<InferenceProfile> {
        build_inference_profiles(&CostModel::default(), 1.0, 30.0, &default_inference_grid())
    }

    fn retrain_profile(
        epochs: u32,
        data_fraction: f64,
        gpu_s_per_epoch: f64,
        start: f64,
        asymptote: f64,
    ) -> RetrainProfile {
        // Curve anchored near `start` at k = 0 rising to `asymptote`.
        let b = 1.0 / (asymptote - start).max(1e-3);
        RetrainProfile {
            config: RetrainConfig {
                epochs,
                batch_size: 32,
                last_layer_neurons: 16,
                layers_trained: 3,
                data_fraction,
            },
            curve: LearningCurve { a: 1.0, b, c: asymptote },
            gpu_seconds_per_epoch: gpu_s_per_epoch,
        }
    }

    fn stream<'a>(
        id: u32,
        serving: f64,
        retrain: &'a [RetrainProfile],
        infer: &'a [InferenceProfile],
    ) -> StreamInput<'a> {
        StreamInput {
            id: StreamId(id),
            serving_accuracy: serving,
            retrain_profiles: retrain,
            infer_profiles: infer,
            in_progress: None,
        }
    }

    #[test]
    fn empty_input_yields_empty_schedule() {
        let s = thief_schedule(&[], 200.0, &SchedulerParams::new(1.0));
        assert!(s.decisions.is_empty());
        assert_eq!(s.avg_accuracy, 0.0);
    }

    #[test]
    fn allocation_never_exceeds_total() {
        let infer = infer_profiles();
        let retrain = vec![retrain_profile(10, 1.0, 5.0, 0.5, 0.9)];
        let streams: Vec<StreamInput> = (0..4).map(|i| stream(i, 0.5, &retrain, &infer)).collect();
        let params = SchedulerParams::new(2.0);
        let s = thief_schedule(&streams, 200.0, &params);
        assert!(s.total_allocated() <= params.total_gpus + 1e-9);
    }

    #[test]
    fn beneficial_retraining_is_chosen() {
        let infer = infer_profiles();
        // Large accuracy gain, cheap retraining: must be picked.
        let retrain = vec![retrain_profile(10, 1.0, 2.0, 0.4, 0.95)];
        let streams = vec![stream(0, 0.4, &retrain, &infer)];
        let s = thief_schedule(&streams, 200.0, &SchedulerParams::new(2.0));
        assert!(
            matches!(s.decisions[0].retrain, RetrainChoice::Start { .. }),
            "expected retraining, got {:?}",
            s.decisions[0].retrain
        );
        assert!(s.decisions[0].train_gpus > 0.0);
    }

    #[test]
    fn useless_retraining_is_skipped() {
        let infer = infer_profiles();
        // Retrained accuracy no better than serving: skip and give all
        // resources to inference.
        let retrain = vec![retrain_profile(30, 1.0, 10.0, 0.85, 0.86)];
        let streams = vec![stream(0, 0.85, &retrain, &infer)];
        let s = thief_schedule(&streams, 200.0, &SchedulerParams::new(1.0));
        assert!(
            matches!(s.decisions[0].retrain, RetrainChoice::Skip),
            "expected skip, got {:?}",
            s.decisions[0].retrain
        );
    }

    #[test]
    fn prioritises_stream_with_larger_gain() {
        // Stream 0 gains little from retraining; stream 1 gains a lot
        // (§3.2's second improvement: prioritise higher-benefit retraining).
        let infer = infer_profiles();
        let small_gain = vec![retrain_profile(10, 1.0, 8.0, 0.70, 0.75)];
        let large_gain = vec![retrain_profile(10, 1.0, 8.0, 0.45, 0.90)];
        let streams =
            vec![stream(0, 0.70, &small_gain, &infer), stream(1, 0.45, &large_gain, &infer)];
        let s = thief_schedule(&streams, 200.0, &SchedulerParams::new(2.0));
        let d0 = &s.decisions[0];
        let d1 = &s.decisions[1];
        assert!(matches!(d1.retrain, RetrainChoice::Start { .. }), "high-gain stream must retrain");
        if matches!(d0.retrain, RetrainChoice::Start { .. }) {
            assert!(
                d1.train_gpus >= d0.train_gpus,
                "high-gain stream should get at least as much training GPU: {} vs {}",
                d1.train_gpus,
                d0.train_gpus
            );
        }
    }

    #[test]
    fn cheaper_config_preferred_when_resources_scarce() {
        // Two configs: expensive/high-accuracy and cheap/medium-accuracy.
        // With one GPU shared by 4 streams, the cheap one should win for
        // at least some stream (§3.2's first improvement).
        let infer = infer_profiles();
        let retrain = vec![
            retrain_profile(30, 1.0, 12.0, 0.5, 0.95), // 360 GPU-s: too slow
            retrain_profile(5, 0.3, 2.0, 0.5, 0.85),   // 10 GPU-s: quick win
        ];
        let streams: Vec<StreamInput> = (0..4).map(|i| stream(i, 0.5, &retrain, &infer)).collect();
        let s = thief_schedule(&streams, 200.0, &SchedulerParams::new(1.0));
        let picked_cheap = s
            .decisions
            .iter()
            .any(|d| matches!(d.retrain, RetrainChoice::Start { profile_idx: 1 }));
        assert!(picked_cheap, "cheap config should be selected under scarcity: {s:?}");
    }

    #[test]
    fn thief_beats_or_matches_fair_allocation() {
        let infer = infer_profiles();
        let retrain_a = vec![retrain_profile(10, 1.0, 6.0, 0.65, 0.75)];
        let retrain_b = vec![retrain_profile(10, 1.0, 6.0, 0.40, 0.90)];
        let streams =
            vec![stream(0, 0.65, &retrain_a, &infer), stream(1, 0.40, &retrain_b, &infer)];
        let params = SchedulerParams::new(3.0);
        let thief = thief_schedule(&streams, 120.0, &params);
        let fair = pick_configs_fixed(&streams, &[(0.75, 0.75), (0.75, 0.75)], 120.0, &params);
        assert!(
            thief.avg_accuracy >= fair.avg_accuracy - 1e-9,
            "thief {:.4} must be >= fair {:.4}",
            thief.avg_accuracy,
            fair.avg_accuracy
        );
    }

    #[test]
    fn in_progress_jobs_keep_config() {
        let infer = infer_profiles();
        let retrain = vec![retrain_profile(10, 1.0, 5.0, 0.5, 0.9)];
        let ip = InProgressRetrain {
            config: retrain[0].config,
            curve: retrain[0].curve,
            k_done: 5.0,
            gpu_seconds_remaining: 25.0,
        };
        let mut s = stream(0, 0.5, &retrain, &infer);
        s.in_progress = Some(ip);
        let sched = thief_schedule(&[s], 100.0, &SchedulerParams::new(1.0));
        assert!(
            matches!(sched.decisions[0].retrain, RetrainChoice::Continue),
            "in-flight retraining must continue: {:?}",
            sched.decisions[0].retrain
        );
    }

    #[test]
    fn starved_inference_contributes_zero() {
        // One stream, almost no GPU: even the cheapest inference config
        // cannot keep up, so the stream is starved.
        let infer = vec![InferenceProfile {
            config: InferenceConfig { frame_sampling: 1.0, resolution: 1.0 },
            accuracy_factor: 1.0,
            gpu_demand: 5.0, // needs five GPUs
        }];
        let retrain: Vec<RetrainProfile> = vec![];
        let streams = vec![stream(0, 0.8, &retrain, &infer)];
        let s = thief_schedule(&streams, 200.0, &SchedulerParams::new(1.0));
        assert_eq!(s.decisions[0].infer_profile_idx, None);
        assert_eq!(s.avg_accuracy, 0.0);
    }

    #[test]
    fn smaller_delta_never_hurts_much() {
        // Finer stealing quanta explore a superset of coarse allocations
        // reachable from the same start, so accuracy should not degrade
        // meaningfully (Fig 10's premise).
        let infer = infer_profiles();
        let retrain =
            vec![retrain_profile(10, 1.0, 6.0, 0.5, 0.9), retrain_profile(5, 0.3, 2.0, 0.5, 0.8)];
        let streams: Vec<StreamInput> = (0..3).map(|i| stream(i, 0.5, &retrain, &infer)).collect();
        let coarse = thief_schedule(
            &streams,
            200.0,
            &SchedulerParams { delta: 1.0, ..SchedulerParams::new(2.0) },
        );
        let fine = thief_schedule(
            &streams,
            200.0,
            &SchedulerParams { delta: 0.1, ..SchedulerParams::new(2.0) },
        );
        assert!(fine.avg_accuracy >= coarse.avg_accuracy - 0.02);
        assert!(fine.evaluations >= coarse.evaluations);
    }

    #[test]
    fn schedule_is_deterministic() {
        let infer = infer_profiles();
        let retrain = vec![retrain_profile(10, 1.0, 5.0, 0.5, 0.9)];
        let streams: Vec<StreamInput> = (0..3).map(|i| stream(i, 0.5, &retrain, &infer)).collect();
        let params = SchedulerParams::new(2.0);
        let a = thief_schedule(&streams, 200.0, &params);
        let b = thief_schedule(&streams, 200.0, &params);
        assert_eq!(a.decisions, b.decisions);
    }

    #[test]
    fn a_min_floor_prefers_compliant_config() {
        // With serving accuracy 0.5 and a_min 0.4, full-quality inference
        // (af = 1.0) meets the floor while heavy subsampling (af ~ 0.6)
        // would not; the picked config must meet the floor when feasible.
        let infer = infer_profiles();
        let retrain: Vec<RetrainProfile> = vec![];
        let streams = vec![stream(0, 0.5, &retrain, &infer)];
        let s = thief_schedule(&streams, 200.0, &SchedulerParams::new(2.0));
        let idx = s.decisions[0].infer_profile_idx.unwrap();
        let af = infer[idx].accuracy_factor;
        assert!(0.5 * af >= 0.4 - 1e-9, "picked config violates a_min: af = {af}");
    }

    #[test]
    fn objective_score_mean_vs_maxmin() {
        let accs = [0.9, 0.3, 0.6];
        let mean = SchedulerObjective::Mean.score(&accs);
        assert!((mean - 0.6).abs() < 1e-12);
        let mm = SchedulerObjective::MaxMin.score(&accs);
        assert!((mm - (0.3 + 1e-3 * 0.6)).abs() < 1e-12);
        assert_eq!(SchedulerObjective::Mean.score(&[]), 0.0);
    }

    #[test]
    fn maxmin_objective_lifts_the_worst_stream() {
        // One stream with a huge retraining gain, one with a moderate one.
        // The mean objective concentrates on the big win; max-min must not
        // leave the weaker stream starved.
        let infer = infer_profiles();
        let big_gain = vec![retrain_profile(10, 1.0, 6.0, 0.30, 0.95)];
        let small_gain = vec![retrain_profile(10, 1.0, 6.0, 0.55, 0.70)];
        let streams =
            vec![stream(0, 0.30, &big_gain, &infer), stream(1, 0.55, &small_gain, &infer)];
        let mean_params = SchedulerParams::new(2.0);
        let mm_params =
            SchedulerParams { objective: SchedulerObjective::MaxMin, ..SchedulerParams::new(2.0) };
        let mean_sched = thief_schedule(&streams, 200.0, &mean_params);
        let mm_sched = thief_schedule(&streams, 200.0, &mm_params);
        let min_of = |s: &Schedule| {
            s.decisions.iter().map(|d| d.estimate.avg_accuracy).fold(f64::INFINITY, f64::min)
        };
        assert!(
            min_of(&mm_sched) >= min_of(&mean_sched) - 1e-9,
            "max-min should not have a worse minimum: {:.3} vs {:.3}",
            min_of(&mm_sched),
            min_of(&mean_sched)
        );
    }

    #[test]
    fn maxmin_never_exceeds_mean_on_mean_metric() {
        let infer = infer_profiles();
        let retrain = vec![retrain_profile(10, 1.0, 5.0, 0.5, 0.9)];
        let streams: Vec<StreamInput> =
            (0..3).map(|i| stream(i, 0.4 + 0.1 * i as f64, &retrain, &infer)).collect();
        let mean_sched = thief_schedule(&streams, 200.0, &SchedulerParams::new(2.0));
        let mm_sched = thief_schedule(
            &streams,
            200.0,
            &SchedulerParams { objective: SchedulerObjective::MaxMin, ..SchedulerParams::new(2.0) },
        );
        // The mean objective is by definition at least as good on mean
        // accuracy (both searched from the same start).
        assert!(mean_sched.avg_accuracy >= mm_sched.avg_accuracy - 0.02);
    }
}
