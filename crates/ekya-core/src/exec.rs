//! Retraining execution: stepping a real model through a configuration's
//! training run, epoch by epoch.
//!
//! Both the micro-profiler (which runs a few epochs on sampled data) and
//! the simulator's window runner (which runs the chosen configuration for
//! real, interleaved with discrete-event time) drive training through
//! [`RetrainExecution`], so profiling and execution share identical
//! semantics — the property that makes micro-profiled estimates
//! meaningful.

use crate::config::RetrainConfig;
use ekya_nn::data::{subsample, DataView, Sample};
use ekya_nn::mlp::{Mlp, Sgd};
use serde::{Deserialize, Serialize};

/// SGD hyperparameters shared by profiling and execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainHyper {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient.
    pub momentum: f32,
}

impl Default for TrainHyper {
    fn default() -> Self {
        Self { lr: 0.05, momentum: 0.9 }
    }
}

/// Builds the model variant a configuration trains: clones the serving
/// model, resizes the last hidden layer if the configuration asks for a
/// different width, and freezes all but the configured trailing layers.
pub fn build_variant(base: &Mlp, config: &RetrainConfig, seed: u64) -> Mlp {
    let mut model = base.clone();
    let current_width = model.arch().hidden.last().copied().unwrap_or(0);
    if current_width != config.last_layer_neurons as usize {
        model.resize_last_hidden(config.last_layer_neurons as usize, seed);
    }
    model.set_layers_trained(config.layers_trained as usize);
    model
}

/// An in-flight retraining run for one configuration.
#[derive(Debug, Clone)]
pub struct RetrainExecution {
    model: Mlp,
    opt: Sgd,
    data: Vec<Sample>,
    config: RetrainConfig,
    num_classes: usize,
    epochs_done: u32,
    seed: u64,
}

impl RetrainExecution {
    /// Prepares a retraining run: selects `config.data_fraction` of the
    /// window pool (uniformly at random, seeded) and builds the model
    /// variant.
    pub fn new(
        base_model: &Mlp,
        pool: &[Sample],
        config: RetrainConfig,
        num_classes: usize,
        hyper: TrainHyper,
        seed: u64,
    ) -> Self {
        let model = build_variant(base_model, &config, seed.wrapping_add(17));
        let data = subsample(pool, config.data_fraction, seed.wrapping_add(29));
        let opt = Sgd::new(&model, hyper.lr, hyper.momentum);
        Self { model, opt, data, config, num_classes, epochs_done: 0, seed }
    }

    /// Runs one epoch; returns the mean training loss. No-op once all
    /// configured epochs are done (returns 0).
    pub fn step_epoch(&mut self) -> f64 {
        if self.is_complete() {
            return 0.0;
        }
        let view = DataView::new(&self.data, self.num_classes);
        let loss = self.model.train_epoch(
            view,
            &mut self.opt,
            self.config.batch_size as usize,
            self.seed.wrapping_add(1000 + self.epochs_done as u64),
        );
        self.epochs_done += 1;
        loss
    }

    /// Runs all remaining epochs.
    pub fn run_to_completion(&mut self) {
        while !self.is_complete() {
            self.step_epoch();
        }
    }

    /// Epochs completed so far.
    pub fn epochs_done(&self) -> u32 {
        self.epochs_done
    }

    /// Epochs remaining.
    pub fn epochs_remaining(&self) -> u32 {
        self.config.epochs.saturating_sub(self.epochs_done)
    }

    /// Whether all configured epochs have run.
    pub fn is_complete(&self) -> bool {
        self.epochs_done >= self.config.epochs
    }

    /// Progress in full-pool epoch equivalents (the learning-curve `k`
    /// axis).
    pub fn k_done(&self) -> f64 {
        self.epochs_done as f64 * self.config.data_fraction
    }

    /// The configuration being executed.
    pub fn config(&self) -> &RetrainConfig {
        &self.config
    }

    /// Number of training samples selected for this run.
    pub fn num_samples(&self) -> usize {
        self.data.len()
    }

    /// The model in its current (possibly partially trained) state — used
    /// for checkpoint hot-swaps (§5) and for deployment on completion.
    pub fn model(&self) -> &Mlp {
        &self.model
    }

    /// Validation accuracy of the current model state.
    pub fn accuracy(&self, val: &[Sample]) -> f64 {
        self.model.accuracy(DataView::new(val, self.num_classes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ekya_nn::mlp::MlpArch;
    use rand::rngs::StdRng;
    use rand::Rng;
    use rand::SeedableRng;

    fn cfg(epochs: u32, frac: f64, layers: u32, neurons: u32) -> RetrainConfig {
        RetrainConfig {
            epochs,
            batch_size: 16,
            last_layer_neurons: neurons,
            layers_trained: layers,
            data_fraction: frac,
        }
    }

    fn toy_pool(n: usize, seed: u64) -> Vec<Sample> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let y = rng.gen_range(0..3usize);
                let base = y as f32 * 2.0 - 2.0;
                Sample::new(
                    vec![base + rng.gen_range(-0.4..0.4), -base + rng.gen_range(-0.4..0.4)],
                    y,
                )
            })
            .collect()
    }

    fn base_model() -> Mlp {
        Mlp::new(MlpArch { input_dim: 2, hidden: vec![8, 8], num_classes: 3 }, 3)
    }

    #[test]
    fn variant_respects_config() {
        let base = base_model();
        let v = build_variant(&base, &cfg(5, 1.0, 1, 16), 7);
        assert_eq!(*v.arch().hidden.last().unwrap(), 16);
        assert_eq!(v.layers_trained(), 1);
        // Same width requested: no resize.
        let v2 = build_variant(&base, &cfg(5, 1.0, 3, 8), 7);
        assert_eq!(*v2.arch().hidden.last().unwrap(), 8);
        assert_eq!(v2.layers_trained(), 3);
    }

    #[test]
    fn execution_steps_and_completes() {
        let pool = toy_pool(100, 1);
        let mut exec = RetrainExecution::new(
            &base_model(),
            &pool,
            cfg(4, 0.5, 3, 8),
            3,
            TrainHyper::default(),
            11,
        );
        assert_eq!(exec.num_samples(), 50);
        assert!(!exec.is_complete());
        for i in 1..=4 {
            exec.step_epoch();
            assert_eq!(exec.epochs_done(), i);
        }
        assert!(exec.is_complete());
        assert_eq!(exec.epochs_remaining(), 0);
        assert!((exec.k_done() - 2.0).abs() < 1e-12);
        // Extra steps are no-ops.
        assert_eq!(exec.step_epoch(), 0.0);
        assert_eq!(exec.epochs_done(), 4);
    }

    #[test]
    fn training_improves_accuracy() {
        let pool = toy_pool(200, 2);
        let val = toy_pool(100, 3);
        let mut exec = RetrainExecution::new(
            &base_model(),
            &pool,
            cfg(20, 1.0, 3, 8),
            3,
            TrainHyper::default(),
            13,
        );
        let before = exec.accuracy(&val);
        exec.run_to_completion();
        let after = exec.accuracy(&val);
        assert!(after > before, "training should improve: {before:.3} -> {after:.3}");
        assert!(after > 0.8, "toy problem should be learnable: {after:.3}");
    }

    #[test]
    fn execution_is_deterministic() {
        let pool = toy_pool(80, 4);
        let val = toy_pool(40, 5);
        let run = || {
            let mut e = RetrainExecution::new(
                &base_model(),
                &pool,
                cfg(5, 0.8, 3, 8),
                3,
                TrainHyper::default(),
                99,
            );
            e.run_to_completion();
            e.accuracy(&val)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn head_resize_resets_then_recovers() {
        let pool = toy_pool(200, 6);
        let val = toy_pool(100, 7);
        // Pre-train the base model.
        let mut pre = RetrainExecution::new(
            &base_model(),
            &pool,
            cfg(20, 1.0, 3, 8),
            3,
            TrainHyper::default(),
            15,
        );
        pre.run_to_completion();
        let trained = pre.model().clone();
        let trained_acc = pre.accuracy(&val);
        // Resize the head: accuracy drops initially, then retraining
        // recovers it.
        let mut resized = RetrainExecution::new(
            &trained,
            &pool,
            cfg(20, 1.0, 3, 16),
            3,
            TrainHyper::default(),
            16,
        );
        let fresh_head_acc = resized.accuracy(&val);
        assert!(fresh_head_acc < trained_acc, "fresh head should start worse");
        resized.run_to_completion();
        assert!(resized.accuracy(&val) > trained_acc - 0.1, "resized head should recover");
    }
}
