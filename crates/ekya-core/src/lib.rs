#![warn(missing_docs)]

//! # ekya-core — the paper's primary contribution
//!
//! Joint scheduling of DNN inference and continuous retraining on edge
//! servers, reproducing Ekya (Bhardwaj et al., NSDI 2022):
//!
//! * [`config`] — retraining (γ) and inference (λ) configuration spaces
//!   (§3.1);
//! * [`profile`] — resource/accuracy profiles and the Pareto frontier
//!   (Fig 3b);
//! * [`estimator`] — `EstimateAccuracy`: inference accuracy averaged over
//!   the retraining window, the paper's headline metric;
//! * [`scheduler`] — the thief scheduler (Algorithms 1 and 2, §4.2);
//! * [`microprofiler`] — the micro-profiler: early-terminated training on
//!   sampled data, NNLS curve extrapolation, history-based pruning (§4.3);
//! * [`knapsack`] — exact solver for the underlying multi-dimensional
//!   knapsack (Eq. 1), used as an oracle on small instances;
//! * [`adapt`] — mid-window estimate correction (§5);
//! * [`exec`] — real retraining execution shared by profiling and the
//!   simulator;
//! * [`policy`] — the policy trait the window runner is generic over, and
//!   [`policy::EkyaPolicy`] combining all of the above;
//! * [`hash`] — the workspace's one FNV-1a implementation (cell seeds,
//!   registry memo keys, trace and merge fingerprints).

pub mod adapt;
pub mod config;
pub mod estimator;
pub mod exec;
pub mod hash;
pub mod knapsack;
pub mod microprofiler;
pub mod policy;
pub mod profile;
pub mod scheduler;

pub use config::{
    default_inference_grid, default_retrain_grid, extended_retrain_grid, CurveKey, InferenceConfig,
    RetrainConfig,
};
pub use estimator::{estimate_window, AccuracyEstimate, EstimateParams, RetrainWork};
pub use exec::{build_variant, RetrainExecution, TrainHyper};
pub use hash::fnv1a;
pub use knapsack::optimal_schedule;
pub use microprofiler::{
    exhaustive_profile, profile_config, MicroProfiler, MicroProfilerParams, ProfileOutput,
};
pub use policy::{
    EkyaPolicy, InFlight, PlannedRetrain, Policy, PolicyCtx, PolicyStream, ReplanStream,
    StreamPlan, WindowPlan,
};
pub use profile::{
    build_inference_profiles, pareto_distance, pareto_frontier, InferenceProfile, RetrainProfile,
};
pub use scheduler::{
    pick_configs_fixed, thief_schedule, InProgressRetrain, RetrainChoice, Schedule,
    SchedulerObjective, SchedulerParams, StreamDecision, StreamInput,
};
