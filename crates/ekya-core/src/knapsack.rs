//! Exact solver for the joint optimisation problem (Eq. 1, §4.1).
//!
//! The paper shows the problem reduces to a multi-dimensional binary
//! knapsack once all `A_T(v, γ, λ, R, I)` values are known. For small
//! instances this module solves it exactly by dynamic programming over
//! the GPU capacity, which serves two purposes: it is the
//! *accuracy-optimal* reference scheduler of the illustrative example
//! (Fig 4 / Table 1), and it bounds how far the thief heuristic is from
//! optimal in tests.
//!
//! Complexity is `O(V * U^2 * (|Γ|+1))` where `U = G/δ` allocation units —
//! exponentially better than brute force but still far too slow for the
//! online setting (which is why Ekya uses the thief heuristic).

use crate::estimator::{estimate_window, RetrainWork};
use crate::scheduler::{RetrainChoice, Schedule, SchedulerParams, StreamDecision, StreamInput};

/// Best achievable value for one stream at a given `(infer_units,
/// train_units)` split, together with the choices that achieve it.
#[derive(Debug, Clone)]
struct SplitEval {
    value: f64,
    retrain: RetrainChoice,
    infer_idx: Option<usize>,
    estimate: crate::estimator::AccuracyEstimate,
}

/// Evaluates the best configuration pair for a stream at a fixed split.
fn best_for_split(
    stream: &StreamInput<'_>,
    infer_units: i64,
    train_units: i64,
    gran: f64,
    horizon: f64,
    params: &SchedulerParams,
) -> SplitEval {
    let infer_alloc = infer_units as f64 * gran;
    let train_alloc = train_units as f64 * gran;
    // Same objective as the thief: average over the lookahead-extended
    // horizon, completion constrained to the real window.
    let eval_horizon = crate::scheduler::eval_horizon_secs(horizon, params.lookahead_windows);
    let mut best = SplitEval {
        value: 0.0,
        retrain: RetrainChoice::Skip,
        infer_idx: None,
        estimate: crate::estimator::AccuracyEstimate {
            avg_accuracy: 0.0,
            min_accuracy: 0.0,
            retrain_duration_secs: 0.0,
            end_model_accuracy: stream.serving_accuracy,
            completes: true,
        },
    };
    // Post-completion inference configuration: the best one feasible at
    // the combined allocation (the scheduler re-runs on completion and
    // inference reclaims the training GPUs).
    let infer_after = crate::estimator::pick_best_infer(
        stream.infer_profiles,
        infer_alloc + train_alloc,
        stream.serving_accuracy,
        params.estimate.a_min,
    )
    .map(|i| &stream.infer_profiles[i]);
    for (li, infer) in stream.infer_profiles.iter().enumerate() {
        // γ = ∅ option.
        if let Some(est) = estimate_window(
            None,
            stream.serving_accuracy,
            infer,
            None,
            0.0,
            infer_alloc,
            eval_horizon,
            &params.estimate,
        ) {
            if est.avg_accuracy > best.value {
                best = SplitEval {
                    value: est.avg_accuracy,
                    retrain: RetrainChoice::Skip,
                    infer_idx: Some(li),
                    estimate: est,
                };
            }
        }
        for (gi, profile) in stream.retrain_profiles.iter().enumerate() {
            let work = RetrainWork {
                curve: &profile.curve,
                k_total: profile.config.k_total(),
                k_done: 0.0,
                gpu_seconds_remaining: profile.total_gpu_seconds(),
            };
            let est = estimate_window(
                Some(&work),
                stream.serving_accuracy,
                infer,
                infer_after,
                train_alloc,
                infer_alloc,
                eval_horizon,
                &params.estimate,
            );
            let Some(est) = est.filter(|e| crate::scheduler::completes_within(e, horizon)) else {
                continue;
            };
            if est.avg_accuracy > best.value {
                best = SplitEval {
                    value: est.avg_accuracy,
                    retrain: RetrainChoice::Start { profile_idx: gi },
                    infer_idx: Some(li),
                    estimate: est,
                };
            }
        }
    }
    best
}

/// Solves Eq. 1 exactly by capacity DP. Intended for *small* instances
/// (a few streams, coarse granularity); cost grows quadratically with
/// `G/δ`.
pub fn optimal_schedule(
    streams: &[StreamInput<'_>],
    horizon_secs: f64,
    params: &SchedulerParams,
) -> Schedule {
    let n = streams.len();
    if n == 0 {
        return Schedule { decisions: Vec::new(), avg_accuracy: 0.0, evaluations: 0 };
    }
    let gran = params.granularity;
    let units_total = (params.total_gpus / gran).round().max(0.0) as i64;
    let u = units_total as usize;
    let mut evaluations = 0usize;

    // Per stream: for every total weight w (= infer + train units), the
    // best achievable value and the split/configs achieving it.
    let mut stream_tables: Vec<Vec<SplitEval>> = Vec::with_capacity(n);
    let mut stream_splits: Vec<Vec<(i64, i64)>> = Vec::with_capacity(n);
    for stream in streams {
        let mut best_by_weight: Vec<SplitEval> = Vec::with_capacity(u + 1);
        let mut split_by_weight: Vec<(i64, i64)> = Vec::with_capacity(u + 1);
        for w in 0..=units_total {
            let mut best: Option<(SplitEval, (i64, i64))> = None;
            for infer_units in 0..=w {
                let train_units = w - infer_units;
                let eval =
                    best_for_split(stream, infer_units, train_units, gran, horizon_secs, params);
                evaluations += 1;
                let better = best.as_ref().map(|(b, _)| eval.value > b.value).unwrap_or(true);
                if better {
                    best = Some((eval, (infer_units, train_units)));
                }
            }
            let (eval, split) = best.expect("at least one split exists");
            best_by_weight.push(eval);
            split_by_weight.push(split);
        }
        stream_tables.push(best_by_weight);
        stream_splits.push(split_by_weight);
    }

    // Knapsack DP over capacity; `choice[s][cap]` records the weight
    // assigned to stream s when the first s+1 streams use exactly `cap`
    // units. The final answer takes the best over all capacities, so no
    // monotone fixup is needed.
    let neg = f64::NEG_INFINITY;
    let mut dp = vec![0.0f64; u + 1];
    let mut choice = vec![vec![0usize; u + 1]; n];
    for s in 0..n {
        let mut next = vec![neg; u + 1];
        let mut pick = vec![0usize; u + 1];
        for cap in 0..=u {
            if dp[cap] == neg {
                continue;
            }
            for w in 0..=(u - cap) {
                let v = dp[cap] + stream_tables[s][w].value;
                if v > next[cap + w] {
                    next[cap + w] = v;
                    pick[cap + w] = w;
                }
            }
        }
        dp = next;
        choice[s] = pick;
    }

    let best_cap = (0..=u)
        .max_by(|&a, &b| dp[a].partial_cmp(&dp[b]).unwrap_or(std::cmp::Ordering::Equal))
        .unwrap_or(0);

    // Walk back through the DP to recover per-stream weights.
    let mut weights = vec![0usize; n];
    let mut cap = best_cap;
    for s in (0..n).rev() {
        let w = choice[s][cap];
        weights[s] = w;
        cap -= w;
    }

    let decisions: Vec<StreamDecision> = streams
        .iter()
        .enumerate()
        .map(|(s, stream)| {
            let w = weights[s];
            let eval = &stream_tables[s][w];
            let (iu, tu) = stream_splits[s][w];
            StreamDecision {
                id: stream.id,
                retrain: eval.retrain,
                train_gpus: tu as f64 * gran,
                infer_profile_idx: eval.infer_idx,
                infer_gpus: iu as f64 * gran,
                estimate: eval.estimate,
            }
        })
        .collect();
    let avg = decisions.iter().map(|d| d.estimate.avg_accuracy).sum::<f64>() / n as f64;
    Schedule { decisions, avg_accuracy: avg, evaluations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{default_inference_grid, RetrainConfig};
    use crate::profile::{build_inference_profiles, InferenceProfile, RetrainProfile};
    use crate::scheduler::thief_schedule;
    use ekya_nn::cost::CostModel;
    use ekya_nn::fit::LearningCurve;
    use ekya_video::StreamId;

    fn infer_profiles() -> Vec<InferenceProfile> {
        build_inference_profiles(&CostModel::default(), 1.0, 30.0, &default_inference_grid())
    }

    fn retrain_profile(
        epochs: u32,
        gpu_s_per_epoch: f64,
        start: f64,
        asymptote: f64,
    ) -> RetrainProfile {
        let b = 1.0 / (asymptote - start).max(1e-3);
        RetrainProfile {
            config: RetrainConfig {
                epochs,
                batch_size: 32,
                last_layer_neurons: 16,
                layers_trained: 3,
                data_fraction: 1.0,
            },
            curve: LearningCurve { a: 1.0, b, c: asymptote },
            gpu_seconds_per_epoch: gpu_s_per_epoch,
        }
    }

    #[test]
    fn optimal_allocates_within_budget() {
        let infer = infer_profiles();
        let retrain = vec![retrain_profile(10, 3.0, 0.5, 0.9)];
        let streams: Vec<StreamInput> = (0..2)
            .map(|i| StreamInput {
                id: StreamId(i),
                serving_accuracy: 0.5,
                retrain_profiles: &retrain,
                infer_profiles: &infer,
                in_progress: None,
            })
            .collect();
        let params = SchedulerParams { granularity: 0.25, ..SchedulerParams::new(1.0) };
        let s = optimal_schedule(&streams, 200.0, &params);
        assert!(s.total_allocated() <= params.total_gpus + 1e-9);
        assert!(s.avg_accuracy > 0.0);
    }

    #[test]
    fn optimal_at_least_matches_thief() {
        let infer = infer_profiles();
        let retrain_a = vec![retrain_profile(10, 4.0, 0.6, 0.8)];
        let retrain_b = vec![retrain_profile(10, 4.0, 0.4, 0.9)];
        let streams = vec![
            StreamInput {
                id: StreamId(0),
                serving_accuracy: 0.6,
                retrain_profiles: &retrain_a,
                infer_profiles: &infer,
                in_progress: None,
            },
            StreamInput {
                id: StreamId(1),
                serving_accuracy: 0.4,
                retrain_profiles: &retrain_b,
                infer_profiles: &infer,
                in_progress: None,
            },
        ];
        let params =
            SchedulerParams { granularity: 0.25, delta: 0.25, ..SchedulerParams::new(2.0) };
        let optimal = optimal_schedule(&streams, 120.0, &params);
        let thief = thief_schedule(&streams, 120.0, &params);
        assert!(
            optimal.avg_accuracy >= thief.avg_accuracy - 1e-9,
            "optimal {:.4} must be >= thief {:.4}",
            optimal.avg_accuracy,
            thief.avg_accuracy
        );
        // And the heuristic should be close (within 10% relative).
        assert!(
            thief.avg_accuracy >= optimal.avg_accuracy * 0.9,
            "thief {:.4} too far below optimal {:.4}",
            thief.avg_accuracy,
            optimal.avg_accuracy
        );
    }

    #[test]
    fn empty_streams_ok() {
        let s = optimal_schedule(&[], 100.0, &SchedulerParams::new(1.0));
        assert!(s.decisions.is_empty());
    }

    #[test]
    fn single_stream_gets_everything_useful() {
        let infer = infer_profiles();
        let retrain = vec![retrain_profile(10, 2.0, 0.4, 0.95)];
        let streams = vec![StreamInput {
            id: StreamId(0),
            serving_accuracy: 0.4,
            retrain_profiles: &retrain,
            infer_profiles: &infer,
            in_progress: None,
        }];
        let params = SchedulerParams { granularity: 0.25, ..SchedulerParams::new(1.0) };
        let s = optimal_schedule(&streams, 200.0, &params);
        // Retraining is hugely beneficial; the oracle must pick it.
        assert!(matches!(s.decisions[0].retrain, RetrainChoice::Start { .. }));
    }
}
