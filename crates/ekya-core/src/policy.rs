//! The scheduling-policy interface between the window runner and the
//! schedulers, plus Ekya's own policy (thief scheduler + micro-profiles).
//!
//! The simulator's window runner (in `ekya-sim`) is generic over
//! [`Policy`], so the paper's baselines — uniform schedulers, ablations,
//! cloud offload, cached models (implemented in `ekya-baselines`) — plug
//! into the exact same execution loop as Ekya itself, which is what makes
//! the evaluation comparisons apples-to-apples.

use crate::config::{InferenceConfig, RetrainConfig};
use crate::profile::{InferenceProfile, RetrainProfile};
use crate::scheduler::{
    thief_schedule, InProgressRetrain, RetrainChoice, SchedulerParams, StreamInput,
};
use ekya_video::StreamId;
use serde::{Deserialize, Serialize};

/// Per-stream facts available to a policy when planning a window.
#[derive(Debug, Clone)]
pub struct PolicyStream<'a> {
    /// Stream identity.
    pub id: StreamId,
    /// Frame rate of the live stream.
    pub fps: f64,
    /// Accuracy of the currently deployed model on this window's data.
    pub serving_accuracy: f64,
    /// Class distribution of this window's (teacher-labelled) data.
    pub class_dist: &'a [f64],
    /// Appearance-drift magnitude since the previous window.
    pub drift_magnitude: f64,
    /// Micro-profiled retraining candidates (empty when the runner was
    /// told the policy does not need profiles).
    pub retrain_profiles: &'a [RetrainProfile],
    /// Inference configuration profiles.
    pub infer_profiles: &'a [InferenceProfile],
}

/// Everything a policy sees at window-planning time.
#[derive(Debug, Clone)]
pub struct PolicyCtx<'a> {
    /// Index of the retraining window being planned.
    pub window_idx: usize,
    /// Window duration ‖T‖ in seconds.
    pub window_secs: f64,
    /// Total GPUs on the edge server.
    pub total_gpus: f64,
    /// Per-stream inputs.
    pub streams: Vec<PolicyStream<'a>>,
}

/// A planned retraining job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlannedRetrain {
    /// The configuration to run.
    pub config: RetrainConfig,
    /// GPUs allocated to the retraining job.
    pub gpus: f64,
}

/// The plan for one stream in one window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamPlan {
    /// Retraining job, or `None` to skip retraining this window.
    pub retrain: Option<PlannedRetrain>,
    /// Chosen inference configuration.
    pub infer_config: InferenceConfig,
    /// GPUs allocated to the inference job.
    pub infer_gpus: f64,
}

/// A full window plan, one entry per stream (in `PolicyCtx::streams`
/// order).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowPlan {
    /// Per-stream plans.
    pub streams: Vec<StreamPlan>,
}

impl WindowPlan {
    /// Total GPUs the plan allocates.
    pub fn total_gpus(&self) -> f64 {
        self.streams.iter().map(|s| s.infer_gpus + s.retrain.map(|r| r.gpus).unwrap_or(0.0)).sum()
    }
}

/// In-flight retraining state passed to [`Policy::replan`] (one entry per
/// stream; `None` when the stream is not retraining or already finished).
pub type InFlight = Option<InProgressRetrain>;

/// Allocation update produced by a mid-window replan. Configurations of
/// in-flight jobs are pinned; only allocations (and inference configs)
/// may change.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReplanStream {
    /// New inference configuration.
    pub infer_config: InferenceConfig,
    /// New inference allocation.
    pub infer_gpus: f64,
    /// New training allocation (0 for streams without in-flight work).
    pub train_gpus: f64,
}

/// A scheduling policy: decides configurations and allocations per window.
///
/// `Send` is a supertrait so boxed policies can be constructed on one
/// thread and driven on another — the experiment harness in `ekya-bench`
/// fans grid cells out across a worker pool, each cell owning its policy.
pub trait Policy: Send {
    /// Policy name for reports.
    fn name(&self) -> String;

    /// Whether the runner should micro-profile retraining configurations
    /// before calling [`Policy::plan_window`]. Baselines with fixed
    /// configurations return `false` and skip the profiling cost.
    fn needs_profiles(&self) -> bool {
        true
    }

    /// Plans the upcoming window.
    fn plan_window(&mut self, ctx: &PolicyCtx<'_>) -> WindowPlan;

    /// Called when a retraining job completes mid-window (§4.2: Algorithm
    /// 1 re-runs "on the completion of every training job"). Returns new
    /// allocations, or `None` to keep the current ones.
    fn replan(
        &mut self,
        _ctx: &PolicyCtx<'_>,
        _in_flight: &[InFlight],
        _remaining_secs: f64,
    ) -> Option<Vec<ReplanStream>> {
        None
    }
}

/// Ekya's policy: micro-profiled configurations + the thief scheduler.
#[derive(Debug, Clone)]
pub struct EkyaPolicy {
    params: SchedulerParams,
}

impl EkyaPolicy {
    /// Creates the policy with the given scheduler parameters.
    pub fn new(params: SchedulerParams) -> Self {
        Self { params }
    }

    /// The scheduler parameters in use.
    pub fn params(&self) -> &SchedulerParams {
        &self.params
    }

    fn to_stream_inputs<'a>(
        ctx: &'a PolicyCtx<'a>,
        in_flight: Option<&'a [InFlight]>,
    ) -> Vec<StreamInput<'a>> {
        ctx.streams
            .iter()
            .enumerate()
            .map(|(i, s)| {
                // During a mid-window replan, streams without in-flight
                // work may not start a *new* retraining (at most one
                // retraining per video per window — Eq. 1 constraint 3),
                // so their candidate list is emptied.
                let retrain_profiles = match in_flight {
                    Some(f) if f[i].is_none() => &[][..],
                    _ => s.retrain_profiles,
                };
                StreamInput {
                    id: s.id,
                    serving_accuracy: s.serving_accuracy,
                    retrain_profiles,
                    infer_profiles: s.infer_profiles,
                    in_progress: in_flight.and_then(|f| f[i].clone()),
                }
            })
            .collect()
    }
}

impl Policy for EkyaPolicy {
    fn name(&self) -> String {
        "Ekya".to_string()
    }

    fn plan_window(&mut self, ctx: &PolicyCtx<'_>) -> WindowPlan {
        let inputs = Self::to_stream_inputs(ctx, None);
        let schedule = thief_schedule(&inputs, ctx.window_secs, &self.params);
        let streams = schedule
            .decisions
            .iter()
            .enumerate()
            .map(|(i, d)| {
                let s = &ctx.streams[i];
                let retrain = match d.retrain {
                    RetrainChoice::Start { profile_idx } => Some(PlannedRetrain {
                        config: s.retrain_profiles[profile_idx].config,
                        gpus: d.train_gpus,
                    }),
                    _ => None,
                };
                let infer_config = d
                    .infer_profile_idx
                    .map(|idx| s.infer_profiles[idx].config)
                    .unwrap_or(InferenceConfig { frame_sampling: 0.05, resolution: 0.5 });
                StreamPlan { retrain, infer_config, infer_gpus: d.infer_gpus }
            })
            .collect();
        WindowPlan { streams }
    }

    fn replan(
        &mut self,
        ctx: &PolicyCtx<'_>,
        in_flight: &[InFlight],
        remaining_secs: f64,
    ) -> Option<Vec<ReplanStream>> {
        let inputs = Self::to_stream_inputs(ctx, Some(in_flight));
        // `lookahead_windows` is in full-window units, but the scheduler
        // scales it by whatever horizon it is handed. Mid-window the
        // horizon is the (shrinking) remainder, so compensate to keep the
        // post-retraining credit at `lookahead * window` — otherwise a
        // near-complete retrain gets almost no credit late in the window,
        // the exact myopia the lookahead exists to prevent.
        let mut params = self.params;
        if remaining_secs > 1e-9 {
            params.lookahead_windows =
                self.params.lookahead_windows * ctx.window_secs / remaining_secs;
        }
        let schedule = thief_schedule(&inputs, remaining_secs, &params);
        Some(
            schedule
                .decisions
                .iter()
                .enumerate()
                .map(|(i, d)| {
                    let s = &ctx.streams[i];
                    let infer_config = d
                        .infer_profile_idx
                        .map(|idx| s.infer_profiles[idx].config)
                        .unwrap_or(InferenceConfig { frame_sampling: 0.05, resolution: 0.5 });
                    let train_gpus = if in_flight[i].is_some() { d.train_gpus } else { 0.0 };
                    ReplanStream { infer_config, infer_gpus: d.infer_gpus, train_gpus }
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::default_inference_grid;
    use crate::profile::build_inference_profiles;
    use ekya_nn::cost::CostModel;
    use ekya_nn::fit::LearningCurve;

    fn mk_profiles() -> (Vec<RetrainProfile>, Vec<InferenceProfile>) {
        let retrain = vec![RetrainProfile {
            config: RetrainConfig {
                epochs: 10,
                batch_size: 32,
                last_layer_neurons: 16,
                layers_trained: 3,
                data_fraction: 1.0,
            },
            curve: LearningCurve { a: 1.0, b: 2.5, c: 0.9 },
            gpu_seconds_per_epoch: 4.0,
        }];
        let infer =
            build_inference_profiles(&CostModel::default(), 1.0, 30.0, &default_inference_grid());
        (retrain, infer)
    }

    #[test]
    fn ekya_policy_produces_feasible_plan() {
        let (retrain, infer) = mk_profiles();
        let class_dist = vec![1.0 / 6.0; 6];
        let ctx = PolicyCtx {
            window_idx: 0,
            window_secs: 200.0,
            total_gpus: 2.0,
            streams: (0..3)
                .map(|i| PolicyStream {
                    id: StreamId(i),
                    fps: 30.0,
                    serving_accuracy: 0.5,
                    class_dist: &class_dist,
                    drift_magnitude: 0.5,
                    retrain_profiles: &retrain,
                    infer_profiles: &infer,
                })
                .collect(),
        };
        let mut policy = EkyaPolicy::new(SchedulerParams::new(2.0));
        let plan = policy.plan_window(&ctx);
        assert_eq!(plan.streams.len(), 3);
        assert!(plan.total_gpus() <= 2.0 + 1e-9);
        assert!(policy.needs_profiles());
        assert_eq!(policy.name(), "Ekya");
    }

    #[test]
    fn replan_pins_in_flight_configs() {
        let (retrain, infer) = mk_profiles();
        let class_dist = vec![1.0 / 6.0; 6];
        let ctx = PolicyCtx {
            window_idx: 0,
            window_secs: 200.0,
            total_gpus: 2.0,
            streams: (0..2)
                .map(|i| PolicyStream {
                    id: StreamId(i),
                    fps: 30.0,
                    serving_accuracy: 0.6,
                    class_dist: &class_dist,
                    drift_magnitude: 0.2,
                    retrain_profiles: &retrain,
                    infer_profiles: &infer,
                })
                .collect(),
        };
        let mut policy = EkyaPolicy::new(SchedulerParams::new(2.0));
        // Stream 0 finished its retraining; stream 1 still in flight.
        let in_flight: Vec<InFlight> = vec![
            None,
            Some(InProgressRetrain {
                config: retrain[0].config,
                curve: retrain[0].curve,
                k_done: 5.0,
                gpu_seconds_remaining: 20.0,
            }),
        ];
        let replan = policy.replan(&ctx, &in_flight, 100.0).unwrap();
        assert_eq!(replan.len(), 2);
        // The finished stream gets no training GPUs.
        assert_eq!(replan[0].train_gpus, 0.0);
        // Budget still respected.
        let total: f64 = replan.iter().map(|r| r.infer_gpus + r.train_gpus).sum();
        assert!(total <= 2.0 + 1e-9);
    }
}
