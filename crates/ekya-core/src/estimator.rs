//! Window-averaged accuracy estimation (`EstimateAccuracy` in Algorithm 2).
//!
//! Ekya's headline metric is **inference accuracy averaged over the
//! retraining window** (§1, contribution 1): while a model retrains, the
//! old model keeps serving (possibly hot-swapped at checkpoints, §5); when
//! retraining completes, the improved model serves for the remainder of
//! the window. This module integrates that piecewise-constant accuracy
//! timeline for a candidate (retraining work, inference configuration,
//! GPU allocation) triple, scaling retraining time linearly with the
//! allocation exactly as the micro-profiler's measurements allow (§4.3,
//! opportunity (i)).

use crate::profile::InferenceProfile;
use ekya_nn::fit::LearningCurve;
use serde::{Deserialize, Serialize};

/// Description of (remaining) retraining work for one stream.
///
/// At window start `k_done = 0`; when the scheduler re-runs mid-window
/// (on another job's completion, §4.2), `k_done` reflects progress and
/// `gpu_seconds_remaining` the cost still to pay.
#[derive(Debug, Clone)]
pub struct RetrainWork<'a> {
    /// Accuracy learning curve over full-pool epoch equivalents.
    pub curve: &'a LearningCurve,
    /// Total `k` this configuration trains to.
    pub k_total: f64,
    /// Progress already made, in `k` units.
    pub k_done: f64,
    /// GPU-seconds still required at 100% allocation.
    pub gpu_seconds_remaining: f64,
}

/// Estimation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EstimateParams {
    /// Minimum instantaneous inference accuracy the application requires
    /// (`a_MIN`; 0.4 in the paper's Fig 4 example).
    pub a_min: f64,
    /// When set, the retraining job checkpoints every `Δk` of progress and
    /// the serving model is hot-swapped if the checkpoint is better (§5).
    pub checkpoint_every_k: Option<f64>,
}

impl Default for EstimateParams {
    fn default() -> Self {
        Self { a_min: 0.4, checkpoint_every_k: None }
    }
}

/// Result of estimating one candidate decision.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccuracyEstimate {
    /// Inference accuracy averaged over the horizon (the objective).
    pub avg_accuracy: f64,
    /// Minimum instantaneous inference accuracy over the horizon (checked
    /// against `a_min`).
    pub min_accuracy: f64,
    /// Wall-clock seconds until retraining completes (0 when there is no
    /// retraining; may exceed the horizon — see [`Self::completes`]).
    pub retrain_duration_secs: f64,
    /// Model accuracy at the end of the horizon (before the inference
    /// configuration's accuracy factor).
    pub end_model_accuracy: f64,
    /// Whether the retraining completes within the horizon. Decisions
    /// whose retraining exceeds the window are rejected by the scheduler
    /// (first constraint of Eq. 1).
    pub completes: bool,
}

/// Picks the highest-accuracy inference profile that keeps up under
/// `alloc`, preferring those whose delivered accuracy
/// (`model_accuracy x accuracy_factor`) meets `a_min`. Returns the index
/// into `profiles`, or `None` when nothing keeps up.
pub fn pick_best_infer(
    profiles: &[InferenceProfile],
    alloc: f64,
    model_accuracy: f64,
    a_min: f64,
) -> Option<usize> {
    const EPS: f64 = 1e-9;
    let feasible: Vec<usize> =
        (0..profiles.len()).filter(|&i| profiles[i].gpu_demand <= alloc + EPS).collect();
    if feasible.is_empty() {
        return None;
    }
    let best_by_af = |candidates: &[usize]| -> usize {
        *candidates
            .iter()
            .max_by(|&&a, &&b| {
                profiles[a]
                    .accuracy_factor
                    .partial_cmp(&profiles[b].accuracy_factor)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    // Tie-break: prefer lower GPU demand.
                    .then_with(|| {
                        profiles[b]
                            .gpu_demand
                            .partial_cmp(&profiles[a].gpu_demand)
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
            })
            .expect("non-empty candidates")
    };
    let meets_floor: Vec<usize> = feasible
        .iter()
        .copied()
        .filter(|&i| model_accuracy * profiles[i].accuracy_factor >= a_min - EPS)
        .collect();
    Some(if meets_floor.is_empty() { best_by_af(&feasible) } else { best_by_af(&meets_floor) })
}

/// Estimates the average inference accuracy over `horizon_secs`.
///
/// Returns `None` when the inference job cannot keep up with the live
/// stream under `infer_alloc` (the configuration is infeasible at this
/// allocation — Algorithm 2 line 3 filters these).
///
/// `serving_accuracy` is the accuracy of the currently deployed model on
/// the current window's data (i.e. *after* any drift-induced drop).
///
/// `infer_after` is the inference configuration used *after* retraining
/// completes: the scheduler re-runs on every completion (§4.2), returning
/// the training job's GPUs to inference, so the post-retraining phase can
/// run a richer configuration. Pass `None` to keep `infer` throughout
/// (e.g. when there is no retraining).
#[allow(clippy::too_many_arguments)] // mirrors Algorithm 2's parameter list
pub fn estimate_window(
    work: Option<&RetrainWork<'_>>,
    serving_accuracy: f64,
    infer: &InferenceProfile,
    infer_after: Option<&InferenceProfile>,
    train_alloc: f64,
    infer_alloc: f64,
    horizon_secs: f64,
    params: &EstimateParams,
) -> Option<AccuracyEstimate> {
    const EPS: f64 = 1e-9;
    if infer.gpu_demand > infer_alloc + EPS {
        return None; // cannot keep up with the live stream
    }
    let af = infer.accuracy_factor;
    // The post-completion configuration may use the reclaimed training
    // GPUs; it must keep up under the combined allocation.
    let af_after = match infer_after {
        Some(p) if p.gpu_demand <= infer_alloc + train_alloc + EPS => p.accuracy_factor.max(af),
        _ => af,
    };
    let horizon = horizon_secs.max(EPS);
    let serving = serving_accuracy.clamp(0.0, 1.0);

    let Some(work) = work else {
        return Some(AccuracyEstimate {
            avg_accuracy: serving * af,
            min_accuracy: serving * af,
            retrain_duration_secs: 0.0,
            end_model_accuracy: serving,
            completes: true,
        });
    };

    if work.gpu_seconds_remaining <= EPS {
        // Work already complete: the retrained model serves throughout.
        let post = work.curve.predict(work.k_total).max(serving);
        return Some(AccuracyEstimate {
            avg_accuracy: post * af_after,
            min_accuracy: post * af_after,
            retrain_duration_secs: 0.0,
            end_model_accuracy: post,
            completes: true,
        });
    }

    if train_alloc <= EPS {
        // Retraining never progresses; the stale model serves throughout.
        return Some(AccuracyEstimate {
            avg_accuracy: serving * af,
            min_accuracy: serving * af,
            retrain_duration_secs: f64::INFINITY,
            end_model_accuracy: serving,
            completes: false,
        });
    }

    let duration = work.gpu_seconds_remaining / train_alloc;
    let completes = duration <= horizon + EPS;
    let post = work.curve.predict(work.k_total);

    // Build the piecewise-constant inference-accuracy timeline.
    // Segments: (duration_secs, model_accuracy, accuracy_factor).
    let mut segments: Vec<(f64, f64, f64)> = Vec::new();
    let train_end = duration.min(horizon);
    match params.checkpoint_every_k {
        Some(dk) if dk > EPS && completes => {
            // Checkpoints at k = k_done + i*dk while < k_total; swap only
            // when the checkpoint beats the currently-serving model.
            let k_span = (work.k_total - work.k_done).max(EPS);
            let mut current = serving;
            let mut t_prev = 0.0;
            let mut i = 1u32;
            loop {
                let k = work.k_done + f64::from(i) * dk;
                if k >= work.k_total {
                    break;
                }
                let t = train_end * (k - work.k_done) / k_span;
                if t >= train_end {
                    break;
                }
                segments.push((t - t_prev, current, af));
                current = current.max(work.curve.predict(k));
                t_prev = t;
                i += 1;
            }
            segments.push((train_end - t_prev, current, af));
        }
        _ => {
            segments.push((train_end, serving, af));
        }
    }
    if completes {
        // Retrained model serves for the rest of the window (deployed only
        // if it improves on the serving one) under the post-completion
        // inference configuration.
        segments.push((horizon - train_end, post.max(serving), af_after));
    }

    let total_time: f64 = segments.iter().map(|s| s.0).sum();
    debug_assert!((total_time - horizon).abs() < 1e-6 * horizon.max(1.0) + 1e-6);
    let integral: f64 = segments.iter().map(|(dt, acc, f)| dt * acc * f).sum();
    let min_acc = segments
        .iter()
        .filter(|(dt, _, _)| *dt > EPS)
        .map(|&(_, acc, f)| acc * f)
        .fold(f64::INFINITY, f64::min);
    let end_model = if completes { post.max(serving) } else { serving };

    Some(AccuracyEstimate {
        avg_accuracy: integral / horizon,
        min_accuracy: if min_acc.is_finite() { min_acc } else { serving * af },
        retrain_duration_secs: duration,
        end_model_accuracy: end_model,
        completes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::InferenceConfig;

    fn infer_profile(demand: f64, af: f64) -> InferenceProfile {
        InferenceProfile {
            config: InferenceConfig { frame_sampling: 1.0, resolution: 1.0 },
            accuracy_factor: af,
            gpu_demand: demand,
        }
    }

    fn curve() -> LearningCurve {
        // predict(0) ~ 0.5, rises to ~0.9.
        LearningCurve { a: 1.0, b: 2.5, c: 0.9 }
    }

    #[test]
    fn infeasible_inference_returns_none() {
        let c = curve();
        let work =
            RetrainWork { curve: &c, k_total: 10.0, k_done: 0.0, gpu_seconds_remaining: 50.0 };
        let est = estimate_window(
            Some(&work),
            0.5,
            &infer_profile(0.5, 1.0),
            None,
            1.0,
            0.25, // less than the 0.5 demand
            200.0,
            &EstimateParams::default(),
        );
        assert!(est.is_none());
    }

    #[test]
    fn no_retraining_is_flat() {
        let est = estimate_window(
            None,
            0.6,
            &infer_profile(0.25, 0.9),
            None,
            0.0,
            0.5,
            200.0,
            &EstimateParams::default(),
        )
        .unwrap();
        assert!((est.avg_accuracy - 0.54).abs() < 1e-9);
        assert!((est.min_accuracy - 0.54).abs() < 1e-9);
        assert!(est.completes);
        assert_eq!(est.retrain_duration_secs, 0.0);
    }

    #[test]
    fn retraining_splits_window() {
        let c = curve();
        // 50 GPU-s at alloc 1.0 -> 50 s of a 200 s window at serving 0.5,
        // then post accuracy for 150 s.
        let work =
            RetrainWork { curve: &c, k_total: 10.0, k_done: 0.0, gpu_seconds_remaining: 50.0 };
        let est = estimate_window(
            Some(&work),
            0.5,
            &infer_profile(0.25, 1.0),
            None,
            1.0,
            0.5,
            200.0,
            &EstimateParams::default(),
        )
        .unwrap();
        let post = c.predict(10.0);
        let expected = (50.0 * 0.5 + 150.0 * post) / 200.0;
        assert!((est.avg_accuracy - expected).abs() < 1e-9);
        assert!(est.completes);
        assert!((est.retrain_duration_secs - 50.0).abs() < 1e-9);
        assert!((est.end_model_accuracy - post).abs() < 1e-9);
        assert!((est.min_accuracy - 0.5).abs() < 1e-9);
    }

    #[test]
    fn more_allocation_finishes_sooner_and_scores_higher() {
        let c = curve();
        let work =
            RetrainWork { curve: &c, k_total: 10.0, k_done: 0.0, gpu_seconds_remaining: 80.0 };
        let p = infer_profile(0.1, 1.0);
        let params = EstimateParams::default();
        let slow = estimate_window(Some(&work), 0.5, &p, None, 0.5, 0.5, 200.0, &params).unwrap();
        let fast = estimate_window(Some(&work), 0.5, &p, None, 1.0, 0.5, 200.0, &params).unwrap();
        assert!(fast.avg_accuracy > slow.avg_accuracy);
        assert!(fast.retrain_duration_secs < slow.retrain_duration_secs);
    }

    #[test]
    fn overlong_retraining_marked_incomplete() {
        let c = curve();
        let work =
            RetrainWork { curve: &c, k_total: 10.0, k_done: 0.0, gpu_seconds_remaining: 500.0 };
        let est = estimate_window(
            Some(&work),
            0.5,
            &infer_profile(0.1, 1.0),
            None,
            1.0,
            0.5,
            200.0,
            &EstimateParams::default(),
        )
        .unwrap();
        assert!(!est.completes);
        // The whole window is served by the stale model.
        assert!((est.avg_accuracy - 0.5).abs() < 1e-9);
        assert!((est.end_model_accuracy - 0.5).abs() < 1e-9);
    }

    #[test]
    fn zero_train_alloc_never_completes() {
        let c = curve();
        let work =
            RetrainWork { curve: &c, k_total: 10.0, k_done: 0.0, gpu_seconds_remaining: 10.0 };
        let est = estimate_window(
            Some(&work),
            0.5,
            &infer_profile(0.1, 1.0),
            None,
            0.0,
            0.5,
            200.0,
            &EstimateParams::default(),
        )
        .unwrap();
        assert!(!est.completes);
        assert!(est.retrain_duration_secs.is_infinite());
    }

    #[test]
    fn checkpointing_improves_average() {
        let c = curve();
        let work =
            RetrainWork { curve: &c, k_total: 10.0, k_done: 0.0, gpu_seconds_remaining: 100.0 };
        let p = infer_profile(0.1, 1.0);
        let without = estimate_window(
            Some(&work),
            0.4,
            &p,
            None,
            1.0,
            0.5,
            200.0,
            &EstimateParams { a_min: 0.0, checkpoint_every_k: None },
        )
        .unwrap();
        let with = estimate_window(
            Some(&work),
            0.4,
            &p,
            None,
            1.0,
            0.5,
            200.0,
            &EstimateParams { a_min: 0.0, checkpoint_every_k: Some(2.0) },
        )
        .unwrap();
        assert!(
            with.avg_accuracy > without.avg_accuracy,
            "checkpoint swaps should raise the average: {} vs {}",
            with.avg_accuracy,
            without.avg_accuracy
        );
        // End state identical.
        assert!((with.end_model_accuracy - without.end_model_accuracy).abs() < 1e-9);
    }

    #[test]
    fn degrading_retrain_is_not_deployed() {
        // A curve whose asymptote is below the serving accuracy: the end
        // accuracy must not drop (the system keeps the better model).
        let c = LearningCurve { a: 1.0, b: 2.0, c: 0.55 };
        let work =
            RetrainWork { curve: &c, k_total: 10.0, k_done: 0.0, gpu_seconds_remaining: 20.0 };
        let est = estimate_window(
            Some(&work),
            0.7,
            &infer_profile(0.1, 1.0),
            None,
            1.0,
            0.5,
            200.0,
            &EstimateParams::default(),
        )
        .unwrap();
        assert!((est.end_model_accuracy - 0.7).abs() < 1e-9);
    }

    #[test]
    fn work_already_complete_serves_post_model() {
        let c = curve();
        let work =
            RetrainWork { curve: &c, k_total: 10.0, k_done: 10.0, gpu_seconds_remaining: 0.0 };
        let est = estimate_window(
            Some(&work),
            0.5,
            &infer_profile(0.1, 1.0),
            None,
            0.0,
            0.5,
            200.0,
            &EstimateParams::default(),
        )
        .unwrap();
        assert!(est.completes);
        assert!((est.avg_accuracy - c.predict(10.0)).abs() < 1e-9);
    }

    #[test]
    fn accuracy_factor_scales_everything() {
        let est_full = estimate_window(
            None,
            0.8,
            &infer_profile(0.1, 1.0),
            None,
            0.0,
            0.5,
            100.0,
            &EstimateParams::default(),
        )
        .unwrap();
        let est_half = estimate_window(
            None,
            0.8,
            &infer_profile(0.1, 0.5),
            None,
            0.0,
            0.5,
            100.0,
            &EstimateParams::default(),
        )
        .unwrap();
        assert!((est_half.avg_accuracy * 2.0 - est_full.avg_accuracy).abs() < 1e-9);
    }
}
