//! Performance profiles: what the scheduler knows about each
//! configuration's accuracy and resource demand.
//!
//! Retraining profiles come from the micro-profiler (§4.3); inference
//! profiles come from the (cheap, well-studied) inference profilers of
//! prior work, which the paper reuses ("we use these efficient inference
//! profilers in our joint solution", §3.1) — here they are computed
//! directly from the cost model.

use crate::config::{InferenceConfig, RetrainConfig};
use ekya_nn::cost::CostModel;
use ekya_nn::fit::LearningCurve;
use serde::{Deserialize, Serialize};

/// Micro-profiled estimate for one retraining configuration on one stream.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RetrainProfile {
    /// The configuration profiled.
    pub config: RetrainConfig,
    /// Accuracy learning curve over full-pool epoch equivalents `k`
    /// (`curve.predict(0)` ≈ current accuracy; saturates at the config's
    /// attainable accuracy).
    pub curve: LearningCurve,
    /// GPU-seconds per epoch at 100% GPU allocation, for this config's
    /// data size (`data_fraction` × window pool) — the quantity the
    /// micro-profiler measures and the scheduler scales linearly (§4.3).
    pub gpu_seconds_per_epoch: f64,
}

impl RetrainProfile {
    /// Total GPU-seconds to run the full retraining at 100% allocation.
    pub fn total_gpu_seconds(&self) -> f64 {
        self.config.epochs as f64 * self.gpu_seconds_per_epoch
    }

    /// Estimated accuracy after the full retraining completes.
    pub fn post_accuracy(&self) -> f64 {
        self.curve.predict(self.config.k_total())
    }

    /// Wall-clock retraining duration under a fractional GPU allocation
    /// (`f64::INFINITY` when the allocation is zero).
    pub fn duration_secs(&self, alloc: f64) -> f64 {
        if alloc <= 0.0 {
            f64::INFINITY
        } else {
            self.total_gpu_seconds() / alloc
        }
    }
}

/// Profile for one inference configuration on one stream.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct InferenceProfile {
    /// The configuration profiled.
    pub config: InferenceConfig,
    /// Multiplicative accuracy factor relative to full-quality inference.
    pub accuracy_factor: f64,
    /// GPUs required to keep up with the live stream at this
    /// configuration.
    pub gpu_demand: f64,
}

/// Builds inference profiles for a stream from the cost model.
///
/// `size_factor` is the model's cost relative to the reference edge model
/// ([`CostModel::size_factor`]); `fps` is the stream frame rate.
pub fn build_inference_profiles(
    cost: &CostModel,
    size_factor: f64,
    fps: f64,
    grid: &[InferenceConfig],
) -> Vec<InferenceProfile> {
    grid.iter()
        .map(|&config| InferenceProfile {
            config,
            accuracy_factor: config.accuracy_factor(),
            gpu_demand: cost.infer_gpu_demand(
                size_factor,
                fps,
                config.frame_sampling,
                config.resolution,
            ),
        })
        .collect()
}

/// Returns the indices of profiles on the Pareto frontier of
/// (total GPU-seconds ↓, post-retraining accuracy ↑) — Fig 3b's boundary.
///
/// A profile is Pareto-optimal when no other profile has both lower cost
/// and at least as high accuracy (with at least one strict improvement).
pub fn pareto_frontier(profiles: &[RetrainProfile]) -> Vec<usize> {
    let mut frontier = Vec::new();
    for (i, p) in profiles.iter().enumerate() {
        let dominated = profiles.iter().enumerate().any(|(j, q)| {
            j != i
                && q.total_gpu_seconds() <= p.total_gpu_seconds()
                && q.post_accuracy() >= p.post_accuracy()
                && (q.total_gpu_seconds() < p.total_gpu_seconds()
                    || q.post_accuracy() > p.post_accuracy())
        });
        if !dominated {
            frontier.push(i);
        }
    }
    frontier
}

/// Distance of a profile from the Pareto frontier in normalised
/// (cost, accuracy) space — the signal used to prune "historically not
/// useful" configurations (§4.3, pruning technique 3).
pub fn pareto_distance(profiles: &[RetrainProfile], idx: usize) -> f64 {
    let frontier = pareto_frontier(profiles);
    if frontier.contains(&idx) || profiles.is_empty() {
        return 0.0;
    }
    let max_cost =
        profiles.iter().map(RetrainProfile::total_gpu_seconds).fold(f64::MIN, f64::max).max(1e-9);
    let p = &profiles[idx];
    frontier
        .iter()
        .map(|&f| {
            let q = &profiles[f];
            let dc = (p.total_gpu_seconds() - q.total_gpu_seconds()) / max_cost;
            let da = p.post_accuracy() - q.post_accuracy();
            (dc * dc + da * da).sqrt()
        })
        .fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk_profile(epochs: u32, gpu_s_per_epoch: f64, asymptote: f64) -> RetrainProfile {
        RetrainProfile {
            config: RetrainConfig {
                epochs,
                batch_size: 32,
                last_layer_neurons: 16,
                layers_trained: 3,
                data_fraction: 1.0,
            },
            curve: LearningCurve { a: 1.0, b: 1.0, c: asymptote },
            gpu_seconds_per_epoch: gpu_s_per_epoch,
        }
    }

    #[test]
    fn total_gpu_seconds_scales_with_epochs() {
        let p = mk_profile(10, 2.0, 0.9);
        assert!((p.total_gpu_seconds() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn duration_scales_inverse_with_alloc() {
        let p = mk_profile(10, 2.0, 0.9);
        assert!((p.duration_secs(0.5) - 40.0).abs() < 1e-12);
        assert!(p.duration_secs(0.0).is_infinite());
    }

    #[test]
    fn post_accuracy_respects_curve() {
        let p = mk_profile(30, 1.0, 0.9);
        let expected = p.curve.predict(30.0);
        assert!((p.post_accuracy() - expected).abs() < 1e-12);
        assert!(p.post_accuracy() < 0.9);
        assert!(p.post_accuracy() > 0.85);
    }

    #[test]
    fn pareto_frontier_excludes_dominated() {
        // p0: cheap & good. p1: more expensive with *lower* accuracy
        // (dominated by p0). p2: most expensive but best accuracy (on
        // frontier). Note post_accuracy evaluates the curve at k = epochs,
        // so accuracies are checked via the profiles themselves.
        let profiles =
            vec![mk_profile(5, 1.0, 0.80), mk_profile(20, 1.0, 0.60), mk_profile(30, 1.0, 0.95)];
        assert!(profiles[1].post_accuracy() < profiles[0].post_accuracy());
        assert!(profiles[1].total_gpu_seconds() > profiles[0].total_gpu_seconds());
        let frontier = pareto_frontier(&profiles);
        assert!(frontier.contains(&0));
        assert!(!frontier.contains(&1));
        assert!(frontier.contains(&2));
    }

    #[test]
    fn pareto_distance_zero_on_frontier() {
        let profiles = vec![mk_profile(5, 1.0, 0.80), mk_profile(30, 1.0, 0.95)];
        assert_eq!(pareto_distance(&profiles, 0), 0.0);
        assert_eq!(pareto_distance(&profiles, 1), 0.0);
    }

    #[test]
    fn pareto_distance_positive_off_frontier() {
        let profiles =
            vec![mk_profile(5, 1.0, 0.80), mk_profile(25, 1.0, 0.60), mk_profile(30, 1.0, 0.95)];
        assert!(pareto_distance(&profiles, 1) > 0.0);
    }

    #[test]
    fn inference_profiles_built_from_cost_model() {
        let cost = CostModel::default();
        let grid = crate::config::default_inference_grid();
        let profiles = build_inference_profiles(&cost, 1.0, 30.0, &grid);
        assert_eq!(profiles.len(), grid.len());
        // Full quality config demands the most GPU.
        let full = profiles
            .iter()
            .find(|p| {
                (p.config.frame_sampling - 1.0).abs() < 1e-9
                    && (p.config.resolution - 1.0).abs() < 1e-9
            })
            .unwrap();
        for p in &profiles {
            assert!(p.gpu_demand <= full.gpu_demand + 1e-12);
            assert!(p.accuracy_factor <= 1.0 + 1e-12);
        }
    }
}
