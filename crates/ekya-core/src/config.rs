//! Retraining and inference configurations (§3.1).
//!
//! A **retraining configuration** γ is a hyperparameter vector: number of
//! epochs, batch size, number of neurons in the last layer, number of
//! layers to retrain, and the fraction of the window's data to train on
//! (§6.1 lists exactly these five). An **inference configuration** λ
//! controls frame sampling and input resolution, trading accuracy for GPU
//! demand.

use serde::{Deserialize, Serialize};

/// A retraining configuration γ ∈ Γ.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetrainConfig {
    /// Training epochs over the selected data.
    pub epochs: u32,
    /// Minibatch size.
    pub batch_size: u32,
    /// Width of the last hidden layer ("number of neurons in the last
    /// layer").
    pub last_layer_neurons: u32,
    /// Number of trailing layers to retrain (1 = head only).
    pub layers_trained: u32,
    /// Fraction of the window's labelled training pool to use.
    pub data_fraction: f64,
}

impl RetrainConfig {
    /// Training progress in *full-pool epoch equivalents*: how many passes
    /// over the complete window pool this configuration's SGD work equals.
    /// This is the `k` axis of the micro-profiler's learning curve.
    pub fn k_total(&self) -> f64 {
        self.epochs as f64 * self.data_fraction
    }

    /// Key identifying the model variant this config trains — configs that
    /// share a key differ only in how *long* they train (epochs and data
    /// fraction), so they lie on the same learning curve and can share one
    /// micro-profiling run.
    pub fn curve_key(&self) -> CurveKey {
        CurveKey {
            batch_size: self.batch_size,
            last_layer_neurons: self.last_layer_neurons,
            layers_trained: self.layers_trained,
        }
    }

    /// Compact human-readable label (for experiment output).
    pub fn label(&self) -> String {
        format!(
            "e{}-b{}-n{}-l{}-f{:.2}",
            self.epochs,
            self.batch_size,
            self.last_layer_neurons,
            self.layers_trained,
            self.data_fraction
        )
    }
}

/// Model-variant key for sharing learning curves (see
/// [`RetrainConfig::curve_key`]).
///
/// `Ord` follows field order — (batch, width, depth) — which is also the
/// order recorded traces list their true curves in; `ekya-sim` relies on
/// that equivalence to keep trace fingerprints stable (BTreeMap keyed by
/// `CurveKey` iterates exactly like the historical explicit sort).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CurveKey {
    /// Minibatch size.
    pub batch_size: u32,
    /// Last hidden layer width.
    pub last_layer_neurons: u32,
    /// Trailing layers retrained.
    pub layers_trained: u32,
}

/// The default 18-configuration grid used throughout the evaluation
/// ("18 configurations per model", §6.3): epochs × data fraction × layers.
pub fn default_retrain_grid() -> Vec<RetrainConfig> {
    let mut grid = Vec::new();
    for &epochs in &[3u32, 10, 30] {
        for &data_fraction in &[0.2f64, 0.5, 1.0] {
            for &layers_trained in &[1u32, 3] {
                grid.push(RetrainConfig {
                    epochs,
                    batch_size: 32,
                    last_layer_neurons: 16,
                    layers_trained,
                    data_fraction,
                });
            }
        }
    }
    grid
}

/// An extended 54-configuration grid additionally sweeping the last-layer
/// width, for the profiling-cost ablations.
pub fn extended_retrain_grid() -> Vec<RetrainConfig> {
    let mut grid = Vec::new();
    for &epochs in &[3u32, 10, 30] {
        for &data_fraction in &[0.2f64, 0.5, 1.0] {
            for &layers_trained in &[1u32, 3] {
                for &last_layer_neurons in &[8u32, 16, 32] {
                    grid.push(RetrainConfig {
                        epochs,
                        batch_size: 32,
                        last_layer_neurons,
                        layers_trained,
                        data_fraction,
                    });
                }
            }
        }
    }
    grid
}

/// An inference configuration λ ∈ Λ.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InferenceConfig {
    /// Fraction of arriving frames that are analysed (frame sampling).
    pub frame_sampling: f64,
    /// Input resolution scale (1.0 = native).
    pub resolution: f64,
}

impl InferenceConfig {
    /// Multiplicative accuracy factor of this configuration relative to
    /// analysing every frame at native resolution.
    ///
    /// Modeled as `sampling^0.15 * resolution^0.2` — gentle concave decay,
    /// matching the empirical observation that video analytics tolerates
    /// moderate subsampling with modest accuracy loss (Chameleon \[36\]):
    /// half-rate sampling costs ~10% accuracy, native/4 sampling ~19%.
    pub fn accuracy_factor(&self) -> f64 {
        self.frame_sampling.clamp(0.0, 1.0).powf(0.15) * self.resolution.clamp(0.0, 1.0).powf(0.2)
    }

    /// Compact human-readable label.
    pub fn label(&self) -> String {
        format!("s{:.2}-r{:.2}", self.frame_sampling, self.resolution)
    }
}

/// The default inference-configuration grid: frame sampling × resolution.
pub fn default_inference_grid() -> Vec<InferenceConfig> {
    let mut grid = Vec::new();
    for &frame_sampling in &[1.0f64, 0.75, 0.5, 0.25, 0.1, 0.05] {
        for &resolution in &[1.0f64, 0.75, 0.5] {
            grid.push(InferenceConfig { frame_sampling, resolution });
        }
    }
    grid
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_grid_has_18_configs() {
        assert_eq!(default_retrain_grid().len(), 18);
    }

    #[test]
    fn extended_grid_has_54_configs() {
        assert_eq!(extended_retrain_grid().len(), 54);
    }

    #[test]
    fn k_total_combines_epochs_and_fraction() {
        let c = RetrainConfig {
            epochs: 10,
            batch_size: 32,
            last_layer_neurons: 16,
            layers_trained: 3,
            data_fraction: 0.3,
        };
        assert!((c.k_total() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn curve_key_groups_epoch_and_fraction_variants() {
        let grid = default_retrain_grid();
        let keys: std::collections::HashSet<_> = grid.iter().map(|c| c.curve_key()).collect();
        // 18 configs collapse to 2 model variants (layers_trained 1 or 3).
        assert_eq!(keys.len(), 2);
    }

    #[test]
    fn accuracy_factor_bounds_and_monotonicity() {
        let full = InferenceConfig { frame_sampling: 1.0, resolution: 1.0 };
        assert!((full.accuracy_factor() - 1.0).abs() < 1e-12);
        let half = InferenceConfig { frame_sampling: 0.5, resolution: 1.0 };
        assert!(half.accuracy_factor() < 1.0 && half.accuracy_factor() > 0.85);
        let lowres = InferenceConfig { frame_sampling: 0.5, resolution: 0.5 };
        assert!(lowres.accuracy_factor() < half.accuracy_factor());
    }

    #[test]
    fn inference_grid_contains_full_quality() {
        let grid = default_inference_grid();
        assert!(grid
            .iter()
            .any(|c| (c.frame_sampling - 1.0).abs() < 1e-12 && (c.resolution - 1.0).abs() < 1e-12));
        assert_eq!(grid.len(), 18);
    }

    #[test]
    fn labels_are_distinct() {
        let grid = default_retrain_grid();
        let labels: std::collections::HashSet<_> = grid.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), grid.len());
    }
}
