//! Deterministic, dependency-free hashing shared across the workspace.
//!
//! Cell seeding (`ekya-bench`), hold-out registry memo keys
//! (`ekya-baselines`), trace fingerprints (`ekya-sim`), and merge
//! fingerprints (`ekya-orchestrate`) all need a hash that is identical
//! across processes, machines, and runs — `std::hash` is seeded
//! per-process, so it cannot provide run-to-run determinism. FNV-1a is
//! the one implementation they share; a change here reshuffles every
//! cell seed and invalidates every recorded result, which is why the
//! reference test vectors below are load-bearing.

/// FNV-1a over a byte string (64-bit).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a 64-bit test vectors: a change here silently
        // reshuffles every cell seed and invalidates recorded results.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }
}
