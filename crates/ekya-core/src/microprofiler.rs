//! The micro-profiler (§4.3).
//!
//! At each retraining window the scheduler needs, for every candidate
//! configuration, (a) the accuracy it would reach after retraining and
//! (b) its resource demand. Obtaining these exactly would require running
//! every retraining to completion — which is what the scheduler is trying
//! to avoid. The micro-profiler instead:
//!
//! 1. trains each *model variant* on a small uniform sample of the
//!    window's data (`profile_data_fraction`, default 10%) for a few
//!    epochs (`profile_epochs`, default 5) — **early termination**;
//! 2. fits the observed accuracy-vs-progress points to the saturating
//!    curve of [`ekya_nn::fit::LearningCurve`] with NNLS and extrapolates
//!    to the configuration's full `k = epochs x data_fraction`;
//! 3. measures GPU-seconds per epoch at 100% allocation from the cost
//!    model (resource demands are deterministic — opportunity (i));
//! 4. **prunes** configurations that have historically landed far from
//!    the resource-accuracy Pareto frontier.
//!
//! Configurations that share a model variant (same batch size, layer
//! freeze and head width — see [`RetrainConfig::curve_key`]) differ only
//! in how far along the same learning curve they train, so one
//! micro-training run serves all of them.

use crate::config::{CurveKey, RetrainConfig};
use crate::exec::{build_variant, TrainHyper};
use crate::profile::{pareto_distance, RetrainProfile};
use ekya_nn::cost::CostModel;
use ekya_nn::data::{subsample, DataView, Sample};
use ekya_nn::fit::LearningCurve;
use ekya_nn::gauss::sample_gaussian;
use ekya_nn::mlp::{Mlp, Sgd};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Micro-profiler parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MicroProfilerParams {
    /// Fraction of the window's training pool used for profiling
    /// ("5%-10%", §4.3). Uniform random sampling.
    pub profile_data_fraction: f64,
    /// Profiling epochs before early termination ("say, 5", §4.3).
    pub profile_epochs: u32,
    /// SGD hyperparameters (shared with real execution).
    pub hyper: TrainHyper,
    /// Enable history-based pruning of configurations.
    pub prune: bool,
    /// With pruning on, keep at most this many configurations (plus any
    /// never profiled before).
    pub prune_keep: usize,
    /// Std-dev of Gaussian noise added to accuracy predictions — the
    /// controlled-error knob of Fig 11b (0 disables).
    pub noise_std: f64,
    /// Maximum accuracy headroom the fitted curve may extrapolate above
    /// the best accuracy observed during micro-training. Early-terminated
    /// observations cannot distinguish a fast rise to a low ceiling from a
    /// slow rise to a high one; bounding the asymptote keeps estimates
    /// from hallucinating accuracy a capacity-limited model can never
    /// reach.
    pub max_headroom: f64,
}

impl Default for MicroProfilerParams {
    fn default() -> Self {
        Self {
            profile_data_fraction: 0.1,
            profile_epochs: 5,
            hyper: TrainHyper::default(),
            prune: true,
            prune_keep: 12,
            noise_std: 0.0,
            max_headroom: 0.45,
        }
    }
}

/// Output of one profiling pass.
#[derive(Debug, Clone)]
pub struct ProfileOutput {
    /// One profile per surviving configuration (pruned ones are absent).
    pub profiles: Vec<RetrainProfile>,
    /// GPU-seconds the profiling itself consumed (charged against the
    /// window — profiling "must share compute resources", §4.3).
    pub gpu_seconds_spent: f64,
    /// Number of configurations skipped by history-based pruning.
    pub pruned: usize,
}

/// The micro-profiler. One instance per stream (its pruning history is
/// per-model).
#[derive(Debug, Clone)]
pub struct MicroProfiler {
    params: MicroProfilerParams,
    cost: CostModel,
    /// Exponential moving average of each configuration's distance from
    /// the Pareto frontier (larger = historically less useful).
    history: BTreeMap<String, f64>,
    rng: StdRng,
}

impl MicroProfiler {
    /// Creates a profiler.
    pub fn new(params: MicroProfilerParams, cost: CostModel, seed: u64) -> Self {
        Self { params, cost, history: BTreeMap::new(), rng: StdRng::seed_from_u64(seed) }
    }

    /// The profiler's parameters.
    pub fn params(&self) -> &MicroProfilerParams {
        &self.params
    }

    /// Profiles `configs` for a stream whose serving model is `model`,
    /// using the current window's teacher-labelled `train_pool` and `val`
    /// split. Returns extrapolated profiles plus the profiling cost.
    pub fn profile(
        &mut self,
        model: &Mlp,
        train_pool: &[Sample],
        val: &[Sample],
        configs: &[RetrainConfig],
        num_classes: usize,
        seed: u64,
    ) -> ProfileOutput {
        let (selected, pruned) = self.select_configs(configs);

        // One micro-training run per model variant (curve key).
        let mut curves: BTreeMap<CurveKey, LearningCurve> = BTreeMap::new();
        let mut gpu_seconds_spent = 0.0;
        for config in &selected {
            let key = config.curve_key();
            if curves.contains_key(&key) {
                continue;
            }
            let (curve, cost) = self.micro_train(model, train_pool, val, config, num_classes, seed);
            // Logical-plane telemetry: the micro-training cost comes from
            // the cost model, so the span value is deterministic. The
            // enabled() guard keeps the disabled path allocation-free.
            if ekya_telemetry::enabled() {
                ekya_telemetry::span("core.profiler", "microtrain", cost, &config.label());
                ekya_telemetry::hist_observe("core.profiler", "microtrain_gpu_secs", cost);
            }
            gpu_seconds_spent += cost;
            curves.insert(key, curve);
        }

        let pool_len = train_pool.len();
        // Costing needs an (untrained) model variant per configuration, but
        // variants depend only on the curve-key fields (head width, layers
        // trained) and the seed — memoise one per curve key instead of
        // rebuilding (clone + seeded head re-init) for every configuration.
        let mut variants: BTreeMap<CurveKey, Mlp> = BTreeMap::new();
        let profiles: Vec<RetrainProfile> = selected
            .iter()
            .map(|&config| {
                let mut curve = curves[&config.curve_key()];
                if self.params.noise_std > 0.0 {
                    // Fig 11b: controlled Gaussian error on the predicted
                    // accuracy, implemented as a shift of the asymptote.
                    let eps = sample_gaussian(&mut self.rng, self.params.noise_std);
                    curve.c = (curve.c + eps).clamp(0.05, 1.0);
                }
                let n_train = ((pool_len as f64) * config.data_fraction).round().max(1.0) as usize;
                let variant = variants
                    .entry(config.curve_key())
                    .or_insert_with(|| build_variant(model, &config, seed.wrapping_add(17)));
                RetrainProfile {
                    config,
                    curve,
                    gpu_seconds_per_epoch: self.cost.train_epoch_gpu_seconds(
                        variant,
                        n_train,
                        config.batch_size,
                    ),
                }
            })
            .collect();

        // Update pruning history from this window's own estimates.
        self.observe(&profiles);

        if ekya_telemetry::enabled() {
            ekya_telemetry::counter_add("core.profiler", "configs_profiled", profiles.len() as u64);
            ekya_telemetry::counter_add("core.profiler", "configs_pruned", pruned as u64);
            ekya_telemetry::span(
                "core.profiler",
                "profile",
                gpu_seconds_spent,
                &format!("profiled={} pruned={pruned}", profiles.len()),
            );
        }

        ProfileOutput { profiles, gpu_seconds_spent, pruned }
    }

    /// Runs the micro-training for one model variant and fits its curve.
    /// Returns `(curve, gpu_seconds)`.
    fn micro_train(
        &self,
        model: &Mlp,
        train_pool: &[Sample],
        val: &[Sample],
        config: &RetrainConfig,
        num_classes: usize,
        seed: u64,
    ) -> (LearningCurve, f64) {
        let frac = self.params.profile_data_fraction.clamp(0.01, 1.0);
        let sample = subsample(train_pool, frac, seed.wrapping_add(31));
        let mut variant = build_variant(model, config, seed.wrapping_add(17));
        let val_view = DataView::new(val, num_classes);
        let sample_view = DataView::new(&sample, num_classes);

        let mut points: Vec<(f64, f64)> =
            Vec::with_capacity(self.params.profile_epochs as usize + 1);
        points.push((0.0, variant.accuracy(val_view)));
        let mut opt = Sgd::new(&variant, self.params.hyper.lr, self.params.hyper.momentum);
        for e in 0..self.params.profile_epochs {
            variant.train_epoch(
                sample_view,
                &mut opt,
                config.batch_size as usize,
                seed.wrapping_add(500 + e as u64),
            );
            // Training e+1 epochs on `frac` of the pool ≈ (e+1)*frac
            // full-pool epoch equivalents.
            points.push(((e + 1) as f64 * frac, variant.accuracy(val_view)));
        }
        let best_observed = points.iter().map(|p| p.1).fold(0.0, f64::max);
        let curve = LearningCurve::fit_capped(&points, best_observed + self.params.max_headroom);
        let gpu_seconds = self.params.profile_epochs as f64
            * self.cost.train_epoch_gpu_seconds(&variant, sample.len(), config.batch_size);
        (curve, gpu_seconds)
    }

    /// Applies history-based pruning (§4.3 technique 3). Returns the
    /// surviving configurations and how many were pruned.
    fn select_configs(&self, configs: &[RetrainConfig]) -> (Vec<RetrainConfig>, usize) {
        if !self.params.prune || configs.len() <= self.params.prune_keep {
            return (configs.to_vec(), 0);
        }
        // Never-profiled configurations are always explored; profiled ones
        // are ranked by their historical Pareto distance and only the most
        // promising fill the remaining budget.
        let mut keep_idx: Vec<usize> = Vec::new();
        let mut seen: Vec<(f64, usize)> = Vec::new();
        for (i, c) in configs.iter().enumerate() {
            match self.history.get(&c.label()) {
                None => keep_idx.push(i),
                Some(&d) => seen.push((d, i)),
            }
        }
        seen.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        for (_, i) in seen {
            if keep_idx.len() >= self.params.prune_keep {
                break;
            }
            keep_idx.push(i);
        }
        keep_idx.sort_unstable();
        let kept: Vec<RetrainConfig> = keep_idx.into_iter().map(|i| configs[i]).collect();
        let pruned = configs.len() - kept.len();
        (kept, pruned)
    }

    /// Folds a window's profiles into the pruning history (EMA of each
    /// configuration's Pareto distance).
    pub fn observe(&mut self, profiles: &[RetrainProfile]) {
        const ALPHA: f64 = 0.5;
        for (i, p) in profiles.iter().enumerate() {
            let d = pareto_distance(profiles, i);
            let entry = self.history.entry(p.config.label()).or_insert(d);
            *entry = ALPHA * d + (1.0 - ALPHA) * *entry;
        }
    }
}

/// Ground-truth profiling of **one** configuration: retrains it to
/// completion on the full window data and measures the final accuracy.
///
/// This is the per-config unit [`exhaustive_profile`] iterates over. It
/// exists as a standalone function so callers that fan a configuration
/// grid out across threads (or across machines, via the experiment
/// harness's shard layer) can profile each configuration independently —
/// the result depends only on the arguments, never on which other
/// configurations are profiled alongside it, so splitting the config
/// slice keeps every number identical.
///
/// Returns `(final_accuracy, gpu_seconds_spent)`.
#[allow(clippy::too_many_arguments)] // mirrors the micro-profiler's profiling interface
pub fn profile_config(
    model: &Mlp,
    train_pool: &[Sample],
    val: &[Sample],
    config: RetrainConfig,
    num_classes: usize,
    hyper: TrainHyper,
    cost: &CostModel,
    seed: u64,
) -> (f64, f64) {
    let mut exec =
        crate::exec::RetrainExecution::new(model, train_pool, config, num_classes, hyper, seed);
    let per_epoch =
        cost.train_epoch_gpu_seconds(exec.model(), exec.num_samples(), config.batch_size);
    exec.run_to_completion();
    (exec.accuracy(val), per_epoch * config.epochs as f64)
}

/// Ground-truth profiling: actually retrains every configuration to
/// completion on the full window data and measures the final accuracy.
/// This is what the micro-profiler avoids; it exists to quantify the
/// micro-profiler's estimation error (Fig 11a) and cost advantage (the
/// ~100x claim).
///
/// Every configuration is profiled with the same `seed` (see
/// [`profile_config`] for the per-config unit, which callers wanting
/// per-config seeding invoke directly).
///
/// Returns `(final_accuracies, gpu_seconds_spent)` aligned with `configs`.
#[allow(clippy::too_many_arguments)] // mirrors the micro-profiler's profiling interface
pub fn exhaustive_profile(
    model: &Mlp,
    train_pool: &[Sample],
    val: &[Sample],
    configs: &[RetrainConfig],
    num_classes: usize,
    hyper: TrainHyper,
    cost: &CostModel,
    seed: u64,
) -> (Vec<f64>, f64) {
    let mut accs = Vec::with_capacity(configs.len());
    let mut gpu_seconds = 0.0;
    for &config in configs {
        let (acc, spent) =
            profile_config(model, train_pool, val, config, num_classes, hyper, cost, seed);
        gpu_seconds += spent;
        accs.push(acc);
    }
    (accs, gpu_seconds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::default_retrain_grid;
    use ekya_video::{DatasetKind, DatasetSpec, VideoDataset};

    fn setup() -> (Mlp, VideoDataset) {
        let ds = VideoDataset::generate(DatasetSpec {
            val_samples: 200,
            ..DatasetSpec::new(DatasetKind::Cityscapes, 3, 77)
        });
        let model = Mlp::new(ekya_nn::mlp::MlpArch::edge(ds.feature_dim, ds.num_classes, 16), 5);
        (model, ds)
    }

    fn profiler(noise: f64, prune: bool) -> MicroProfiler {
        MicroProfiler::new(
            MicroProfilerParams { noise_std: noise, prune, ..MicroProfilerParams::default() },
            CostModel::default(),
            9,
        )
    }

    #[test]
    fn profiles_every_config_without_pruning() {
        let (model, ds) = setup();
        let w = ds.window(0);
        let grid = default_retrain_grid();
        let out =
            profiler(0.0, false).profile(&model, &w.train_pool, &w.val, &grid, ds.num_classes, 1);
        assert_eq!(out.profiles.len(), grid.len());
        assert_eq!(out.pruned, 0);
        assert!(out.gpu_seconds_spent > 0.0);
    }

    #[test]
    fn profiling_is_much_cheaper_than_exhaustive() {
        let (model, ds) = setup();
        let w = ds.window(0);
        let grid = default_retrain_grid();
        let mut p = profiler(0.0, false);
        let out = p.profile(&model, &w.train_pool, &w.val, &grid, ds.num_classes, 1);
        let (_, exhaustive_cost) = exhaustive_profile(
            &model,
            &w.train_pool,
            &w.val,
            &grid,
            ds.num_classes,
            TrainHyper::default(),
            &CostModel::default(),
            1,
        );
        let speedup = exhaustive_cost / out.gpu_seconds_spent;
        assert!(
            speedup > 20.0,
            "micro-profiling should be drastically cheaper: speedup = {speedup:.1}"
        );
    }

    #[test]
    fn estimates_are_reasonably_accurate() {
        // The realistic (steady-state) profiling scenario: the serving
        // model is already trained on the previous window and retraining
        // adapts it to the current one — exactly the regime in which
        // Ekya's micro-profiler operates after the first window.
        let (cold, ds) = setup();
        let w0 = ds.window(0);
        let mut warm = crate::exec::RetrainExecution::new(
            &cold,
            &w0.train_pool,
            RetrainConfig {
                epochs: 30,
                batch_size: 32,
                last_layer_neurons: 16,
                layers_trained: 3,
                data_fraction: 1.0,
            },
            ds.num_classes,
            TrainHyper::default(),
            7,
        );
        warm.run_to_completion();
        let model = warm.model().clone();

        let w = ds.window(1);
        // Evaluate a subset of configs for speed.
        let grid: Vec<RetrainConfig> = default_retrain_grid()
            .into_iter()
            .filter(|c| c.epochs >= 10 && c.data_fraction >= 0.3)
            .collect();
        let mut p = profiler(0.0, false);
        let out = p.profile(&model, &w.train_pool, &w.val, &grid, ds.num_classes, 2);
        let (truth, _) = exhaustive_profile(
            &model,
            &w.train_pool,
            &w.val,
            &grid,
            ds.num_classes,
            TrainHyper::default(),
            &CostModel::default(),
            2,
        );
        let errors: Vec<f64> = out
            .profiles
            .iter()
            .zip(&truth)
            .map(|(prof, &t)| (prof.post_accuracy() - t).abs())
            .collect();
        let median = ekya_video::stats::percentile(&errors, 50.0);
        assert!(
            median < 0.10,
            "median estimation error should be moderate: {median:.3} (errors {errors:?})"
        );
    }

    #[test]
    fn pruning_reduces_configs_and_cost() {
        let (model, ds) = setup();
        let grid = default_retrain_grid();
        let mut p = profiler(0.0, true);
        // First window: nothing pruned (no history).
        let w0 = ds.window(0);
        let out0 = p.profile(&model, &w0.train_pool, &w0.val, &grid, ds.num_classes, 3);
        assert_eq!(out0.pruned, 0);
        // Second window: history exists, prune down to prune_keep.
        let w1 = ds.window(1);
        let out1 = p.profile(&model, &w1.train_pool, &w1.val, &grid, ds.num_classes, 4);
        assert_eq!(out1.profiles.len(), p.params().prune_keep);
        assert_eq!(out1.pruned, grid.len() - p.params().prune_keep);
    }

    #[test]
    fn noise_perturbs_estimates() {
        let (model, ds) = setup();
        let w = ds.window(0);
        let grid = &default_retrain_grid()[..4];
        let clean =
            profiler(0.0, false).profile(&model, &w.train_pool, &w.val, grid, ds.num_classes, 5);
        let noisy =
            profiler(0.2, false).profile(&model, &w.train_pool, &w.val, grid, ds.num_classes, 5);
        let diff: f64 = clean
            .profiles
            .iter()
            .zip(&noisy.profiles)
            .map(|(a, b)| (a.post_accuracy() - b.post_accuracy()).abs())
            .sum();
        assert!(diff > 0.01, "noise should move the estimates: total diff = {diff}");
    }

    #[test]
    fn curve_sharing_caps_training_runs() {
        // 18 default configs share only 2 curve keys, so profiling cost
        // must equal that of 2 micro-training runs, not 18.
        let (model, ds) = setup();
        let w = ds.window(0);
        let grid = default_retrain_grid();
        let one_key: Vec<RetrainConfig> =
            grid.iter().filter(|c| c.layers_trained == 3).copied().collect();
        let mut p_all = profiler(0.0, false);
        let mut p_one = profiler(0.0, false);
        let all = p_all.profile(&model, &w.train_pool, &w.val, &grid, ds.num_classes, 6);
        let one = p_one.profile(&model, &w.train_pool, &w.val, &one_key, ds.num_classes, 6);
        assert!(all.gpu_seconds_spent < one.gpu_seconds_spent * 3.0);
    }

    #[test]
    fn profile_output_is_deterministic() {
        let (model, ds) = setup();
        let w = ds.window(0);
        let grid = &default_retrain_grid()[..6];
        let a = profiler(0.0, false).profile(&model, &w.train_pool, &w.val, grid, 6, 8);
        let b = profiler(0.0, false).profile(&model, &w.train_pool, &w.val, grid, 6, 8);
        for (pa, pb) in a.profiles.iter().zip(&b.profiles) {
            assert_eq!(pa.curve, pb.curve);
        }
    }
}
