//! Mid-window estimate correction (§5, "Adapting estimates during
//! retraining").
//!
//! When the accuracy observed during an actual retraining run diverges
//! from the micro-profiled prediction, Ekya refits the learning curve
//! with the observed points, updates the profile, and re-runs the thief
//! scheduler for new allocations (leaving the in-flight configuration γ
//! unchanged).

use ekya_nn::fit::LearningCurve;

/// How far apart (absolute accuracy) prediction and observation must be
/// before a correction is worthwhile.
pub const CORRECTION_THRESHOLD: f64 = 0.03;

/// Checks whether the latest observation deviates enough from the curve's
/// prediction to justify a correction and rescheduling.
pub fn needs_correction(curve: &LearningCurve, k: f64, observed_accuracy: f64) -> bool {
    (curve.predict(k) - observed_accuracy).abs() > CORRECTION_THRESHOLD
}

/// Refits the learning curve using the accuracy points observed during the
/// real retraining run so far. Observed points are authoritative: when at
/// least two are available the refit replaces the prediction, otherwise
/// the original curve is kept.
pub fn refit_curve(original: &LearningCurve, observed: &[(f64, f64)]) -> LearningCurve {
    if observed.len() < 2 {
        return *original;
    }
    let refit = LearningCurve::fit(observed);
    // Guard against a degenerate refit (e.g. identical points): keep the
    // better-fitting model on the observations.
    if refit.rmse(observed) <= original.rmse(observed) {
        refit
    } else {
        *original
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_correction_when_prediction_matches() {
        let c = LearningCurve { a: 1.0, b: 2.0, c: 0.9 };
        let k = 3.0;
        assert!(!needs_correction(&c, k, c.predict(k)));
        assert!(!needs_correction(&c, k, c.predict(k) + 0.02));
    }

    #[test]
    fn correction_triggered_on_divergence() {
        let c = LearningCurve { a: 1.0, b: 2.0, c: 0.9 };
        assert!(needs_correction(&c, 3.0, c.predict(3.0) - 0.1));
    }

    #[test]
    fn refit_tracks_observations() {
        // Original curve is too optimistic; observations follow a lower
        // curve. The refit must predict closer to the observations.
        let optimistic = LearningCurve { a: 2.0, b: 1.0, c: 0.95 };
        let truth = LearningCurve { a: 1.0, b: 2.0, c: 0.7 };
        let observed: Vec<(f64, f64)> =
            (1..=5).map(|k| (k as f64, truth.predict(k as f64))).collect();
        let refit = refit_curve(&optimistic, &observed);
        let err_refit = (refit.predict(20.0) - truth.predict(20.0)).abs();
        let err_orig = (optimistic.predict(20.0) - truth.predict(20.0)).abs();
        assert!(
            err_refit < err_orig,
            "refit error {err_refit:.3} should beat original {err_orig:.3}"
        );
    }

    #[test]
    fn refit_with_too_few_points_keeps_original() {
        let c = LearningCurve { a: 1.0, b: 2.0, c: 0.9 };
        let refit = refit_curve(&c, &[(1.0, 0.5)]);
        assert_eq!(refit, c);
        let refit = refit_curve(&c, &[]);
        assert_eq!(refit, c);
    }
}
