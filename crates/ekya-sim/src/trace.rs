//! Trace recording and trace-driven replay.
//!
//! The paper scales its evaluation beyond the testbed with a simulator
//! that "takes as input the accuracy and resource usage (in GPU time) of
//! training/inference configurations logged from our testbed … For each
//! training job in a window, we log the training-accuracy progression
//! over GPU-time. We also log the inference accuracy on the real videos"
//! (§6.1). This module reproduces that methodology:
//!
//! * [`record_trace`] runs a reference pipeline once per stream —
//!   retraining fully every window — and logs (a) *true* learning curves
//!   per model variant (observed epoch-by-epoch on ground truth),
//!   (b) micro-profiled *estimates* (what a policy's scheduler would
//!   see), and (c) a staleness ladder: the accuracy on each window of
//!   models that last retrained 1, 2, … windows ago.
//! * [`ReplayPolicyHarness`] then evaluates any [`Policy`] against the
//!   trace in closed form: decisions are made on the logged estimates,
//!   outcomes are computed from the logged truth. Replays are orders of
//!   magnitude faster than mechanistic runs, enabling the Fig 7-style
//!   provisioning sweeps.
//!
//! Fidelity caveats (shared with the paper's simulator): replay does not
//! model checkpoint hot-swaps or mid-window rescheduling, and retraining
//! curves are those of the reference model chain, so a policy that skips
//! many windows sees slightly optimistic retraining outcomes.

use crate::metrics::{RunReport, StreamWindowReport, WindowReport};
use crate::runner::RunnerConfig;
use ekya_core::{
    build_inference_profiles, CurveKey, InferenceProfile, MicroProfiler, Policy, PolicyCtx,
    PolicyStream, RetrainExecution, RetrainProfile,
};
use ekya_nn::data::DataView;
use ekya_nn::fit::LearningCurve;
use ekya_nn::golden::{distill_labels, OracleTeacher};
use ekya_nn::mlp::{Mlp, MlpArch};
use ekya_video::{StreamId, StreamSet};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Logged data for one stream in one window.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StreamWindowTrace {
    /// Stream identity.
    pub stream: StreamId,
    /// Class distribution of the window.
    pub class_dist: Vec<f64>,
    /// Appearance-drift magnitude since the previous window.
    pub drift: f64,
    /// Stream frame rate.
    pub fps: f64,
    /// `stale_accuracy[j]`: measured accuracy on this window of the
    /// reference model that last completed retraining `j+1` windows ago
    /// (`j = 0` ⇒ retrained on the previous window's data). The last
    /// entry doubles as the floor for older models.
    pub stale_accuracy: Vec<f64>,
    /// Micro-profiled estimates (what a scheduler sees).
    pub est_profiles: Vec<RetrainProfile>,
    /// Ground-truth learning curves per model variant, observed by
    /// actually retraining the reference model through the full run.
    pub true_curves: Vec<(CurveKey, LearningCurve)>,
    /// GPU-seconds the micro-profiling itself cost.
    pub profiling_gpu_seconds: f64,
}

impl StreamWindowTrace {
    /// The true curve for a configuration's model variant, if logged.
    pub fn true_curve(&self, key: CurveKey) -> Option<&LearningCurve> {
        self.true_curves.iter().find(|(k, _)| *k == key).map(|(_, c)| c)
    }

    /// Serving accuracy for a model `staleness` windows old.
    pub fn serving_accuracy(&self, staleness: usize) -> f64 {
        if self.stale_accuracy.is_empty() {
            return 0.0;
        }
        let idx = staleness.min(self.stale_accuracy.len() - 1);
        self.stale_accuracy[idx]
    }
}

/// One window across all streams.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WindowTrace {
    /// Window index.
    pub window_idx: usize,
    /// Per-stream logs.
    pub streams: Vec<StreamWindowTrace>,
}

/// A complete logged trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Trace {
    /// Window duration in seconds.
    pub window_secs: f64,
    /// Number of object classes.
    pub num_classes: usize,
    /// Windows in order.
    pub windows: Vec<WindowTrace>,
}

impl Trace {
    /// Serialises to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("trace serialises")
    }

    /// Parses from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Stable content fingerprint (FNV-1a over the canonical JSON
    /// serialisation) — the recording's identity.
    ///
    /// A recording is a pure function of (stream set, runner config,
    /// windows, staleness), so two processes that record the same
    /// workload must land on the same fingerprint. That is what lets
    /// recorded-then-replayed grids (fig 7/8) shard across processes:
    /// each shard re-records its traces independently, and the
    /// fingerprint — logged at recording time — is the cross-machine
    /// witness that every shard replayed against identical data. Two
    /// runs that disagree here cannot produce byte-identical replay
    /// cells and must not be merged.
    pub fn fingerprint(&self) -> u64 {
        ekya_core::fnv1a(self.to_json().as_bytes())
    }
}

/// Records a trace by running the reference pipeline (full retraining
/// every window) over `num_windows` windows. `max_staleness` bounds the
/// staleness ladder length.
pub fn record_trace(
    streams: &StreamSet,
    cfg: &RunnerConfig,
    num_windows: usize,
    max_staleness: usize,
) -> Trace {
    assert!(!streams.is_empty(), "need at least one stream");
    assert!(max_staleness >= 1, "need at least one staleness level");
    let datasets: Vec<_> = streams.iter().collect();
    let _n = datasets.len();
    let window_secs = datasets[0].1.spec.window_secs;
    let num_classes = datasets[0].1.num_classes;

    // The richest configuration per curve key drives the true-curve runs.
    // A BTreeMap, because this ordering is load-bearing: replay looks
    // curves up by key, so ordering never changes results — but it IS
    // the recorded `true_curves` ordering, and the trace fingerprint
    // (the cross-process recording identity) hashes the content. Hash
    // order would make byte-identical workloads fingerprint differently.
    // `CurveKey: Ord` iterates (batch, width, depth) — the same order
    // the explicit sort here historically produced, so fingerprints of
    // previously recorded traces are unchanged (pinned by a test below).
    let mut richest: BTreeMap<CurveKey, ekya_core::RetrainConfig> = BTreeMap::new();
    for c in &cfg.retrain_grid {
        let key = c.curve_key();
        let e = richest.entry(key).or_insert(*c);
        if c.k_total() > e.k_total() {
            *e = *c;
        }
    }
    let richest: Vec<(CurveKey, ekya_core::RetrainConfig)> = richest.into_iter().collect();
    // The reference chain adopts the deepest (most layers, widest k)
    // variant each window.
    let reference_cfg = *cfg
        .retrain_grid
        .iter()
        .max_by(|a, b| {
            (a.layers_trained, a.k_total())
                .partial_cmp(&(b.layers_trained, b.k_total()))
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .expect("non-empty grid");

    let mut windows: Vec<WindowTrace> =
        (0..num_windows).map(|w| WindowTrace { window_idx: w, streams: Vec::new() }).collect();

    for (s, (id, ds)) in datasets.iter().enumerate() {
        let seed = cfg.seed.wrapping_add(7919 * s as u64);
        let mut teacher = OracleTeacher::new(cfg.teacher_error_rate, num_classes, seed ^ 0xC0);
        let mut profiler = MicroProfiler::new(cfg.profiler, cfg.cost.clone(), seed ^ 0xB00);
        let mut model =
            Mlp::new(MlpArch::edge(ds.feature_dim, num_classes, cfg.initial_head_width), seed);
        // Snapshots of the reference model after each window's retraining;
        // snapshots[0] is the untrained bootstrap model.
        let mut snapshots: Vec<Mlp> = vec![model.clone()];

        for (w_idx, window) in windows.iter_mut().enumerate() {
            let w = ds.window(w_idx);
            let fresh = distill_labels(&mut teacher, &w.train_pool);
            let sys_val = distill_labels(&mut teacher, &w.val);
            let true_view = DataView::new(&w.val, num_classes);

            // Staleness ladder: snapshots[end] is freshest (retrained on
            // the previous window).
            let stale_accuracy: Vec<f64> = (0..max_staleness)
                .map(|j| {
                    let idx = snapshots.len().saturating_sub(1 + j);
                    snapshots[idx].accuracy(true_view)
                })
                .collect();

            // Estimates: what a policy's micro-profiler would see.
            let out = profiler.profile(
                &model,
                &fresh,
                &sys_val,
                &cfg.retrain_grid,
                num_classes,
                seed.wrapping_add((w_idx as u64) << 16),
            );

            // Truth: run each model variant to completion, observing the
            // real accuracy-vs-k points on ground truth.
            let mut true_curves = Vec::with_capacity(richest.len());
            let mut reference_next: Option<Mlp> = None;
            for (key, config) in &richest {
                let key = *key;
                let mut exec = RetrainExecution::new(
                    &model,
                    &fresh,
                    *config,
                    num_classes,
                    cfg.hyper,
                    seed.wrapping_add((w_idx as u64) << 20),
                );
                let mut pts = vec![(0.0, exec.accuracy(&w.val))];
                while !exec.is_complete() {
                    exec.step_epoch();
                    pts.push((exec.k_done(), exec.accuracy(&w.val)));
                }
                let best = pts.iter().map(|p| p.1).fold(0.0, f64::max);
                true_curves.push((key, LearningCurve::fit_capped(&pts, best + 0.02)));
                if *config == reference_cfg {
                    reference_next = Some(exec.model().clone());
                }
            }

            window.streams.push(StreamWindowTrace {
                stream: *id,
                class_dist: w.class_dist.clone(),
                drift: w.drift_from_prev,
                fps: ds.spec.fps,
                stale_accuracy,
                est_profiles: out.profiles,
                true_curves,
                profiling_gpu_seconds: out.gpu_seconds_spent,
            });

            // Advance the reference chain.
            if let Some(mut next) = reference_next {
                next.set_layers_trained(usize::MAX);
                model = next;
            }
            snapshots.push(model.clone());
            if snapshots.len() > max_staleness + 1 {
                snapshots.remove(0);
            }
        }
    }
    Trace { window_secs, num_classes, windows }
}

/// Evaluates a policy against a recorded trace.
pub struct ReplayPolicyHarness {
    /// Total GPUs on the simulated server.
    pub total_gpus: f64,
    /// GPU cost model (for inference profiles; must match the recording).
    pub cost: ekya_nn::cost::CostModel,
    /// Inference configuration grid.
    pub inference_grid: Vec<ekya_core::InferenceConfig>,
    /// Charge micro-profiling GPU time by shortening the usable window.
    pub charge_profiling: bool,
}

impl ReplayPolicyHarness {
    /// Paper-default harness.
    pub fn new(total_gpus: f64) -> Self {
        Self {
            total_gpus,
            cost: ekya_nn::cost::CostModel::default(),
            inference_grid: ekya_core::default_inference_grid(),
            charge_profiling: true,
        }
    }

    /// Runs `policy` over the trace and returns measured-equivalent
    /// reports.
    pub fn run<P: Policy + ?Sized>(&self, policy: &mut P, trace: &Trace) -> RunReport {
        let num_streams = trace.windows.first().map(|w| w.streams.len()).unwrap_or(0);
        // Staleness per stream: windows since last completed retraining
        // (starts at the ladder's floor).
        let floor = trace
            .windows
            .first()
            .and_then(|w| w.streams.first())
            .map(|s| s.stale_accuracy.len().saturating_sub(1))
            .unwrap_or(0);
        let mut staleness = vec![floor; num_streams];

        let mut report = RunReport { policy: policy.name(), windows: Vec::new() };
        for wt in &trace.windows {
            let serving: Vec<f64> =
                (0..num_streams).map(|s| wt.streams[s].serving_accuracy(staleness[s])).collect();
            let infer_profiles: Vec<Vec<InferenceProfile>> = wt
                .streams
                .iter()
                .map(|st| build_inference_profiles(&self.cost, 1.0, st.fps, &self.inference_grid))
                .collect();

            let ctx = PolicyCtx {
                window_idx: wt.window_idx,
                window_secs: trace.window_secs,
                total_gpus: self.total_gpus,
                streams: (0..num_streams)
                    .map(|s| PolicyStream {
                        id: wt.streams[s].stream,
                        fps: wt.streams[s].fps,
                        serving_accuracy: serving[s],
                        class_dist: &wt.streams[s].class_dist,
                        drift_magnitude: wt.streams[s].drift,
                        retrain_profiles: if policy.needs_profiles() {
                            &wt.streams[s].est_profiles
                        } else {
                            &[]
                        },
                        infer_profiles: &infer_profiles[s],
                    })
                    .collect(),
            };
            let plan = policy.plan_window(&ctx);

            let profile_delay = if self.charge_profiling && policy.needs_profiles() {
                wt.streams.iter().map(|s| s.profiling_gpu_seconds).sum::<f64>()
                    / self.total_gpus.max(1e-9)
            } else {
                0.0
            };

            let mut stream_reports = Vec::with_capacity(num_streams);
            for s in 0..num_streams {
                let st = &wt.streams[s];
                let sp = &plan.streams[s];
                // Effective inference factor (downgrade to feasible).
                let af = infer_profiles[s]
                    .iter()
                    .filter(|p| p.gpu_demand <= sp.infer_gpus + 1e-9)
                    .map(|p| p.accuracy_factor)
                    .fold(0.0, f64::max)
                    .min(
                        infer_profiles[s]
                            .iter()
                            .find(|p| {
                                (p.config.frame_sampling - sp.infer_config.frame_sampling).abs()
                                    < 1e-9
                                    && (p.config.resolution - sp.infer_config.resolution).abs()
                                        < 1e-9
                                    && p.gpu_demand <= sp.infer_gpus + 1e-9
                            })
                            .map(|p| p.accuracy_factor)
                            .unwrap_or(f64::INFINITY),
                    );

                let mut avg;
                let mut end_model = serving[s];
                let mut completed = false;
                let mut wasted = 0.0;
                match sp.retrain {
                    Some(planned) if planned.gpus > 0.0 => {
                        let est =
                            wt.streams[s].est_profiles.iter().find(|p| p.config == planned.config);
                        let gpu_seconds =
                            est.map(RetrainProfile::total_gpu_seconds).unwrap_or(f64::INFINITY);
                        let duration = profile_delay + gpu_seconds / planned.gpus;
                        let truth = st
                            .true_curve(planned.config.curve_key())
                            .copied()
                            .unwrap_or_else(|| LearningCurve::flat(serving[s]));
                        let post = truth.predict(planned.config.k_total()).max(serving[s]);
                        if duration <= trace.window_secs {
                            completed = true;
                            end_model = post;
                            avg = (duration * serving[s] + (trace.window_secs - duration) * post)
                                / trace.window_secs;
                        } else {
                            wasted = trace.window_secs * planned.gpus;
                            avg = serving[s];
                        }
                    }
                    _ => {
                        avg = serving[s];
                    }
                }
                avg *= af;

                stream_reports.push(StreamWindowReport {
                    id: st.stream,
                    avg_accuracy: avg,
                    min_accuracy: serving[s] * af,
                    start_model_accuracy: serving[s],
                    end_model_accuracy: end_model,
                    retrained: sp.retrain.is_some(),
                    retrain_config: sp.retrain.map(|r| r.config),
                    retrain_completed: completed,
                    train_gpus: sp.retrain.map(|r| r.gpus).unwrap_or(0.0),
                    infer_gpus: sp.infer_gpus,
                    infer_config: sp.infer_config,
                    profiling_gpu_seconds: st.profiling_gpu_seconds,
                    wasted_gpu_seconds: wasted,
                    timeline: vec![(0.0, serving[s] * af)],
                });
                staleness[s] = if completed { 0 } else { (staleness[s] + 1).min(floor) };
            }
            report
                .windows
                .push(WindowReport { window_idx: wt.window_idx, streams: stream_reports });
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ekya_core::{EkyaPolicy, SchedulerParams};
    use ekya_video::DatasetKind;

    fn small_trace() -> Trace {
        let streams = StreamSet::generate(DatasetKind::Cityscapes, 2, 4, 31);
        let cfg = RunnerConfig { seed: 3, ..RunnerConfig::default() };
        record_trace(&streams, &cfg, 4, 4)
    }

    #[test]
    fn trace_records_all_windows_and_streams() {
        let trace = small_trace();
        assert_eq!(trace.windows.len(), 4);
        for w in &trace.windows {
            assert_eq!(w.streams.len(), 2);
            for s in &w.streams {
                assert_eq!(s.stale_accuracy.len(), 4);
                assert!(!s.est_profiles.is_empty());
                assert!(!s.true_curves.is_empty());
            }
        }
    }

    #[test]
    fn staleness_ladder_is_monotone_on_average() {
        // Fresher models should on average be more accurate on the
        // current window.
        let trace = small_trace();
        let (mut fresh_sum, mut stale_sum, mut count) = (0.0, 0.0, 0);
        for w in &trace.windows[1..] {
            for s in &w.streams {
                fresh_sum += s.stale_accuracy[0];
                stale_sum += *s.stale_accuracy.last().unwrap();
                count += 1;
            }
        }
        assert!(count > 0);
        assert!(
            fresh_sum / count as f64 >= stale_sum / count as f64 - 0.02,
            "fresh {fresh_sum} vs stale {stale_sum}"
        );
    }

    #[test]
    fn replay_produces_full_report() {
        let trace = small_trace();
        let harness = ReplayPolicyHarness::new(2.0);
        let mut policy = EkyaPolicy::new(SchedulerParams::new(2.0));
        let report = harness.run(&mut policy, &trace);
        assert_eq!(report.windows.len(), 4);
        assert!(report.mean_accuracy() > 0.0);
    }

    #[test]
    fn replay_more_gpus_is_no_worse() {
        let trace = small_trace();
        let run = |gpus: f64| {
            let harness = ReplayPolicyHarness::new(gpus);
            let mut policy = EkyaPolicy::new(SchedulerParams::new(gpus));
            harness.run(&mut policy, &trace).mean_accuracy()
        };
        let small = run(0.5);
        let large = run(4.0);
        assert!(large >= small - 0.02, "more GPUs should not hurt: {small:.3} -> {large:.3}");
    }

    #[test]
    fn trace_roundtrips_through_json() {
        let trace = small_trace();
        let json = trace.to_json();
        let parsed = Trace::from_json(&json).unwrap();
        assert_eq!(parsed.windows.len(), trace.windows.len());
        assert_eq!(
            parsed.windows[1].streams[0].stale_accuracy,
            trace.windows[1].streams[0].stale_accuracy
        );
    }

    #[test]
    fn fingerprint_identifies_the_recorded_workload() {
        // Same workload → same fingerprint (including through a JSON
        // round-trip — the cross-process identity the fig 7/8 shards
        // rely on); a different seed → a different recording.
        let trace = small_trace();
        assert_eq!(trace.fingerprint(), small_trace().fingerprint());
        assert_eq!(Trace::from_json(&trace.to_json()).unwrap().fingerprint(), trace.fingerprint());
        let streams = StreamSet::generate(DatasetKind::Cityscapes, 2, 4, 31);
        let cfg = RunnerConfig { seed: 4, ..RunnerConfig::default() };
        let reseeded = record_trace(&streams, &cfg, 4, 4);
        assert_ne!(reseeded.fingerprint(), trace.fingerprint());
    }

    #[test]
    fn fingerprint_is_pinned_across_refactors() {
        // The exact fingerprint of the reference workload, captured when
        // `record_trace` sorted curve variants explicitly. The richest-map
        // now relies on `CurveKey: Ord` via a BTreeMap producing the same
        // order; if this value ever changes, every previously recorded
        // trace on disk silently stops matching its own recording — treat
        // a failure here as a broken recording identity, not a test to
        // update casually.
        assert_eq!(small_trace().fingerprint(), 0x6995842317978cc4);
    }
}
