//! Simulation time: fixed-point microseconds.
//!
//! Discrete-event simulators must order events deterministically; floating
//! point accumulates rounding that can reorder ties across platforms, so
//! the engine's clock is an integer microsecond count with explicit
//! conversions at the boundary.

use serde::{Deserialize, Serialize};

/// A point in simulated time, in microseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds a time from (possibly fractional) seconds, saturating at
    /// zero for negative inputs.
    pub fn from_secs(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return SimTime(0);
        }
        SimTime((secs * 1e6).round() as u64)
    }

    /// The time as floating-point seconds.
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Adds a duration in seconds (saturating at zero for negative
    /// results).
    pub fn plus_secs(self, secs: f64) -> Self {
        let delta = (secs * 1e6).round();
        if delta >= 0.0 {
            SimTime(self.0.saturating_add(delta as u64))
        } else {
            SimTime(self.0.saturating_sub((-delta) as u64))
        }
    }

    /// Duration from `earlier` to `self`, in seconds (0 when `earlier` is
    /// later).
    pub fn secs_since(self, earlier: SimTime) -> f64 {
        self.0.saturating_sub(earlier.0) as f64 / 1e6
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3}s", self.as_secs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_seconds() {
        let t = SimTime::from_secs(12.345678);
        assert!((t.as_secs() - 12.345678).abs() < 1e-6);
    }

    #[test]
    fn negative_and_nan_clamp_to_zero() {
        assert_eq!(SimTime::from_secs(-5.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs(f64::NAN), SimTime::ZERO);
        assert_eq!(SimTime::from_secs(f64::NEG_INFINITY), SimTime::ZERO);
    }

    #[test]
    fn plus_and_since() {
        let t = SimTime::from_secs(10.0);
        let u = t.plus_secs(2.5);
        assert!((u.secs_since(t) - 2.5).abs() < 1e-9);
        assert_eq!(t.secs_since(u), 0.0, "negative durations clamp to zero");
        let v = u.plus_secs(-2.5);
        assert_eq!(v, t);
    }

    #[test]
    fn ordering_is_total() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(1.000001);
        assert!(a < b);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(SimTime::from_secs(1.5).to_string(), "1.500s");
    }
}
