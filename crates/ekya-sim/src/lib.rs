#![warn(missing_docs)]

//! # ekya-sim — execution substrate for the Ekya reproduction
//!
//! The paper evaluates with a real testbed plus a trace-driven simulator
//! (§6.1). This crate provides both halves in one stack:
//!
//! * [`engine`] — deterministic discrete-event core (integer-microsecond
//!   clock, generation-based lazy cancellation);
//! * [`gpu`] — fractional GPU pool: inverse-power-of-two quantisation,
//!   descending-demand packing, MPS restart costs (§5);
//! * [`runner`] — the end-to-end window runner: teacher labelling,
//!   micro-profiling, policy planning, epoch-by-epoch *real* training,
//!   checkpoint hot-swaps, mid-window estimate correction and
//!   rescheduling;
//! * [`trace`] — profile logging and trace-driven replay, mirroring the
//!   paper's scaling methodology ("the simulator takes as input the
//!   accuracy and resource usage ... logged from our testbed");
//! * [`metrics`] — step-function accuracy timelines and run reports.
//!
//! Implemented: everything the evaluation needs. Omitted: GPU memory
//! pressure, PCIe contention, multi-tenant interference beyond fractional
//! shares — none of which the paper models either.

pub mod engine;
pub mod gpu;
pub mod metrics;
pub mod runner;
pub mod time;
pub mod trace;

pub use engine::{Engine, Generation};
pub use gpu::{pack, quantize_inv_pow2, MpsCosts, Placement, PlacementRequest};
pub use metrics::{RunReport, StreamWindowReport, Timeline, WindowReport};
pub use runner::{run_windows, RunnerConfig};
pub use time::SimTime;
pub use trace::{record_trace, ReplayPolicyHarness, StreamWindowTrace, Trace, WindowTrace};
