//! Deterministic discrete-event simulation engine.
//!
//! A binary-heap event queue keyed by `(time, sequence)` — the sequence
//! number breaks ties in insertion order, so runs are bit-for-bit
//! reproducible. Events carry a *generation* tag; bumping a generation
//! lazily cancels all events scheduled under the old one (the standard
//! DES idiom for rescheduling, used here when a GPU reallocation changes
//! an in-flight epoch's finish time).

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// An event scheduled for execution.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    generation: u64,
    payload: E,
}

impl<E: Eq> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl<E: Eq> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Handle identifying a cancellable event family. Events scheduled with a
/// [`Generation`] are dropped unexecuted once the generation is bumped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Generation(u64);

/// The event queue / clock.
#[derive(Debug)]
pub struct Engine<E> {
    queue: BinaryHeap<Reverse<Scheduled<E>>>,
    now: SimTime,
    seq: u64,
    current_generation: u64,
    /// Generations still considered live. Index = generation id issued by
    /// `new_generation`; value = live flag.
    live: Vec<bool>,
    executed: u64,
}

impl<E: Eq> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E: Eq> Engine<E> {
    /// Creates an empty engine at time zero with one live generation.
    pub fn new() -> Self {
        Self {
            queue: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            current_generation: 0,
            live: vec![true],
            executed: 0,
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still queued (including lazily cancelled ones).
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Issues a fresh generation handle for cancellable events.
    pub fn new_generation(&mut self) -> Generation {
        self.live.push(true);
        self.current_generation = self.live.len() as u64 - 1;
        Generation(self.current_generation)
    }

    /// Cancels every event scheduled under `generation` (lazily — they
    /// are skipped when popped).
    pub fn cancel(&mut self, generation: Generation) {
        if let Some(flag) = self.live.get_mut(generation.0 as usize) {
            *flag = false;
        }
    }

    /// Schedules `payload` at absolute time `at` under `generation`.
    /// Events scheduled in the past execute at the current time (next
    /// pop), preserving order.
    pub fn schedule_at(&mut self, at: SimTime, generation: Generation, payload: E) {
        let at = at.max(self.now);
        self.queue.push(Reverse(Scheduled {
            at,
            seq: self.seq,
            generation: generation.0,
            payload,
        }));
        self.seq += 1;
    }

    /// Schedules `payload` after `delay_secs` under `generation`.
    pub fn schedule_in(&mut self, delay_secs: f64, generation: Generation, payload: E) {
        self.schedule_at(self.now.plus_secs(delay_secs), generation, payload);
    }

    /// Pops the next live event, advancing the clock. Returns `None` when
    /// the queue is exhausted.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(Reverse(ev)) = self.queue.pop() {
            if !self.live.get(ev.generation as usize).copied().unwrap_or(false) {
                continue; // lazily cancelled
            }
            self.now = ev.at;
            self.executed += 1;
            return Some((ev.at, ev.payload));
        }
        None
    }

    /// Pops the next live event only if it occurs at or before `deadline`;
    /// otherwise leaves it queued and advances the clock to `deadline`.
    pub fn pop_until(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        loop {
            let Some(Reverse(head)) = self.queue.peek() else {
                self.now = self.now.max(deadline);
                return None;
            };
            let head_generation = head.generation;
            let head_at = head.at;
            if !self.live.get(head_generation as usize).copied().unwrap_or(false) {
                self.queue.pop();
                continue;
            }
            if head_at > deadline {
                self.now = self.now.max(deadline);
                return None;
            }
            return self.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut e: Engine<u32> = Engine::new();
        let g = e.new_generation();
        e.schedule_in(3.0, g, 3);
        e.schedule_in(1.0, g, 1);
        e.schedule_in(2.0, g, 2);
        let order: Vec<u32> = std::iter::from_fn(|| e.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec![1, 2, 3]);
        assert!((e.now().as_secs() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn ties_break_in_insertion_order() {
        let mut e: Engine<u32> = Engine::new();
        let g = e.new_generation();
        for i in 0..5 {
            e.schedule_at(SimTime::from_secs(1.0), g, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| e.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn cancelled_generations_are_skipped() {
        let mut e: Engine<u32> = Engine::new();
        let g1 = e.new_generation();
        e.schedule_in(1.0, g1, 1);
        let g2 = e.new_generation();
        e.schedule_in(2.0, g2, 2);
        e.cancel(g1);
        let order: Vec<u32> = std::iter::from_fn(|| e.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec![2]);
        assert_eq!(e.executed(), 1);
    }

    #[test]
    fn pop_until_respects_deadline() {
        let mut e: Engine<u32> = Engine::new();
        let g = e.new_generation();
        e.schedule_in(1.0, g, 1);
        e.schedule_in(5.0, g, 5);
        let deadline = SimTime::from_secs(3.0);
        assert_eq!(e.pop_until(deadline).map(|(_, p)| p), Some(1));
        assert_eq!(e.pop_until(deadline), None);
        // Clock advanced exactly to the deadline; later event still queued.
        assert!((e.now().as_secs() - 3.0).abs() < 1e-9);
        assert_eq!(e.pending(), 1);
    }

    #[test]
    fn pop_until_skips_cancelled_heads() {
        let mut e: Engine<u32> = Engine::new();
        let g1 = e.new_generation();
        e.schedule_in(1.0, g1, 1);
        let g2 = e.new_generation();
        e.schedule_in(2.0, g2, 2);
        e.cancel(g1);
        assert_eq!(e.pop_until(SimTime::from_secs(10.0)).map(|(_, p)| p), Some(2));
    }

    #[test]
    fn past_events_execute_at_current_time() {
        let mut e: Engine<u32> = Engine::new();
        let g = e.new_generation();
        e.schedule_in(5.0, g, 1);
        e.pop();
        e.schedule_at(SimTime::from_secs(1.0), g, 2); // in the past
        let (at, _) = e.pop().unwrap();
        assert!((at.as_secs() - 5.0).abs() < 1e-9, "clamped to now");
    }

    #[test]
    fn empty_engine_advances_to_deadline() {
        let mut e: Engine<u32> = Engine::new();
        assert_eq!(e.pop_until(SimTime::from_secs(7.0)), None);
        assert!((e.now().as_secs() - 7.0).abs() < 1e-9);
    }
}
