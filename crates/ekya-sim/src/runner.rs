//! End-to-end retraining-window execution.
//!
//! This is the testbed-equivalent of the paper's implementation (§5): for
//! each retraining window it (1) labels the window's training pool with
//! the golden model, (2) measures the drift-degraded serving accuracy,
//! (3) micro-profiles retraining configurations (when the policy wants
//! them), (4) asks the policy for configurations + GPU allocations, and
//! (5) executes the window on the discrete-event engine — training jobs
//! progress epoch by epoch at a rate set by their fractional GPU
//! allocation, models are hot-swapped at checkpoints and on completion,
//! estimates are corrected mid-window when observations diverge (§5), and
//! the scheduler is re-invoked whenever a retraining job completes
//! (§4.2).
//!
//! Every piece of accuracy accounting uses **measured** model accuracy on
//! ground-truth validation data; the system's internal decisions only see
//! teacher-labelled data, mirroring the deployment reality that ground
//! truth does not exist on the edge.

use crate::engine::{Engine, Generation};
use crate::gpu::{pack, quantize_inv_pow2, MpsCosts, PlacementRequest};
use crate::metrics::{RunReport, StreamWindowReport, Timeline, WindowReport};
use crate::time::SimTime;
use ekya_core::adapt::{needs_correction, refit_curve};
use ekya_core::{
    build_inference_profiles, default_inference_grid, default_retrain_grid, InProgressRetrain,
    InferenceConfig, InferenceProfile, MicroProfiler, MicroProfilerParams, Policy, PolicyCtx,
    PolicyStream, RetrainConfig, RetrainExecution, RetrainProfile, TrainHyper,
};
use ekya_nn::continual::ExemplarMemory;
use ekya_nn::cost::CostModel;
use ekya_nn::data::{DataView, Sample};
use ekya_nn::fit::LearningCurve;
use ekya_nn::golden::{distill_labels, OracleTeacher};
use ekya_nn::mlp::{Mlp, MlpArch};
use ekya_video::{StreamSet, VideoDataset};
use serde::{Deserialize, Serialize};

/// Runner configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunnerConfig {
    /// Total GPUs on the edge server.
    pub total_gpus: f64,
    /// Golden-model label error rate (§6.1 verified golden labels are
    /// near-human; 2% default).
    pub teacher_error_rate: f64,
    /// SGD hyperparameters shared by profiling and execution.
    pub hyper: TrainHyper,
    /// GPU cost model.
    pub cost: CostModel,
    /// Candidate retraining configurations Γ.
    pub retrain_grid: Vec<RetrainConfig>,
    /// Candidate inference configurations Λ.
    pub inference_grid: Vec<InferenceConfig>,
    /// Micro-profiler parameters.
    pub profiler: MicroProfilerParams,
    /// Checkpoint the in-flight model every `n` epochs and hot-swap it
    /// into serving when better (§5). `None` disables checkpointing.
    pub checkpoint_every_epochs: Option<u32>,
    /// Serving disruption when a checkpoint is swapped in, seconds (§5's
    /// "cost of the disruption").
    pub checkpoint_swap_cost_secs: f64,
    /// iCaRL exemplar memory capacity per class (0 disables).
    pub exemplar_per_class: usize,
    /// Charge micro-profiling GPU time by delaying training starts.
    pub charge_profiling: bool,
    /// Quantise allocations to inverse powers of two and pack onto
    /// physical GPUs before execution (§5 placement).
    pub quantize_placement: bool,
    /// Enable mid-window estimate correction + rescheduling (§5).
    pub adapt_estimates: bool,
    /// MPS reallocation costs.
    pub mps: MpsCosts,
    /// Width of the edge model's last hidden layer at bootstrap.
    pub initial_head_width: usize,
    /// Failure injection: windows in which the golden model is
    /// unavailable. No labels can be produced, so micro-profiling and
    /// retraining are suppressed and the exemplar memory is not updated —
    /// the system must coast on its stale models.
    pub outage_windows: Vec<usize>,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        Self {
            total_gpus: 1.0,
            teacher_error_rate: 0.02,
            hyper: TrainHyper::default(),
            cost: CostModel::default(),
            retrain_grid: default_retrain_grid(),
            inference_grid: default_inference_grid(),
            profiler: MicroProfilerParams::default(),
            checkpoint_every_epochs: Some(5),
            checkpoint_swap_cost_secs: 0.5,
            exemplar_per_class: 20,
            charge_profiling: true,
            quantize_placement: false,
            adapt_estimates: true,
            mps: MpsCosts::default(),
            initial_head_width: 16,
            outage_windows: Vec::new(),
            seed: 0,
        }
    }
}

/// Persistent per-stream state across windows.
struct StreamState {
    model: Mlp,
    memory: ExemplarMemory,
    profiler: MicroProfiler,
    teacher: OracleTeacher,
}

/// Per-window, per-stream prepared data. Ground-truth validation data and
/// the class distribution are borrowed straight from the dataset window —
/// only teacher-labelled copies (which really are new data) are owned, so
/// window preparation does not clone the immutable splits every window.
struct WindowPrep<'a> {
    /// Teacher-labelled training pool (window data + exemplars).
    pool: Vec<Sample>,
    /// Teacher-labelled validation split (what the system can observe).
    sys_val: Vec<Sample>,
    /// Ground-truth validation split (what we measure with).
    true_val: &'a [Sample],
    class_dist: &'a [f64],
    drift: f64,
    serving_true: f64,
    serving_sys: f64,
    fps: f64,
}

/// An in-flight training job during window execution.
struct ActiveTrain {
    exec: RetrainExecution,
    alloc: f64,
    generation: Generation,
    epoch_started: SimTime,
    epoch_duration_secs: f64,
    gpu_seconds_per_epoch: f64,
    curve: LearningCurve,
    observed: Vec<(f64, f64)>,
    completed: bool,
    /// Progress fraction of the in-flight epoch at the moment the job was
    /// stalled (allocation dropped to zero), so a later revival resumes
    /// from the right place instead of crediting progress for idle time.
    stalled_frac: Option<f64>,
}

impl ActiveTrain {
    fn epoch_wall_secs(&self) -> f64 {
        if self.alloc <= 0.0 {
            f64::INFINITY
        } else {
            self.gpu_seconds_per_epoch / self.alloc
        }
    }

    /// GPU-seconds of work remaining (full epochs + the unfinished part of
    /// the current epoch at time `t`).
    fn gpu_seconds_remaining(&self, t: SimTime) -> f64 {
        let full = self.exec.epochs_remaining() as f64 * self.gpu_seconds_per_epoch;
        if self.alloc <= 0.0 || !self.epoch_duration_secs.is_finite() {
            return full;
        }
        let elapsed = t.secs_since(self.epoch_started);
        let frac_done = (elapsed / self.epoch_duration_secs).clamp(0.0, 1.0);
        // `epochs_remaining` counts the in-flight epoch, so subtract its
        // completed part.
        (full - frac_done * self.gpu_seconds_per_epoch).max(0.0)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    EpochDone(usize),
}

/// Runs `num_windows` retraining windows of `streams` under `policy`.
///
/// # Panics
/// Panics when `streams` is empty or datasets have fewer than
/// `num_windows` windows.
pub fn run_windows<P: Policy + ?Sized>(
    policy: &mut P,
    streams: &StreamSet,
    cfg: &RunnerConfig,
    num_windows: usize,
) -> RunReport {
    assert!(!streams.is_empty(), "need at least one stream");
    assert!(
        streams.num_windows() >= num_windows,
        "datasets have {} windows, {} requested",
        streams.num_windows(),
        num_windows
    );
    let datasets: Vec<&VideoDataset> = streams.iter().map(|(_, ds)| ds).collect();
    let ids: Vec<_> = streams.ids();
    let n = datasets.len();
    let window_secs = datasets[0].spec.window_secs;

    let mut states: Vec<StreamState> = (0..n)
        .map(|s| {
            let ds = datasets[s];
            let seed = cfg.seed.wrapping_add(7919 * s as u64);
            StreamState {
                model: Mlp::new(
                    MlpArch::edge(ds.feature_dim, ds.num_classes, cfg.initial_head_width),
                    seed,
                ),
                memory: ExemplarMemory::new(ds.num_classes, cfg.exemplar_per_class),
                profiler: MicroProfiler::new(cfg.profiler, cfg.cost.clone(), seed ^ 0xB00),
                teacher: OracleTeacher::new(cfg.teacher_error_rate, ds.num_classes, seed ^ 0xC0),
            }
        })
        .collect();

    let mut windows = Vec::with_capacity(num_windows);
    for w_idx in 0..num_windows {
        let report = run_one_window(policy, &mut states, &datasets, &ids, cfg, w_idx, window_secs);
        // Fold this window's labelled data into the exemplar memories
        // (unless the teacher was down — no labels existed).
        for (s, state) in states.iter_mut().enumerate() {
            if cfg.exemplar_per_class > 0 && !cfg.outage_windows.contains(&w_idx) {
                let w = datasets[s].window(w_idx);
                let labelled = distill_labels(&mut state.teacher, &w.train_pool);
                state.memory.update(&labelled);
            }
        }
        windows.push(report);
    }
    RunReport { policy: policy.name(), windows }
}

#[allow(clippy::too_many_arguments)]
fn run_one_window<P: Policy + ?Sized>(
    policy: &mut P,
    states: &mut [StreamState],
    datasets: &[&VideoDataset],
    ids: &[ekya_video::StreamId],
    cfg: &RunnerConfig,
    w_idx: usize,
    window_secs: f64,
) -> WindowReport {
    let n = states.len();

    // ---- 1. Prepare window data (teacher labelling + accuracy probes). --
    let preps: Vec<WindowPrep<'_>> = (0..n)
        .map(|s| {
            let ds = datasets[s];
            let w = ds.window(w_idx);
            let state = &mut states[s];
            let fresh = distill_labels(&mut state.teacher, &w.train_pool);
            let pool = state.memory.training_mix(&fresh);
            let sys_val = distill_labels(&mut state.teacher, &w.val);
            let true_val: &[Sample] = &w.val;
            let nc = ds.num_classes;
            let serving_true = state.model.accuracy(DataView::new(true_val, nc));
            let serving_sys = state.model.accuracy(DataView::new(&sys_val, nc));
            WindowPrep {
                pool,
                sys_val,
                true_val,
                class_dist: &w.class_dist,
                drift: w.drift_from_prev,
                serving_true,
                serving_sys,
                fps: ds.spec.fps,
            }
        })
        .collect();

    // ---- 2. Micro-profile (when the policy wants profiles). ----
    // A golden-model outage leaves no labelled data: nothing to profile,
    // nothing to retrain on.
    let outage = cfg.outage_windows.contains(&w_idx);
    let mut profiling_cost = vec![0.0f64; n];
    let mut retrain_profiles: Vec<Vec<RetrainProfile>> = vec![Vec::new(); n];
    if policy.needs_profiles() && !outage {
        for s in 0..n {
            let ds = datasets[s];
            let state = &mut states[s];
            let out = state.profiler.profile(
                &state.model,
                &preps[s].pool,
                &preps[s].sys_val,
                &cfg.retrain_grid,
                ds.num_classes,
                cfg.seed.wrapping_add((w_idx as u64) << 16).wrapping_add(s as u64),
            );
            profiling_cost[s] = out.gpu_seconds_spent;
            retrain_profiles[s] = out.profiles;
        }
    }
    let infer_profiles: Vec<Vec<InferenceProfile>> = (0..n)
        .map(|s| {
            build_inference_profiles(
                &cfg.cost,
                cfg.cost.size_factor(&states[s].model),
                preps[s].fps,
                &cfg.inference_grid,
            )
        })
        .collect();

    // ---- 3. Ask the policy for the window plan. ----
    // Micro-profiling occupies the GPUs before training can begin
    // (§4.3: profiling "must share compute resources with all retraining
    // and inference"), so the policy plans against the *remaining*
    // horizon — otherwise retrainings that "just fit" the window would
    // systematically miss it.
    let profile_delay = if cfg.charge_profiling {
        profiling_cost.iter().sum::<f64>() / cfg.total_gpus.max(1e-9)
    } else {
        0.0
    };
    let plan_horizon = (window_secs - profile_delay).max(1.0);
    let build_ctx = |serving_sys: &[f64]| -> PolicyCtx<'_> {
        PolicyCtx {
            window_idx: w_idx,
            window_secs: plan_horizon,
            total_gpus: cfg.total_gpus,
            streams: (0..n)
                .map(|s| PolicyStream {
                    id: ids[s],
                    fps: preps[s].fps,
                    serving_accuracy: serving_sys[s],
                    class_dist: preps[s].class_dist,
                    drift_magnitude: preps[s].drift,
                    retrain_profiles: &retrain_profiles[s],
                    infer_profiles: &infer_profiles[s],
                })
                .collect(),
        }
    };
    let mut serving_sys: Vec<f64> = preps.iter().map(|p| p.serving_sys).collect();
    let mut serving_true: Vec<f64> = preps.iter().map(|p| p.serving_true).collect();
    let plan = policy.plan_window(&build_ctx(&serving_sys));
    assert_eq!(plan.streams.len(), n, "policy must plan every stream");

    // ---- 4. Execute the window on the event engine. ----
    let mut engine: Engine<Ev> = Engine::new();
    let deadline = SimTime::from_secs(window_secs);

    // Effective inference configuration: downgrade to the best feasible
    // configuration if the planned one cannot keep up (defence against
    // infeasible plans; contributes zero accuracy when nothing fits).
    let effective_af = |s: usize, want: &InferenceConfig, gpus: f64| -> (InferenceConfig, f64) {
        let profiles = &infer_profiles[s];
        let wanted = profiles.iter().find(|p| {
            (p.config.frame_sampling - want.frame_sampling).abs() < 1e-9
                && (p.config.resolution - want.resolution).abs() < 1e-9
        });
        if let Some(p) = wanted {
            if p.gpu_demand <= gpus + 1e-9 {
                return (p.config, p.accuracy_factor);
            }
        }
        profiles
            .iter()
            .filter(|p| p.gpu_demand <= gpus + 1e-9)
            .max_by(|a, b| {
                a.accuracy_factor
                    .partial_cmp(&b.accuracy_factor)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|p| (p.config, p.accuracy_factor))
            .unwrap_or((*want, 0.0))
    };

    let mut train_alloc: Vec<f64> =
        plan.streams.iter().map(|sp| sp.retrain.map(|r| r.gpus).unwrap_or(0.0)).collect();
    let mut infer_gpus: Vec<f64> = plan.streams.iter().map(|sp| sp.infer_gpus).collect();
    if cfg.quantize_placement {
        for a in train_alloc.iter_mut().chain(infer_gpus.iter_mut()) {
            *a = quantize_inv_pow2(*a);
        }
        // Record fragmentation; execution uses the quantised shares.
        let reqs: Vec<PlacementRequest> = train_alloc
            .iter()
            .chain(infer_gpus.iter())
            .enumerate()
            .map(|(i, &d)| PlacementRequest { job: i as u32, demand: d })
            .collect();
        let _ = pack(&reqs, cfg.total_gpus.ceil() as usize);
    }

    let mut af: Vec<f64> = Vec::with_capacity(n);
    let mut infer_cfg_eff: Vec<InferenceConfig> = Vec::with_capacity(n);
    for (s, stream_plan) in plan.streams.iter().enumerate().take(n) {
        let (c, a) = effective_af(s, &stream_plan.infer_config, infer_gpus[s]);
        infer_cfg_eff.push(c);
        af.push(a);
    }
    let mut timelines: Vec<Timeline> =
        (0..n).map(|s| Timeline::new(0.0, serving_true[s] * af[s])).collect();

    let mut jobs: Vec<Option<ActiveTrain>> = (0..n)
        .map(|s| {
            if outage {
                return None; // no labels — retraining cannot run
            }
            let planned = plan.streams[s].retrain?;
            if train_alloc[s] <= 0.0 {
                return None;
            }
            let ds = datasets[s];
            let exec = RetrainExecution::new(
                &states[s].model,
                &preps[s].pool,
                planned.config,
                ds.num_classes,
                cfg.hyper,
                cfg.seed.wrapping_add((w_idx as u64) << 20).wrapping_add(s as u64),
            );
            let gpu_seconds_per_epoch = cfg.cost.train_epoch_gpu_seconds(
                exec.model(),
                exec.num_samples(),
                planned.config.batch_size,
            );
            let curve = retrain_profiles[s]
                .iter()
                .find(|p| p.config == planned.config)
                .map(|p| p.curve)
                .unwrap_or_else(|| LearningCurve::flat(serving_sys[s]));
            let generation = engine.new_generation();
            let mut job = ActiveTrain {
                exec,
                alloc: train_alloc[s],
                generation,
                epoch_started: SimTime::from_secs(profile_delay),
                epoch_duration_secs: 0.0,
                gpu_seconds_per_epoch,
                curve,
                observed: Vec::new(),
                completed: false,
                stalled_frac: None,
            };
            job.epoch_duration_secs = job.epoch_wall_secs();
            engine.schedule_at(
                SimTime::from_secs(profile_delay + job.epoch_duration_secs),
                generation,
                Ev::EpochDone(s),
            );
            Some(job)
        })
        .collect();

    // Event loop.
    while let Some((t, Ev::EpochDone(s))) = engine.pop_until(deadline) {
        let nc = datasets[s].num_classes;
        let mut swapped = false;
        let mut request_replan = false;
        {
            let job = jobs[s].as_mut().expect("event for missing job");
            job.exec.step_epoch();
            let k = job.exec.k_done();
            let sys_acc = job.exec.accuracy(&preps[s].sys_val);
            job.observed.push((k, sys_acc));

            // §5: correct the estimate when observation diverges.
            if cfg.adapt_estimates && needs_correction(&job.curve, k, sys_acc) {
                job.curve = refit_curve(&job.curve, &job.observed);
                request_replan = true;
            }

            let at_checkpoint = cfg
                .checkpoint_every_epochs
                .map(|ck| ck > 0 && job.exec.epochs_done().is_multiple_of(ck))
                .unwrap_or(false);
            if job.exec.is_complete() {
                job.completed = true;
                request_replan = true;
                if sys_acc > serving_sys[s] {
                    swapped = true;
                }
            } else if at_checkpoint && sys_acc > serving_sys[s] {
                swapped = true;
            }
        }

        // Adopt the improved model state *before* rescheduling (the
        // policy should see the stream's new accuracy), but only write
        // its timeline point after the replan — the swap takes effect at
        // `t + swap_cost`, later than the replan's `t` updates.
        let pre_swap_true = serving_true[s];
        if swapped {
            let (new_model, sys_acc) = {
                let job = jobs[s].as_ref().unwrap();
                (job.exec.model().clone(), *job.observed.last().map(|(_, a)| a).unwrap())
            };
            states[s].model = new_model;
            states[s].model.set_layers_trained(usize::MAX);
            serving_sys[s] = sys_acc;
            serving_true[s] = states[s].model.accuracy(DataView::new(preps[s].true_val, nc));
        }

        // Mid-window rescheduling (on completion or estimate correction).
        if request_replan {
            let in_flight: Vec<Option<InProgressRetrain>> = (0..n)
                .map(|i| {
                    let job = jobs[i].as_ref()?;
                    if job.completed {
                        return None;
                    }
                    Some(InProgressRetrain {
                        config: *job.exec.config(),
                        curve: job.curve,
                        k_done: job.exec.k_done(),
                        gpu_seconds_remaining: job.gpu_seconds_remaining(t),
                    })
                })
                .collect();
            let remaining = window_secs - t.as_secs();
            if remaining > 1.0 {
                let ctx = build_ctx(&serving_sys);
                if let Some(replan) = policy.replan(&ctx, &in_flight, remaining) {
                    assert_eq!(replan.len(), n, "replan must cover every stream");
                    for i in 0..n {
                        // Inference side.
                        let new_infer_gpus = if cfg.quantize_placement {
                            quantize_inv_pow2(replan[i].infer_gpus)
                        } else {
                            replan[i].infer_gpus
                        };
                        let (c, a) = effective_af(i, &replan[i].infer_config, new_infer_gpus);
                        if (a - af[i]).abs() > 1e-12 {
                            af[i] = a;
                            // Until `t + swap_cost`, the stream that just
                            // completed still serves its pre-swap model.
                            let model_acc =
                                if i == s && swapped { pre_swap_true } else { serving_true[i] };
                            timelines[i].set(t.as_secs(), model_acc * af[i]);
                        }
                        infer_cfg_eff[i] = c;
                        infer_gpus[i] = new_infer_gpus;
                        // Training side: retune in-flight jobs.
                        let new_alloc = if cfg.quantize_placement {
                            quantize_inv_pow2(replan[i].train_gpus)
                        } else {
                            replan[i].train_gpus
                        };
                        let Some(job) = jobs[i].as_mut() else { continue };
                        if job.completed || (new_alloc - job.alloc).abs() < 1e-12 {
                            continue;
                        }
                        // Reschedule the in-flight epoch at the new rate,
                        // paying the MPS restart cost.
                        engine.cancel(job.generation);
                        job.generation = engine.new_generation();
                        let frac_done = job.stalled_frac.take().unwrap_or_else(|| {
                            if job.epoch_duration_secs.is_finite() && job.epoch_duration_secs > 0.0
                            {
                                (t.secs_since(job.epoch_started) / job.epoch_duration_secs)
                                    .clamp(0.0, 1.0)
                            } else {
                                0.0
                            }
                        });
                        job.alloc = new_alloc;
                        train_alloc[i] = new_alloc;
                        if new_alloc > 0.0 && i != s {
                            let full = job.epoch_wall_secs();
                            job.epoch_duration_secs = full;
                            job.epoch_started = t.plus_secs(-(frac_done * full));
                            let remaining_secs =
                                (1.0 - frac_done) * full + cfg.mps.realloc_restart_secs;
                            engine.schedule_in(remaining_secs, job.generation, Ev::EpochDone(i));
                        } else if new_alloc <= 0.0 {
                            // Stalled: remember partial progress; no event.
                            job.stalled_frac = Some(frac_done);
                        }
                    }
                }
            }
        }

        // The swap takes effect after its (brief) disruption window (§5).
        if swapped {
            let effective_t = (t.as_secs() + cfg.checkpoint_swap_cost_secs).min(window_secs);
            timelines[s].set(effective_t, serving_true[s] * af[s]);
        }

        // Schedule stream `s`'s next epoch (after any reallocation).
        let job = jobs[s].as_mut().unwrap();
        if !job.completed && job.alloc > 0.0 {
            job.epoch_started = t;
            job.epoch_duration_secs = job.epoch_wall_secs();
            engine.schedule_in(job.epoch_duration_secs, job.generation, Ev::EpochDone(s));
        }
    }

    // ---- 5. Window report. ----
    let streams_report = (0..n)
        .map(|s| {
            let avg = timelines[s].average(0.0, window_secs);
            let min = timelines[s].min_over(0.0, window_secs);
            let (retrained, config, completed, wasted) = match &jobs[s] {
                Some(job) => {
                    let wasted = if job.completed {
                        0.0
                    } else {
                        job.exec.epochs_done() as f64 * job.gpu_seconds_per_epoch
                    };
                    (true, Some(*job.exec.config()), job.completed, wasted)
                }
                None => (false, None, false, 0.0),
            };
            StreamWindowReport {
                id: ids[s],
                avg_accuracy: avg,
                min_accuracy: min,
                start_model_accuracy: preps[s].serving_true,
                end_model_accuracy: serving_true[s],
                retrained,
                retrain_config: config,
                retrain_completed: completed,
                train_gpus: plan.streams[s].retrain.map(|r| r.gpus).unwrap_or(0.0),
                infer_gpus: plan.streams[s].infer_gpus,
                infer_config: infer_cfg_eff[s],
                profiling_gpu_seconds: profiling_cost[s],
                wasted_gpu_seconds: wasted,
                timeline: timelines[s].points().to_vec(),
            }
        })
        .collect();
    WindowReport { window_idx: w_idx, streams: streams_report }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ekya_core::{EkyaPolicy, SchedulerParams};
    use ekya_video::DatasetKind;

    fn small_config(gpus: f64) -> RunnerConfig {
        RunnerConfig { total_gpus: gpus, seed: 11, ..RunnerConfig::default() }
    }

    #[test]
    fn ekya_runs_end_to_end() {
        let streams = StreamSet::generate(DatasetKind::Cityscapes, 2, 4, 5);
        let mut policy = EkyaPolicy::new(SchedulerParams::new(2.0));
        let report = run_windows(&mut policy, &streams, &small_config(2.0), 4);
        assert_eq!(report.windows.len(), 4);
        assert_eq!(report.policy, "Ekya");
        for w in &report.windows {
            assert_eq!(w.streams.len(), 2);
            for s in &w.streams {
                assert!(s.avg_accuracy >= 0.0 && s.avg_accuracy <= 1.0);
            }
        }
        // A functioning system should be retraining at least sometimes and
        // reaching useful accuracy after the bootstrap window.
        assert!(report.retrain_rate() > 0.0, "Ekya should retrain");
        let late: f64 = report.windows[1..].iter().map(|w| w.mean_accuracy()).sum::<f64>() / 3.0;
        assert!(late > 0.4, "post-bootstrap accuracy too low: {late:.3}");
    }

    #[test]
    fn accuracy_improves_over_bootstrap() {
        // The first window starts from a random model; by later windows
        // continuous retraining should have lifted accuracy substantially.
        let streams = StreamSet::generate(DatasetKind::UrbanBuilding, 1, 5, 21);
        let mut policy = EkyaPolicy::new(SchedulerParams::new(1.0));
        let report = run_windows(&mut policy, &streams, &small_config(1.0), 5);
        let first = report.windows[0].mean_accuracy();
        let last = report.windows[4].mean_accuracy();
        assert!(
            last > first,
            "continuous learning should improve accuracy: {first:.3} -> {last:.3}"
        );
    }

    #[test]
    fn deterministic_runs() {
        let streams = StreamSet::generate(DatasetKind::Waymo, 2, 3, 9);
        let run = || {
            let mut policy = EkyaPolicy::new(SchedulerParams::new(1.0));
            run_windows(&mut policy, &streams, &small_config(1.0), 3)
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }

    #[test]
    fn quantized_placement_still_works() {
        let streams = StreamSet::generate(DatasetKind::Cityscapes, 2, 3, 13);
        let mut policy = EkyaPolicy::new(SchedulerParams::new(2.0));
        let cfg = RunnerConfig { quantize_placement: true, ..small_config(2.0) };
        let report = run_windows(&mut policy, &streams, &cfg, 3);
        assert_eq!(report.windows.len(), 3);
        assert!(report.mean_accuracy() > 0.0);
    }

    #[test]
    fn zero_exemplars_disables_memory() {
        let streams = StreamSet::generate(DatasetKind::Waymo, 1, 3, 17);
        let mut policy = EkyaPolicy::new(SchedulerParams::new(1.0));
        let cfg = RunnerConfig { exemplar_per_class: 0, ..small_config(1.0) };
        let report = run_windows(&mut policy, &streams, &cfg, 3);
        assert_eq!(report.windows.len(), 3);
    }

    #[test]
    #[should_panic(expected = "need at least one stream")]
    fn empty_streams_panic() {
        let streams = StreamSet::generate(DatasetKind::Waymo, 0, 3, 0);
        let mut policy = EkyaPolicy::new(SchedulerParams::new(1.0));
        run_windows(&mut policy, &streams, &small_config(1.0), 3);
    }

    #[test]
    fn teacher_outage_suppresses_retraining() {
        let streams = StreamSet::generate(DatasetKind::Cityscapes, 2, 4, 23);
        let mut policy = EkyaPolicy::new(SchedulerParams::new(2.0));
        let cfg = RunnerConfig { outage_windows: vec![1, 2], ..small_config(2.0) };
        let report = run_windows(&mut policy, &streams, &cfg, 4);
        for w in &report.windows {
            let any_retrained = w.streams.iter().any(|s| s.retrained);
            if w.window_idx == 1 || w.window_idx == 2 {
                assert!(!any_retrained, "window {} must not retrain", w.window_idx);
            }
        }
        // Drift during the outage shows up as lower accuracy than a
        // healthy run over the same windows.
        let mut healthy_policy = EkyaPolicy::new(SchedulerParams::new(2.0));
        let healthy = run_windows(&mut healthy_policy, &streams, &small_config(2.0), 4);
        let late = |r: &RunReport| r.windows[2..].iter().map(|w| w.mean_accuracy()).sum::<f64>();
        assert!(
            late(&healthy) >= late(&report) - 1e-9,
            "outages should not help: healthy {:.3} vs outage {:.3}",
            late(&healthy),
            late(&report)
        );
    }

    #[test]
    fn system_recovers_after_outage() {
        // Fast-drifting dashcams guarantee retraining is worth it again
        // right after the outage.
        let streams = StreamSet::generate(DatasetKind::Cityscapes, 1, 5, 29);
        let mut policy = EkyaPolicy::new(SchedulerParams::new(1.0));
        let cfg = RunnerConfig { outage_windows: vec![2], ..small_config(1.0) };
        let report = run_windows(&mut policy, &streams, &cfg, 5);
        // Retraining resumes in some window after the outage.
        let resumed = report
            .windows
            .iter()
            .filter(|w| w.window_idx > 2)
            .any(|w| w.streams.iter().any(|s| s.retrained));
        assert!(resumed, "retraining should resume after the outage");
    }
}
