//! Fractional GPU pool with MPS-style placement (§5).
//!
//! The thief scheduler produces "continuous" fractional allocations that
//! may span physical GPUs. To avoid cross-GPU communication, Ekya first
//! quantises allocations to inverse powers of two (1/2, 1/4, 1/8) and
//! then packs jobs onto GPUs in descending order of demand to reduce
//! fragmentation \[28\]. Changing a job's allocation under Nvidia MPS
//! requires restarting the process, which the actor-based implementation
//! mitigates but does not eliminate — the pool charges a configurable
//! restart penalty on reallocation.

use serde::{Deserialize, Serialize};

/// Quantises a fractional GPU demand to the MPS-friendly grid: integers
/// for demands ≥ 1 (rounded down, min 1), inverse powers of two
/// (1/2, 1/4, 1/8) below 1, and 0 below 1/16.
pub fn quantize_inv_pow2(alloc: f64) -> f64 {
    if alloc >= 1.0 {
        return alloc.floor();
    }
    for &q in &[0.5, 0.25, 0.125] {
        if alloc >= q {
            return q;
        }
    }
    if alloc >= 1.0 / 16.0 {
        0.125 // round the in-between band up to the smallest slice
    } else {
        0.0
    }
}

/// A job's placement request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlacementRequest {
    /// Caller-assigned job id.
    pub job: u32,
    /// Quantised GPU demand.
    pub demand: f64,
}

/// Where a job landed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementAssignment {
    /// The job id.
    pub job: u32,
    /// GPU indices used (one entry per whole GPU; fractional jobs use a
    /// single GPU).
    pub gpus: Vec<usize>,
    /// Fraction of each listed GPU consumed (1.0 for whole-GPU entries).
    pub fraction: f64,
}

/// Result of packing a set of jobs onto the pool.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    /// Successful assignments.
    pub assignments: Vec<PlacementAssignment>,
    /// Jobs that did not fit (demand exceeded remaining capacity).
    pub unplaced: Vec<u32>,
    /// Unused capacity summed over GPUs, in GPU units.
    pub fragmentation: f64,
}

/// Packs jobs onto `num_gpus` physical GPUs: multi-GPU jobs take whole
/// GPUs; fractional jobs first-fit onto the fullest GPU that still has
/// room (best-fit-decreasing), so small slices fill gaps left by large
/// ones.
pub fn pack(requests: &[PlacementRequest], num_gpus: usize) -> Placement {
    let mut free = vec![1.0f64; num_gpus];
    let mut assignments = Vec::new();
    let mut unplaced = Vec::new();

    // Descending demand (paper: "descending order of demands to reduce
    // fragmentation"); stable tie-break on job id for determinism.
    let mut order: Vec<&PlacementRequest> = requests.iter().filter(|r| r.demand > 0.0).collect();
    order.sort_by(|a, b| {
        b.demand
            .partial_cmp(&a.demand)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.job.cmp(&b.job))
    });

    const EPS: f64 = 1e-9;
    for req in order {
        if req.demand >= 1.0 - EPS {
            // Whole-GPU job: take the first `n` completely free GPUs.
            let n = req.demand.round() as usize;
            let free_idx: Vec<usize> = free
                .iter()
                .enumerate()
                .filter(|(_, f)| **f >= 1.0 - EPS)
                .map(|(i, _)| i)
                .take(n)
                .collect();
            if free_idx.len() < n {
                unplaced.push(req.job);
                continue;
            }
            for &i in &free_idx {
                free[i] = 0.0;
            }
            assignments.push(PlacementAssignment { job: req.job, gpus: free_idx, fraction: 1.0 });
        } else {
            // Fractional job: best fit — the GPU with the least remaining
            // space that still fits.
            let target = free
                .iter()
                .enumerate()
                .filter(|(_, f)| **f >= req.demand - EPS)
                .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(i, _)| i);
            match target {
                Some(i) => {
                    free[i] -= req.demand;
                    assignments.push(PlacementAssignment {
                        job: req.job,
                        gpus: vec![i],
                        fraction: req.demand,
                    });
                }
                None => unplaced.push(req.job),
            }
        }
    }
    let fragmentation = free.iter().sum();
    Placement { assignments, unplaced, fragmentation }
}

/// MPS reallocation cost model: seconds of downtime a job pays when its
/// allocation changes (process restart under MPS; §5 notes the
/// actor-based design keeps the model in GPU memory, shrinking but not
/// eliminating this).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MpsCosts {
    /// Seconds to restart a job at a new allocation.
    pub realloc_restart_secs: f64,
}

impl Default for MpsCosts {
    fn default() -> Self {
        Self { realloc_restart_secs: 0.5 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantization_grid() {
        assert_eq!(quantize_inv_pow2(2.7), 2.0);
        assert_eq!(quantize_inv_pow2(1.0), 1.0);
        assert_eq!(quantize_inv_pow2(0.9), 0.5);
        assert_eq!(quantize_inv_pow2(0.5), 0.5);
        assert_eq!(quantize_inv_pow2(0.3), 0.25);
        assert_eq!(quantize_inv_pow2(0.2), 0.125);
        assert_eq!(quantize_inv_pow2(0.125), 0.125);
        assert_eq!(quantize_inv_pow2(0.07), 0.125);
        assert_eq!(quantize_inv_pow2(0.01), 0.0);
    }

    #[test]
    fn quantization_never_increases_beyond_double() {
        // Sum of quantised demands stays within the original budget for
        // the >= 1/8 region (quantisation rounds down there).
        for &a in &[0.13, 0.27, 0.6, 0.99, 1.5, 3.2] {
            assert!(quantize_inv_pow2(a) <= a + 1e-9, "quantize({a}) grew");
        }
    }

    #[test]
    fn whole_gpu_jobs_take_whole_gpus() {
        let reqs = vec![
            PlacementRequest { job: 0, demand: 2.0 },
            PlacementRequest { job: 1, demand: 1.0 },
        ];
        let p = pack(&reqs, 4);
        assert!(p.unplaced.is_empty());
        let a0 = p.assignments.iter().find(|a| a.job == 0).unwrap();
        assert_eq!(a0.gpus.len(), 2);
        let used: std::collections::HashSet<usize> =
            p.assignments.iter().flat_map(|a| a.gpus.iter().copied()).collect();
        assert_eq!(used.len(), 3, "no GPU shared between whole-GPU jobs");
        assert!((p.fragmentation - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fractional_jobs_share_gpus() {
        let reqs = vec![
            PlacementRequest { job: 0, demand: 0.5 },
            PlacementRequest { job: 1, demand: 0.25 },
            PlacementRequest { job: 2, demand: 0.25 },
        ];
        let p = pack(&reqs, 1);
        assert!(p.unplaced.is_empty());
        assert!(p.fragmentation.abs() < 1e-9, "perfectly packed");
    }

    #[test]
    fn overflow_reports_unplaced() {
        let reqs = vec![
            PlacementRequest { job: 0, demand: 1.0 },
            PlacementRequest { job: 1, demand: 1.0 },
        ];
        let p = pack(&reqs, 1);
        assert_eq!(p.unplaced, vec![1]);
    }

    #[test]
    fn zero_demand_jobs_are_ignored() {
        let reqs = vec![PlacementRequest { job: 0, demand: 0.0 }];
        let p = pack(&reqs, 1);
        assert!(p.assignments.is_empty());
        assert!(p.unplaced.is_empty());
    }

    #[test]
    fn best_fit_reduces_fragmentation() {
        // 0.5 + 0.5 on one GPU, 0.25 x 4 on the other: best-fit-decreasing
        // achieves zero fragmentation on 2 GPUs.
        let reqs = vec![
            PlacementRequest { job: 0, demand: 0.5 },
            PlacementRequest { job: 1, demand: 0.5 },
            PlacementRequest { job: 2, demand: 0.25 },
            PlacementRequest { job: 3, demand: 0.25 },
            PlacementRequest { job: 4, demand: 0.25 },
            PlacementRequest { job: 5, demand: 0.25 },
        ];
        let p = pack(&reqs, 2);
        assert!(p.unplaced.is_empty());
        assert!(p.fragmentation.abs() < 1e-9, "fragmentation = {}", p.fragmentation);
    }

    #[test]
    fn packing_is_deterministic() {
        let reqs: Vec<PlacementRequest> =
            (0..8).map(|i| PlacementRequest { job: i, demand: 0.25 }).collect();
        assert_eq!(pack(&reqs, 2), pack(&reqs, 2));
    }
}
