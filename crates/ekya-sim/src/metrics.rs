//! Accuracy timelines and run reports.
//!
//! The paper's objective is *inference accuracy averaged over the
//! retraining window* (§4.1). During execution the per-stream inference
//! accuracy is a step function of time — it changes when the serving
//! model is hot-swapped, when the inference configuration changes, and at
//! window boundaries — so the measurement side is a step-function
//! [`Timeline`] integrated per window.

use ekya_core::{InferenceConfig, RetrainConfig};
use ekya_video::StreamId;
use serde::{Deserialize, Serialize};

/// A right-continuous step function of time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Timeline {
    /// `(t, value)` change points, strictly increasing in `t`.
    points: Vec<(f64, f64)>,
}

impl Timeline {
    /// Creates a timeline with value `v0` from time `t0`.
    pub fn new(t0: f64, v0: f64) -> Self {
        Self { points: vec![(t0, v0)] }
    }

    /// Sets the value from time `t` until the next (later) change point.
    /// Appending in time order is O(1); setting at an existing time
    /// overwrites; an earlier-than-last time inserts in order (this
    /// happens when a clamped-to-window-end event is followed by an
    /// earlier-timestamped update).
    pub fn set(&mut self, t: f64, v: f64) {
        match self
            .points
            .binary_search_by(|p| p.0.partial_cmp(&t).unwrap_or(std::cmp::Ordering::Less))
        {
            Ok(i) => self.points[i].1 = v,
            Err(i) => {
                // Overwrite near-identical timestamps instead of stacking.
                if i > 0 && (self.points[i - 1].0 - t).abs() < 1e-12 {
                    self.points[i - 1].1 = v;
                } else {
                    self.points.insert(i, (t, v));
                }
            }
        }
    }

    /// The value at time `t` (the value of the last change point ≤ `t`;
    /// the initial value for earlier times).
    pub fn value_at(&self, t: f64) -> f64 {
        let mut v = self.points.first().map(|p| p.1).unwrap_or(0.0);
        for &(pt, pv) in &self.points {
            if pt <= t + 1e-12 {
                v = pv;
            } else {
                break;
            }
        }
        v
    }

    /// Time-average over `[t0, t1]`.
    pub fn average(&self, t0: f64, t1: f64) -> f64 {
        if t1 <= t0 {
            return self.value_at(t0);
        }
        let mut integral = 0.0;
        let mut cur_t = t0;
        let mut cur_v = self.value_at(t0);
        for &(pt, pv) in &self.points {
            if pt <= t0 {
                continue;
            }
            if pt >= t1 {
                break;
            }
            integral += (pt - cur_t) * cur_v;
            cur_t = pt;
            cur_v = pv;
        }
        integral += (t1 - cur_t) * cur_v;
        integral / (t1 - t0)
    }

    /// Minimum value attained in `[t0, t1]`.
    pub fn min_over(&self, t0: f64, t1: f64) -> f64 {
        let mut min = self.value_at(t0);
        for &(pt, pv) in &self.points {
            if pt > t0 && pt < t1 {
                min = min.min(pv);
            }
        }
        min
    }

    /// The raw change points.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }
}

/// Measured outcome for one stream in one window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamWindowReport {
    /// Stream identity.
    pub id: StreamId,
    /// Measured inference accuracy averaged over the window (ground
    /// truth) — the paper's metric.
    pub avg_accuracy: f64,
    /// Minimum instantaneous inference accuracy in the window.
    pub min_accuracy: f64,
    /// Serving-model accuracy on this window's data at window start
    /// (after drift, before any retraining).
    pub start_model_accuracy: f64,
    /// Serving-model accuracy at window end.
    pub end_model_accuracy: f64,
    /// Whether a retraining ran this window.
    pub retrained: bool,
    /// The retraining configuration, when one ran.
    pub retrain_config: Option<RetrainConfig>,
    /// Whether the retraining completed within the window.
    pub retrain_completed: bool,
    /// GPUs allocated to retraining (at window start).
    pub train_gpus: f64,
    /// GPUs allocated to inference (at window start).
    pub infer_gpus: f64,
    /// Inference configuration in effect at window start.
    pub infer_config: InferenceConfig,
    /// GPU-seconds spent micro-profiling for this stream.
    pub profiling_gpu_seconds: f64,
    /// GPU-seconds of retraining work discarded at the window boundary
    /// (incomplete retraining — a pathology of fixed-config baselines).
    pub wasted_gpu_seconds: f64,
    /// The full inference-accuracy timeline (window-relative seconds).
    pub timeline: Vec<(f64, f64)>,
}

/// Outcome of one retraining window across all streams.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowReport {
    /// Window index.
    pub window_idx: usize,
    /// Per-stream outcomes.
    pub streams: Vec<StreamWindowReport>,
}

impl WindowReport {
    /// Mean measured accuracy across streams.
    pub fn mean_accuracy(&self) -> f64 {
        if self.streams.is_empty() {
            return 0.0;
        }
        self.streams.iter().map(|s| s.avg_accuracy).sum::<f64>() / self.streams.len() as f64
    }
}

/// Outcome of a full multi-window run under one policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Policy name.
    pub policy: String,
    /// Per-window reports.
    pub windows: Vec<WindowReport>,
}

impl RunReport {
    /// The headline metric: accuracy averaged over windows and streams.
    pub fn mean_accuracy(&self) -> f64 {
        if self.windows.is_empty() {
            return 0.0;
        }
        self.windows.iter().map(WindowReport::mean_accuracy).sum::<f64>()
            / self.windows.len() as f64
    }

    /// Mean accuracy for one stream across windows.
    pub fn stream_mean_accuracy(&self, id: StreamId) -> f64 {
        let vals: Vec<f64> = self
            .windows
            .iter()
            .flat_map(|w| w.streams.iter().filter(|s| s.id == id).map(|s| s.avg_accuracy))
            .collect();
        if vals.is_empty() {
            0.0
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    }

    /// Fraction of stream-windows in which retraining ran.
    pub fn retrain_rate(&self) -> f64 {
        let total: usize = self.windows.iter().map(|w| w.streams.len()).sum();
        if total == 0 {
            return 0.0;
        }
        let retrained: usize =
            self.windows.iter().flat_map(|w| &w.streams).filter(|s| s.retrained).count();
        retrained as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_average_of_constant() {
        let t = Timeline::new(0.0, 0.5);
        assert!((t.average(0.0, 10.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn timeline_average_of_step() {
        let mut t = Timeline::new(0.0, 0.4);
        t.set(50.0, 0.8);
        // 50 s at 0.4, 150 s at 0.8 over [0, 200].
        let expected = (50.0 * 0.4 + 150.0 * 0.8) / 200.0;
        assert!((t.average(0.0, 200.0) - expected).abs() < 1e-12);
    }

    #[test]
    fn timeline_value_at() {
        let mut t = Timeline::new(0.0, 0.1);
        t.set(5.0, 0.2);
        t.set(10.0, 0.3);
        assert_eq!(t.value_at(0.0), 0.1);
        assert_eq!(t.value_at(4.9), 0.1);
        assert_eq!(t.value_at(5.0), 0.2);
        assert_eq!(t.value_at(100.0), 0.3);
    }

    #[test]
    fn timeline_out_of_order_insert() {
        let mut t = Timeline::new(0.0, 0.1);
        t.set(10.0, 0.5);
        t.set(5.0, 0.3); // earlier than the last point: ordered insert
        assert_eq!(t.value_at(4.0), 0.1);
        assert_eq!(t.value_at(6.0), 0.3);
        assert_eq!(t.value_at(11.0), 0.5);
        let expected = (5.0 * 0.1 + 5.0 * 0.3 + 10.0 * 0.5) / 20.0;
        assert!((t.average(0.0, 20.0) - expected).abs() < 1e-12);
    }

    #[test]
    fn timeline_overwrite_at_same_time() {
        let mut t = Timeline::new(0.0, 0.1);
        t.set(5.0, 0.2);
        t.set(5.0, 0.9);
        assert_eq!(t.value_at(6.0), 0.9);
        assert_eq!(t.points().len(), 2);
    }

    #[test]
    fn timeline_min_over() {
        let mut t = Timeline::new(0.0, 0.6);
        t.set(10.0, 0.3);
        t.set(20.0, 0.9);
        assert!((t.min_over(0.0, 30.0) - 0.3).abs() < 1e-12);
        assert!((t.min_over(20.0, 30.0) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn timeline_partial_range_average() {
        let mut t = Timeline::new(0.0, 1.0);
        t.set(10.0, 0.0);
        assert!((t.average(5.0, 15.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn degenerate_average_range() {
        let t = Timeline::new(0.0, 0.7);
        assert_eq!(t.average(5.0, 5.0), 0.7);
    }

    fn mk_report_for(id: u32, acc: f64) -> StreamWindowReport {
        StreamWindowReport {
            id: StreamId(id),
            avg_accuracy: acc,
            min_accuracy: acc,
            start_model_accuracy: acc,
            end_model_accuracy: acc,
            retrained: false,
            retrain_config: None,
            retrain_completed: false,
            train_gpus: 0.0,
            infer_gpus: 1.0,
            infer_config: InferenceConfig { frame_sampling: 1.0, resolution: 1.0 },
            profiling_gpu_seconds: 0.0,
            wasted_gpu_seconds: 0.0,
            timeline: vec![(0.0, acc)],
        }
    }

    #[test]
    fn run_report_aggregates() {
        let report = RunReport {
            policy: "test".into(),
            windows: vec![
                WindowReport {
                    window_idx: 0,
                    streams: vec![mk_report_for(0, 0.6), mk_report_for(1, 0.8)],
                },
                WindowReport {
                    window_idx: 1,
                    streams: vec![mk_report_for(0, 0.7), mk_report_for(1, 0.9)],
                },
            ],
        };
        assert!((report.mean_accuracy() - 0.75).abs() < 1e-12);
        assert_eq!(report.retrain_rate(), 0.0);
        assert!((report.stream_mean_accuracy(StreamId(0)) - 0.65).abs() < 1e-12);
    }

    #[test]
    fn empty_report_is_zero() {
        let report = RunReport { policy: "x".into(), windows: vec![] };
        assert_eq!(report.mean_accuracy(), 0.0);
        assert_eq!(report.retrain_rate(), 0.0);
    }
}
