//! Serving-path integration: loadgen determinism (in-process and through
//! the `ekya_loadgen` bin) and crash injection against the `ekya_serve`
//! daemon — a killed daemon must leave a valid, internally consistent
//! status snapshot on disk.

use ekya_bench::{run_fleet, FleetConfig};
use ekya_server::StatusSnapshot;
use std::path::{Path, PathBuf};

fn temp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ekya_serve_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Runs a serving-path bin hermetically: stray knobs scrubbed, results
/// redirected to `dir`.
fn run_bin(bin: &str, dir: &Path, extra: &[(&str, &str)]) -> std::process::ExitStatus {
    let mut cmd = std::process::Command::new(bin);
    for var in [
        "EKYA_SHARD",
        "EKYA_RESUME",
        "EKYA_BATCH",
        "EKYA_ORCH_CRASH_AFTER",
        "EKYA_SERVE_CRASH_AFTER",
        "EKYA_STREAMS_LIVE",
        "EKYA_ARRIVAL",
        "EKYA_QUICK",
        "EKYA_WINDOWS",
        "EKYA_STREAMS",
        "EKYA_SEED",
        "EKYA_TRACE",
    ] {
        cmd.env_remove(var);
    }
    cmd.env("EKYA_RESULTS_DIR", dir)
        .env("EKYA_WORKERS", "2")
        .envs(extra.iter().copied())
        .status()
        .expect("serving bin spawns")
}

/// The daemon's serialized plane is deterministic: the same seed
/// produces byte-identical reports run over run, and the concurrency
/// shape (shards, trainers, planner threads) changes nothing.
#[test]
fn fleet_reports_are_deterministic_across_runs_and_shapes() {
    let first = run_fleet(&FleetConfig::parallel(8, 2, 42, 3)).0;
    let second = run_fleet(&FleetConfig::parallel(8, 2, 42, 3)).0;
    let serial = run_fleet(&FleetConfig::serial(8, 2, 42)).0;
    let bytes = |r| serde_json::to_string_pretty(r).expect("serialise");
    assert_eq!(bytes(&first), bytes(&second), "same seed, same shape must be byte-identical");
    assert_eq!(bytes(&first), bytes(&serial), "concurrency shape must not change a byte");
    assert_eq!(first.snapshot.windows_completed, 2);
    assert_eq!(first.snapshot.rejected, 2, "overload attempts rejected and counted");
    // A different seed must actually change the outcome — otherwise the
    // byte-identity assertions above are vacuous.
    let other = run_fleet(&FleetConfig::serial(8, 2, 43)).0;
    assert_ne!(bytes(&first), bytes(&other), "seed must matter");
}

/// Two `ekya_loadgen` processes with the same `EKYA_SEED` write
/// byte-identical status snapshots, even at different worker counts.
#[test]
fn loadgen_snapshots_are_byte_identical_across_processes() {
    let bin = env!("CARGO_BIN_EXE_ekya_loadgen");
    let base: &[(&str, &str)] =
        &[("EKYA_STREAMS_LIVE", "6"), ("EKYA_WINDOWS", "2"), ("EKYA_SEED", "42")];
    let dir_a = temp("lg_a");
    let dir_b = temp("lg_b");
    assert!(run_bin(bin, &dir_a, base).success(), "first loadgen run failed");
    let mut with_workers = base.to_vec();
    with_workers.push(("EKYA_WORKERS", "4"));
    assert!(run_bin(bin, &dir_b, &with_workers).success(), "second loadgen run failed");

    let snap_a = std::fs::read(dir_a.join("serve_status.json")).expect("first snapshot");
    let snap_b = std::fs::read(dir_b.join("serve_status.json")).expect("second snapshot");
    assert_eq!(snap_a, snap_b, "loadgen snapshots must be byte-identical for one seed");

    // The wall-clock metrics file exists and parses, but is *not* under
    // the byte-identity contract.
    let metrics: serde::Value = serde_json::from_str(
        &std::fs::read_to_string(dir_a.join("loadgen_metrics.json")).expect("metrics file"),
    )
    .expect("metrics parse");
    assert_eq!(metrics.get("streams"), Some(&serde::Value::I64(6)));

    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

/// The `ekya_serve` daemon's serialized plane is independent of the
/// concurrency shape end-to-end through the bin: a single-worker and a
/// 4-worker daemon write byte-identical status snapshots for one seed —
/// on the clean path *and* on the killed-daemon path (crash injection
/// mid-window leaves the same frozen bytes regardless of workers).
#[test]
fn serve_snapshots_are_byte_identical_across_worker_counts_and_crash() {
    let bin = env!("CARGO_BIN_EXE_ekya_serve");
    let base: &[(&str, &str)] =
        &[("EKYA_STREAMS_LIVE", "6"), ("EKYA_WINDOWS", "2"), ("EKYA_SEED", "42")];
    let snapshot = |tag: &str, extra: &[(&str, &str)], want_code: Option<i32>| -> Vec<u8> {
        let dir = temp(tag);
        let mut env = base.to_vec();
        env.extend_from_slice(extra);
        let status = run_bin(bin, &dir, &env);
        match want_code {
            Some(code) => assert_eq!(status.code(), Some(code), "{tag}: wrong exit code"),
            None => assert!(status.success(), "{tag}: run failed"),
        }
        let bytes = std::fs::read(dir.join("serve_status.json")).expect("snapshot written");
        let _ = std::fs::remove_dir_all(&dir);
        bytes
    };

    let w1 = snapshot("sv_w1", &[("EKYA_WORKERS", "1")], None);
    let w4 = snapshot("sv_w4", &[("EKYA_WORKERS", "4")], None);
    assert_eq!(w1, w4, "worker count must not change a snapshot byte");

    let crash1 =
        snapshot("sv_c1", &[("EKYA_WORKERS", "1"), ("EKYA_SERVE_CRASH_AFTER", "1")], Some(17));
    let crash4 =
        snapshot("sv_c4", &[("EKYA_WORKERS", "4"), ("EKYA_SERVE_CRASH_AFTER", "1")], Some(17));
    assert_eq!(crash1, crash4, "killed-daemon snapshot must not depend on workers");
    assert_ne!(w1, crash1, "crashed daemon froze at an earlier window than the clean run");
}

/// Crash injection: `ekya_serve` killed in the middle of window 1 (exit
/// 17, mid-retraining) must leave the *window-0* snapshot on disk —
/// valid JSON, internally consistent, counters frozen at the last
/// completed window. `ekya_serve --validate` agrees.
#[test]
fn killed_daemon_leaves_consistent_snapshot() {
    let bin = env!("CARGO_BIN_EXE_ekya_serve");
    let base: &[(&str, &str)] =
        &[("EKYA_STREAMS_LIVE", "6"), ("EKYA_WINDOWS", "3"), ("EKYA_SEED", "42")];
    let dir = temp("crash");

    let mut crash = base.to_vec();
    crash.push(("EKYA_SERVE_CRASH_AFTER", "1"));
    let status = run_bin(bin, &dir, &crash);
    assert_eq!(status.code(), Some(17), "crash injection must exit 17");

    let raw = std::fs::read_to_string(dir.join("serve_status.json"))
        .expect("killed daemon must leave a snapshot");
    let snap: StatusSnapshot = serde_json::from_str(&raw).expect("snapshot must be valid JSON");
    assert_eq!(snap.validate(), Vec::<String>::new(), "snapshot must be internally consistent");
    assert_eq!(snap.windows_completed, 1, "snapshot describes the last *completed* window");
    assert_eq!(snap.admitted, 6);
    assert!(
        snap.streams.iter().all(|s| s.windows_completed == 1),
        "no stream's ledger may run ahead of the daemon's"
    );
    // No torn tmp file left behind by the atomic write.
    assert!(!dir.join("serve_status.json.tmp").exists(), "tmp snapshot must never survive");

    // The daemon's own validator agrees with the library's.
    let mut cmd = std::process::Command::new(bin);
    let status = cmd
        .arg("--validate")
        .env("EKYA_RESULTS_DIR", &dir)
        .status()
        .expect("ekya_serve --validate spawns");
    assert!(status.success(), "ekya_serve --validate must accept the recovered snapshot");

    let _ = std::fs::remove_dir_all(&dir);
}
