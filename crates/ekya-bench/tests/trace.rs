//! Telemetry integration: the logical-plane trace is a pure function of
//! `(workload, seed)` — byte-identical across worker counts and across
//! a shard split + merge — and a daemon killed mid-window leaves a
//! valid trace truncated at the last completed window boundary.

use ekya_baselines::PolicySpec;
use ekya_bench::{Grid, GridExec, ShardSpec};
use ekya_telemetry::{merge_traces, parse_trace, validate_trace};
use ekya_video::DatasetKind;
use std::sync::Mutex;

/// The telemetry session (recorder state + the `ENABLED` flag) is
/// process-global, so every test that starts one serializes on this
/// lock — otherwise two tests' records would interleave in one trace.
static TRACE_LOCK: Mutex<()> = Mutex::new(());

/// A small but real grid: every cell runs actual retraining windows.
fn tiny_grid() -> Grid {
    Grid::new(2, 42)
        .datasets(&[DatasetKind::Waymo])
        .stream_counts(&[1, 2])
        .gpu_counts(&[1.0])
        .policies(vec![PolicySpec::Ekya, PolicySpec::FixedRes { inference_share: 0.5 }])
}

/// Runs the grid under a live in-memory trace session and returns the
/// rendered (sorted, aggregated) logical-plane trace.
fn traced_run(grid: &Grid, workers: usize, shard: Option<ShardSpec>) -> String {
    ekya_telemetry::start(None);
    let run = GridExec::new("tiny", workers).shard(shard).run(grid);
    let text = ekya_telemetry::render();
    ekya_telemetry::stop();
    assert_eq!(run.report.failed, 0, "tiny grid must execute cleanly");
    text
}

#[test]
fn trace_is_byte_identical_across_worker_counts() {
    let _guard = TRACE_LOCK.lock().unwrap();
    let grid = tiny_grid();
    let serial = traced_run(&grid, 1, None);
    let parallel = traced_run(&grid, 4, None);
    assert!(!serial.is_empty(), "the traced run must record something");
    assert_eq!(serial, parallel, "worker count must not change a trace byte");
    assert_eq!(validate_trace(&serial), Vec::<String>::new());
    // Every cell of the grid shows up as a cell span exactly once.
    let records = parse_trace(&serial).unwrap();
    let cell_spans = records.iter().filter(|r| r.kind == "span" && r.name == "cell").count();
    assert_eq!(cell_spans, 4, "one cell span per grid cell");
}

#[test]
fn shard_trace_union_is_byte_identical_to_unsharded() {
    let _guard = TRACE_LOCK.lock().unwrap();
    let grid = tiny_grid();
    let full = traced_run(&grid, 2, None);
    let shard0 = traced_run(&grid, 2, Some(ShardSpec { index: 0, count: 2 }));
    let shard1 = traced_run(&grid, 2, Some(ShardSpec { index: 1, count: 2 }));

    // Merge order must not matter: spans re-sort under the logical sort
    // key and counters/hists merge commutatively.
    let merged = merge_traces(&[&shard1, &shard0]).unwrap();
    assert_eq!(merged, full, "shard trace union must equal the unsharded trace");
    assert_eq!(merge_traces(&[&shard0, &shard1]).unwrap(), full);
    assert_eq!(validate_trace(&merged), Vec::<String>::new());
}

/// The serving daemon's logical-plane trace is a pure function of
/// `(fleet, seed)` end-to-end through the `ekya_serve` bin: a
/// single-worker and a 4-worker daemon leave byte-identical
/// `TRACE_serve.jsonl` files (the `.wall.json` sidecar is wall-plane
/// and exempt).
#[test]
fn serve_trace_is_byte_identical_across_worker_counts() {
    let bin = env!("CARGO_BIN_EXE_ekya_serve");
    let traced_serve = |tag: &str, workers: &str| -> Vec<u8> {
        let dir = std::env::temp_dir().join(format!("ekya_trace_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut cmd = std::process::Command::new(bin);
        for var in ["EKYA_SHARD", "EKYA_RESUME", "EKYA_QUICK", "EKYA_STREAMS", "EKYA_SEED"] {
            cmd.env_remove(var);
        }
        let status = cmd
            .env("EKYA_RESULTS_DIR", &dir)
            .env("EKYA_WORKERS", workers)
            .env("EKYA_STREAMS_LIVE", "6")
            .env("EKYA_WINDOWS", "2")
            .env("EKYA_SEED", "42")
            .env("EKYA_TRACE", "1")
            .status()
            .expect("ekya_serve spawns");
        assert!(status.success(), "traced serve run ({workers} workers) failed");
        let bytes = std::fs::read(dir.join("TRACE_serve.jsonl")).expect("trace written");
        let _ = std::fs::remove_dir_all(&dir);
        bytes
    };
    let w1 = traced_serve("sv_w1", "1");
    let w4 = traced_serve("sv_w4", "4");
    assert_eq!(w1, w4, "worker count must not change a trace byte");
    let text = String::from_utf8(w1).expect("trace is UTF-8");
    assert_eq!(validate_trace(&text), Vec::<String>::new());
    assert!(!text.is_empty());
}

/// Crash injection with tracing on: `ekya_serve` killed mid-window
/// (exit 17) must leave a *valid* trace on disk that stops at the last
/// completed window — the per-window atomic flush contract.
#[test]
fn killed_daemon_trace_truncates_at_window_boundary() {
    let bin = env!("CARGO_BIN_EXE_ekya_serve");
    let dir = std::env::temp_dir().join(format!("ekya_trace_crash_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let mut cmd = std::process::Command::new(bin);
    for var in ["EKYA_SHARD", "EKYA_RESUME", "EKYA_QUICK", "EKYA_STREAMS", "EKYA_SEED"] {
        cmd.env_remove(var);
    }
    let status = cmd
        .env("EKYA_RESULTS_DIR", &dir)
        .env("EKYA_WORKERS", "2")
        .env("EKYA_STREAMS_LIVE", "6")
        .env("EKYA_WINDOWS", "3")
        .env("EKYA_SEED", "42")
        .env("EKYA_SERVE_CRASH_AFTER", "1")
        .env("EKYA_TRACE", "1")
        .status()
        .expect("ekya_serve spawns");
    assert_eq!(status.code(), Some(17), "crash injection must exit 17");

    let text = std::fs::read_to_string(dir.join("TRACE_serve.jsonl"))
        .expect("killed daemon must leave its per-window trace");
    assert_eq!(validate_trace(&text), Vec::<String>::new(), "truncated trace must validate");
    let records = parse_trace(&text).unwrap();
    assert!(!records.is_empty());
    // The daemon died inside window 1, after window 0's flush: the
    // trace may know windows -1 (admission) and 0, never window 1.
    let max_window = records.iter().map(|r| r.window).max().unwrap();
    assert_eq!(max_window, 0, "trace must truncate at the last completed window");
    let completed = records
        .iter()
        .find(|r| r.kind == "counter" && r.name == "windows_completed")
        .expect("windows_completed counter present");
    assert_eq!(completed.count, 1, "exactly one window completed before the kill");
    // No torn tmp file left behind by the atomic trace flush.
    assert!(!dir.join("TRACE_serve.jsonl.tmp").exists(), "tmp trace must never survive");

    let _ = std::fs::remove_dir_all(&dir);
}
