//! Integration tests for chunked (batched) dispatch — the guarantees
//! the batching layer documents:
//!
//! 1. [`chunk_ranges`] is a pure, contiguous, cap-respecting cover of
//!    the dispatch order;
//! 2. batched parallel execution is **byte-identical** to serial, to
//!    per-cell dispatch (`EKYA_BATCH=1`), and to a 2-shard merged run,
//!    at every batch size;
//! 3. a poisoned cell inside a chunk fails alone — the rest of its
//!    chunk still runs;
//! 4. resume composes with batching, including a prior that cuts a
//!    chunk in half (the shape a mid-chunk kill leaves behind) and a
//!    real killed-process run (crash injection mid-chunk, then
//!    `EKYA_RESUME=1`).

use ekya_baselines::PolicySpec;
use ekya_bench::{chunk_ranges, merge_reports, Grid, GridExec, HarnessReport, ShardSpec};
use ekya_video::DatasetKind;

/// A small but real grid: every cell runs actual retraining windows.
fn tiny_grid() -> Grid {
    Grid::new(2, 42)
        .datasets(&[DatasetKind::Waymo])
        .stream_counts(&[1, 2])
        .gpu_counts(&[1.0])
        .policies(vec![PolicySpec::Ekya, PolicySpec::FixedRes { inference_share: 0.5 }])
}

fn bytes(report: &HarnessReport) -> String {
    serde_json::to_string_pretty(report).expect("serialise report")
}

#[test]
fn chunk_ranges_cover_contiguously_and_respect_caps() {
    // Empty input → no chunks.
    assert!(chunk_ranges(&[], 4, None).is_empty());

    // Any output must tile 0..n in order, without gaps or overlaps, and
    // respect the fair-share cap ceil(n / workers).
    let uniform = vec![1.0; 10];
    for (workers, cap) in [(1, None), (4, None), (4, Some(2)), (3, Some(100)), (16, None)] {
        let ranges = chunk_ranges(&uniform, workers, cap);
        let mut next = 0usize;
        let fair = uniform.len().div_ceil(workers.max(1));
        for r in &ranges {
            assert_eq!(r.start, next, "ranges must tile contiguously");
            assert!(r.end > r.start, "empty chunk");
            assert!(r.len() <= fair, "chunk of {} cells exceeds fair share {fair}", r.len());
            if let Some(cap) = cap {
                assert!(r.len() <= cap.max(1), "chunk exceeds EKYA_BATCH cap {cap}");
            }
            next = r.end;
        }
        assert_eq!(next, uniform.len(), "ranges must cover every cell");
    }

    // max_cells = 1 reproduces per-cell dispatch exactly.
    let singletons = chunk_ranges(&uniform, 4, Some(1));
    assert_eq!(singletons, (0..10).map(|i| i..i + 1).collect::<Vec<_>>());

    // A heavyweight cell closes its chunk early: nothing else should be
    // serialized behind it.
    let skewed = [100.0, 1.0, 1.0, 1.0];
    let ranges = chunk_ranges(&skewed, 2, None);
    assert_eq!(ranges[0], 0..1, "the heavy cell must be dispatched alone, got {ranges:?}");

    // Pure function: identical inputs, identical ranges.
    assert_eq!(chunk_ranges(&skewed, 2, None), chunk_ranges(&skewed, 2, None));
}

#[test]
fn batched_runs_are_byte_identical_across_batch_sizes() {
    let grid = tiny_grid();
    // Reference: serial per-cell dispatch — the pre-batching behaviour.
    let reference = GridExec::new("tiny", 1).batch(Some(1)).run(&grid);
    assert_eq!(reference.report.failed, 0);
    let expect = bytes(&reference.report);

    for batch in [None, Some(1), Some(2), Some(3), Some(64)] {
        for workers in [1, 4] {
            let run = GridExec::new("tiny", workers).batch(batch).run(&grid);
            assert_eq!(
                bytes(&run.report),
                expect,
                "batch={batch:?} workers={workers} diverged from serial per-cell dispatch"
            );
        }
    }
}

#[test]
fn sharded_batched_union_matches_unbatched_unsharded() {
    let grid = tiny_grid();
    let reference = GridExec::new("tiny", 1).batch(Some(1)).run(&grid);

    let shard0 =
        GridExec::new("tiny", 2).batch(Some(2)).shard(Some(ShardSpec { index: 0, count: 2 }));
    let shard1 =
        GridExec::new("tiny", 2).batch(Some(2)).shard(Some(ShardSpec { index: 1, count: 2 }));
    let merged =
        merge_reports(&[shard1.run(&grid).report, shard0.run(&grid).report]).expect("merge");
    assert_eq!(
        bytes(&merged),
        bytes(&reference.report),
        "batched 2-shard union must be byte-identical to the unbatched unsharded run"
    );
}

#[test]
fn poisoned_cell_mid_chunk_fails_alone() {
    // streams = 0 makes the runner panic; with the whole grid packed
    // into one chunk, the panic must still be contained to its own cell.
    let grid = Grid::new(2, 42)
        .datasets(&[DatasetKind::Waymo])
        .stream_counts(&[0, 1, 2])
        .gpu_counts(&[1.0])
        .policies(vec![PolicySpec::Ekya]);
    let report = GridExec::new("tiny", 1).batch(Some(16)).run(&grid).report;

    assert_eq!(report.cells.len(), 3);
    assert_eq!(report.failed, 1);
    let poisoned = report.cells.iter().find(|c| c.scenario.streams == 0).unwrap();
    assert!(
        poisoned.error.as_deref().unwrap_or_default().contains("need at least one stream"),
        "poisoned cell should carry the panic message, got {:?}",
        poisoned.error
    );
    for healthy in report.cells.iter().filter(|c| c.scenario.streams > 0) {
        assert!(healthy.error.is_none(), "chunk-mate of the poisoned cell failed too");
        assert!(healthy.mean_accuracy > 0.0);
    }
}

#[test]
fn resume_from_a_mid_chunk_prior_is_byte_identical() {
    let grid = tiny_grid();
    let full = GridExec::new("tiny", 2).batch(Some(2)).run(&grid);

    // With batch(2) the 4 cells dispatch as chunks [0,1] and [2,3]. A
    // prior holding only cell 0 is exactly what a kill one cell into the
    // first chunk leaves behind (the checkpoint is flushed before the
    // injected exit) — resuming must fill in the other three cells and
    // change nothing.
    let truncated = HarnessReport {
        cells: full.report.cells.iter().take(1).cloned().collect(),
        ..full.report.clone()
    };
    let resumed = GridExec::new("tiny", 2).batch(Some(2)).prior(truncated.prior_cells()).run(&grid);
    assert_eq!(resumed.stats.resumed, 1);
    assert_eq!(resumed.stats.executed, 3);
    assert_eq!(
        bytes(&resumed.report),
        bytes(&full.report),
        "mid-chunk resume must not change a byte"
    );
}

/// The real kill: run the fig06 bin as a subprocess with batching on
/// (`EKYA_BATCH=3`) and crash injection two cells in — mid-chunk — then
/// resume it. The checkpoint flushed before the injected exit must hold
/// exactly the two completed cells, and the resumed run's report must be
/// byte-identical to an undisturbed run's.
#[test]
fn killed_mid_chunk_run_resumes_to_byte_identical_report() {
    let bin = env!("CARGO_BIN_EXE_fig06_streams");
    let base: &[(&str, &str)] =
        &[("EKYA_QUICK", "1"), ("EKYA_WINDOWS", "1"), ("EKYA_SEED", "42"), ("EKYA_WORKERS", "2")];
    let run = |dir: &std::path::Path, extra: &[(&str, &str)]| {
        let mut cmd = std::process::Command::new(bin);
        for var in ["EKYA_SHARD", "EKYA_RESUME", "EKYA_BATCH", "EKYA_ORCH_CRASH_AFTER"] {
            cmd.env_remove(var);
        }
        cmd.envs(base.iter().copied())
            .env("EKYA_RESULTS_DIR", dir)
            .envs(extra.iter().copied())
            .status()
            .expect("fig06_streams spawns")
    };
    let temp = |tag: &str| {
        let dir = std::env::temp_dir().join(format!("ekya_batch_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    };

    // Undisturbed reference run (auto batch size — byte identity is
    // guaranteed across batch sizes, so it need not match the killed
    // run's EKYA_BATCH).
    let ref_dir = temp("ref");
    assert!(run(&ref_dir, &[]).success(), "reference run failed");
    let reference = std::fs::read(ref_dir.join("fig06_streams.json")).expect("reference report");

    // Killed run: chunks of 3, injected exit after 2 completed cells.
    let run_dir = temp("kill");
    let status = run(&run_dir, &[("EKYA_BATCH", "3"), ("EKYA_ORCH_CRASH_AFTER", "2")]);
    assert_eq!(status.code(), Some(17), "crash injection must exit 17");
    let partial: HarnessReport = serde_json::from_str(
        &std::fs::read_to_string(run_dir.join("fig06_streams.partial.json"))
            .expect("mid-chunk kill must leave a checkpoint"),
    )
    .expect("checkpoint parses");
    assert_eq!(partial.cells.len(), 2, "checkpoint must hold exactly the completed cells");

    // Resume and converge.
    assert!(
        run(&run_dir, &[("EKYA_BATCH", "3"), ("EKYA_RESUME", "1")]).success(),
        "resumed run failed"
    );
    let resumed = std::fs::read(run_dir.join("fig06_streams.json")).expect("resumed report");
    assert_eq!(resumed, reference, "killed+resumed report must be byte-identical");
    assert!(
        !run_dir.join("fig06_streams.partial.json").exists(),
        "checkpoint must be removed once the final report lands"
    );

    let _ = std::fs::remove_dir_all(&ref_dir);
    let _ = std::fs::remove_dir_all(&run_dir);
}
