//! Integration tests for the parallel experiment harness: determinism
//! (serial ≡ 4 workers, byte for byte), panic isolation at grid level,
//! and knob parsing.

use ekya_baselines::PolicySpec;
use ekya_bench::{run_grid, Grid, Knobs};
use ekya_video::DatasetKind;

/// A small but real grid: every cell runs actual retraining windows.
fn tiny_grid() -> Grid {
    Grid::new(2, 42)
        .datasets(&[DatasetKind::Waymo])
        .stream_counts(&[1, 2])
        .gpu_counts(&[1.0])
        .policies(vec![PolicySpec::Ekya, PolicySpec::FixedRes { inference_share: 0.5 }])
}

#[test]
fn parallel_run_is_byte_identical_to_serial() {
    let grid = tiny_grid();
    let serial = run_grid(&grid, 1);
    let parallel = run_grid(&grid, 4);

    assert_eq!(serial.report.failed, 0);
    assert_eq!(parallel.report.failed, 0);
    assert_eq!(serial.report.cells.len(), 4);
    assert!(serial.report.is_complete());
    // Structural equality first (better failure message granularity)...
    assert_eq!(serial.report.cells, parallel.report.cells);
    // ...then the byte-identical guarantee the harness documents — over
    // the whole report, which is deterministic by construction (timing
    // lives in the unserialized RunStats).
    let s = serde_json::to_string_pretty(&serial.report).unwrap();
    let p = serde_json::to_string_pretty(&parallel.report).unwrap();
    assert_eq!(s, p, "serialized reports must match byte for byte");
    assert_eq!(serial.stats.executed, 4);
    assert_eq!(serial.stats.resumed, 0);
    // The cells did real work.
    for cell in &serial.report.cells {
        assert!(cell.mean_accuracy > 0.0, "cell {} produced no accuracy", cell.scenario.label());
        assert!(cell.report.is_some());
    }
}

#[test]
fn poisoned_cell_does_not_sink_the_run() {
    // streams = 0 makes the runner panic ("need at least one stream");
    // the harness must isolate that cell and complete the others.
    let grid = Grid::new(2, 42)
        .datasets(&[DatasetKind::Waymo])
        .stream_counts(&[0, 1])
        .gpu_counts(&[1.0])
        .policies(vec![PolicySpec::Ekya]);
    let report = run_grid(&grid, 2).report;

    assert_eq!(report.cells.len(), 2);
    assert_eq!(report.failed, 1);
    let poisoned = report.cells.iter().find(|c| c.scenario.streams == 0).unwrap();
    let healthy = report.cells.iter().find(|c| c.scenario.streams == 1).unwrap();
    assert!(
        poisoned.error.as_deref().unwrap_or_default().contains("need at least one stream"),
        "poisoned cell should carry the panic message, got {:?}",
        poisoned.error
    );
    assert!(poisoned.report.is_none());
    assert!(healthy.error.is_none());
    assert!(healthy.mean_accuracy > 0.0);
}

#[test]
fn knobs_parse_from_env_once() {
    // `from_env` reads the ambient environment; unset knobs fall back to
    // the per-bin defaults passed at the call sites.
    let knobs = Knobs::from_env();
    let _ = knobs.quick();
    assert!(knobs.workers() >= 1);
    assert!(knobs.windows(7) >= 1);
    assert!(knobs.streams(3) >= 1);
}
