//! Integration tests for sharded + resumable grid execution — the three
//! operator guarantees the harness documents:
//!
//! 1. the union of shard reports is **byte-identical** to an unsharded
//!    single-process run;
//! 2. resuming over a truncated report executes only the missing cells
//!    and still writes the identical report (resume-after-kill);
//! 3. merging rejects overlapping and missing shard ranges.

use ekya_baselines::PolicySpec;
use ekya_bench::{merge_reports, Grid, GridExec, GridRun, HarnessReport, ShardSpec};
use ekya_video::DatasetKind;

/// A small but real grid: every cell runs actual retraining windows.
fn tiny_grid() -> Grid {
    Grid::new(2, 42)
        .datasets(&[DatasetKind::Waymo])
        .stream_counts(&[1, 2])
        .gpu_counts(&[1.0])
        .policies(vec![PolicySpec::Ekya, PolicySpec::FixedRes { inference_share: 0.5 }])
}

fn run_shard(grid: &Grid, shard: Option<ShardSpec>) -> GridRun {
    GridExec::new("tiny", 2).shard(shard).run(grid)
}

fn bytes(report: &HarnessReport) -> String {
    serde_json::to_string_pretty(report).expect("serialise report")
}

#[test]
fn shard_union_is_byte_identical_to_unsharded() {
    let grid = tiny_grid();
    let full = run_shard(&grid, None);
    assert!(full.report.is_complete());
    assert_eq!(full.report.failed, 0);

    let shard0 = run_shard(&grid, Some(ShardSpec { index: 0, count: 2 }));
    let shard1 = run_shard(&grid, Some(ShardSpec { index: 1, count: 2 }));

    // Shard outputs are disjoint slices of the full enumeration.
    assert_eq!(shard0.report.cells.len(), 2);
    assert_eq!(shard1.report.cells.len(), 2);
    assert!(!shard0.report.is_complete());
    let prints0: std::collections::HashSet<u64> =
        shard0.report.cells.iter().map(|c| c.scenario.fingerprint()).collect();
    assert!(shard1.report.cells.iter().all(|c| !prints0.contains(&c.scenario.fingerprint())));

    // Merge order must not matter; the result equals the unsharded run
    // byte for byte.
    let merged = merge_reports(&[shard1.report.clone(), shard0.report.clone()]).unwrap();
    assert_eq!(merged, full.report);
    assert_eq!(bytes(&merged), bytes(&full.report), "merged union must be byte-identical");
}

#[test]
fn resume_executes_only_the_missing_cells() {
    let grid = tiny_grid();
    let full = run_shard(&grid, None);

    // Simulate a killed run whose checkpoint holds only half the cells
    // (drop every other one, as the ISSUE's kill scenario prescribes).
    let truncated = HarnessReport {
        cells: full
            .report
            .cells
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 2 == 0)
            .map(|(_, c)| c.clone())
            .collect(),
        ..full.report.clone()
    };
    let prior = truncated.prior_cells();
    assert_eq!(prior.len(), 2);

    let resumed = GridExec::new("tiny", 2).prior(prior).run(&grid);
    assert_eq!(resumed.stats.resumed, 2, "half the cells come from the prior report");
    assert_eq!(resumed.stats.executed, 2, "only the missing half is executed");
    assert_eq!(resumed.report, full.report);
    assert_eq!(bytes(&resumed.report), bytes(&full.report), "resume must not change a byte");
}

#[test]
fn resume_composes_with_sharding() {
    let grid = tiny_grid();
    let shard = Some(ShardSpec { index: 0, count: 2 });
    let reference = run_shard(&grid, shard);

    // A prior covering the *whole* grid still only fills this shard's
    // slice — and makes the shard run free of execution.
    let full_prior = run_shard(&grid, None).report.prior_cells();
    let resumed = GridExec::new("tiny", 2).shard(shard).prior(full_prior).run(&grid);
    assert_eq!(resumed.stats.executed, 0);
    assert_eq!(resumed.stats.resumed, 2);
    assert_eq!(bytes(&resumed.report), bytes(&reference.report));
}

#[test]
fn merge_rejects_overlapping_and_missing_shards() {
    let grid = tiny_grid();
    let shard0 = run_shard(&grid, Some(ShardSpec { index: 0, count: 2 })).report;
    let shard1 = run_shard(&grid, Some(ShardSpec { index: 1, count: 2 })).report;

    // The same shard twice → overlap.
    let err = merge_reports(&[shard0.clone(), shard0.clone()]).unwrap_err();
    assert!(err.contains("overlap"), "unexpected message: {err}");

    // A lone shard → missing cells, naming the uncovered range.
    let err = merge_reports(std::slice::from_ref(&shard1)).unwrap_err();
    assert!(err.contains("missing cells 0..2"), "unexpected message: {err}");

    // A truncated shard report (e.g. a live checkpoint) → rejected.
    let mut partial = shard0.clone();
    partial.cells.pop();
    let err = merge_reports(&[partial, shard1]).unwrap_err();
    assert!(err.contains("partial or truncated"), "unexpected message: {err}");
}

#[test]
fn checkpoint_file_tracks_completed_cells() {
    let grid = tiny_grid();
    let path = std::env::temp_dir()
        .join(format!("ekya_sharding_ckpt_{}.partial.json", std::process::id()));
    let _ = std::fs::remove_file(&path);

    let run = GridExec::new("tiny", 2).checkpoint(Some(path.clone())).run(&grid);
    // After the run the checkpoint holds every completed cell, parses as
    // a report, and its prior map resumes the whole grid for free.
    let text = std::fs::read_to_string(&path).expect("checkpoint written");
    let ckpt: HarnessReport = serde_json::from_str(&text).expect("checkpoint parses");
    assert_eq!(ckpt.cells, run.report.cells);
    let resumed = GridExec::new("tiny", 2).prior(ckpt.prior_cells()).run(&grid);
    assert_eq!(resumed.stats.executed, 0);
    assert_eq!(resumed.report, run.report);
    let _ = std::fs::remove_file(&path);
}
