//! # ekya-bench — experiment harness
//!
//! One binary per table/figure of the paper (run with
//! `cargo run --release -p ekya-bench --bin figNN_*`) plus Criterion
//! microbenchmarks (`cargo bench`). Binaries print the same rows/series
//! the paper reports and write machine-readable JSON to `results/`.
//!
//! The paper's result grids — (dataset × streams × GPUs × policy) — are
//! embarrassingly parallel, so the bins no longer hand-roll serial
//! nested-for sweeps: [`grid`] declares a sweep as data and [`harness`]
//! fans its cells out across a work-stealing worker pool with
//! deterministic per-cell seeding (parallel ≡ serial, byte for byte).
//!
//! Environment knobs shared by all binaries (parsed once, by
//! [`Knobs::from_env`]):
//!
//! * `EKYA_WINDOWS` — override the number of retraining windows;
//! * `EKYA_STREAMS` — override the number of concurrent streams;
//! * `EKYA_SEED` — override the base RNG seed;
//! * `EKYA_QUICK=1` — shrink sweeps for a fast smoke run;
//! * `EKYA_WORKERS` — harness worker threads (default: hardware
//!   parallelism);
//! * `EKYA_SHARD=i/N` — run shard `i` of `N` of a grid bin's cell range
//!   (merge the per-shard reports with the `grid_merge` bin);
//! * `EKYA_RESUME` — resume a killed or partial run from its previous
//!   report/checkpoint (`1`), or from an explicit report path;
//! * `EKYA_RESULTS_DIR` — redirect `results/` (used by the
//!   `ekya-orchestrate` supervisor to give each run its own directory).
//!
//! The serving-path bins (`ekya_serve`, `ekya_loadgen`; see [`serve`])
//! additionally read `EKYA_STREAMS_LIVE` (fleet size), `EKYA_ARRIVAL`
//! (frame-arrival pattern), and `EKYA_SERVE_CRASH_AFTER` (fault
//! injection) via [`knob`].
//!
//! The shardable bins also have a declarative identity ([`bins`]) that
//! the `ekya-orchestrate` crate's `ekya_grid` launcher uses to plan,
//! spawn, supervise, and merge a whole sharded run with one command.
//!
//! The full operator guide — every knob, the report JSON schema, worked
//! sharding/resume examples, and the determinism guarantees — lives in
//! `crates/ekya-bench/README.md`.

pub mod bins;
pub mod config_profile;
pub mod grid;
pub mod harness;
pub mod knob;
pub mod serve;

pub use bins::{
    ablation_grid_for, ablation_policies, bin_workload, fig07_datasets, fig07_grid, fig07_grid_for,
    fig08_grid, fig08_grid_for, fig08_policies, fig09_grid_for, fig10_grid, fig11_eps,
    fig11_grid_for, run_ablation_bin, run_bin, run_fig07_bin, run_fig08_bin, run_fig09_bin,
    run_fig11_bin, run_table4_bin, run_table5_bin, shardable_bins, table3_grid, table4_grid_for,
    table4_policies, table4_scales, table5_grid_for, table5_pretrain_windows, BinWorkload,
    ReplayTraces, FIG10_DELTAS, FIG10_GPUS, FIG11_GPUS, TABLE4_GPUS, TABLE4_WINDOW_SECS,
    TABLE5_GPUS,
};
pub use config_profile::{
    config_grid, merge_config_shards, pareto_flags, run_config_bin, ConfigPoint, ConfigShard,
    ConfigSweep,
};
pub use grid::{cell_seed, coverage_order, fig06_grid, fnv1a, Grid, Scenario, ShardSpec};
pub use harness::{
    append_bench_series, bench_series_path, chunk_ranges, default_workers, git_describe,
    latest_bench_entry, load_report, merge_reports, report_path, run_grid, run_grid_bin,
    run_grid_bin_with, run_parallel, run_scenario, trace_path, BenchRecord, BenchSeriesEntry,
    CellResult, GridExec, GridRun, HarnessReport, Knobs, RunStats,
};

pub use knob::env_f64;
pub use serve::{
    build_daemon, quick_fleet, quick_fleet_spec, run_fleet, FleetConfig, LoadgenReport,
};

use serde::Serialize;
use std::path::PathBuf;

/// A printable results table.
#[derive(Debug, Clone, Serialize)]
pub struct Table {
    /// Table title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row cells (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Prints the table in aligned-markdown form.
    pub fn print(&self) {
        println!("\n## {}\n", self.title);
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let print_row = |cells: &[String], widths: &[usize]| {
            let line: Vec<String> =
                cells.iter().zip(widths).map(|(c, w)| format!("{c:>w$}", w = *w)).collect();
            println!("| {} |", line.join(" | "));
        };
        print_row(&self.headers, &widths);
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        println!("|-{}-|", sep.join("-|-"));
        for row in &self.rows {
            print_row(row, &widths);
        }
    }
}

/// Writes `value` as pretty-printed JSON to `path`, creating the parent
/// directory first. The single place result files are produced — every
/// writer (bins via [`save_json`], the harness's reports, `grid_merge`)
/// goes through it, so the on-disk format can never diverge between
/// them (the byte-identity guarantees depend on that).
pub fn write_json<T: Serialize>(path: &std::path::Path, value: &T) -> Result<(), String> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    }
    let json = serde_json::to_string_pretty(value)
        .map_err(|e| format!("cannot serialise {}: {e}", path.display()))?;
    std::fs::write(path, json).map_err(|e| format!("cannot write {}: {e}", path.display()))
}

/// Writes a serialisable result to `results/<name>.json` (relative to the
/// workspace root when run via cargo, else the current directory).
/// Returns the written path on success, `None` when serialization or IO
/// failed (after printing the error) — callers that chain follow-up
/// actions (e.g. removing a checkpoint) key off the return value.
pub fn save_json<T: Serialize>(name: &str, value: &T) -> Option<PathBuf> {
    let path = results_dir().join(format!("{name}.json"));
    match write_json(&path, value) {
        Ok(()) => {
            println!("\n[results written to {}]", path.display());
            Some(path)
        }
        Err(e) => {
            eprintln!("failed to save {name}: {e}");
            None
        }
    }
}

/// The workspace `results/` directory (resolved via `CARGO_MANIFEST_DIR`
/// when run through cargo, else relative to the current directory).
///
/// `EKYA_RESULTS_DIR` overrides the resolution entirely — the
/// `ekya-orchestrate` supervisor points each shard worker (and its
/// hermetic tests) at a per-run directory this way, so orchestrated
/// shard reports and checkpoints never collide with a foreground run's.
pub fn results_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("EKYA_RESULTS_DIR") {
        if !dir.is_empty() {
            return PathBuf::from(dir);
        }
    }
    if let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") {
        // crates/ekya-bench -> workspace root two levels up.
        let p = PathBuf::from(manifest);
        if let Some(root) = p.parent().and_then(|p| p.parent()) {
            return root.join("results");
        }
    }
    PathBuf::from("results")
}

/// Formats a float with 3 decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a float with 1 decimal.
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_knobs_default() {
        assert_eq!(env_f64("EKYA_DOES_NOT_EXIST", 1.5), 1.5);
    }

    #[test]
    fn table_rows_align() {
        let mut t = Table::new("test", &["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.rows.len(), 1);
        t.print(); // smoke: no panic
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new("test", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }
}
