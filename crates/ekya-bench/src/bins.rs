//! Declarative identity of the shardable fig/table bins — the registry
//! the `ekya-orchestrate` supervisor plans, spawns, and merges against.
//!
//! Each shardable bin is a pure function of the shared environment knobs
//! ([`Knobs`]): its grid (and therefore its cell count, shard ranges,
//! and report schema) is fully determined by `(bin name, knobs)`. This
//! module states that identity **once** — the bin binaries and the
//! orchestrator's in-process worker both build their workload here, so a
//! worker-run shard is byte-identical to a hand-launched one by
//! construction, not by convention.
//!
//! Since the every-experiment-is-a-cell refactor, **every** fig/table
//! bin of the evaluation expresses its work this way: cells are
//! [`Scenario`]s (the policy axis carries the bin's
//! variant as a [`PolicySpec`] — cloud links, cache designs, estimate
//! noise, design toggles are all registry-buildable specs now), and the
//! bins that are not plain simulations supply a custom evaluator to
//! [`GridExec::run_with`](crate::GridExec::run_with):
//!
//! * trace replay (fig07, fig08) — the [`ReplayTraces`] helper records
//!   each dataset's mechanistic trace once, lazily, and replays every
//!   (GPUs × policy) cell against it;
//! * cloud offload (table4) and cached models (table5) — the §6.5 run
//!   functions from `ekya-baselines`, keyed on the cell's spec;
//! * runner-side toggles (fig11's estimate noise, the design
//!   ablations) — applied from the spec before executing the windows.
//!
//! Only the motivation/example binaries (`fig02_motivation`,
//! `fig04_example`, `scheduler_runtime`) remain outside the registry.
//!
//! * [`bin_workload`] — the declarative workload of a bin (a scenario
//!   [`Grid`] or the fig03 configuration sweep), used for planning:
//!   total cells, shard math via [`ShardSpec::range`](crate::ShardSpec::range).
//! * [`run_bin`] — execute a bin's sweep under the given knobs, writing
//!   exactly the report files the bin binary writes (tables and other
//!   presentation stay in the binaries).

use crate::config_profile::{config_grid, run_config_bin};
use crate::grid::{cell_seed, fig06_grid, Grid, Scenario};
use crate::harness::{run_grid_bin, run_grid_bin_with, CellResult, GridRun, Knobs};
use ekya_baselines::{
    run_cloud_retraining, run_model_cache, standard_policies, CloudNetwork, CloudRunConfig,
    DesignToggle, HoldoutPick, PolicyBuildCtx, PolicySpec,
};
use ekya_sim::{record_trace, run_windows, ReplayPolicyHarness, RunReport, RunnerConfig, Trace};
use ekya_video::{DatasetKind, DatasetSpec, StreamSet};
use std::sync::OnceLock;

/// The Δ axis of the Figure 10 sweep (allocation-quantum sensitivity).
pub const FIG10_DELTAS: [f64; 4] = [0.1, 0.2, 0.5, 1.0];

/// The GPU axis of the Figure 10 sweep.
pub const FIG10_GPUS: [f64; 2] = [4.0, 8.0];

/// The GPU budget of the Table 4 setting (8 streams, 4 GPUs).
pub const TABLE4_GPUS: f64 = 4.0;

/// Table 4's retraining-window length (400-second windows, §6.5).
pub const TABLE4_WINDOW_SECS: f64 = 400.0;

/// The GPU budget of the Table 5 setting (model-cache comparison).
pub const TABLE5_GPUS: f64 = 8.0;

/// The GPU axis of the Figure 11b noise sweep.
pub const FIG11_GPUS: [f64; 2] = [1.0, 4.0];

/// The Table 3 grid (capacity vs provisioned GPUs): Cityscapes,
/// streams × {1, 2} GPUs, all standard policies.
pub fn table3_grid(windows: usize, base_seed: u64) -> Grid {
    Grid::new(windows, base_seed)
        .datasets(&[DatasetKind::Cityscapes])
        .stream_counts(&[2, 4, 6, 8])
        .gpu_counts(&[1.0, 2.0])
        .policies(standard_policies())
}

/// The Figure 10 grid (Δ sensitivity): Cityscapes, one stream count,
/// [`FIG10_GPUS`] × [`FIG10_DELTAS`] via `PolicySpec::EkyaDelta`.
pub fn fig10_grid(windows: usize, streams: usize, base_seed: u64) -> Grid {
    Grid::new(windows, base_seed)
        .datasets(&[DatasetKind::Cityscapes])
        .stream_counts(&[streams])
        .gpu_counts(&FIG10_GPUS)
        .policies(FIG10_DELTAS.iter().map(|&delta| PolicySpec::EkyaDelta { delta }).collect())
}

/// The Figure 8 factor-analysis policies: full Ekya, its two ablations,
/// and the uniform reference.
pub fn fig08_policies() -> Vec<PolicySpec> {
    vec![
        PolicySpec::Uniform { pick: HoldoutPick::Config2, inference_share: 0.5 },
        PolicySpec::FixedRes { inference_share: 0.5 },
        PolicySpec::FixedConfig { pick: HoldoutPick::Config2 },
        PolicySpec::Ekya,
    ]
}

/// The Figure 8 grid (factor analysis): Cityscapes, one stream count,
/// a GPU axis (shrunk under quick mode) × [`fig08_policies`]. Cells are
/// evaluated by trace replay ([`run_fig08_bin`]), but their *identity*
/// is an ordinary [`Scenario`] — which is what makes
/// `EKYA_SHARD`/`EKYA_RESUME` (and the orchestrator) work on fig08.
pub fn fig08_grid(quick: bool, windows: usize, streams: usize, base_seed: u64) -> Grid {
    let gpus: &[f64] = if quick { &[2.0, 8.0] } else { &[2.0, 4.0, 6.0, 8.0] };
    Grid::new(windows, base_seed)
        .datasets(&[DatasetKind::Cityscapes])
        .stream_counts(&[streams])
        .gpu_counts(gpus)
        .policies(fig08_policies())
}

/// [`fig08_grid`] under the shared env knobs — the *single* place the
/// fig08 defaults (6 windows, 10 streams) are applied, used by the
/// planner ([`bin_workload`]), the runner ([`run_fig08_bin`]), and the
/// `fig08_factors` binary's presentation, so none of them can describe
/// a different grid than the one that executes.
pub fn fig08_grid_for(knobs: &Knobs) -> Grid {
    fig08_grid(knobs.quick(), knobs.windows(6), knobs.streams(10), knobs.seed())
}

/// The Figure 7 dataset axis: two datasets under quick mode, all four
/// otherwise (the paper's Fig 7 shows one panel per dataset).
pub fn fig07_datasets(quick: bool) -> Vec<DatasetKind> {
    if quick {
        vec![DatasetKind::Cityscapes, DatasetKind::UrbanTraffic]
    } else {
        DatasetKind::ALL.to_vec()
    }
}

/// The Figure 7 grid (accuracy vs provisioned GPUs): every dataset ×
/// a GPU axis × the standard policies, evaluated by trace replay
/// ([`run_fig07_bin`]) — one recording per dataset, fanned out lazily
/// like fig08's, then fast replay of every (scheduler × GPU) cell.
pub fn fig07_grid(quick: bool, windows: usize, streams: usize, base_seed: u64) -> Grid {
    let gpus: &[f64] = if quick { &[1.0, 4.0, 8.0] } else { &[1.0, 2.0, 4.0, 6.0, 8.0, 16.0] };
    Grid::new(windows, base_seed)
        .datasets(&fig07_datasets(quick))
        .stream_counts(&[streams])
        .gpu_counts(gpus)
        .policies(standard_policies())
}

/// [`fig07_grid`] under the shared env knobs (defaults: 6 windows,
/// 10 streams).
pub fn fig07_grid_for(knobs: &Knobs) -> Grid {
    fig07_grid(knobs.quick(), knobs.windows(6), knobs.streams(10), knobs.seed())
}

/// The Table 4 bandwidth-scale axis: how much fatter each link is tried
/// at (Table 4's "bandwidth needed to match Ekya" question, asked as
/// independent cells instead of an in-cell search).
pub fn table4_scales(quick: bool) -> &'static [f64] {
    if quick {
        &[1.0, 4.0, 12.0]
    } else {
        &[1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0, 10.0, 12.0]
    }
}

/// The Table 4 policy axis: every network preset at every bandwidth
/// scale (`PolicySpec::CloudDelay`), plus Ekya at the edge as the
/// reference row.
pub fn table4_policies(quick: bool) -> Vec<PolicySpec> {
    let mut out = Vec::new();
    for network in CloudNetwork::ALL {
        for &bandwidth_scale in table4_scales(quick) {
            out.push(PolicySpec::CloudDelay { network, bandwidth_scale });
        }
    }
    out.push(PolicySpec::Ekya);
    out
}

/// The Table 4 grid (cloud retraining vs Ekya at the edge): Cityscapes,
/// 8 streams sharing [`TABLE4_GPUS`] GPUs over 400-second windows.
pub fn table4_grid_for(knobs: &Knobs) -> Grid {
    Grid::new(knobs.windows(4), knobs.seed())
        .datasets(&[DatasetKind::Cityscapes])
        .stream_counts(&[knobs.streams(8)])
        .gpu_counts(&[TABLE4_GPUS])
        .policies(table4_policies(knobs.quick()))
}

/// Evaluation windows of a Table 5 run: the first half of the windows
/// builds the model cache, the rest are scored.
pub fn table5_pretrain_windows(windows: usize) -> usize {
    (windows / 2).max(1)
}

/// The Table 5 grid (Ekya vs cached-model reuse): two cells —
/// `PolicySpec::ModelCache` and `PolicySpec::Ekya` — over one shared
/// Cityscapes stream set. The window count is floored at 2 so the cache
/// design always has at least one cache window and one eval window.
pub fn table5_grid_for(knobs: &Knobs) -> Grid {
    Grid::new(knobs.windows(8).max(2), knobs.seed())
        .datasets(&[DatasetKind::Cityscapes])
        .stream_counts(&[knobs.streams(6)])
        .gpu_counts(&[TABLE5_GPUS])
        .policies(vec![PolicySpec::ModelCache, PolicySpec::Ekya])
}

/// The Figure 9 grid (per-stream allocation over windows): a single
/// cell — two Urban Building streams sharing one GPU under Ekya — with
/// the same `Scenario` identity and seeding as any other grid cell, so
/// its numbers line up with any grid containing this cell.
pub fn fig09_grid_for(knobs: &Knobs) -> Grid {
    Grid::new(knobs.windows(8), knobs.seed())
        .datasets(&[DatasetKind::UrbanBuilding])
        .stream_counts(&[2])
        .gpu_counts(&[1.0])
        .policies(vec![PolicySpec::Ekya])
}

/// The Figure 11b noise axis ε (quick mode keeps the endpoints plus the
/// paper's headline 20% point).
pub fn fig11_eps(quick: bool) -> &'static [f64] {
    if quick {
        &[0.0, 0.20]
    } else {
        &[0.0, 0.05, 0.10, 0.20, 0.50]
    }
}

/// The Figure 11b grid (robustness to estimate noise): Cityscapes,
/// [`FIG11_GPUS`] × ε via `PolicySpec::EkyaNoise`. The evaluator
/// injects the spec's ε into `RunnerConfig::profiler.noise_std` before
/// executing the windows mechanistically.
pub fn fig11_grid_for(knobs: &Knobs) -> Grid {
    Grid::new(knobs.windows(4), knobs.seed())
        .datasets(&[DatasetKind::Cityscapes])
        .stream_counts(&[knobs.streams(4)])
        .gpu_counts(&FIG11_GPUS)
        .policies(
            fig11_eps(knobs.quick())
                .iter()
                .map(|&noise_std| PolicySpec::EkyaNoise { noise_std })
                .collect(),
        )
}

/// The design-ablation policy axis: full Ekya plus one
/// `PolicySpec::DesignAblation` per §5 mechanism.
pub fn ablation_policies() -> Vec<PolicySpec> {
    let mut out = vec![PolicySpec::Ekya];
    out.extend(DesignToggle::ALL.iter().map(|&toggle| PolicySpec::DesignAblation { toggle }));
    out
}

/// The design-ablation grid (DESIGN.md §5 toggles): Cityscapes, one
/// stream count, 2 GPUs, [`ablation_policies`].
pub fn ablation_grid_for(knobs: &Knobs) -> Grid {
    Grid::new(knobs.windows(4), knobs.seed())
        .datasets(&[DatasetKind::Cityscapes])
        .stream_counts(&[knobs.streams(6)])
        .gpu_counts(&[2.0])
        .policies(ablation_policies())
}

/// Wraps a simulator run into the cell it evaluated.
fn cell_from_report(sc: &Scenario, report: RunReport) -> CellResult {
    CellResult {
        scenario: sc.clone(),
        policy: report.policy.clone(),
        mean_accuracy: report.mean_accuracy(),
        retrain_rate: report.retrain_rate(),
        report: Some(report),
        error: None,
    }
}

/// Lazily recorded mechanistic traces for the replay grids (fig07,
/// fig08) — the one copy of the record/replay pattern the bins used to
/// duplicate.
///
/// One recording per dataset of the grid, created on first use from
/// inside whichever worker thread reaches that dataset first (a fully
/// resumed run never records anything). Recording is a pure function of
/// (dataset, streams, windows, base seed) — the same purity as the
/// cells themselves — so every shard process re-records identical
/// traces; the [`Trace::fingerprint`] logged at recording time is the
/// cross-process witness.
pub struct ReplayTraces {
    streams: usize,
    windows: usize,
    base_seed: u64,
    max_staleness: usize,
    slots: Vec<(DatasetKind, OnceLock<Trace>)>,
}

impl ReplayTraces {
    /// Trace slots for every dataset of `grid`, recorded at the grid's
    /// (single) stream count, window count, and per-workload seed.
    pub fn for_grid(grid: &Grid) -> Self {
        let streams = *grid.stream_counts.first().expect("replay grids have one stream count");
        Self {
            streams,
            windows: grid.windows,
            base_seed: grid.base_seed,
            max_staleness: 6,
            slots: grid.datasets.iter().map(|&kind| (kind, OnceLock::new())).collect(),
        }
    }

    /// The (lazily recorded) trace for one dataset of the grid.
    pub fn trace(&self, kind: DatasetKind) -> &Trace {
        let slot = self
            .slots
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, slot)| slot)
            .expect("dataset registered in the replay grid");
        slot.get_or_init(|| {
            // The seed hash excludes policy and GPUs, so this is exactly
            // the seed every replay cell of this dataset carries.
            let seed = cell_seed(self.base_seed, kind, self.streams, self.windows);
            eprintln!(
                "[recording trace — {} ({} streams x {} windows)]",
                kind.name(),
                self.streams,
                self.windows
            );
            let set = StreamSet::cached(kind, self.streams, self.windows, seed);
            let cfg = RunnerConfig { seed, ..RunnerConfig::default() };
            let trace = record_trace(&set, &cfg, self.windows, self.max_staleness);
            eprintln!(
                "[trace recorded — {} fingerprint {:016x}]",
                kind.name(),
                trace.fingerprint()
            );
            trace
        })
    }

    /// Replays one cell against its dataset's trace — the shared
    /// evaluator of the replay grids.
    pub fn replay(&self, grid: &Grid, sc: &Scenario) -> CellResult {
        let trace = self.trace(sc.dataset);
        let ctx = PolicyBuildCtx::new(sc.dataset, sc.gpus, grid.holdout_seed(sc.dataset));
        let mut policy = sc.policy.build(&ctx);
        let report = ReplayPolicyHarness::new(sc.gpus).run(policy.as_mut(), trace);
        cell_from_report(sc, report)
    }
}

/// Runs the Figure 8 sweep under the shared env knobs: records the
/// mechanistic trace once (lazily — a fully resumed run never pays for
/// it), then replays every (GPUs × policy) cell through
/// [`run_grid_bin_with`], which gives fig08 the full shard / resume /
/// checkpoint machinery of the scenario-grid bins.
pub fn run_fig08_bin(knobs: &Knobs) -> GridRun {
    let grid = fig08_grid_for(knobs);
    let traces = ReplayTraces::for_grid(&grid);
    run_grid_bin_with("fig08_factors", &grid, knobs, |sc| traces.replay(&grid, sc))
}

/// Runs the Figure 7 sweep: one lazy recording per dataset
/// ([`ReplayTraces`]), then replay of every (dataset × GPUs × policy)
/// cell — sharded, resumable, and orchestratable like any grid bin.
pub fn run_fig07_bin(knobs: &Knobs) -> GridRun {
    let grid = fig07_grid_for(knobs);
    let traces = ReplayTraces::for_grid(&grid);
    run_grid_bin_with("fig07_provisioning", &grid, knobs, |sc| traces.replay(&grid, sc))
}

/// Runs the Table 4 sweep: each cell is one cloud-retraining simulation
/// over its spec's (network × bandwidth-scale) link — or the Ekya edge
/// reference — on one shared 400-second-window stream set.
pub fn run_table4_bin(knobs: &Knobs) -> GridRun {
    let grid = table4_grid_for(knobs);
    let streams = OnceLock::new();
    run_grid_bin_with("table4_cloud", &grid, knobs, |sc| {
        let set = streams.get_or_init(|| {
            let base = DatasetSpec {
                window_secs: TABLE4_WINDOW_SECS,
                ..DatasetSpec::new(sc.dataset, sc.windows, sc.seed)
            };
            StreamSet::generate_from_spec(base, sc.streams)
        });
        let cfg = RunnerConfig { total_gpus: sc.gpus, seed: sc.seed, ..RunnerConfig::default() };
        let report = match &sc.policy {
            PolicySpec::CloudDelay { network, bandwidth_scale } => run_cloud_retraining(
                set,
                &CloudRunConfig::new(network.link().scaled(*bandwidth_scale), cfg),
                sc.windows,
            ),
            _ => {
                let ctx = PolicyBuildCtx::new(sc.dataset, sc.gpus, grid.holdout_seed(sc.dataset));
                let mut policy = sc.policy.build(&ctx);
                run_windows(policy.as_mut(), set, &cfg, sc.windows)
            }
        };
        cell_from_report(sc, report)
    })
}

/// Runs the Table 5 comparison: the model-cache design and Ekya as two
/// cells over one shared stream set. Both cells are scored over the
/// post-cache evaluation windows only ([`table5_pretrain_windows`]), so
/// their `mean_accuracy` values are directly comparable.
pub fn run_table5_bin(knobs: &Knobs) -> GridRun {
    let grid = table5_grid_for(knobs);
    let streams = OnceLock::new();
    run_grid_bin_with("table5_cache", &grid, knobs, |sc| {
        let set = streams
            .get_or_init(|| StreamSet::generate(sc.dataset, sc.streams, sc.windows, sc.seed));
        let cfg = RunnerConfig { total_gpus: sc.gpus, seed: sc.seed, ..RunnerConfig::default() };
        let pretrain = table5_pretrain_windows(sc.windows);
        match &sc.policy {
            PolicySpec::ModelCache => {
                // run_model_cache reports the eval windows only already.
                cell_from_report(sc, run_model_cache(set, &cfg, sc.windows, pretrain))
            }
            _ => {
                let ctx = PolicyBuildCtx::new(sc.dataset, sc.gpus, grid.holdout_seed(sc.dataset));
                let mut policy = sc.policy.build(&ctx);
                let report = run_windows(policy.as_mut(), set, &cfg, sc.windows);
                let eval = &report.windows[pretrain..];
                let mean_accuracy =
                    eval.iter().map(|w| w.mean_accuracy()).sum::<f64>() / eval.len() as f64;
                CellResult {
                    scenario: sc.clone(),
                    policy: report.policy.clone(),
                    mean_accuracy,
                    retrain_rate: report.retrain_rate(),
                    report: Some(report),
                    error: None,
                }
            }
        }
    })
}

/// Runs the Figure 9 cell (a plain scenario grid of size one — the
/// default evaluator applies).
pub fn run_fig09_bin(knobs: &Knobs) -> GridRun {
    run_grid_bin("fig09_allocation", &fig09_grid_for(knobs), knobs)
}

/// Runs the Figure 11b noise sweep: each cell executes the windows
/// mechanistically with its spec's ε injected into the micro-profiler's
/// estimates. (Figure 11a — the estimation-error distribution — is
/// derived presentation in the `fig11_profiler` binary.)
pub fn run_fig11_bin(knobs: &Knobs) -> GridRun {
    let grid = fig11_grid_for(knobs);
    let streams = OnceLock::new();
    run_grid_bin_with("fig11_profiler", &grid, knobs, |sc| {
        let set = streams
            .get_or_init(|| StreamSet::generate(sc.dataset, sc.streams, sc.windows, sc.seed));
        let mut cfg =
            RunnerConfig { total_gpus: sc.gpus, seed: sc.seed, ..RunnerConfig::default() };
        if let PolicySpec::EkyaNoise { noise_std } = &sc.policy {
            cfg.profiler.noise_std = *noise_std;
        }
        let ctx = PolicyBuildCtx::new(sc.dataset, sc.gpus, grid.holdout_seed(sc.dataset));
        let mut policy = sc.policy.build(&ctx);
        cell_from_report(sc, run_windows(policy.as_mut(), set, &cfg, sc.windows))
    })
}

/// Runs the design-ablation sweep: each cell executes full Ekya with
/// its spec's §5 mechanism toggled off on the runner
/// ([`DesignToggle::apply`]).
pub fn run_ablation_bin(knobs: &Knobs) -> GridRun {
    let grid = ablation_grid_for(knobs);
    let streams = OnceLock::new();
    run_grid_bin_with("ablation_design", &grid, knobs, |sc| {
        let set = streams
            .get_or_init(|| StreamSet::generate(sc.dataset, sc.streams, sc.windows, sc.seed));
        let mut cfg =
            RunnerConfig { total_gpus: sc.gpus, seed: sc.seed, ..RunnerConfig::default() };
        if let PolicySpec::DesignAblation { toggle } = &sc.policy {
            cfg = toggle.apply(cfg);
        }
        let ctx = PolicyBuildCtx::new(sc.dataset, sc.gpus, grid.holdout_seed(sc.dataset));
        let mut policy = sc.policy.build(&ctx);
        cell_from_report(sc, run_windows(policy.as_mut(), set, &cfg, sc.windows))
    })
}

/// The declarative workload of one shardable bin.
#[derive(Debug, Clone)]
pub enum BinWorkload {
    /// A scenario grid (every fig/table bin except fig03): cells are
    /// [`Scenario`]s, reports are
    /// [`HarnessReport`](crate::HarnessReport)s.
    Scenarios(Grid),
    /// The fig03 configuration sweep: cells are retraining
    /// configurations, shard reports are
    /// [`ConfigShard`](crate::ConfigShard)s (no checkpoints — retries
    /// re-profile the shard).
    Configs {
        /// Configurations in the full sweep.
        total: usize,
    },
}

impl BinWorkload {
    /// Cells in the full (unsharded) enumeration — the quantity
    /// [`ShardSpec::range`](crate::ShardSpec::range) partitions.
    pub fn total_cells(&self) -> usize {
        match self {
            BinWorkload::Scenarios(grid) => grid.cells().len(),
            BinWorkload::Configs { total } => *total,
        }
    }

    /// True when shards checkpoint per-cell progress (`.partial.json`)
    /// — the heartbeat the orchestrator's stall detector watches.
    pub fn checkpoints(&self) -> bool {
        matches!(self, BinWorkload::Scenarios(_))
    }
}

/// Every bin [`bin_workload`]/[`run_bin`] know — i.e. every bin
/// `ekya_grid` can orchestrate. This is the **full** fig/table suite of
/// the evaluation; only the motivation/example binaries stay outside.
pub fn shardable_bins() -> [&'static str; 11] {
    [
        "fig06_streams",
        "table3_capacity",
        "fig10_delta",
        "fig08_factors",
        "fig03_configs",
        "fig07_provisioning",
        "table4_cloud",
        "table5_cache",
        "fig09_allocation",
        "fig11_profiler",
        "ablation_design",
    ]
}

/// The declarative workload of `bin` under `knobs`, or `None` for a
/// bin this registry does not know (the motivation/example binaries).
pub fn bin_workload(bin: &str, knobs: &Knobs) -> Option<BinWorkload> {
    match bin {
        "fig06_streams" => {
            Some(BinWorkload::Scenarios(fig06_grid(knobs.quick(), knobs.windows(4), knobs.seed())))
        }
        "table3_capacity" => {
            Some(BinWorkload::Scenarios(table3_grid(knobs.windows(4), knobs.seed())))
        }
        "fig10_delta" => Some(BinWorkload::Scenarios(fig10_grid(
            knobs.windows(4),
            knobs.streams(10),
            knobs.seed(),
        ))),
        "fig08_factors" => Some(BinWorkload::Scenarios(fig08_grid_for(knobs))),
        "fig07_provisioning" => Some(BinWorkload::Scenarios(fig07_grid_for(knobs))),
        "table4_cloud" => Some(BinWorkload::Scenarios(table4_grid_for(knobs))),
        "table5_cache" => Some(BinWorkload::Scenarios(table5_grid_for(knobs))),
        "fig09_allocation" => Some(BinWorkload::Scenarios(fig09_grid_for(knobs))),
        "fig11_profiler" => Some(BinWorkload::Scenarios(fig11_grid_for(knobs))),
        "ablation_design" => Some(BinWorkload::Scenarios(ablation_grid_for(knobs))),
        "fig03_configs" => Some(BinWorkload::Configs { total: config_grid(knobs.quick()).len() }),
        _ => None,
    }
}

/// Executes `bin`'s sweep under `knobs`, writing exactly the report
/// files (and checkpoints) the bin binary writes — the in-process worker
/// entry point `ekya_grid worker` calls for each spawned shard.
/// Presentation (tables, headlines) stays in the binaries; report bytes
/// are identical because both paths run this same code.
pub fn run_bin(bin: &str, knobs: &Knobs) -> Result<(), String> {
    // The workload comes from bin_workload — the same call the planner
    // makes — so a plan and its workers cannot disagree on the grid even
    // if a bin's defaults change. Only the *evaluator* is dispatched
    // here (trace replay, the §6.5 run functions, runner-side toggles,
    // fig03's configuration profiling; plain scenario grids take the
    // default simulator path).
    let workload = bin_workload(bin, knobs).ok_or_else(|| {
        format!(
            "unknown or non-shardable bin `{bin}` — shardable bins: {}",
            shardable_bins().join(", ")
        )
    })?;
    match (bin, workload) {
        ("fig07_provisioning", _) => {
            run_fig07_bin(knobs);
        }
        ("fig08_factors", _) => {
            run_fig08_bin(knobs);
        }
        ("table4_cloud", _) => {
            run_table4_bin(knobs);
        }
        ("table5_cache", _) => {
            run_table5_bin(knobs);
        }
        ("fig09_allocation", _) => {
            run_fig09_bin(knobs);
        }
        ("fig11_profiler", _) => {
            run_fig11_bin(knobs);
        }
        ("ablation_design", _) => {
            run_ablation_bin(knobs);
        }
        (_, BinWorkload::Configs { .. }) => {
            run_config_bin(knobs);
        }
        (_, BinWorkload::Scenarios(grid)) => {
            run_grid_bin(bin, &grid, knobs);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_shardable_bin() {
        let knobs = Knobs::default();
        for bin in shardable_bins() {
            let workload = bin_workload(bin, &knobs).expect("registered bin has a workload");
            assert!(workload.total_cells() > 0, "{bin} plans zero cells");
        }
        assert!(bin_workload("fig02_motivation", &knobs).is_none());
        assert!(run_bin("nope", &knobs).is_err());
    }

    #[test]
    fn workloads_respond_to_knobs() {
        for bin in ["fig08_factors", "fig07_provisioning", "table4_cloud", "fig11_profiler"] {
            let full = bin_workload(bin, &Knobs::default()).unwrap().total_cells();
            let quick =
                bin_workload(bin, &Knobs::default().with_quick(true)).unwrap().total_cells();
            assert!(quick < full, "quick {bin} grid should shrink ({quick} vs {full})");
        }

        // The seed flows into the planned grid, so a plan and its
        // workers can never silently disagree on cell identity.
        let a = bin_workload("fig06_streams", &Knobs::default()).unwrap();
        let b = bin_workload("fig06_streams", &Knobs::default().with_seed(7)).unwrap();
        let (BinWorkload::Scenarios(ga), BinWorkload::Scenarios(gb)) = (a, b) else {
            panic!("fig06 is a scenario grid")
        };
        assert_ne!(ga.cells()[0].seed, gb.cells()[0].seed);
    }

    #[test]
    fn fig03_workload_is_configs_without_checkpoints() {
        let w = bin_workload("fig03_configs", &Knobs::default()).unwrap();
        assert!(!w.checkpoints());
        assert_eq!(w.total_cells(), config_grid(false).len());
        assert!(bin_workload("fig06_streams", &Knobs::default()).unwrap().checkpoints());
    }

    #[test]
    fn quick_replay_and_table_grids_are_subsets_of_full() {
        // Quick cells must exist in the full enumeration so quick-mode
        // results (and the CI smokes built on them) are genuine subsets.
        for (quick, full) in [
            (fig07_grid(true, 6, 10, 42), fig07_grid(false, 6, 10, 42)),
            (
                table4_grid_for(&Knobs::default().with_quick(true)),
                table4_grid_for(&Knobs::default()),
            ),
        ] {
            let full_cells = full.cells();
            for cell in quick.cells() {
                assert!(full_cells.contains(&cell), "quick cell {cell:?} missing from full grid");
            }
        }
    }

    #[test]
    fn table5_grid_always_has_an_eval_window() {
        // EKYA_WINDOWS=1 would starve the cache design of an evaluation
        // window; the grid floors the axis so planner and workers agree
        // on the clamped value.
        let w = table5_grid_for(&Knobs::default().with_windows(Some(1)));
        assert_eq!(w.windows, 2);
        assert_eq!(table5_pretrain_windows(w.windows), 1);
        assert!(table5_pretrain_windows(w.windows) < w.windows);
    }

    #[test]
    fn single_cell_and_two_cell_bins_plan_correctly() {
        let knobs = Knobs::default();
        assert_eq!(bin_workload("fig09_allocation", &knobs).unwrap().total_cells(), 1);
        assert_eq!(bin_workload("table5_cache", &knobs).unwrap().total_cells(), 2);
        let ablation = bin_workload("ablation_design", &knobs).unwrap().total_cells();
        assert_eq!(ablation, 1 + DesignToggle::ALL.len());
    }
}
