//! Declarative identity of the shardable fig/table bins — the registry
//! the `ekya-orchestrate` supervisor plans, spawns, and merges against.
//!
//! Each shardable bin is a pure function of the shared environment knobs
//! ([`Knobs`]): its grid (and therefore its cell count, shard ranges,
//! and report schema) is fully determined by `(bin name, knobs)`. This
//! module states that identity **once** — the bin binaries and the
//! orchestrator's in-process worker both build their workload here, so a
//! worker-run shard is byte-identical to a hand-launched one by
//! construction, not by convention.
//!
//! * [`bin_workload`] — the declarative workload of a bin (a scenario
//!   [`Grid`] or the fig03 configuration sweep), used for planning:
//!   total cells, shard math via [`ShardSpec::range`](crate::ShardSpec::range).
//! * [`run_bin`] — execute a bin's sweep under the given knobs, writing
//!   exactly the report files the bin binary writes (tables and other
//!   presentation stay in the binaries).

use crate::config_profile::{config_grid, run_config_bin};
use crate::grid::{cell_seed, fig06_grid, Grid};
use crate::harness::{run_grid_bin, run_grid_bin_with, CellResult, GridRun, Knobs};
use ekya_baselines::{standard_policies, HoldoutPick, PolicyBuildCtx, PolicySpec};
use ekya_sim::{record_trace, ReplayPolicyHarness, RunnerConfig};
use ekya_video::{DatasetKind, StreamSet};
use std::sync::OnceLock;

/// The Δ axis of the Figure 10 sweep (allocation-quantum sensitivity).
pub const FIG10_DELTAS: [f64; 4] = [0.1, 0.2, 0.5, 1.0];

/// The GPU axis of the Figure 10 sweep.
pub const FIG10_GPUS: [f64; 2] = [4.0, 8.0];

/// The Table 3 grid (capacity vs provisioned GPUs): Cityscapes,
/// streams × {1, 2} GPUs, all standard policies.
pub fn table3_grid(windows: usize, base_seed: u64) -> Grid {
    Grid::new(windows, base_seed)
        .datasets(&[DatasetKind::Cityscapes])
        .stream_counts(&[2, 4, 6, 8])
        .gpu_counts(&[1.0, 2.0])
        .policies(standard_policies())
}

/// The Figure 10 grid (Δ sensitivity): Cityscapes, one stream count,
/// [`FIG10_GPUS`] × [`FIG10_DELTAS`] via `PolicySpec::EkyaDelta`.
pub fn fig10_grid(windows: usize, streams: usize, base_seed: u64) -> Grid {
    Grid::new(windows, base_seed)
        .datasets(&[DatasetKind::Cityscapes])
        .stream_counts(&[streams])
        .gpu_counts(&FIG10_GPUS)
        .policies(FIG10_DELTAS.iter().map(|&delta| PolicySpec::EkyaDelta { delta }).collect())
}

/// The Figure 8 factor-analysis policies: full Ekya, its two ablations,
/// and the uniform reference.
pub fn fig08_policies() -> Vec<PolicySpec> {
    vec![
        PolicySpec::Uniform { pick: HoldoutPick::Config2, inference_share: 0.5 },
        PolicySpec::FixedRes { inference_share: 0.5 },
        PolicySpec::FixedConfig { pick: HoldoutPick::Config2 },
        PolicySpec::Ekya,
    ]
}

/// The Figure 8 grid (factor analysis): Cityscapes, one stream count,
/// a GPU axis (shrunk under quick mode) × [`fig08_policies`]. Cells are
/// evaluated by trace replay ([`run_fig08_bin`]), but their *identity*
/// is an ordinary [`Scenario`](crate::Scenario) — which is what makes
/// `EKYA_SHARD`/`EKYA_RESUME` (and the orchestrator) work on fig08.
pub fn fig08_grid(quick: bool, windows: usize, streams: usize, base_seed: u64) -> Grid {
    let gpus: &[f64] = if quick { &[2.0, 8.0] } else { &[2.0, 4.0, 6.0, 8.0] };
    Grid::new(windows, base_seed)
        .datasets(&[DatasetKind::Cityscapes])
        .stream_counts(&[streams])
        .gpu_counts(gpus)
        .policies(fig08_policies())
}

/// [`fig08_grid`] under the shared env knobs — the *single* place the
/// fig08 defaults (6 windows, 10 streams) are applied, used by the
/// planner ([`bin_workload`]), the runner ([`run_fig08_bin`]), and the
/// `fig08_factors` binary's presentation, so none of them can describe
/// a different grid than the one that executes.
pub fn fig08_grid_for(knobs: &Knobs) -> Grid {
    fig08_grid(knobs.quick(), knobs.windows(6), knobs.streams(10), knobs.seed())
}

/// Runs the Figure 8 sweep under the shared env knobs: records the
/// mechanistic trace once (lazily — a fully resumed run never pays for
/// it), then replays every (GPUs × policy) cell through
/// [`run_grid_bin_with`], which gives fig08 the full shard / resume /
/// checkpoint machinery of the scenario-grid bins.
pub fn run_fig08_bin(knobs: &Knobs) -> GridRun {
    let kind = DatasetKind::Cityscapes;
    let windows = knobs.windows(6);
    let streams = knobs.streams(10);
    let grid = fig08_grid_for(knobs);
    // All cells share one workload: the seed hash excludes policy and
    // GPUs, so every cell's scenario seed is this one value.
    let workload_seed = cell_seed(knobs.seed(), kind, streams, windows);
    let trace = OnceLock::new();
    run_grid_bin_with("fig08_factors", &grid, knobs, |sc| {
        let trace = trace.get_or_init(|| {
            eprintln!("[fig08_factors: recording trace — {streams} streams x {windows} windows]");
            let set = StreamSet::generate(kind, streams, windows, workload_seed);
            let cfg = RunnerConfig { seed: workload_seed, ..RunnerConfig::default() };
            record_trace(&set, &cfg, windows, 6)
        });
        let ctx = PolicyBuildCtx::new(sc.dataset, sc.gpus, grid.holdout_seed(sc.dataset));
        let mut policy = sc.policy.build(&ctx);
        let report = ReplayPolicyHarness::new(sc.gpus).run(policy.as_mut(), trace);
        CellResult {
            scenario: sc.clone(),
            policy: report.policy.clone(),
            mean_accuracy: report.mean_accuracy(),
            retrain_rate: report.retrain_rate(),
            report: Some(report),
            error: None,
        }
    })
}

/// The declarative workload of one shardable bin.
#[derive(Debug, Clone)]
pub enum BinWorkload {
    /// A scenario grid (fig06/table3/fig10/fig08): cells are
    /// [`Scenario`](crate::Scenario)s, reports are
    /// [`HarnessReport`](crate::HarnessReport)s.
    Scenarios(Grid),
    /// The fig03 configuration sweep: cells are retraining
    /// configurations, shard reports are
    /// [`ConfigShard`](crate::ConfigShard)s (no checkpoints — retries
    /// re-profile the shard).
    Configs {
        /// Configurations in the full sweep.
        total: usize,
    },
}

impl BinWorkload {
    /// Cells in the full (unsharded) enumeration — the quantity
    /// [`ShardSpec::range`](crate::ShardSpec::range) partitions.
    pub fn total_cells(&self) -> usize {
        match self {
            BinWorkload::Scenarios(grid) => grid.cells().len(),
            BinWorkload::Configs { total } => *total,
        }
    }

    /// True when shards checkpoint per-cell progress (`.partial.json`)
    /// — the heartbeat the orchestrator's stall detector watches.
    pub fn checkpoints(&self) -> bool {
        matches!(self, BinWorkload::Scenarios(_))
    }
}

/// Every bin [`bin_workload`]/[`run_bin`] know — i.e. every bin
/// `ekya_grid` can orchestrate.
pub fn shardable_bins() -> [&'static str; 5] {
    ["fig06_streams", "table3_capacity", "fig10_delta", "fig08_factors", "fig03_configs"]
}

/// The declarative workload of `bin` under `knobs`, or `None` for a
/// bin this registry does not know (bespoke bins that do not shard).
pub fn bin_workload(bin: &str, knobs: &Knobs) -> Option<BinWorkload> {
    match bin {
        "fig06_streams" => {
            Some(BinWorkload::Scenarios(fig06_grid(knobs.quick(), knobs.windows(4), knobs.seed())))
        }
        "table3_capacity" => {
            Some(BinWorkload::Scenarios(table3_grid(knobs.windows(4), knobs.seed())))
        }
        "fig10_delta" => Some(BinWorkload::Scenarios(fig10_grid(
            knobs.windows(4),
            knobs.streams(10),
            knobs.seed(),
        ))),
        "fig08_factors" => Some(BinWorkload::Scenarios(fig08_grid_for(knobs))),
        "fig03_configs" => Some(BinWorkload::Configs { total: config_grid(knobs.quick()).len() }),
        _ => None,
    }
}

/// Executes `bin`'s sweep under `knobs`, writing exactly the report
/// files (and checkpoints) the bin binary writes — the in-process worker
/// entry point `ekya_grid worker` calls for each spawned shard.
/// Presentation (tables, headlines) stays in the binaries; report bytes
/// are identical because both paths run this same code.
pub fn run_bin(bin: &str, knobs: &Knobs) -> Result<(), String> {
    // The workload comes from bin_workload — the same call the planner
    // makes — so a plan and its workers cannot disagree on the grid even
    // if a bin's defaults change. Only the *evaluator* is dispatched
    // here (fig08 replays a trace, fig03 profiles configurations; every
    // other scenario grid takes the default simulator path).
    let workload = bin_workload(bin, knobs).ok_or_else(|| {
        format!(
            "unknown or non-shardable bin `{bin}` — shardable bins: {}",
            shardable_bins().join(", ")
        )
    })?;
    match (bin, workload) {
        ("fig08_factors", _) => {
            run_fig08_bin(knobs);
        }
        (_, BinWorkload::Configs { .. }) => {
            run_config_bin(knobs);
        }
        (_, BinWorkload::Scenarios(grid)) => {
            run_grid_bin(bin, &grid, knobs);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_shardable_bin() {
        let knobs = Knobs::default();
        for bin in shardable_bins() {
            let workload = bin_workload(bin, &knobs).expect("registered bin has a workload");
            assert!(workload.total_cells() > 0, "{bin} plans zero cells");
        }
        assert!(bin_workload("fig02_motivation", &knobs).is_none());
        assert!(run_bin("nope", &knobs).is_err());
    }

    #[test]
    fn workloads_respond_to_knobs() {
        let full = bin_workload("fig08_factors", &Knobs::default()).unwrap().total_cells();
        let quick = bin_workload("fig08_factors", &Knobs::default().with_quick(true))
            .unwrap()
            .total_cells();
        assert!(quick < full, "quick fig08 grid should shrink ({quick} vs {full})");

        // The seed flows into the planned grid, so a plan and its
        // workers can never silently disagree on cell identity.
        let a = bin_workload("fig06_streams", &Knobs::default()).unwrap();
        let b = bin_workload("fig06_streams", &Knobs::default().with_seed(7)).unwrap();
        let (BinWorkload::Scenarios(ga), BinWorkload::Scenarios(gb)) = (a, b) else {
            panic!("fig06 is a scenario grid")
        };
        assert_ne!(ga.cells()[0].seed, gb.cells()[0].seed);
    }

    #[test]
    fn fig03_workload_is_configs_without_checkpoints() {
        let w = bin_workload("fig03_configs", &Knobs::default()).unwrap();
        assert!(!w.checkpoints());
        assert_eq!(w.total_cells(), config_grid(false).len());
        assert!(bin_workload("fig06_streams", &Knobs::default()).unwrap().checkpoints());
    }
}
