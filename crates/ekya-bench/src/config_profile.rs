//! Shared result types for `fig03_configs`' exhaustive per-configuration
//! profiling — the one sweep in the suite whose cells are retraining
//! *configurations* rather than simulation [`Scenario`](crate::Scenario)s.
//!
//! The sweep rides the same scale levers as the scenario grids: each
//! configuration is profiled with its own seed (`base_seed ^
//! fnv1a(config label)`), so any slice of the configuration list
//! computes identical numbers regardless of which other configurations
//! run alongside it, and `EKYA_SHARD=i/N` partitions the list across
//! processes. A sharded run writes a [`ConfigShard`] envelope; the
//! `grid_merge` bin recombines shards with [`merge_config_shards`] into
//! the plain point list an unsharded run writes — byte-identical.
//!
//! The Pareto frontier is a **whole-grid** property, so shard files
//! carry `on_pareto: false` throughout and the flags are computed only
//! over the complete set ([`pareto_flags`]), by the unsharded bin run or
//! by the merge.

use crate::grid::{coverage_order, fnv1a, ShardSpec};
use crate::harness::{run_parallel, Knobs};
use crate::save_json;
use ekya_core::{
    default_retrain_grid, extended_retrain_grid, profile_config, RetrainConfig, RetrainExecution,
    TrainHyper,
};
use ekya_nn::cost::CostModel;
use ekya_nn::data::Sample;
use ekya_nn::golden::{distill_labels, OracleTeacher};
use ekya_nn::mlp::{Mlp, MlpArch};
use ekya_video::{DatasetKind, DatasetSpec, VideoDataset};
use serde::{Deserialize, Serialize};

/// One profiled retraining configuration: its GPU cost, its final
/// accuracy, and whether it sits on the cost/accuracy Pareto frontier of
/// the full configuration grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigPoint {
    /// Compact configuration label (`RetrainConfig::label`).
    pub label: String,
    /// Total GPU-seconds to retrain this configuration to completion
    /// (0.0 when the config was poisoned).
    pub gpu_seconds: f64,
    /// Final accuracy on the window's validation set (0.0 when the
    /// config was poisoned).
    pub accuracy: f64,
    /// On the Pareto frontier of the complete grid (always `false`
    /// inside shard files — see the module docs).
    pub on_pareto: bool,
    /// Panic message when profiling this configuration was poisoned —
    /// the same isolation the scenario grids give a failed cell: the
    /// rest of the sweep completes and the failure travels in the data.
    pub error: Option<String>,
}

/// One shard's slice of the configuration sweep, written to
/// `results/fig03_configs_shardIofN.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigShard {
    /// Sweep identity (the bin name).
    pub name: String,
    /// Configurations in the full (unsharded) grid.
    pub total: usize,
    /// The slice this file covers.
    pub shard: ShardSpec,
    /// Profiled points for `shard.range(total)`, in grid order.
    pub points: Vec<ConfigPoint>,
}

/// Pareto-frontier membership over (cost, accuracy): a point is on the
/// frontier iff no other point is at most as expensive **and** at least
/// as accurate with one of the two strict — the same dominance rule as
/// `ekya_core::pareto_frontier`, stated directly on profiled points.
/// Poisoned points are never on the frontier and never dominate anyone.
pub fn pareto_flags(points: &[ConfigPoint]) -> Vec<bool> {
    points
        .iter()
        .map(|p| {
            p.error.is_none()
                && !points.iter().any(|q| {
                    q.error.is_none()
                        && q.gpu_seconds <= p.gpu_seconds
                        && q.accuracy >= p.accuracy
                        && (q.gpu_seconds < p.gpu_seconds || q.accuracy > p.accuracy)
                })
        })
        .collect()
}

/// Recombines per-shard configuration sweeps into the complete point
/// list an unsharded run writes, recomputing the Pareto flags over the
/// full set. Rejects mismatched sweeps and overlapping/missing slices
/// with the same coverage rules as harness-report merging.
pub fn merge_config_shards(shards: &[ConfigShard]) -> Result<Vec<ConfigPoint>, String> {
    let first = shards.first().ok_or("no shards to merge")?;
    for s in shards {
        if s.name != first.name || s.total != first.total {
            return Err(format!(
                "cannot merge shards of different sweeps: `{}` ({} configs) vs `{}` ({} configs)",
                first.name, first.total, s.name, s.total
            ));
        }
    }
    let parts: Vec<(ShardSpec, usize)> = shards.iter().map(|s| (s.shard, s.points.len())).collect();
    let order = coverage_order(&parts, first.total)?;

    let mut points = Vec::with_capacity(first.total);
    for &i in &order {
        points.extend(shards[i].points.iter().cloned());
    }
    let flags = pareto_flags(&points);
    for (p, on) in points.iter_mut().zip(flags) {
        p.on_pareto = on;
    }
    Ok(points)
}

/// The configuration grid fig03 profiles: the paper's extended
/// 54-configuration grid, or the 18-configuration default grid under
/// quick mode (`EKYA_QUICK=1`) — the slice `harness_bench` measures and
/// the CI perf gate tracks as `fig03_quick_configs`.
pub fn config_grid(quick: bool) -> Vec<RetrainConfig> {
    if quick {
        default_retrain_grid()
    } else {
        extended_retrain_grid()
    }
}

/// The profiling context of the fig03 configuration sweep: one warm
/// steady-state model plus the window data every configuration is
/// profiled against.
///
/// Preparing it is the sweep's one-off cost (a full 30-epoch warm-up
/// retraining); [`ConfigSweep::measure`] then profiles any list of
/// configurations on the work-stealing pool with **per-config seeding**
/// (`base_seed ^ fnv1a("cfg|" + label)`), so every configuration's
/// numbers are a pure function of (model, data, config) — independent of
/// which other configurations run alongside it. That purity is what lets
/// `EKYA_SHARD` split the configuration list across processes, and what
/// lets the `ekya-orchestrate` worker run a fig03 shard in-process with
/// output byte-identical to the `fig03_configs` binary's.
pub struct ConfigSweep {
    model: Mlp,
    train: Vec<Sample>,
    val: Vec<Sample>,
    num_classes: usize,
    cost: CostModel,
    base_seed: u64,
}

impl ConfigSweep {
    /// Builds the steady-state profiling context for `base_seed`:
    /// generates the two-window Cityscapes dataset, distills teacher
    /// labels, and warms the edge model with one full retraining on
    /// window 0 — exactly the setup `fig03_configs` has always used.
    pub fn prepare(base_seed: u64) -> Self {
        let cost = CostModel::default();
        let ds = VideoDataset::generate(DatasetSpec::new(DatasetKind::Cityscapes, 2, base_seed));
        let nc = ds.num_classes;
        let mut teacher = OracleTeacher::new(0.02, nc, base_seed ^ 0xAA);
        let w0 = distill_labels(&mut teacher, &ds.window(0).train_pool);
        let train = distill_labels(&mut teacher, &ds.window(1).train_pool);
        let val = distill_labels(&mut teacher, &ds.window(1).val);

        let base = Mlp::new(MlpArch::edge(ds.feature_dim, nc, 16), base_seed);
        let mut warm = RetrainExecution::new(
            &base,
            &w0,
            RetrainConfig {
                epochs: 30,
                batch_size: 32,
                last_layer_neurons: 16,
                layers_trained: 3,
                data_fraction: 1.0,
            },
            nc,
            TrainHyper::default(),
            base_seed,
        );
        warm.run_to_completion();
        let mut model = warm.model().clone();
        model.set_layers_trained(usize::MAX);

        Self { model, train, val, num_classes: nc, cost, base_seed }
    }

    /// Profiles `configs` across `workers` threads, one [`ConfigPoint`]
    /// per configuration in input order. A panicking configuration is
    /// isolated into its point's `error` field — the same isolation a
    /// grid cell gets — so one poisoned config cannot sink the sweep.
    pub fn measure(&self, configs: &[RetrainConfig], workers: usize) -> Vec<ConfigPoint> {
        // Configurations cost roughly the same, so chunking is purely
        // count-based (uniform weights, `EKYA_BATCH` cap) — same
        // amortisation as the grid harness, reassembled in input order.
        let weights = vec![1.0; configs.len()];
        let ranges = crate::harness::chunk_ranges(&weights, workers, crate::knob::batch());
        let chunks: Vec<Vec<RetrainConfig>> =
            ranges.iter().map(|r| configs[r.clone()].to_vec()).collect();
        run_parallel(chunks, workers, |_, chunk: Vec<RetrainConfig>| {
            chunk
                .into_iter()
                .map(|c| {
                    // Per-config panic isolation, as when each config was
                    // its own task.
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        let cfg_seed =
                            self.base_seed ^ fnv1a(format!("cfg|{}", c.label()).as_bytes());
                        let (accuracy, gpu_seconds) = profile_config(
                            &self.model,
                            &self.train,
                            &self.val,
                            c,
                            self.num_classes,
                            TrainHyper::default(),
                            &self.cost,
                            cfg_seed,
                        );
                        ConfigPoint {
                            label: c.label(),
                            gpu_seconds,
                            accuracy,
                            on_pareto: false,
                            error: None,
                        }
                    }))
                    .map_err(crate::harness::panic_message)
                })
                .collect::<Vec<Result<ConfigPoint, String>>>()
        })
        .into_iter()
        .flat_map(|chunk| {
            chunk.expect("chunk evaluation cannot panic outside the per-config guard")
        })
        .zip(configs)
        .map(|(r, c)| {
            r.unwrap_or_else(|message| {
                eprintln!("[fig03: config {} poisoned — {message}]", c.label());
                ConfigPoint {
                    label: c.label(),
                    gpu_seconds: 0.0,
                    accuracy: 0.0,
                    on_pareto: false,
                    error: Some(message),
                }
            })
        })
        .collect()
    }
}

/// The environment-driven front door for the fig03 configuration sweep —
/// the config-grid sibling of
/// [`run_grid_bin`](crate::harness::run_grid_bin), shared by the
/// `fig03_configs` binary and the `ekya-orchestrate` worker.
///
/// Prepares the sweep, then:
///
/// * **sharded** (`EKYA_SHARD=i/N`): profiles only this shard's slice of
///   [`config_grid`], writes the [`ConfigShard`] envelope to
///   `results/fig03_configs_shardIofN.json`, and returns `None` — merge
///   the shards with `grid_merge` or `ekya_grid`;
/// * **unsharded**: profiles the whole grid, computes the Pareto flags,
///   writes the point list to `results/fig03_configs.json`, and returns
///   it for the bin's tables.
///
/// The returned [`ConfigSweep`] lets the caller profile extra
/// configurations (fig03's panel (a) axes) without paying the warm-up
/// again. The sweep shards but does not checkpoint (its cells are
/// cheap), so `EKYA_RESUME` warns and recomputes.
pub fn run_config_bin(knobs: &Knobs) -> (ConfigSweep, Option<Vec<ConfigPoint>>) {
    knobs.warn_if_resume("fig03_configs");
    let grid = config_grid(knobs.quick());
    let sweep = ConfigSweep::prepare(knobs.seed());

    if let Some(shard) = knobs.shard() {
        let range = shard.range(grid.len());
        eprintln!(
            "[fig03: shard {shard} → configs {}..{} of {} across {} workers]",
            range.start,
            range.end,
            grid.len(),
            knobs.workers()
        );
        let points = sweep.measure(&grid[range], knobs.workers());
        let envelope =
            ConfigShard { name: "fig03_configs".into(), total: grid.len(), shard, points };
        save_json(&format!("fig03_configs{}", shard.suffix()), &envelope);
        println!(
            "[shard output: {} of {} configs — tables, spread, and the Pareto frontier are \
             whole-grid; merge the shards with `grid_merge` first]",
            envelope.points.len(),
            envelope.total
        );
        return (sweep, None);
    }

    let mut points = sweep.measure(&grid, knobs.workers());
    let flags = pareto_flags(&points);
    for (p, on) in points.iter_mut().zip(flags) {
        p.on_pareto = on;
    }
    save_json("fig03_configs", &points);
    (sweep, Some(points))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(label: &str, gpu_seconds: f64, accuracy: f64) -> ConfigPoint {
        ConfigPoint { label: label.into(), gpu_seconds, accuracy, on_pareto: false, error: None }
    }

    #[test]
    fn config_grid_quick_is_a_smaller_sweep() {
        let quick = config_grid(true);
        let full = config_grid(false);
        assert!(!quick.is_empty());
        assert!(quick.len() < full.len());
        // Every quick config exists in the full grid, so quick results
        // are a genuine subset of the paper sweep.
        for c in &quick {
            assert!(full.contains(c), "quick config {c:?} missing from full grid");
        }
    }

    #[test]
    fn pareto_flags_mark_undominated_points() {
        // a: cheap & good (frontier); b: pricier & worse (dominated by a);
        // c: priciest & best (frontier); d: ties a exactly (frontier —
        // neither strictly dominates the other).
        let points =
            vec![pt("a", 1.0, 0.8), pt("b", 2.0, 0.7), pt("c", 3.0, 0.9), pt("d", 1.0, 0.8)];
        assert_eq!(pareto_flags(&points), vec![true, false, true, true]);
    }

    #[test]
    fn pareto_flags_quarantine_poisoned_points() {
        // A poisoned point carries (0.0, 0.0) — cheapest possible — but
        // must neither join the frontier nor dominate real points.
        let mut poisoned = pt("x", 0.0, 0.0);
        poisoned.error = Some("boom".into());
        let points = vec![poisoned, pt("a", 1.0, 0.8)];
        assert_eq!(pareto_flags(&points), vec![false, true]);
    }

    #[test]
    fn merge_recombines_and_recomputes_pareto() {
        let all = [pt("a", 1.0, 0.8), pt("b", 2.0, 0.7), pt("c", 3.0, 0.9)];
        let s = |index, count, points| ConfigShard {
            name: "fig03".into(),
            total: 3,
            shard: ShardSpec { index, count },
            points,
        };
        // 0/2 of 3 → cells 0..1; 1/2 → cells 1..3.
        let merged =
            merge_config_shards(&[s(1, 2, all[1..].to_vec()), s(0, 2, all[..1].to_vec())]).unwrap();
        assert_eq!(merged.len(), 3);
        assert_eq!(merged.iter().map(|p| p.on_pareto).collect::<Vec<_>>(), vec![true, false, true]);
        // Overlap and gaps are rejected.
        let err = merge_config_shards(&[s(0, 2, all[..1].to_vec()), s(0, 2, all[..1].to_vec())])
            .unwrap_err();
        assert!(err.contains("overlap"), "{err}");
        let err = merge_config_shards(&[s(0, 2, all[..1].to_vec())]).unwrap_err();
        assert!(err.contains("missing"), "{err}");
    }
}
