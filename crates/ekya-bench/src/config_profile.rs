//! Shared result types for `fig03_configs`' exhaustive per-configuration
//! profiling — the one sweep in the suite whose cells are retraining
//! *configurations* rather than simulation [`Scenario`](crate::Scenario)s.
//!
//! The sweep rides the same scale levers as the scenario grids: each
//! configuration is profiled with its own seed (`base_seed ^
//! fnv1a(config label)`), so any slice of the configuration list
//! computes identical numbers regardless of which other configurations
//! run alongside it, and `EKYA_SHARD=i/N` partitions the list across
//! processes. A sharded run writes a [`ConfigShard`] envelope; the
//! `grid_merge` bin recombines shards with [`merge_config_shards`] into
//! the plain point list an unsharded run writes — byte-identical.
//!
//! The Pareto frontier is a **whole-grid** property, so shard files
//! carry `on_pareto: false` throughout and the flags are computed only
//! over the complete set ([`pareto_flags`]), by the unsharded bin run or
//! by the merge.

use crate::grid::{coverage_order, ShardSpec};
use serde::{Deserialize, Serialize};

/// One profiled retraining configuration: its GPU cost, its final
/// accuracy, and whether it sits on the cost/accuracy Pareto frontier of
/// the full configuration grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigPoint {
    /// Compact configuration label (`RetrainConfig::label`).
    pub label: String,
    /// Total GPU-seconds to retrain this configuration to completion
    /// (0.0 when the config was poisoned).
    pub gpu_seconds: f64,
    /// Final accuracy on the window's validation set (0.0 when the
    /// config was poisoned).
    pub accuracy: f64,
    /// On the Pareto frontier of the complete grid (always `false`
    /// inside shard files — see the module docs).
    pub on_pareto: bool,
    /// Panic message when profiling this configuration was poisoned —
    /// the same isolation the scenario grids give a failed cell: the
    /// rest of the sweep completes and the failure travels in the data.
    pub error: Option<String>,
}

/// One shard's slice of the configuration sweep, written to
/// `results/fig03_configs_shardIofN.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigShard {
    /// Sweep identity (the bin name).
    pub name: String,
    /// Configurations in the full (unsharded) grid.
    pub total: usize,
    /// The slice this file covers.
    pub shard: ShardSpec,
    /// Profiled points for `shard.range(total)`, in grid order.
    pub points: Vec<ConfigPoint>,
}

/// Pareto-frontier membership over (cost, accuracy): a point is on the
/// frontier iff no other point is at most as expensive **and** at least
/// as accurate with one of the two strict — the same dominance rule as
/// `ekya_core::pareto_frontier`, stated directly on profiled points.
/// Poisoned points are never on the frontier and never dominate anyone.
pub fn pareto_flags(points: &[ConfigPoint]) -> Vec<bool> {
    points
        .iter()
        .map(|p| {
            p.error.is_none()
                && !points.iter().any(|q| {
                    q.error.is_none()
                        && q.gpu_seconds <= p.gpu_seconds
                        && q.accuracy >= p.accuracy
                        && (q.gpu_seconds < p.gpu_seconds || q.accuracy > p.accuracy)
                })
        })
        .collect()
}

/// Recombines per-shard configuration sweeps into the complete point
/// list an unsharded run writes, recomputing the Pareto flags over the
/// full set. Rejects mismatched sweeps and overlapping/missing slices
/// with the same coverage rules as harness-report merging.
pub fn merge_config_shards(shards: &[ConfigShard]) -> Result<Vec<ConfigPoint>, String> {
    let first = shards.first().ok_or("no shards to merge")?;
    for s in shards {
        if s.name != first.name || s.total != first.total {
            return Err(format!(
                "cannot merge shards of different sweeps: `{}` ({} configs) vs `{}` ({} configs)",
                first.name, first.total, s.name, s.total
            ));
        }
    }
    let parts: Vec<(ShardSpec, usize)> = shards.iter().map(|s| (s.shard, s.points.len())).collect();
    let order = coverage_order(&parts, first.total)?;

    let mut points = Vec::with_capacity(first.total);
    for &i in &order {
        points.extend(shards[i].points.iter().cloned());
    }
    let flags = pareto_flags(&points);
    for (p, on) in points.iter_mut().zip(flags) {
        p.on_pareto = on;
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(label: &str, gpu_seconds: f64, accuracy: f64) -> ConfigPoint {
        ConfigPoint { label: label.into(), gpu_seconds, accuracy, on_pareto: false, error: None }
    }

    #[test]
    fn pareto_flags_mark_undominated_points() {
        // a: cheap & good (frontier); b: pricier & worse (dominated by a);
        // c: priciest & best (frontier); d: ties a exactly (frontier —
        // neither strictly dominates the other).
        let points =
            vec![pt("a", 1.0, 0.8), pt("b", 2.0, 0.7), pt("c", 3.0, 0.9), pt("d", 1.0, 0.8)];
        assert_eq!(pareto_flags(&points), vec![true, false, true, true]);
    }

    #[test]
    fn pareto_flags_quarantine_poisoned_points() {
        // A poisoned point carries (0.0, 0.0) — cheapest possible — but
        // must neither join the frontier nor dominate real points.
        let mut poisoned = pt("x", 0.0, 0.0);
        poisoned.error = Some("boom".into());
        let points = vec![poisoned, pt("a", 1.0, 0.8)];
        assert_eq!(pareto_flags(&points), vec![false, true]);
    }

    #[test]
    fn merge_recombines_and_recomputes_pareto() {
        let all = [pt("a", 1.0, 0.8), pt("b", 2.0, 0.7), pt("c", 3.0, 0.9)];
        let s = |index, count, points| ConfigShard {
            name: "fig03".into(),
            total: 3,
            shard: ShardSpec { index, count },
            points,
        };
        // 0/2 of 3 → cells 0..1; 1/2 → cells 1..3.
        let merged =
            merge_config_shards(&[s(1, 2, all[1..].to_vec()), s(0, 2, all[..1].to_vec())]).unwrap();
        assert_eq!(merged.len(), 3);
        assert_eq!(merged.iter().map(|p| p.on_pareto).collect::<Vec<_>>(), vec![true, false, true]);
        // Overlap and gaps are rejected.
        let err = merge_config_shards(&[s(0, 2, all[..1].to_vec()), s(0, 2, all[..1].to_vec())])
            .unwrap_err();
        assert!(err.contains("overlap"), "{err}");
        let err = merge_config_shards(&[s(0, 2, all[..1].to_vec())]).unwrap_err();
        assert!(err.contains("missing"), "{err}");
    }
}
