//! The sanctioned home of every environment knob that is *not* one of
//! the shared grid knobs parsed by [`crate::Knobs::from_env`].
//!
//! Determinism contract: `plan.json` pins the environment a supervised
//! run executes under, and `ekya-lint`'s `ambient-env` rule forbids
//! `std::env::var` anywhere outside `Knobs::from_env`, `results_dir`,
//! and this module — an env read that lives here is documented, listed
//! in the operator guide's env-knob table (`crates/ekya-bench/README.md`),
//! and therefore coverable by a plan. One accessor per knob; callers
//! never spell the variable name themselves.

/// Reads a float environment knob (used by bin-specific knobs like
/// `EKYA_THRESHOLD`; the shared grid knobs all live in [`crate::Knobs`]).
pub fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// `EKYA_MIN_SPEEDUP` — when set, `harness_bench` asserts the measured
/// parallel speedup reaches this floor (CI perf-sanity gate; unset means
/// no gate, e.g. on single-core runners).
pub fn min_speedup() -> Option<f64> {
    std::env::var("EKYA_MIN_SPEEDUP").ok().and_then(|v| v.parse().ok())
}

/// `EKYA_BENCH_TOLERANCE` — fractional throughput regression the
/// `perf_gate` bin tolerates against its pinned baseline before failing
/// (default 0.25, i.e. a 25% slowdown fails the gate).
pub fn bench_tolerance() -> f64 {
    env_f64("EKYA_BENCH_TOLERANCE", 0.25)
}

/// `EKYA_ORCH_CRASH_AFTER` — fault injection for the orchestrator
/// tests: a grid bin aborts after executing this many cells, so
/// supervise/retry/resume paths can be exercised deterministically.
/// Unset (the production state) means never crash.
pub fn orch_crash_after() -> Option<usize> {
    std::env::var("EKYA_ORCH_CRASH_AFTER").ok().and_then(|v| v.parse().ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_f64_falls_back_on_absent_or_garbage() {
        assert_eq!(env_f64("EKYA_TEST_KNOB_ABSENT", 1.5), 1.5);
        std::env::set_var("EKYA_TEST_KNOB_GARBAGE", "not-a-number");
        assert_eq!(env_f64("EKYA_TEST_KNOB_GARBAGE", 2.5), 2.5);
        std::env::remove_var("EKYA_TEST_KNOB_GARBAGE");
    }

    #[test]
    fn unset_knobs_mean_no_gate_and_no_crash() {
        // The test runner environment must not carry these; if it does,
        // every assertion about "production state" below is void.
        assert_eq!(std::env::var_os("EKYA_MIN_SPEEDUP"), None);
        assert_eq!(std::env::var_os("EKYA_ORCH_CRASH_AFTER"), None);
        assert_eq!(min_speedup(), None);
        assert_eq!(orch_crash_after(), None);
        assert_eq!(bench_tolerance(), 0.25);
    }
}
