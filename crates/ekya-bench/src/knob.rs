//! The sanctioned home of every environment knob that is *not* one of
//! the shared grid knobs parsed by [`crate::Knobs::from_env`].
//!
//! Determinism contract: `plan.json` pins the environment a supervised
//! run executes under, and `ekya-lint`'s `ambient-env` rule forbids
//! `std::env::var` anywhere outside `Knobs::from_env`, `results_dir`,
//! and this module — an env read that lives here is documented, listed
//! in the operator guide's env-knob table (`crates/ekya-bench/README.md`),
//! and therefore coverable by a plan. One accessor per knob; callers
//! never spell the variable name themselves.

/// Reads a float environment knob (used by bin-specific knobs like
/// `EKYA_THRESHOLD`; the shared grid knobs all live in [`crate::Knobs`]).
pub fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// `EKYA_MIN_SPEEDUP` — when set, `harness_bench` asserts the measured
/// parallel speedup reaches this floor (CI perf-sanity gate; unset means
/// no gate, e.g. on single-core runners).
pub fn min_speedup() -> Option<f64> {
    std::env::var("EKYA_MIN_SPEEDUP").ok().and_then(|v| v.parse().ok())
}

/// `EKYA_BATCH` — maximum grid cells per work-stealing task. Unset
/// means the harness sizes chunks automatically from per-cell cost
/// estimates (see [`crate::chunk_ranges`]); `EKYA_BATCH=1` disables
/// batching (one cell per task, the pre-batching dispatch). Values are
/// floored at 1.
pub fn batch() -> Option<usize> {
    std::env::var("EKYA_BATCH").ok().and_then(|v| v.parse::<usize>().ok()).map(|n| n.max(1))
}

/// `EKYA_BENCH_FULL=1` — `harness_bench` additionally measures (and
/// gates) the full-size fig06 grid as the `fig06_full_grid` record. Off
/// by default: the full grid is minutes of work, so only the nightly CI
/// lane turns it on.
pub fn bench_full() -> bool {
    std::env::var("EKYA_BENCH_FULL").map(|v| v == "1").unwrap_or(false)
}

/// The speedup floor [`min_speedup`] actually enforces for a run at
/// `workers` threads, derated for the measuring machine's hardware.
///
/// A parallel run cannot beat serial by the configured multiple when the
/// box has fewer hardware threads than the pool has workers — on a
/// single core the theoretical ceiling is 1.0×, and work-stealing
/// dispatch overhead on an oversubscribed core costs a further
/// ~10–20% on microsecond-scale cells. So when
/// `available_parallelism() < workers` the floor becomes
/// `min(requested, 0.8 × hw_threads)`: still failing on pathological
/// parallel slowdowns (a 1-core box is held to 0.8×), while full-size
/// machines (hardware ≥ workers) enforce the requested floor untouched.
/// Returns `None` (no gate) when `EKYA_MIN_SPEEDUP` is unset.
pub fn effective_min_speedup(workers: usize) -> Option<SpeedupGate> {
    let requested = min_speedup()?;
    let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    Some(SpeedupGate { requested, effective: derate_speedup(requested, workers, hw), hw })
}

/// A resolved speedup gate: what the environment asked for and what this
/// machine is held to (see [`effective_min_speedup`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeedupGate {
    /// The `EKYA_MIN_SPEEDUP` value as configured.
    pub requested: f64,
    /// The floor enforced on this machine.
    pub effective: f64,
    /// Hardware threads detected on this machine.
    pub hw: usize,
}

/// The derating rule of [`effective_min_speedup`], split out pure so it
/// is unit-testable without touching the environment.
fn derate_speedup(requested: f64, workers: usize, hw_threads: usize) -> f64 {
    if hw_threads >= workers.max(1) {
        requested
    } else {
        requested.min(0.8 * hw_threads as f64)
    }
}

/// `EKYA_BENCH_TOLERANCE` — fractional throughput regression the
/// `perf_gate` bin tolerates against its pinned baseline before failing
/// (default 0.25, i.e. a 25% slowdown fails the gate).
pub fn bench_tolerance() -> f64 {
    env_f64("EKYA_BENCH_TOLERANCE", 0.25)
}

/// `EKYA_ORCH_CRASH_AFTER` — fault injection for the orchestrator
/// tests: a grid bin aborts after executing this many cells, so
/// supervise/retry/resume paths can be exercised deterministically.
/// Unset (the production state) means never crash.
pub fn orch_crash_after() -> Option<usize> {
    std::env::var("EKYA_ORCH_CRASH_AFTER").ok().and_then(|v| v.parse().ok())
}

/// `EKYA_STREAMS_LIVE` — fleet size for the serving-path bins
/// (`ekya_serve`, `ekya_loadgen`): how many concurrent camera streams
/// the daemon admits. Unset means each bin's documented default.
pub fn streams_live() -> Option<usize> {
    std::env::var("EKYA_STREAMS_LIVE").ok().and_then(|v| v.parse().ok())
}

/// `EKYA_ARRIVAL` — frame-arrival pattern for the serving-path bins:
/// `uniform` (default), `bursty`, or `staggered`. The raw string is
/// returned so the bin can reject typos with a proper usage error.
pub fn arrival() -> String {
    std::env::var("EKYA_ARRIVAL").unwrap_or_else(|_| "uniform".to_string())
}

/// `EKYA_TRACE` — two-plane telemetry (`ekya-telemetry`). Unset, empty,
/// or `0` (the production state) disables tracing entirely: every
/// instrumented hot path costs one relaxed atomic load. `1` writes the
/// logical-plane trace to `results/TRACE_<bin>.jsonl` (plus a
/// `.wall.json` sidecar); any other value is used as the trace file
/// path verbatim. The logical trace is byte-identical across runs,
/// worker counts, and shard merges — see the operator guide's
/// "Observability" section.
pub fn trace() -> Option<String> {
    match std::env::var("EKYA_TRACE") {
        Ok(v) if v.is_empty() || v == "0" => None,
        Ok(v) => Some(v),
        Err(_) => None,
    }
}

/// `EKYA_MIN_FPS` — when set, `harness_bench` asserts the
/// `serve_throughput` record's steady-state frames/sec reaches this
/// floor (CI perf-sanity gate for the serving hot path; unset means no
/// gate, e.g. on slow or heavily shared runners).
pub fn min_fps() -> Option<f64> {
    std::env::var("EKYA_MIN_FPS").ok().and_then(|v| v.parse().ok())
}

/// `EKYA_SERVE_CRASH_AFTER` — fault injection for the serving daemon:
/// `ekya_serve` kills its own process (exit 17) in the middle of this
/// window index, after retraining has been dispatched, so the
/// crash-injection test can assert the last on-disk status snapshot is
/// still a consistent prefix of the run. Unset (the production state)
/// means never crash.
pub fn serve_crash_after() -> Option<usize> {
    std::env::var("EKYA_SERVE_CRASH_AFTER").ok().and_then(|v| v.parse().ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_f64_falls_back_on_absent_or_garbage() {
        assert_eq!(env_f64("EKYA_TEST_KNOB_ABSENT", 1.5), 1.5);
        std::env::set_var("EKYA_TEST_KNOB_GARBAGE", "not-a-number");
        assert_eq!(env_f64("EKYA_TEST_KNOB_GARBAGE", 2.5), 2.5);
        std::env::remove_var("EKYA_TEST_KNOB_GARBAGE");
    }

    #[test]
    fn unset_knobs_mean_no_gate_and_no_crash() {
        // The test runner environment must not carry these; if it does,
        // every assertion about "production state" below is void.
        assert_eq!(std::env::var_os("EKYA_MIN_SPEEDUP"), None);
        assert_eq!(std::env::var_os("EKYA_MIN_FPS"), None);
        assert_eq!(std::env::var_os("EKYA_ORCH_CRASH_AFTER"), None);
        assert_eq!(std::env::var_os("EKYA_SERVE_CRASH_AFTER"), None);
        assert_eq!(std::env::var_os("EKYA_STREAMS_LIVE"), None);
        assert_eq!(std::env::var_os("EKYA_ARRIVAL"), None);
        assert_eq!(std::env::var_os("EKYA_BATCH"), None);
        assert_eq!(std::env::var_os("EKYA_BENCH_FULL"), None);
        assert_eq!(std::env::var_os("EKYA_TRACE"), None);
        assert_eq!(min_speedup(), None);
        assert_eq!(min_fps(), None);
        assert_eq!(trace(), None);
        assert_eq!(orch_crash_after(), None);
        assert_eq!(serve_crash_after(), None);
        assert_eq!(streams_live(), None);
        assert_eq!(arrival(), "uniform");
        assert_eq!(bench_tolerance(), 0.25);
        assert_eq!(batch(), None);
        assert!(!bench_full());
        assert_eq!(effective_min_speedup(4), None);
    }

    #[test]
    fn speedup_derating_tracks_hardware() {
        // Enough hardware: the requested floor applies untouched.
        assert_eq!(derate_speedup(2.0, 4, 4), 2.0);
        assert_eq!(derate_speedup(2.0, 4, 16), 2.0);
        // Single core: parallel cannot beat serial — floor near 1x
        // (with margin for dispatch overhead on the oversubscribed core).
        assert!((derate_speedup(2.0, 4, 1) - 0.8).abs() < 1e-12);
        // Two cores, four workers: held to 1.6x, not 2x.
        assert!((derate_speedup(2.0, 4, 2) - 1.6).abs() < 1e-12);
        // Derating never raises the floor above the request.
        assert_eq!(derate_speedup(1.2, 4, 3), 1.2);
    }
}
