//! Parallel experiment harness: env knobs, a crossbeam work-stealing
//! worker pool with panic isolation, and structured grid results —
//! sharded across processes and resumable after a kill.
//!
//! Grid cells are independent simulations, so the harness fans them out
//! across threads and still produces **byte-identical** output to a
//! serial run: every cell's RNG seed is a pure function of the cell
//! itself (see [`crate::grid`]), results are written back by cell index,
//! and wall-clock timing lives outside the serialized report (in
//! [`RunStats`]). A cell that panics is isolated — its slot carries the
//! panic message and every other cell completes normally.
//!
//! The same purity is what makes a grid bigger than one machine or one
//! uninterrupted process tractable:
//!
//! * **Sharding** — [`GridExec`] runs one [`ShardSpec`] slice of the
//!   flattened cell range; [`merge_reports`] recombines per-shard [`HarnessReport`]s
//!   into a file byte-identical to an unsharded run, rejecting
//!   overlapping or missing slices.
//! * **Resume** — every completed cell is checkpointed to a
//!   `*.partial.json` next to the report; a rerun loads prior
//!   [`CellResult`]s (keyed by the scenario
//!   [`fingerprint`](Scenario::fingerprint)), skips them, and executes
//!   only the remainder, writing the same merged report the
//!   uninterrupted run would have written.
//!
//! [`run_grid_bin`] wires both behaviours to the `EKYA_SHARD` and
//! `EKYA_RESUME` environment knobs for the fig/table binaries.

use crate::grid::{coverage_order, Grid, Scenario, ShardSpec};
use crate::results_dir;
use ekya_baselines::PolicyBuildCtx;
use ekya_sim::{run_windows, RunReport, RunnerConfig};
use ekya_video::StreamSet;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Instant;

// ---------------------------------------------------------------------
// Environment knobs
// ---------------------------------------------------------------------

/// The environment knobs shared by every `ekya-bench` binary, parsed in
/// exactly one place:
///
/// * `EKYA_WINDOWS` — retraining windows (per-bin default);
/// * `EKYA_STREAMS` — concurrent streams (per-bin default);
/// * `EKYA_SEED` — base RNG seed (default 42);
/// * `EKYA_QUICK=1` — shrink sweeps for a fast smoke run;
/// * `EKYA_WORKERS` — harness worker threads (default: available
///   hardware parallelism);
/// * `EKYA_SHARD=i/N` — run only shard `i` of `N` of the grid's cell
///   range (grid bins; see [`crate::grid::ShardSpec`]);
/// * `EKYA_RESUME` — `1` to resume from this run's own previous report
///   or checkpoint, or a path to resume from an explicit report file.
///
/// See `crates/ekya-bench/README.md` for the full operator guide.
#[derive(Debug, Clone)]
pub struct Knobs {
    windows: Option<usize>,
    streams: Option<usize>,
    seed: u64,
    quick: bool,
    workers: usize,
    shard: Option<ShardSpec>,
    resume: Option<String>,
}

impl Default for Knobs {
    /// The knob values an empty environment resolves to: seed 42, no
    /// window/stream overrides, full-size sweeps, hardware-parallelism
    /// workers, unsharded, no resume.
    fn default() -> Self {
        Self {
            windows: None,
            streams: None,
            seed: 42,
            quick: false,
            workers: default_workers(),
            shard: None,
            resume: None,
        }
    }
}

impl Knobs {
    /// Reads every knob from the environment.
    ///
    /// # Panics
    /// On a malformed `EKYA_SHARD` value — a typo silently running the
    /// whole grid (and later merging as an overlap) would be far worse
    /// than failing fast.
    pub fn from_env() -> Self {
        fn parse<T: std::str::FromStr>(name: &str) -> Option<T> {
            std::env::var(name).ok().and_then(|v| v.parse().ok())
        }
        let shard = std::env::var("EKYA_SHARD")
            .ok()
            .filter(|v| !v.is_empty())
            .map(|v| ShardSpec::parse(&v).unwrap_or_else(|e| panic!("EKYA_SHARD: {e}")));
        let resume = std::env::var("EKYA_RESUME").ok().filter(|v| !v.is_empty() && v != "0");
        Self {
            windows: parse("EKYA_WINDOWS"),
            streams: parse("EKYA_STREAMS"),
            seed: parse("EKYA_SEED").unwrap_or(42),
            quick: std::env::var("EKYA_QUICK").map(|v| v == "1").unwrap_or(false),
            workers: parse("EKYA_WORKERS").unwrap_or_else(default_workers),
            shard,
            resume,
        }
    }

    /// Sets the window override (the programmatic `EKYA_WINDOWS`) —
    /// these builder-style setters are what lets a supervisor like
    /// `ekya-orchestrate` drive [`run_grid_bin`] and the bin registry
    /// without mutating its own process environment.
    pub fn with_windows(mut self, windows: Option<usize>) -> Self {
        self.windows = windows;
        self
    }

    /// Sets the stream-count override (the programmatic `EKYA_STREAMS`).
    pub fn with_streams(mut self, streams: Option<usize>) -> Self {
        self.streams = streams;
        self
    }

    /// Sets the base RNG seed (the programmatic `EKYA_SEED`).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets quick mode (the programmatic `EKYA_QUICK`).
    pub fn with_quick(mut self, quick: bool) -> Self {
        self.quick = quick;
        self
    }

    /// Sets the worker-thread count (the programmatic `EKYA_WORKERS`).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the shard slice (the programmatic `EKYA_SHARD`).
    pub fn with_shard(mut self, shard: Option<ShardSpec>) -> Self {
        self.shard = shard;
        self
    }

    /// Sets the resume request (the programmatic `EKYA_RESUME`).
    pub fn with_resume(mut self, resume: Option<String>) -> Self {
        self.resume = resume;
        self
    }

    /// The raw window override (`EKYA_WINDOWS`), `None` when the bin's
    /// default applies — what a supervisor records in its plan so
    /// respawned shards inherit exactly the launch-time knobs.
    pub fn windows_override(&self) -> Option<usize> {
        self.windows
    }

    /// The raw stream-count override (`EKYA_STREAMS`), `None` when the
    /// bin's default applies.
    pub fn streams_override(&self) -> Option<usize> {
        self.streams
    }

    /// Number of retraining windows (`EKYA_WINDOWS`, else the bin's
    /// default).
    pub fn windows(&self, default: usize) -> usize {
        self.windows.unwrap_or(default)
    }

    /// Number of concurrent streams (`EKYA_STREAMS`, else the bin's
    /// default).
    pub fn streams(&self, default: usize) -> usize {
        self.streams.unwrap_or(default)
    }

    /// Base RNG seed (`EKYA_SEED`, default 42).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// True when `EKYA_QUICK=1`.
    pub fn quick(&self) -> bool {
        self.quick
    }

    /// Worker threads for the harness pool (`EKYA_WORKERS`, default:
    /// hardware parallelism).
    pub fn workers(&self) -> usize {
        self.workers.max(1)
    }

    /// The shard this process runs (`EKYA_SHARD=i/N`), or `None` for the
    /// whole grid.
    pub fn shard(&self) -> Option<ShardSpec> {
        self.shard
    }

    /// The resume request (`EKYA_RESUME`): `Some("1")` to resume from
    /// this run's own report/checkpoint, `Some(path)` for an explicit
    /// prior report, `None` when unset (or `0`/empty).
    pub fn resume(&self) -> Option<&str> {
        self.resume.as_deref()
    }

    /// Warns (once, to stderr) when `EKYA_SHARD` is set but the calling
    /// bin computes a bespoke workload that does not partition — so an
    /// operator fanning a sweep across machines is told the knob is a
    /// no-op here instead of silently duplicating the whole run N times.
    pub fn warn_if_sharded(&self, bin: &str) {
        if let Some(shard) = self.shard {
            eprintln!(
                "[{bin}: EKYA_SHARD={shard} ignored — this bin does not shard; \
                 running the full workload]"
            );
        }
    }

    /// Warns (once, to stderr) when `EKYA_RESUME` is set but the calling
    /// bin does not checkpoint/resume — the operator expecting a cheap
    /// rerun is told everything recomputes instead of a silent no-op.
    pub fn warn_if_resume(&self, bin: &str) {
        if self.resume.is_some() {
            eprintln!(
                "[{bin}: EKYA_RESUME ignored — this bin does not resume; \
                 recomputing from scratch]"
            );
        }
    }
}

/// Hardware parallelism, floored at one.
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

// ---------------------------------------------------------------------
// Work-stealing fan-out
// ---------------------------------------------------------------------

/// Runs `f` over every item on a work-stealing pool of `workers`
/// threads and returns the results **in item order**.
///
/// Items are dealt round-robin into per-worker FIFO deques; a worker
/// that drains its own deque steals from its siblings, so stragglers
/// (cells vary wildly in cost — more streams, more windows) do not idle
/// the rest of the pool. With `workers == 1` everything runs inline on
/// the calling thread.
///
/// Each item is evaluated under [`catch_unwind`]: a panicking item
/// yields `Err(panic message)` in its slot and no other item is
/// affected. Results depend only on `(index, item)`, never on execution
/// order, so serial and parallel runs agree exactly.
pub fn run_parallel<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<Result<R, String>>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);
    if workers == 1 {
        return items.into_iter().enumerate().map(|(i, item)| guard(&f, i, item)).collect();
    }

    let queues: Vec<crossbeam::deque::Worker<(usize, T)>> =
        (0..workers).map(|_| crossbeam::deque::Worker::new_fifo()).collect();
    let stealers: Vec<crossbeam::deque::Stealer<(usize, T)>> =
        queues.iter().map(|q| q.stealer()).collect();
    for (i, item) in items.into_iter().enumerate() {
        queues[i % workers].push((i, item));
    }

    let slots: Mutex<Vec<Option<Result<R, String>>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|scope| {
        for (w, local) in queues.into_iter().enumerate() {
            let stealers = &stealers;
            let slots = &slots;
            let f = &f;
            scope.spawn(move || {
                loop {
                    // Own deque first, then steal round-robin from the
                    // next sibling onwards. No task spawns new tasks, so
                    // an all-empty sweep means the pool is drained.
                    let task = local.pop().or_else(|| {
                        (1..stealers.len())
                            .map(|k| &stealers[(w + k) % stealers.len()])
                            .find_map(steal_retrying)
                    });
                    let Some((i, item)) = task else { break };
                    let result = guard(f, i, item);
                    slots
                        .lock()
                        .expect("result slots")
                        .get_mut(i)
                        .expect("slot index")
                        .replace(result);
                }
            });
        }
    });
    slots
        .into_inner()
        .expect("result slots")
        .into_iter()
        .map(|slot| slot.expect("every cell ran to completion"))
        .collect()
}

/// Packs per-cell cost `weights` (in dispatch order) into contiguous
/// chunk ranges covering `0..weights.len()`.
///
/// Small grid cells lose to the pool's fixed per-task costs — steal
/// traffic, `catch_unwind`, checkpoint serialization — so the harness
/// dispatches *chunks* of adjacent cells as one task. Chunks are closed
/// when their accumulated weight reaches the target (total weight over
/// `2 × workers`, so stealing still rebalances stragglers) or when they
/// hit the cell cap. `max_cells` (the `EKYA_BATCH` knob) caps cells per
/// chunk; `None` caps at the fair share `ceil(n / workers)`, so batching
/// can never serialize a grid behind one worker. `max_cells = 1`
/// reproduces the unbatched per-cell dispatch exactly.
///
/// Pure function of its inputs: the same weights, worker count, and cap
/// always produce the same ranges, so chunking never threatens the
/// parallel ≡ serial ≡ sharded byte-identity guarantees (results are
/// reassembled in range order, which *is* dispatch order).
pub fn chunk_ranges(
    weights: &[f64],
    workers: usize,
    max_cells: Option<usize>,
) -> Vec<std::ops::Range<usize>> {
    let n = weights.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.max(1);
    let fair = n.div_ceil(workers);
    let cap = max_cells.unwrap_or(fair).clamp(1, fair);
    if cap == 1 {
        return (0..n).map(|i| i..i + 1).collect();
    }
    let total: f64 = weights.iter().map(|w| w.max(0.0)).sum();
    // ~2 chunks per worker: big enough to amortise per-task overhead,
    // small enough that work stealing still evens out cost estimates
    // that turn out wrong.
    let target = if total > 0.0 { total / (2 * workers) as f64 } else { f64::INFINITY };
    let mut ranges = Vec::new();
    let mut start = 0usize;
    let mut acc = 0.0f64;
    for (i, w) in weights.iter().enumerate() {
        acc += w.max(0.0);
        if i + 1 - start >= cap || acc >= target {
            ranges.push(start..i + 1);
            start = i + 1;
            acc = 0.0;
        }
    }
    if start < n {
        ranges.push(start..n);
    }
    ranges
}

/// Steals from a victim, retrying on `Steal::Retry` (a lost race is not
/// an empty deque — treating it as one could leave a queued task behind
/// and deadlock the order-indexed result collection).
fn steal_retrying<T>(stealer: &crossbeam::deque::Stealer<T>) -> Option<T> {
    let _steal_wall = ekya_telemetry::timing::wall_span("bench.pool", "steal");
    loop {
        match stealer.steal() {
            crossbeam::deque::Steal::Success(task) => return Some(task),
            crossbeam::deque::Steal::Empty => return None,
            crossbeam::deque::Steal::Retry => continue,
        }
    }
}

/// Evaluates one item under panic isolation.
fn guard<T, R, F: Fn(usize, T) -> R>(f: &F, i: usize, item: T) -> Result<R, String> {
    catch_unwind(AssertUnwindSafe(|| f(i, item))).map_err(panic_message)
}

/// Renders a `catch_unwind` payload as the panic message string carried
/// in a poisoned cell's `error` field.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "cell panicked (non-string payload)".to_string())
}

// ---------------------------------------------------------------------
// Grid execution
// ---------------------------------------------------------------------

/// The structured outcome of one grid cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellResult {
    /// The cell that produced this result.
    pub scenario: Scenario,
    /// Policy report name (matches figure legends).
    pub policy: String,
    /// Headline metric: accuracy averaged over windows and streams.
    pub mean_accuracy: f64,
    /// Fraction of stream-windows in which retraining ran.
    pub retrain_rate: f64,
    /// Full per-window report (`None` when the cell failed).
    pub report: Option<RunReport>,
    /// Panic message when the cell was poisoned.
    pub error: Option<String>,
}

/// The outcome of a grid run (or one shard of it), serialized to
/// `results/*.json`.
///
/// Every field is a **deterministic** function of the grid and the shard
/// — wall-clock timing, worker counts, and resume bookkeeping live in
/// [`RunStats`], which is printed but never serialized here. That split
/// is what makes the sharding/resume guarantees byte-exact: the merged
/// union of `N` shard reports, and the report of a resumed run, are
/// *identical files* to the one an uninterrupted single-process run
/// writes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HarnessReport {
    /// Grid identity — the bin name for reports written by
    /// [`run_grid_bin`]. Merging rejects mismatched names.
    pub name: String,
    /// Cells in the **full** (unsharded) grid enumeration.
    pub total_cells: usize,
    /// The shard this report covers (`None` = the whole grid).
    pub shard: Option<ShardSpec>,
    /// Number of poisoned cells in this report.
    pub failed: usize,
    /// Per-cell results, in grid enumeration order (a shard report holds
    /// the contiguous `shard.range(total_cells)` slice).
    pub cells: Vec<CellResult>,
}

impl HarnessReport {
    /// The mean accuracy of the first cell matching `pred`, or `None`.
    pub fn accuracy_where<F: Fn(&CellResult) -> bool>(&self, pred: F) -> Option<f64> {
        self.cells.iter().find(|c| c.error.is_none() && pred(c)).map(|c| c.mean_accuracy)
    }

    /// True when this report covers the whole grid (not a shard, no
    /// missing cells) — the precondition for the bins' whole-grid tables
    /// and headline comparisons.
    pub fn is_complete(&self) -> bool {
        self.shard.is_none() && self.cells.len() == self.total_cells
    }

    /// The error-free cells of this report keyed by their scenario
    /// fingerprint — the prior map the resume layer feeds to
    /// [`GridExec::prior`]. Poisoned cells are excluded so a resumed run
    /// retries them.
    pub fn prior_cells(&self) -> BTreeMap<u64, CellResult> {
        self.cells
            .iter()
            .filter(|c| c.error.is_none())
            .map(|c| (c.scenario.fingerprint(), c.clone()))
            .collect()
    }

    /// Prints the standard sharded-run notice a bin shows instead of its
    /// whole-grid presentation; `what` names what was skipped, as a
    /// plural-aware phrase ending in "is"/"are" (e.g. `"the factor
    /// table is"`, `"tables and headlines are"`).
    pub fn print_shard_notice(&self, what: &str) {
        println!(
            "[shard report: {} of {} cells — {what} whole-grid; \
             merge the shards with `grid_merge` first]",
            self.cells.len(),
            self.total_cells
        );
    }
}

/// Timing and resume bookkeeping for one [`GridExec::run`] — printed by
/// the bins, recorded in [`BenchRecord`], deliberately **not** part of
/// the serialized [`HarnessReport`] (see there).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunStats {
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock seconds spent executing cells (excludes resumed ones).
    pub wall_secs: f64,
    /// Throughput: executed cells per wall-clock second.
    pub cells_per_sec: f64,
    /// Cells actually executed by this run.
    pub executed: usize,
    /// Cells skipped because a prior result was resumed.
    pub resumed: usize,
}

/// A [`HarnessReport`] together with the [`RunStats`] of the run that
/// produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct GridRun {
    /// The deterministic report.
    pub report: HarnessReport,
    /// How the run went (timing, resume counts).
    pub stats: RunStats,
}

impl GridRun {
    /// Prints the standard end-of-bin stats footer (executed/resumed
    /// counts, wall clock, throughput, failures) every grid bin ends
    /// with.
    pub fn print_footer(&self) {
        println!(
            "\n[{} cells executed (+{} resumed) in {:.1} s — {:.2} cells/s on {} workers, \
             {} failed]",
            self.stats.executed,
            self.stats.resumed,
            self.stats.wall_secs,
            self.stats.cells_per_sec,
            self.stats.workers,
            self.report.failed
        );
    }
}

/// Runs one scenario end to end: generate its streams, build its policy
/// (inside the calling thread), execute the windows. This is the default
/// cell evaluator; bins with bespoke cells use [`run_parallel`] directly.
pub fn run_scenario(sc: &Scenario, holdout_seed: u64) -> CellResult {
    // Cells that differ only in policy share a workload; the memoised
    // constructor derives each distinct (dataset, streams, windows, seed)
    // stream set once per process instead of once per cell.
    let streams = StreamSet::cached(sc.dataset, sc.streams, sc.windows, sc.seed);
    let cfg = RunnerConfig { total_gpus: sc.gpus, seed: sc.seed, ..RunnerConfig::default() };
    let ctx = PolicyBuildCtx::new(sc.dataset, sc.gpus, holdout_seed);
    let mut policy = sc.policy.build(&ctx);
    let report = run_windows(policy.as_mut(), &streams, &cfg, sc.windows);
    CellResult {
        scenario: sc.clone(),
        policy: report.policy.clone(),
        mean_accuracy: report.mean_accuracy(),
        retrain_rate: report.retrain_rate(),
        report: Some(report),
        error: None,
    }
}

/// Configured grid execution: which slice of the grid to run, what prior
/// results to reuse, and where to checkpoint progress.
///
/// The plain [`run_grid`] wrapper covers the common whole-grid case;
/// bins go through [`run_grid_bin`], which builds a `GridExec` from the
/// environment knobs.
#[derive(Debug, Clone, Default)]
pub struct GridExec {
    /// Grid identity stamped into the report (the bin name).
    pub name: String,
    /// Worker threads for the cell fan-out.
    pub workers: usize,
    /// Run only this slice of the flattened cell range.
    pub shard: Option<ShardSpec>,
    /// Prior results keyed by scenario fingerprint
    /// ([`HarnessReport::prior_cells`]); matching cells are not re-run.
    pub prior: BTreeMap<u64, CellResult>,
    /// When set, the partial report is rewritten here after every
    /// completed cell (atomically, via a `.tmp` sibling), so a killed
    /// run loses at most the cells in flight.
    pub checkpoint: Option<PathBuf>,
    /// Fault injection: exit the whole process (code 17) once this many
    /// cells have completed in this run. Wired to the
    /// `EKYA_ORCH_CRASH_AFTER` env knob by [`run_grid_bin`] so the
    /// orchestrator's tests and CI can kill a shard mid-grid and prove
    /// retry-with-resume converges. Never set in normal operation.
    pub crash_after: Option<usize>,
    /// Maximum cells per dispatched chunk (see [`chunk_ranges`]). `None`
    /// (the default) sizes chunks automatically from the scenarios' cost
    /// estimates; `Some(1)` restores per-cell dispatch. Wired to the
    /// `EKYA_BATCH` env knob by [`run_grid_bin`].
    pub batch: Option<usize>,
}

impl GridExec {
    /// A whole-grid execution with no resume and no checkpointing.
    pub fn new(name: impl Into<String>, workers: usize) -> Self {
        Self { name: name.into(), workers, ..Self::default() }
    }

    /// Restricts the run to one shard of the cell range.
    pub fn shard(mut self, shard: Option<ShardSpec>) -> Self {
        self.shard = shard;
        self
    }

    /// Supplies prior results to resume from.
    pub fn prior(mut self, prior: BTreeMap<u64, CellResult>) -> Self {
        self.prior = prior;
        self
    }

    /// Enables per-cell checkpointing to `path`.
    pub fn checkpoint(mut self, path: Option<PathBuf>) -> Self {
        self.checkpoint = path;
        self
    }

    /// Enables fault injection: the process exits after `n` completed
    /// cells (see the field docs).
    pub fn crash_after(mut self, n: Option<usize>) -> Self {
        self.crash_after = n;
        self
    }

    /// Caps cells per dispatched chunk (see the field docs).
    pub fn batch(mut self, batch: Option<usize>) -> Self {
        self.batch = batch;
        self
    }

    /// Executes the configured slice of `grid` with the default cell
    /// evaluator ([`run_scenario`] under the grid's hold-out seed) and
    /// assembles the report.
    ///
    /// Cells whose fingerprint hits `prior` are reused verbatim (and
    /// count as `resumed` in the stats); the remainder fan out across
    /// the worker pool, checkpointing each completion when configured.
    /// The returned report is identical to what an unresumed run of the
    /// same slice produces — resume can only skip work, never change it.
    pub fn run(&self, grid: &Grid) -> GridRun {
        self.run_with(grid, |sc| run_scenario(sc, grid.holdout_seed(sc.dataset)))
    }

    /// [`GridExec::run`] with a custom cell evaluator.
    ///
    /// `eval` must be a pure function of the scenario (plus state fixed
    /// for the whole run, e.g. a pre-recorded trace) — that purity is
    /// what keeps sharding, resume, and parallel ≡ serial byte-exact.
    /// This is how bins whose cells are not plain simulations
    /// (fig08's trace replay) ride the same shard/resume machinery.
    pub fn run_with<F>(&self, grid: &Grid, eval: F) -> GridRun
    where
        F: Fn(&Scenario) -> CellResult + Sync,
    {
        let all = grid.cells();
        let total = all.len();
        let range = self.shard.map_or(0..total, |s| s.range(total));

        // Split the slice into resumed hits and cells still to execute,
        // remembering each cell's global grid index.
        let mut done: BTreeMap<usize, CellResult> = BTreeMap::new();
        let mut pending: Vec<(usize, Scenario)> = Vec::new();
        for (idx, sc) in all.into_iter().enumerate().take(range.end).skip(range.start) {
            match self.prior.get(&sc.fingerprint()) {
                Some(hit) => {
                    done.insert(idx, hit.clone());
                }
                None => pending.push((idx, sc)),
            }
        }
        let resumed_idx: Vec<usize> = done.keys().copied().collect();
        let resumed = done.len();
        let executed = pending.len();

        // Checkpoint state starts from the resumed cells, so a partial
        // file always holds *everything* completed so far.
        let ckpt = self
            .checkpoint
            .as_ref()
            .map(|path| (path.as_path(), Mutex::new(done.clone()), Mutex::new(0usize)));
        let envelope = (self.name.as_str(), total, self.shard);
        let completed = std::sync::atomic::AtomicUsize::new(0);

        // Pack contiguous runs of pending cells into cost-weighted chunks
        // so the pool's fixed per-task costs (steal traffic, checkpoint
        // serialization) amortise across several small cells. Per-cell
        // seeding, panic isolation, and checkpoint bytes are untouched —
        // chunks are reassembled in dispatch order, so the report stays
        // byte-identical to per-cell (and serial, and sharded) dispatch.
        let weights: Vec<f64> = pending.iter().map(|(_, sc)| sc.cost_estimate()).collect();
        let ranges = chunk_ranges(&weights, self.workers, self.batch);
        let chunks: Vec<Vec<(usize, Scenario)>> =
            ranges.iter().map(|r| pending[r.clone()].to_vec()).collect();

        let started = Instant::now();
        let chunk_results =
            run_parallel(chunks, self.workers, |_, chunk: Vec<(usize, Scenario)>| {
                let _chunk_wall = ekya_telemetry::timing::wall_span("bench.grid", "chunk");
                let mut out: Vec<Result<CellResult, String>> = Vec::with_capacity(chunk.len());
                for (idx, sc) in chunk {
                    // Per-cell panic isolation, exactly as when every cell
                    // was its own task: a poisoned cell ends up as an Err
                    // slot and the rest of the chunk still runs.
                    let result = {
                        let _cell_wall =
                            ekya_telemetry::timing::wall_span("bench.grid", "cell_exec");
                        // Scope deep instrumentation (profiler, scheduler)
                        // fired during eval to this cell's fingerprint, so
                        // its logical records sort identically no matter
                        // which worker — or which shard — ran the cell.
                        let _cell_ctx = ekya_telemetry::enabled().then(|| {
                            ekya_telemetry::Ctx::current()
                                .cell(format!("{:016x}", sc.fingerprint()))
                                .enter()
                        });
                        catch_unwind(AssertUnwindSafe(|| eval(&sc))).map_err(panic_message)
                    };
                    if let (Ok(cell), Some((_, state, _))) = (&result, &ckpt) {
                        state.lock().expect("checkpoint state").insert(idx, cell.clone());
                    }
                    out.push(result);
                    // Fault injection: flush the checkpoint *before* dying,
                    // so the kill the orchestrator's tests simulate is the
                    // realistic one — progress survives, the run does not.
                    let n = completed.fetch_add(1, std::sync::atomic::Ordering::SeqCst) + 1;
                    if self.crash_after.is_some_and(|k| n >= k) {
                        flush_checkpoint(&ckpt, envelope);
                        eprintln!(
                            "[{}: injected crash after {n} cells (EKYA_ORCH_CRASH_AFTER)]",
                            self.name
                        );
                        std::process::exit(17);
                    }
                }
                // One checkpoint write per chunk instead of per cell — the
                // state map already holds every completion, and queued
                // writers collapse into the newest snapshot.
                flush_checkpoint(&ckpt, envelope);
                out
            });
        let wall_secs = started.elapsed().as_secs_f64();

        // Flatten chunk results back into pending order. A failure outside
        // any cell's own guard (the checkpoint machinery itself) poisons
        // the whole chunk: fan its message out to every cell it covered.
        let mut results: Vec<Result<CellResult, String>> = Vec::with_capacity(executed);
        for (range, chunk_result) in ranges.iter().zip(chunk_results) {
            match chunk_result {
                Ok(cells) => results.extend(cells),
                Err(message) => results.extend(range.clone().map(|_| Err(message.clone()))),
            }
        }

        // Merge fresh results (poisoned slots backfilled from the
        // scenario) with the resumed cells, in global grid order.
        for ((idx, sc), result) in pending.into_iter().zip(results) {
            let cell = match result {
                Ok(cell) => cell,
                Err(message) => CellResult {
                    policy: sc.policy.label(),
                    scenario: sc,
                    mean_accuracy: 0.0,
                    retrain_rate: 0.0,
                    report: None,
                    error: Some(message),
                },
            };
            done.insert(idx, cell);
        }

        // Logical-plane cell records, emitted from this one thread in
        // global grid order. Every record here is scoped to its cell's
        // fingerprint — a run-level span would duplicate under a shard
        // merge, while per-cell records union back to exactly the serial
        // trace. Counters are safe at run level because merges sum them.
        if ekya_telemetry::enabled() {
            let poisoned = done.values().filter(|c| c.error.is_some()).count();
            for (idx, cell) in &done {
                let _ctx = ekya_telemetry::Ctx::current()
                    .cell(format!("{:016x}", cell.scenario.fingerprint()))
                    .enter();
                ekya_telemetry::span(
                    "bench.grid",
                    "cell",
                    cell.mean_accuracy,
                    &format!("{} retrain_rate={:.6}", cell.scenario.label(), cell.retrain_rate),
                );
                if resumed_idx.binary_search(idx).is_ok() {
                    ekya_telemetry::event("bench.grid", "resumed", "");
                }
                if let Some(err) = &cell.error {
                    ekya_telemetry::event("bench.grid", "poisoned", err);
                }
            }
            ekya_telemetry::counter_add("bench.grid", "cells_ok", (done.len() - poisoned) as u64);
            ekya_telemetry::counter_add("bench.grid", "cells_poisoned", poisoned as u64);
            ekya_telemetry::counter_add("bench.grid", "cells_resumed", resumed as u64);
        }
        let cells: Vec<CellResult> = done.into_values().collect();
        let failed = cells.iter().filter(|c| c.error.is_some()).count();

        GridRun {
            report: HarnessReport {
                name: self.name.clone(),
                total_cells: total,
                shard: self.shard,
                failed,
                cells,
            },
            stats: RunStats {
                workers: self.workers,
                wall_secs,
                cells_per_sec: if wall_secs > 0.0 && executed > 0 {
                    executed as f64 / wall_secs
                } else {
                    0.0
                },
                executed,
                resumed,
            },
        }
    }
}

/// Fans a whole grid out across `workers` threads and collects every
/// cell — the no-shard, no-resume convenience wrapper over [`GridExec`].
pub fn run_grid(grid: &Grid, workers: usize) -> GridRun {
    GridExec::new("grid", workers).run(grid)
}

/// Writes the checkpoint if it is stale: records the current completion
/// count under the state lock, then serializes under the separate IO
/// lock so other chunks keep completing while the snapshot hits the
/// disk. The count is monotonic (inserts only), so a writer that waited
/// behind a later completion finds its sequence already covered and
/// skips — queued writers collapse into the newest one, and only the
/// winner pays for the snapshot clone, taken *after* winning so it
/// includes every completion to date.
#[allow(clippy::type_complexity)] // mirrors the ckpt tuple built in run_with
fn flush_checkpoint(
    ckpt: &Option<(&Path, Mutex<BTreeMap<usize, CellResult>>, Mutex<usize>)>,
    envelope: (&str, usize, Option<ShardSpec>),
) {
    let Some((path, state, written)) = ckpt else { return };
    let _ckpt_wall = ekya_telemetry::timing::wall_span("bench.grid", "checkpoint_flush");
    let seq = state.lock().expect("checkpoint state").len();
    let mut written = written.lock().expect("checkpoint io");
    if *written < seq {
        let snapshot = state.lock().expect("checkpoint state").clone();
        *written = snapshot.len();
        write_checkpoint(path, envelope, snapshot);
    }
}

/// Atomically rewrites the checkpoint file with every completed cell so
/// far (in grid order). Failures are swallowed: checkpointing is a
/// best-effort safety net and must never poison the run itself.
fn write_checkpoint(
    path: &Path,
    (name, total_cells, shard): (&str, usize, Option<ShardSpec>),
    done: BTreeMap<usize, CellResult>,
) {
    // The snapshot is owned — move the cells into the report instead of
    // paying a second deep clone per checkpoint.
    let cells: Vec<CellResult> = done.into_values().collect();
    let failed = cells.iter().filter(|c| c.error.is_some()).count();
    let partial = HarnessReport { name: name.to_string(), total_cells, shard, failed, cells };
    let Ok(json) = serde_json::to_string_pretty(&partial) else { return };
    let tmp = path.with_extension("tmp");
    if std::fs::write(&tmp, json).is_ok() {
        let _ = std::fs::rename(&tmp, path);
    }
}

// ---------------------------------------------------------------------
// Shard merging + report files
// ---------------------------------------------------------------------

/// Combines per-shard [`HarnessReport`]s into the single report an
/// unsharded run would have written — byte-identical once serialized.
///
/// Rejects, with a descriptive error: an empty input; mismatched grid
/// names or `total_cells` (shards of different grids); an unsharded
/// report mixed into a multi-report merge; overlapping or missing cell
/// ranges; truncated shard reports (see [`coverage_order`]); and shards
/// run under inconsistent knobs (mismatched `EKYA_SEED`/`EKYA_WINDOWS`
/// on one of the machines — detected from the scenarios the cells
/// embed). A single already complete report passes through unchanged.
pub fn merge_reports(reports: &[HarnessReport]) -> Result<HarnessReport, String> {
    let first = reports.first().ok_or("no reports to merge")?;
    if let [only] = reports {
        if only.is_complete() {
            return Ok(only.clone());
        }
        if only.shard.is_none() {
            // e.g. a lone .partial.json checkpoint: never promote a
            // truncated report to the canonical output.
            return Err(format!(
                "report `{}` is unsharded but holds {} of {} cells — \
                 partial or truncated, nothing to merge it with",
                only.name,
                only.cells.len(),
                only.total_cells
            ));
        }
    }
    for r in reports {
        if r.name != first.name || r.total_cells != first.total_cells {
            return Err(format!(
                "cannot merge reports of different grids: `{}` ({} cells) vs `{}` ({} cells)",
                first.name, first.total_cells, r.name, r.total_cells
            ));
        }
    }
    let parts: Vec<(ShardSpec, usize)> = reports
        .iter()
        .map(|r| {
            r.shard
                .map(|s| (s, r.cells.len()))
                .ok_or_else(|| format!("report `{}` is not a shard (already complete)", r.name))
        })
        .collect::<Result<_, _>>()?;
    let order = coverage_order(&parts, first.total_cells)?;

    let mut cells = Vec::with_capacity(first.total_cells);
    for &i in &order {
        cells.extend(reports[i].cells.iter().cloned());
    }

    // Cross-shard knob consistency. Names and ranges tiling is not
    // enough: a machine that ran its shard with a different EKYA_SEED or
    // EKYA_WINDOWS produces a structurally valid but scientifically
    // mixed report. Within one grid every cell shares the windows axis,
    // and the seed is a pure function of (dataset, streams, windows) —
    // so any divergence inside those groups exposes the mix.
    let mut windows_axis: Option<usize> = None;
    let mut seeds: BTreeMap<(&str, usize), u64> = BTreeMap::new();
    for c in &cells {
        let w = windows_axis.get_or_insert(c.scenario.windows);
        if *w != c.scenario.windows {
            return Err(format!(
                "inconsistent shards: cell `{}` ran {} windows while others ran {} — \
                 was EKYA_WINDOWS set differently on one machine?",
                c.scenario.label(),
                c.scenario.windows,
                w
            ));
        }
        let key = (c.scenario.dataset.name(), c.scenario.streams);
        let seed = seeds.entry(key).or_insert(c.scenario.seed);
        if *seed != c.scenario.seed {
            return Err(format!(
                "inconsistent shards: cell `{}` carries seed {} while an identical workload \
                 carries {} — was EKYA_SEED set differently on one machine?",
                c.scenario.label(),
                c.scenario.seed,
                seed
            ));
        }
    }

    Ok(HarnessReport {
        name: first.name.clone(),
        total_cells: first.total_cells,
        shard: None,
        failed: reports.iter().map(|r| r.failed).sum(),
        cells,
    })
}

/// The canonical path of a (possibly sharded) grid bin's report:
/// `results/<name>.json`, with the shard suffix (`_shard0of2`) when
/// sharded — so concurrent shard runs of one bin never clobber each
/// other's output.
pub fn report_path(name: &str, shard: Option<ShardSpec>) -> PathBuf {
    let suffix = shard.map(|s| s.suffix()).unwrap_or_default();
    results_dir().join(format!("{name}{suffix}.json"))
}

/// Resolves the `EKYA_TRACE` knob for the bin named `bin`: `None` when
/// tracing is off; `Some(results/TRACE_<bin><shard_suffix>.jsonl)` for
/// `EKYA_TRACE=1` (suffixed like [`report_path`] so concurrent shard
/// runs never clobber each other's trace); any other value is the trace
/// path verbatim.
pub fn trace_path(bin: &str, shard: Option<ShardSpec>) -> Option<PathBuf> {
    let v = crate::knob::trace()?;
    if v == "1" {
        let suffix = shard.map(|s| s.suffix()).unwrap_or_default();
        Some(results_dir().join(format!("TRACE_{bin}{suffix}.jsonl")))
    } else {
        Some(PathBuf::from(v))
    }
}

/// Reads and parses a [`HarnessReport`] from `path`.
pub fn load_report(path: &Path) -> Result<HarnessReport, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    serde_json::from_str(&text).map_err(|e| format!("cannot parse {}: {e}", path.display()))
}

/// Loads the prior-cell map for a resume request: the report at `path`
/// if it parses, else the `.partial.json` checkpoint a killed run left
/// behind. A missing or unparseable prior is not an error — the run
/// simply starts fresh (a kill can interrupt the checkpoint write
/// itself, and refusing to run then would defeat resume's purpose).
fn load_prior(final_path: &Path, partial_path: &Path) -> (BTreeMap<u64, CellResult>, String) {
    for path in [final_path, partial_path] {
        match load_report(path) {
            Ok(report) => {
                let prior = report.prior_cells();
                let source = format!("{} ({} usable cells)", path.display(), prior.len());
                return (prior, source);
            }
            Err(_) if !path.exists() => continue,
            Err(e) => eprintln!("[resume: ignoring unusable prior — {e}]"),
        }
    }
    (BTreeMap::new(), "nothing usable — starting fresh".to_string())
}

/// The environment-driven front door for grid bins: applies the
/// `EKYA_SHARD` slice, resumes from a prior report when `EKYA_RESUME` is
/// set, checkpoints every completed cell, saves the final report to
/// [`report_path`], and removes the checkpoint on success.
///
/// Returns the run so the bin can print tables (gated on
/// [`HarnessReport::is_complete`]) and stats.
pub fn run_grid_bin(name: &str, grid: &Grid, knobs: &Knobs) -> GridRun {
    run_grid_bin_with(name, grid, knobs, |sc| run_scenario(sc, grid.holdout_seed(sc.dataset)))
}

/// [`run_grid_bin`] with a custom cell evaluator (see
/// [`GridExec::run_with`]) — the front door for grid bins whose cells
/// are not plain simulations, e.g. fig08's trace replay.
///
/// Also honors `EKYA_ORCH_CRASH_AFTER=n` (fault injection: exit after
/// `n` completed cells), which the `ekya-orchestrate` supervisor sets on
/// a shard's first attempt to prove retry-with-resume converges.
pub fn run_grid_bin_with<F>(name: &str, grid: &Grid, knobs: &Knobs, eval: F) -> GridRun
where
    F: Fn(&Scenario) -> CellResult + Sync,
{
    let shard = knobs.shard();
    let out = report_path(name, shard);
    let partial = out.with_extension("partial.json");

    // Telemetry session for the whole bin run. Grid bins flush once at
    // the end: an injected crash loses the trace but never the cell
    // checkpoint (the serving daemon, by contrast, flushes per window).
    let traced = trace_path(name, shard);
    if let Some(path) = &traced {
        ekya_telemetry::start(Some(path.clone()));
        eprintln!("[{name}: EKYA_TRACE → {}]", path.display());
    }

    let prior = match knobs.resume() {
        None => BTreeMap::new(),
        Some("1") => {
            let (prior, source) = load_prior(&out, &partial);
            eprintln!("[{name}: EKYA_RESUME=1 — prior from {source}]");
            prior
        }
        Some(path) => {
            let path = PathBuf::from(path);
            let report = load_report(&path)
                .unwrap_or_else(|e| panic!("EKYA_RESUME points at an unusable report: {e}"));
            let prior = report.prior_cells();
            eprintln!(
                "[{name}: EKYA_RESUME — prior from {} ({} usable cells)]",
                path.display(),
                prior.len()
            );
            prior
        }
    };

    let total = grid.cells().len();
    let slice = shard.map_or(0..total, |s| s.range(total));
    eprintln!(
        "[{name}: {total} cells total{}; {} to run across {} workers]",
        shard
            .map(|s| format!("; shard {s} → cells {}..{}", slice.start, slice.end))
            .unwrap_or_default(),
        slice.len(),
        knobs.workers(),
    );

    // The checkpoint lives under results/ — create it *before* the run,
    // or every per-cell checkpoint write on a fresh checkout fails
    // silently and a killed first run has nothing to resume from.
    let _ = std::fs::create_dir_all(results_dir());
    let crash_after = crate::knob::orch_crash_after();
    let run = GridExec::new(name, knobs.workers())
        .shard(shard)
        .prior(prior)
        .checkpoint(Some(partial.clone()))
        .crash_after(crash_after)
        .batch(crate::knob::batch())
        .run_with(grid, eval);

    if run.stats.resumed > 0 {
        eprintln!("[{name}: resumed {} cells, executed {}]", run.stats.resumed, run.stats.executed);
    }
    // Write to the same `out` the resume/checkpoint paths were derived
    // from; remove the checkpoint only once the final report has landed.
    match crate::write_json(&out, &run.report) {
        Ok(()) => {
            println!("\n[results written to {}]", out.display());
            let _ = std::fs::remove_file(&partial);
        }
        Err(e) => eprintln!("failed to save {name}: {e}"),
    }
    if let Some(path) = &traced {
        match ekya_telemetry::flush() {
            Ok(()) => eprintln!("[{name}: trace written to {}]", path.display()),
            Err(e) => eprintln!("[{name}: trace flush failed: {e}]"),
        }
        ekya_telemetry::stop();
    }
    run
}

// ---------------------------------------------------------------------
// Perf trajectory
// ---------------------------------------------------------------------

/// Machine-readable harness throughput record. `harness_bench` measures
/// one record per gated grid (the quick fig06 scenario grid and the
/// quick fig03 config sweep) and appends them — as one
/// [`BenchSeriesEntry`] — to `results/BENCH_series.json`; CI's perf gate
/// (`ci/check_bench.sh`) compares each record's `cells_per_sec` against
/// the matching entry of the committed baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchRecord {
    /// Benchmark identity (grid name).
    pub name: String,
    /// Cells in the measured grid.
    pub cells: usize,
    /// Worker threads in the parallel run.
    pub workers: usize,
    /// Serial (1-worker) wall-clock seconds.
    pub serial_wall_secs: f64,
    /// Parallel wall-clock seconds.
    pub parallel_wall_secs: f64,
    /// `serial_wall_secs / parallel_wall_secs`.
    pub speedup: f64,
    /// Parallel throughput in cells per second — the gated metric.
    pub cells_per_sec: f64,
}

/// One run of `harness_bench` in the perf trajectory: which revision was
/// measured and the records it produced. `results/BENCH_series.json`
/// holds the full history (a JSON array of these, appended to — never
/// overwritten), so throughput over time can be plotted per machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchSeriesEntry {
    /// `git describe --always --dirty` of the measured tree (or
    /// `"unknown"` outside a git checkout).
    pub git: String,
    /// One record per measured grid, `fig06_quick_grid` first.
    pub records: Vec<BenchRecord>,
}

/// The perf-trajectory file: `results/BENCH_series.json`.
pub fn bench_series_path() -> PathBuf {
    results_dir().join("BENCH_series.json")
}

/// Appends one run's records to the perf trajectory (stamped with
/// [`git_describe`]) and returns the series path. Refuses to clobber an
/// unparseable series file — history is the point of the series.
pub fn append_bench_series(records: Vec<BenchRecord>) -> Result<PathBuf, String> {
    let path = bench_series_path();
    let mut series: Vec<BenchSeriesEntry> = match std::fs::read_to_string(&path) {
        // An empty (e.g. freshly `touch`ed) file is a fresh series, not
        // a corrupt one.
        Ok(text) if text.trim().is_empty() => Vec::new(),
        Ok(text) => serde_json::from_str(&text).map_err(|e| {
            format!("cannot parse {}: {e} — move it aside to start a fresh series", path.display())
        })?,
        Err(_) => Vec::new(),
    };
    series.push(BenchSeriesEntry { git: git_describe(), records });
    crate::write_json(&path, &series)?;
    Ok(path)
}

/// The latest entry of a perf-trajectory file — what the perf gate
/// compares against the committed baseline.
pub fn latest_bench_entry(path: &Path) -> Result<BenchSeriesEntry, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    if text.trim().is_empty() {
        return Err(format!("{} is empty — no measurements recorded yet", path.display()));
    }
    let series: Vec<BenchSeriesEntry> = serde_json::from_str(&text)
        .map_err(|e| format!("cannot parse {} as a bench series: {e}", path.display()))?;
    series.last().cloned().ok_or_else(|| format!("{} holds no entries", path.display()))
}

/// `git describe --always --dirty` of the workspace, `"unknown"` when
/// git is unavailable — the revision stamp of a [`BenchSeriesEntry`].
pub fn git_describe() -> String {
    let root = results_dir().parent().map(PathBuf::from).unwrap_or_else(|| PathBuf::from("."));
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .current_dir(root)
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knobs_fall_back_to_defaults() {
        // Not set in the test environment → per-bin defaults apply.
        let knobs = Knobs {
            windows: None,
            streams: None,
            seed: 42,
            quick: false,
            workers: 3,
            shard: None,
            resume: None,
        };
        assert_eq!(knobs.windows(6), 6);
        assert_eq!(knobs.streams(10), 10);
        assert_eq!(knobs.seed(), 42);
        assert!(!knobs.quick());
        assert_eq!(knobs.workers(), 3);
        assert_eq!(knobs.shard(), None);
        assert_eq!(knobs.resume(), None);
    }

    /// A fabricated cell (no simulation) for merge/prior unit tests.
    fn fake_cell(streams: usize, error: Option<&str>) -> CellResult {
        use ekya_baselines::PolicySpec;
        use ekya_video::DatasetKind;
        let scenario = Scenario {
            dataset: DatasetKind::Waymo,
            streams,
            gpus: 1.0,
            windows: 2,
            policy: PolicySpec::Ekya,
            seed: 7,
        };
        CellResult {
            policy: "Ekya".into(),
            scenario,
            mean_accuracy: 0.5,
            retrain_rate: 0.5,
            report: None,
            error: error.map(str::to_string),
        }
    }

    #[test]
    fn prior_cells_skips_poisoned_cells() {
        let report = HarnessReport {
            name: "t".into(),
            total_cells: 2,
            shard: None,
            failed: 1,
            cells: vec![fake_cell(1, None), fake_cell(2, Some("boom"))],
        };
        let prior = report.prior_cells();
        // Only the healthy cell is resumable; the poisoned one re-runs.
        assert_eq!(prior.len(), 1);
        let key = fake_cell(1, None).scenario.fingerprint();
        assert!(prior.contains_key(&key));
    }

    #[test]
    fn merge_rejects_mismatched_grids_and_unsharded_inputs() {
        let shard0 = HarnessReport {
            name: "a".into(),
            total_cells: 2,
            shard: Some(ShardSpec { index: 0, count: 2 }),
            failed: 0,
            cells: vec![fake_cell(1, None)],
        };
        let other_name = HarnessReport { name: "b".into(), ..shard0.clone() };
        let err = merge_reports(&[shard0.clone(), other_name]).unwrap_err();
        assert!(err.contains("different grids"), "{err}");

        let unsharded = HarnessReport { shard: None, ..shard0.clone() };
        let err = merge_reports(&[shard0.clone(), unsharded.clone()]).unwrap_err();
        assert!(err.contains("not a shard"), "{err}");

        // A lone unsharded report must be complete to pass through — a
        // truncated checkpoint is never promoted to canonical output.
        let err = merge_reports(std::slice::from_ref(&unsharded)).unwrap_err();
        assert!(err.contains("partial or truncated"), "{err}");
        let complete = HarnessReport {
            shard: None,
            cells: vec![fake_cell(1, None), fake_cell(2, None)],
            ..shard0.clone()
        };
        assert_eq!(merge_reports(std::slice::from_ref(&complete)).unwrap(), complete);
        assert!(merge_reports(&[]).is_err());
    }

    #[test]
    fn merge_rejects_shards_run_under_different_knobs() {
        let shard = |index, cell: CellResult| HarnessReport {
            name: "t".into(),
            total_cells: 2,
            shard: Some(ShardSpec { index, count: 2 }),
            failed: 0,
            cells: vec![cell],
        };
        // Same workload coordinates, different seed: one machine forgot
        // the EKYA_SEED override.
        let mut reseeded = fake_cell(1, None);
        reseeded.scenario.seed = 99;
        let err = merge_reports(&[shard(0, fake_cell(1, None)), shard(1, reseeded)]).unwrap_err();
        assert!(err.contains("EKYA_SEED"), "{err}");
        // Different windows axis: one machine forgot EKYA_WINDOWS.
        let mut rewindowed = fake_cell(2, None);
        rewindowed.scenario.windows = 9;
        let err = merge_reports(&[shard(0, fake_cell(1, None)), shard(1, rewindowed)]).unwrap_err();
        assert!(err.contains("EKYA_WINDOWS"), "{err}");
        // Consistent shards still merge.
        assert!(
            merge_reports(&[shard(0, fake_cell(1, None)), shard(1, fake_cell(2, None))]).is_ok()
        );
    }

    #[test]
    fn run_parallel_preserves_item_order() {
        let items: Vec<u64> = (0..64).collect();
        for workers in [1, 4] {
            let out = run_parallel(items.clone(), workers, |i, x| x * 2 + i as u64);
            let values: Vec<u64> = out.into_iter().map(|r| r.unwrap()).collect();
            let expected: Vec<u64> = (0..64).map(|x| x * 3).collect();
            assert_eq!(values, expected, "workers={workers}");
        }
    }

    #[test]
    fn run_parallel_isolates_panics() {
        let out = run_parallel((0..8).collect::<Vec<i32>>(), 4, |_, x| {
            assert!(x != 5, "poisoned cell {x}");
            x + 1
        });
        for (i, r) in out.iter().enumerate() {
            if i == 5 {
                let msg = r.as_ref().unwrap_err();
                assert!(msg.contains("poisoned cell 5"), "unexpected message: {msg}");
            } else {
                assert_eq!(*r.as_ref().unwrap(), i as i32 + 1);
            }
        }
    }

    #[test]
    fn run_parallel_empty_and_oversubscribed() {
        assert!(run_parallel(Vec::<u8>::new(), 8, |_, x| x).is_empty());
        // More workers than items clamps to the item count.
        let out = run_parallel(vec![1, 2], 16, |_, x| x);
        assert_eq!(out.len(), 2);
    }
}
