//! Parallel experiment harness: env knobs, a crossbeam work-stealing
//! worker pool with panic isolation, and structured grid results.
//!
//! Grid cells are independent simulations, so the harness fans them out
//! across threads and still produces **byte-identical** output to a
//! serial run: every cell's RNG seed is a pure function of the cell
//! itself (see [`crate::grid`]), results are written back by cell index,
//! and wall-clock timing lives only at the report level. A cell that
//! panics is isolated — its slot carries the panic message and every
//! other cell completes normally.

use crate::grid::{Grid, Scenario};
use crate::save_json;
use ekya_baselines::PolicyBuildCtx;
use ekya_sim::{run_windows, RunReport, RunnerConfig};
use ekya_video::StreamSet;
use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;
use std::time::Instant;

// ---------------------------------------------------------------------
// Environment knobs
// ---------------------------------------------------------------------

/// The environment knobs shared by every `ekya-bench` binary, parsed in
/// exactly one place:
///
/// * `EKYA_WINDOWS` — retraining windows (per-bin default);
/// * `EKYA_STREAMS` — concurrent streams (per-bin default);
/// * `EKYA_SEED` — base RNG seed (default 42);
/// * `EKYA_QUICK=1` — shrink sweeps for a fast smoke run;
/// * `EKYA_WORKERS` — harness worker threads (default: available
///   hardware parallelism).
#[derive(Debug, Clone, Copy)]
pub struct Knobs {
    windows: Option<usize>,
    streams: Option<usize>,
    seed: u64,
    quick: bool,
    workers: usize,
}

impl Knobs {
    /// Reads every knob from the environment.
    pub fn from_env() -> Self {
        fn parse<T: std::str::FromStr>(name: &str) -> Option<T> {
            std::env::var(name).ok().and_then(|v| v.parse().ok())
        }
        Self {
            windows: parse("EKYA_WINDOWS"),
            streams: parse("EKYA_STREAMS"),
            seed: parse("EKYA_SEED").unwrap_or(42),
            quick: std::env::var("EKYA_QUICK").map(|v| v == "1").unwrap_or(false),
            workers: parse("EKYA_WORKERS").unwrap_or_else(default_workers),
        }
    }

    /// Number of retraining windows (`EKYA_WINDOWS`, else the bin's
    /// default).
    pub fn windows(&self, default: usize) -> usize {
        self.windows.unwrap_or(default)
    }

    /// Number of concurrent streams (`EKYA_STREAMS`, else the bin's
    /// default).
    pub fn streams(&self, default: usize) -> usize {
        self.streams.unwrap_or(default)
    }

    /// Base RNG seed (`EKYA_SEED`, default 42).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// True when `EKYA_QUICK=1`.
    pub fn quick(&self) -> bool {
        self.quick
    }

    /// Worker threads for the harness pool (`EKYA_WORKERS`, default:
    /// hardware parallelism).
    pub fn workers(&self) -> usize {
        self.workers.max(1)
    }
}

/// Hardware parallelism, floored at one.
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

// ---------------------------------------------------------------------
// Work-stealing fan-out
// ---------------------------------------------------------------------

/// Runs `f` over every item on a work-stealing pool of `workers`
/// threads and returns the results **in item order**.
///
/// Items are dealt round-robin into per-worker FIFO deques; a worker
/// that drains its own deque steals from its siblings, so stragglers
/// (cells vary wildly in cost — more streams, more windows) do not idle
/// the rest of the pool. With `workers == 1` everything runs inline on
/// the calling thread.
///
/// Each item is evaluated under [`catch_unwind`]: a panicking item
/// yields `Err(panic message)` in its slot and no other item is
/// affected. Results depend only on `(index, item)`, never on execution
/// order, so serial and parallel runs agree exactly.
pub fn run_parallel<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<Result<R, String>>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);
    if workers == 1 {
        return items.into_iter().enumerate().map(|(i, item)| guard(&f, i, item)).collect();
    }

    let queues: Vec<crossbeam::deque::Worker<(usize, T)>> =
        (0..workers).map(|_| crossbeam::deque::Worker::new_fifo()).collect();
    let stealers: Vec<crossbeam::deque::Stealer<(usize, T)>> =
        queues.iter().map(|q| q.stealer()).collect();
    for (i, item) in items.into_iter().enumerate() {
        queues[i % workers].push((i, item));
    }

    let slots: Mutex<Vec<Option<Result<R, String>>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|scope| {
        for (w, local) in queues.into_iter().enumerate() {
            let stealers = &stealers;
            let slots = &slots;
            let f = &f;
            scope.spawn(move || {
                loop {
                    // Own deque first, then steal round-robin from the
                    // next sibling onwards. No task spawns new tasks, so
                    // an all-empty sweep means the pool is drained.
                    let task = local.pop().or_else(|| {
                        (1..stealers.len())
                            .map(|k| &stealers[(w + k) % stealers.len()])
                            .find_map(steal_retrying)
                    });
                    let Some((i, item)) = task else { break };
                    let result = guard(f, i, item);
                    slots
                        .lock()
                        .expect("result slots")
                        .get_mut(i)
                        .expect("slot index")
                        .replace(result);
                }
            });
        }
    });
    slots
        .into_inner()
        .expect("result slots")
        .into_iter()
        .map(|slot| slot.expect("every cell ran to completion"))
        .collect()
}

/// Steals from a victim, retrying on `Steal::Retry` (a lost race is not
/// an empty deque — treating it as one could leave a queued task behind
/// and deadlock the order-indexed result collection).
fn steal_retrying<T>(stealer: &crossbeam::deque::Stealer<T>) -> Option<T> {
    loop {
        match stealer.steal() {
            crossbeam::deque::Steal::Success(task) => return Some(task),
            crossbeam::deque::Steal::Empty => return None,
            crossbeam::deque::Steal::Retry => continue,
        }
    }
}

/// Evaluates one item under panic isolation.
fn guard<T, R, F: Fn(usize, T) -> R>(f: &F, i: usize, item: T) -> Result<R, String> {
    catch_unwind(AssertUnwindSafe(|| f(i, item))).map_err(|payload| {
        payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "cell panicked (non-string payload)".to_string())
    })
}

// ---------------------------------------------------------------------
// Grid execution
// ---------------------------------------------------------------------

/// The structured outcome of one grid cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellResult {
    /// The cell that produced this result.
    pub scenario: Scenario,
    /// Policy report name (matches figure legends).
    pub policy: String,
    /// Headline metric: accuracy averaged over windows and streams.
    pub mean_accuracy: f64,
    /// Fraction of stream-windows in which retraining ran.
    pub retrain_rate: f64,
    /// Full per-window report (`None` when the cell failed).
    pub report: Option<RunReport>,
    /// Panic message when the cell was poisoned.
    pub error: Option<String>,
}

/// The outcome of a full grid run, serialized to `results/*.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HarnessReport {
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock seconds for the whole grid.
    pub wall_secs: f64,
    /// Throughput: completed cells per wall-clock second.
    pub cells_per_sec: f64,
    /// Number of poisoned cells.
    pub failed: usize,
    /// Per-cell results, in grid enumeration order.
    pub cells: Vec<CellResult>,
}

impl HarnessReport {
    /// The mean accuracy of the first cell matching `pred`, or `None`.
    pub fn accuracy_where<F: Fn(&CellResult) -> bool>(&self, pred: F) -> Option<f64> {
        self.cells.iter().find(|c| c.error.is_none() && pred(c)).map(|c| c.mean_accuracy)
    }
}

/// Runs one scenario end to end: generate its streams, build its policy
/// (inside the calling thread), execute the windows. This is the default
/// cell evaluator; bins with bespoke cells use [`run_parallel`] directly.
pub fn run_scenario(sc: &Scenario, holdout_seed: u64) -> CellResult {
    let streams = StreamSet::generate(sc.dataset, sc.streams, sc.windows, sc.seed);
    let cfg = RunnerConfig { total_gpus: sc.gpus, seed: sc.seed, ..RunnerConfig::default() };
    let ctx = PolicyBuildCtx::new(sc.dataset, sc.gpus, holdout_seed);
    let mut policy = sc.policy.build(&ctx);
    let report = run_windows(policy.as_mut(), &streams, &cfg, sc.windows);
    CellResult {
        scenario: sc.clone(),
        policy: report.policy.clone(),
        mean_accuracy: report.mean_accuracy(),
        retrain_rate: report.retrain_rate(),
        report: Some(report),
        error: None,
    }
}

/// Fans a grid out across `workers` threads and collects every cell.
pub fn run_grid(grid: &Grid, workers: usize) -> HarnessReport {
    let cells = grid.cells();
    let started = Instant::now();
    let results = run_parallel(cells, workers, |_, sc: Scenario| {
        let holdout = grid.holdout_seed(sc.dataset);
        run_scenario(&sc, holdout)
    });
    let wall_secs = started.elapsed().as_secs_f64();
    finish_report(results, grid.cells(), workers, wall_secs)
}

/// Assembles a [`HarnessReport`], backfilling poisoned slots from the
/// original cell list.
fn finish_report(
    results: Vec<Result<CellResult, String>>,
    cells: Vec<Scenario>,
    workers: usize,
    wall_secs: f64,
) -> HarnessReport {
    let mut failed = 0;
    let cells: Vec<CellResult> = results
        .into_iter()
        .zip(cells)
        .map(|(r, sc)| match r {
            Ok(cell) => cell,
            Err(message) => {
                failed += 1;
                CellResult {
                    policy: sc.policy.label(),
                    scenario: sc,
                    mean_accuracy: 0.0,
                    retrain_rate: 0.0,
                    report: None,
                    error: Some(message),
                }
            }
        })
        .collect();
    let n = cells.len();
    HarnessReport {
        workers,
        wall_secs,
        cells_per_sec: if wall_secs > 0.0 { n as f64 / wall_secs } else { 0.0 },
        failed,
        cells,
    }
}

// ---------------------------------------------------------------------
// Perf trajectory
// ---------------------------------------------------------------------

/// Machine-readable harness throughput record, written to
/// `results/BENCH_harness.json`. CI's perf gate (`ci/check_bench.sh`)
/// compares `cells_per_sec` against the committed baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchRecord {
    /// Benchmark identity (grid name).
    pub name: String,
    /// Cells in the measured grid.
    pub cells: usize,
    /// Worker threads in the parallel run.
    pub workers: usize,
    /// Serial (1-worker) wall-clock seconds.
    pub serial_wall_secs: f64,
    /// Parallel wall-clock seconds.
    pub parallel_wall_secs: f64,
    /// `serial_wall_secs / parallel_wall_secs`.
    pub speedup: f64,
    /// Parallel throughput in cells per second — the gated metric.
    pub cells_per_sec: f64,
}

/// Writes the throughput record to `results/BENCH_harness.json`.
pub fn save_bench_record(record: &BenchRecord) {
    save_json("BENCH_harness", record);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knobs_fall_back_to_defaults() {
        // Not set in the test environment → per-bin defaults apply.
        let knobs = Knobs { windows: None, streams: None, seed: 42, quick: false, workers: 3 };
        assert_eq!(knobs.windows(6), 6);
        assert_eq!(knobs.streams(10), 10);
        assert_eq!(knobs.seed(), 42);
        assert!(!knobs.quick());
        assert_eq!(knobs.workers(), 3);
    }

    #[test]
    fn run_parallel_preserves_item_order() {
        let items: Vec<u64> = (0..64).collect();
        for workers in [1, 4] {
            let out = run_parallel(items.clone(), workers, |i, x| x * 2 + i as u64);
            let values: Vec<u64> = out.into_iter().map(|r| r.unwrap()).collect();
            let expected: Vec<u64> = (0..64).map(|x| x * 3).collect();
            assert_eq!(values, expected, "workers={workers}");
        }
    }

    #[test]
    fn run_parallel_isolates_panics() {
        let out = run_parallel((0..8).collect::<Vec<i32>>(), 4, |_, x| {
            assert!(x != 5, "poisoned cell {x}");
            x + 1
        });
        for (i, r) in out.iter().enumerate() {
            if i == 5 {
                let msg = r.as_ref().unwrap_err();
                assert!(msg.contains("poisoned cell 5"), "unexpected message: {msg}");
            } else {
                assert_eq!(*r.as_ref().unwrap(), i as i32 + 1);
            }
        }
    }

    #[test]
    fn run_parallel_empty_and_oversubscribed() {
        assert!(run_parallel(Vec::<u8>::new(), 8, |_, x| x).is_empty());
        // More workers than items clamps to the item count.
        let out = run_parallel(vec![1, 2], 16, |_, x| x);
        assert_eq!(out.len(), 2);
    }
}
