//! Figure 2 — the motivation experiment.
//!
//! (a) Class-frequency distribution across retraining windows of one
//!     Cityscapes-like stream (the paper's Fig 2a shows bicycles vanishing
//!     in windows 6-7 and the person share swinging).
//! (b) Inference accuracy over the last five windows under three training
//!     options: continuous retraining, trained once on the first five
//!     windows, and trained once on other cities. The paper reports
//!     continuous retraining winning by up to 22%.
//!
//! Run: `cargo run --release -p ekya-bench --bin fig02_motivation`

use ekya_baselines::run_fig2b;
use ekya_bench::{f3, save_json, Knobs, Table};
use ekya_nn::cost::CostModel;
use ekya_video::{DatasetKind, DatasetSpec, ObjectClass, VideoDataset};
use serde::Serialize;

#[derive(Serialize)]
struct Fig02Output {
    class_distributions: Vec<Vec<f64>>,
    windows: Vec<usize>,
    continuous: Vec<f64>,
    once_first_half: Vec<f64>,
    other_streams: Vec<f64>,
    max_advantage: f64,
    mean_advantage: f64,
}

fn main() {
    let knobs = Knobs::from_env();
    knobs.warn_if_sharded("fig02_motivation");
    knobs.warn_if_resume("fig02_motivation");
    let num_windows = knobs.windows(10);
    let seed = knobs.seed();

    // ---- (a) class distribution over windows ----
    let ds = VideoDataset::generate(DatasetSpec::new(DatasetKind::Cityscapes, num_windows, seed));
    let mut ta = Table::new(
        "Fig 2a — class distribution per retraining window (Cityscapes-like stream)",
        &["window", "bicycle", "bus", "car", "motorcycle", "person", "truck"],
    );
    for w in &ds.windows {
        let mut row = vec![w.index.to_string()];
        row.extend(w.class_dist.iter().map(|p| f3(*p)));
        ta.row(row);
    }
    ta.print();
    let _ = ObjectClass::ALL; // label order documented by the type

    // ---- (b) training options ----
    let r = run_fig2b(DatasetKind::Cityscapes, num_windows, seed, &CostModel::default());
    let mut tb = Table::new(
        "Fig 2b — inference accuracy of training options (last half of the stream)",
        &["window", "continuous", "trained once (first half)", "trained on other cities"],
    );
    for (i, w) in r.windows.iter().enumerate() {
        tb.row(vec![
            w.to_string(),
            f3(r.continuous[i]),
            f3(r.once_first_half[i]),
            f3(r.other_streams[i]),
        ]);
    }
    tb.print();
    println!(
        "\ncontinuous-retraining advantage: up to {:+.1}% (mean {:+.1}%) — paper reports up to 22%",
        r.max_advantage() * 100.0,
        r.mean_advantage() * 100.0
    );

    save_json(
        "fig02_motivation",
        &Fig02Output {
            class_distributions: ds.windows.iter().map(|w| w.class_dist.clone()).collect(),
            windows: r.windows.clone(),
            continuous: r.continuous.clone(),
            once_first_half: r.once_first_half.clone(),
            other_streams: r.other_streams.clone(),
            max_advantage: r.max_advantage(),
            mean_advantage: r.mean_advantage(),
        },
    );
}
