//! Figure 4 / Table 1 — the illustrative scheduling example (§3.2).
//!
//! Two video streams (A, B), 3 GPUs, two 120-second retraining windows,
//! `a_MIN` = 40%. Table 1 hand-specifies each configuration's
//! post-retraining accuracy and GPU cost. The uniform scheduler splits
//! GPUs evenly and always picks the most accurate configuration (Cfg1*);
//! the accuracy-optimised scheduler picks cheaper configurations
//! (Cfg2*), prioritises the stream with the larger gain, and lands at
//! ~73% average inference accuracy vs the uniform scheduler's ~56%.
//!
//! Run: `cargo run --release -p ekya-bench --bin fig04_example`

use ekya_bench::{f3, save_json, Table};
use ekya_core::{
    optimal_schedule, pick_configs_fixed, thief_schedule, EstimateParams, InferenceConfig,
    InferenceProfile, RetrainChoice, RetrainConfig, RetrainProfile, SchedulerParams, StreamInput,
};
use ekya_nn::fit::LearningCurve;
use ekya_video::StreamId;
use serde::Serialize;

/// Builds a Table 1 profile: post accuracy + GPU-seconds.
fn profile(end_accuracy: f64, gpu_seconds: f64) -> RetrainProfile {
    RetrainProfile {
        config: RetrainConfig {
            epochs: 1,
            batch_size: 32,
            last_layer_neurons: 16,
            layers_trained: 3,
            data_fraction: 1.0,
        },
        curve: LearningCurve::flat(end_accuracy),
        gpu_seconds_per_epoch: gpu_seconds,
    }
}

/// Inference ladder for the example: the streams need 1.5 GPUs for
/// full-quality inference; lower allocations force frame subsampling
/// (accuracy factor < 1), reproducing the dips of Fig 4c/4d.
fn inference_ladder() -> Vec<InferenceProfile> {
    let ladder = [
        (1.5, 1.00),
        (1.2, 0.90),
        (0.9, 0.80),
        (0.75, 0.75),
        (0.5, 0.62),
        (0.25, 0.50),
        (0.1, 0.42),
    ];
    ladder
        .iter()
        .enumerate()
        .map(|(i, &(demand, af))| InferenceProfile {
            config: InferenceConfig { frame_sampling: 1.0 / (i + 1) as f64, resolution: 1.0 },
            accuracy_factor: af,
            gpu_demand: demand,
        })
        .collect()
}

#[derive(Serialize)]
struct Fig04Output {
    uniform_avg: f64,
    thief_avg: f64,
    optimal_avg: f64,
    uniform_windows: Vec<f64>,
    thief_windows: Vec<f64>,
    optimal_windows: Vec<f64>,
}

fn main() {
    let window_secs = 120.0;
    let params = SchedulerParams {
        granularity: 0.25,
        delta: 0.25,
        estimate: EstimateParams { a_min: 0.4, checkpoint_every_k: None },
        // The table reproduces the paper's *within-window* averages
        // (uniform 56%, optimal 73%); the lookahead extension would make
        // the printed numbers incomparable to those references.
        lookahead_windows: 0.0,
        ..SchedulerParams::new(3.0)
    };
    let infer = inference_ladder();

    // Table 1: per-window configuration menus [Cfg1, Cfg2] per stream.
    let window_profiles: [[Vec<RetrainProfile>; 2]; 2] = [
        // Window 1: A starts at 65%, B at 50%.
        [
            vec![profile(0.75, 85.0), profile(0.70, 65.0)],
            vec![profile(0.90, 80.0), profile(0.85, 50.0)],
        ],
        // Window 2.
        [
            vec![profile(0.95, 90.0), profile(0.90, 40.0)],
            vec![profile(0.98, 80.0), profile(0.90, 70.0)],
        ],
    ];
    let start_accuracies = [0.65, 0.50];

    let mut serving = [
        start_accuracies, // uniform
        start_accuracies, // thief
        start_accuracies, // optimal
    ];
    let mut window_avgs: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    let mut chosen: [Vec<String>; 3] = [Vec::new(), Vec::new(), Vec::new()];

    for (w, profiles) in window_profiles.iter().enumerate() {
        // Uniform: 1.5 GPUs per stream, split 0.75/0.75, always Cfg1.
        let cfg1_only: Vec<Vec<RetrainProfile>> =
            (0..2).map(|s| vec![profiles[s][0].clone()]).collect();
        fn mk_inputs<'a>(
            profiles: &'a [Vec<RetrainProfile>],
            infer: &'a [InferenceProfile],
            serving: &[f64; 2],
        ) -> Vec<StreamInput<'a>> {
            (0..2)
                .map(|s| StreamInput {
                    id: StreamId(s as u32),
                    serving_accuracy: serving[s],
                    retrain_profiles: &profiles[s],
                    infer_profiles: infer,
                    in_progress: None,
                })
                .collect()
        }

        let uniform_inputs = mk_inputs(&cfg1_only, &infer, &serving[0]);
        let uniform = pick_configs_fixed(
            &uniform_inputs,
            &[(0.75, 0.75), (0.75, 0.75)],
            window_secs,
            &params,
        );
        window_avgs[0].push(uniform.avg_accuracy);
        for d in &uniform.decisions {
            serving[0][d.id.0 as usize] = d.estimate.end_model_accuracy;
            chosen[0].push(format!("w{w} {}: {:?}", d.id, d.retrain));
        }

        let all: Vec<Vec<RetrainProfile>> = (0..2).map(|s| profiles[s].clone()).collect();

        let thief_inputs = mk_inputs(&all, &infer, &serving[1]);
        let thief = thief_schedule(&thief_inputs, window_secs, &params);
        window_avgs[1].push(thief.avg_accuracy);
        for d in &thief.decisions {
            serving[1][d.id.0 as usize] = d.estimate.end_model_accuracy;
            chosen[1].push(format!(
                "w{w} {}: {:?} (train {:.2} GPU, infer {:.2} GPU)",
                d.id, d.retrain, d.train_gpus, d.infer_gpus
            ));
        }

        let optimal_inputs = mk_inputs(&all, &infer, &serving[2]);
        let optimal = optimal_schedule(&optimal_inputs, window_secs, &params);
        window_avgs[2].push(optimal.avg_accuracy);
        for d in &optimal.decisions {
            serving[2][d.id.0 as usize] = d.estimate.end_model_accuracy;
            chosen[2].push(format!(
                "w{w} {}: {:?} (train {:.2} GPU, infer {:.2} GPU)",
                d.id, d.retrain, d.train_gpus, d.infer_gpus
            ));
        }
    }

    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let mut t = Table::new(
        "Fig 4 — uniform vs thief vs accuracy-optimal on the Table 1 example",
        &["scheduler", "window 1", "window 2", "average"],
    );
    for (name, w) in [
        ("Uniform (Cfg1, even split)", &window_avgs[0]),
        ("Thief scheduler", &window_avgs[1]),
        ("Accuracy-optimal (knapsack)", &window_avgs[2]),
    ] {
        t.row(vec![name.to_string(), f3(w[0]), f3(w[1]), f3(avg(w))]);
    }
    t.print();

    println!("\nDecisions (thief):");
    for line in &chosen[1] {
        println!("  {line}");
    }
    println!("\nDecisions (optimal):");
    for line in &chosen[2] {
        println!("  {line}");
    }
    println!("\nPaper's numbers for this example: uniform 56%, accuracy-optimised 73%.");
    // Sanity guards: the smart schedulers must beat uniform, and the
    // optimal schedule bounds the heuristic.
    assert!(avg(&window_avgs[1]) > avg(&window_avgs[0]), "thief must beat uniform");
    assert!(avg(&window_avgs[2]) >= avg(&window_avgs[1]) - 1e-9, "optimal >= thief");
    let _ = RetrainChoice::Skip; // (decision variants are printed above)

    save_json(
        "fig04_example",
        &Fig04Output {
            uniform_avg: avg(&window_avgs[0]),
            thief_avg: avg(&window_avgs[1]),
            optimal_avg: avg(&window_avgs[2]),
            uniform_windows: window_avgs[0].clone(),
            thief_windows: window_avgs[1].clone(),
            optimal_windows: window_avgs[2].clone(),
        },
    );
}
