//! Figure 3 — retraining-configuration tradeoffs.
//!
//! (a) Accuracy vs GPU-seconds when varying two example hyperparameters
//!     (data fraction and layers trained), others held constant.
//! (b) The resource-accuracy scatter of the full configuration grid with
//!     its Pareto boundary; the paper observes a ~200x spread in GPU cost
//!     and that higher cost does not imply higher accuracy.
//!
//! The exhaustive profiling rides the harness's [`run_parallel`] pool
//! with **per-config seeding** (`base_seed ^ fnv1a("cfg|" + label)`), so
//! each configuration's numbers are independent of which others are
//! profiled alongside it — which is what lets `EKYA_SHARD=i/N` split the
//! configuration grid across processes. A sharded run profiles only its
//! slice and writes a `ConfigShard` envelope
//! (`results/fig03_configs_shardIofN.json`); merge the shards with
//! `grid_merge` to recover the exact unsharded point list (the Pareto
//! frontier is a whole-grid property, computed at merge).
//!
//! Run: `cargo run --release -p ekya-bench --bin fig03_configs`
//! Knobs: EKYA_SEED, EKYA_WORKERS, EKYA_SHARD
//!        (see crates/ekya-bench/README.md).

use ekya_bench::{
    f1, f3, fnv1a, pareto_flags, run_parallel, save_json, ConfigPoint, ConfigShard, Knobs, Table,
};
use ekya_core::{extended_retrain_grid, profile_config, RetrainConfig, TrainHyper};
use ekya_nn::cost::CostModel;
use ekya_nn::golden::{distill_labels, OracleTeacher};
use ekya_nn::mlp::{Mlp, MlpArch};
use ekya_video::{DatasetKind, DatasetSpec, VideoDataset};

fn main() {
    let knobs = Knobs::from_env();
    // The config sweep shards (per-config seeding) but is cheap enough
    // that it does not checkpoint — say so rather than silently ignore.
    knobs.warn_if_resume("fig03_configs");
    let seed = knobs.seed();
    let cost = CostModel::default();
    let ds = VideoDataset::generate(DatasetSpec::new(DatasetKind::Cityscapes, 2, seed));
    let nc = ds.num_classes;
    let mut teacher = OracleTeacher::new(0.02, nc, seed ^ 0xAA);
    let w0 = distill_labels(&mut teacher, &ds.window(0).train_pool);
    let w1 = distill_labels(&mut teacher, &ds.window(1).train_pool);
    let val = distill_labels(&mut teacher, &ds.window(1).val);

    // Warm model: the steady-state regime.
    let base = Mlp::new(MlpArch::edge(ds.feature_dim, nc, 16), seed);
    let mut warm = ekya_core::RetrainExecution::new(
        &base,
        &w0,
        RetrainConfig {
            epochs: 30,
            batch_size: 32,
            last_layer_neurons: 16,
            layers_trained: 3,
            data_fraction: 1.0,
        },
        nc,
        TrainHyper::default(),
        seed,
    );
    warm.run_to_completion();
    let mut model = warm.model().clone();
    model.set_layers_trained(usize::MAX);

    // Profile a slice of configurations on the work-stealing pool. Each
    // config gets its own seed mixed from its label, so the result is a
    // pure function of the (model, data, config) triple — slicing the
    // list cannot change a number.
    let measure = |configs: &[RetrainConfig]| -> Vec<ConfigPoint> {
        let jobs: Vec<RetrainConfig> = configs.to_vec();
        run_parallel(jobs, knobs.workers(), |_, c: RetrainConfig| {
            let cfg_seed = seed ^ fnv1a(format!("cfg|{}", c.label()).as_bytes());
            let (accuracy, gpu_seconds) =
                profile_config(&model, &w1, &val, c, nc, TrainHyper::default(), &cost, cfg_seed);
            ConfigPoint { label: c.label(), gpu_seconds, accuracy, on_pareto: false, error: None }
        })
        .into_iter()
        .zip(configs)
        .map(|(r, c)| {
            // Same isolation as a grid cell: a poisoned config travels
            // in the data instead of sinking the rest of the sweep.
            r.unwrap_or_else(|message| {
                eprintln!("[fig03: config {} poisoned — {message}]", c.label());
                ConfigPoint {
                    label: c.label(),
                    gpu_seconds: 0.0,
                    accuracy: 0.0,
                    on_pareto: false,
                    error: Some(message),
                }
            })
        })
        .collect()
    };

    let grid = extended_retrain_grid();

    // ---- Sharded mode: profile only this shard's slice of (b). ----
    if let Some(shard) = knobs.shard() {
        let range = shard.range(grid.len());
        eprintln!(
            "[fig03: shard {shard} → configs {}..{} of {} across {} workers]",
            range.start,
            range.end,
            grid.len(),
            knobs.workers()
        );
        let points = measure(&grid[range]);
        let envelope =
            ConfigShard { name: "fig03_configs".into(), total: grid.len(), shard, points };
        save_json(&format!("fig03_configs{}", shard.suffix()), &envelope);
        println!(
            "[shard output: {} of {} configs — tables, spread, and the Pareto frontier are \
             whole-grid; merge the shards with `grid_merge` first]",
            envelope.points.len(),
            envelope.total
        );
        return;
    }

    // ---- (a) two example hyperparameters ----
    let mut axis_a: Vec<RetrainConfig> = Vec::new();
    for &frac in &[0.2f64, 0.5, 1.0] {
        axis_a.push(RetrainConfig {
            epochs: 15,
            batch_size: 32,
            last_layer_neurons: 16,
            layers_trained: 3,
            data_fraction: frac,
        });
    }
    for &layers in &[1u32, 2, 3] {
        axis_a.push(RetrainConfig {
            epochs: 15,
            batch_size: 32,
            last_layer_neurons: 16,
            layers_trained: layers,
            data_fraction: 1.0,
        });
    }
    let points_a = measure(&axis_a);
    let mut ta = Table::new(
        "Fig 3a — effect of data fraction (rho) and layers trained",
        &["hyperparameter", "GPU seconds", "accuracy"],
    );
    for (i, (c, p)) in axis_a.iter().zip(&points_a).enumerate() {
        // The first three entries sweep the data fraction; the rest sweep
        // the layers-trained axis.
        let label = if i < 3 {
            format!("rho={}", c.data_fraction)
        } else {
            format!("layers={}", c.layers_trained)
        };
        if p.error.is_some() {
            ta.row(vec![label, "-".into(), "failed".into()]);
        } else {
            ta.row(vec![label, f1(p.gpu_seconds), f3(p.accuracy)]);
        }
    }
    ta.print();

    // ---- (b) full grid + Pareto boundary ----
    let mut points_b = measure(&grid);
    let flags = pareto_flags(&points_b);
    for (p, on) in points_b.iter_mut().zip(flags) {
        p.on_pareto = on;
    }
    let mut tb = Table::new(
        "Fig 3b — resource vs accuracy of the full configuration grid",
        &["config", "GPU seconds", "accuracy", "Pareto"],
    );
    for p in &points_b {
        if p.error.is_some() {
            tb.row(vec![p.label.clone(), "-".into(), "failed".into(), "".into()]);
        } else {
            tb.row(vec![
                p.label.clone(),
                f1(p.gpu_seconds),
                f3(p.accuracy),
                if p.on_pareto { "*".into() } else { "".into() },
            ]);
        }
    }
    tb.print();

    let costs = || points_b.iter().filter(|p| p.error.is_none()).map(|p| p.gpu_seconds);
    let max_cost = costs().fold(f64::MIN, f64::max);
    let min_cost = costs().fold(f64::MAX, f64::min);
    println!(
        "\nGPU-cost spread across configurations: {:.0}x (paper reports ~200x)",
        max_cost / min_cost
    );
    let on_frontier = points_b.iter().filter(|p| p.on_pareto).count();
    println!("Pareto-optimal configurations: {on_frontier} of {}", grid.len());

    save_json("fig03_configs", &points_b);
}
