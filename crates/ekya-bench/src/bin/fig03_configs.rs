//! Figure 3 — retraining-configuration tradeoffs.
//!
//! (a) Accuracy vs GPU-seconds when varying two example hyperparameters
//!     (data fraction and layers trained), others held constant.
//! (b) The resource-accuracy scatter of the full configuration grid with
//!     its Pareto boundary; the paper observes a ~200x spread in GPU cost
//!     and that higher cost does not imply higher accuracy.
//!
//! The sweep core lives in `ekya_bench::config_profile`
//! ([`ConfigSweep`](ekya_bench::ConfigSweep) + `run_config_bin`), shared
//! with the `ekya-orchestrate` worker: exhaustive profiling rides the
//! harness's worker pool with **per-config seeding**
//! (`base_seed ^ fnv1a("cfg|" + label)`), so each configuration's
//! numbers are independent of which others are profiled alongside it —
//! which is what lets `EKYA_SHARD=i/N` split the configuration grid
//! across processes. A sharded run profiles only its slice and writes a
//! `ConfigShard` envelope (`results/fig03_configs_shardIofN.json`);
//! merge the shards with `grid_merge` (or drive the whole run with
//! `ekya_grid`) to recover the exact unsharded point list (the Pareto
//! frontier is a whole-grid property, computed at merge). `EKYA_QUICK=1`
//! profiles the 18-config default grid instead of the extended 54.
//!
//! Run: `cargo run --release -p ekya-bench --bin fig03_configs`
//! Knobs: EKYA_SEED, EKYA_QUICK=1, EKYA_WORKERS, EKYA_SHARD
//!        (see crates/ekya-bench/README.md).

use ekya_bench::{f1, f3, run_config_bin, Knobs, Table};
use ekya_core::RetrainConfig;

fn main() {
    let knobs = Knobs::from_env();
    let (sweep, points_b) = run_config_bin(&knobs);
    // Sharded mode: the shard envelope is already written; whole-grid
    // tables, the spread, and the Pareto frontier wait for the merge.
    let Some(points_b) = points_b else { return };

    // ---- (a) two example hyperparameters ----
    let mut axis_a: Vec<RetrainConfig> = Vec::new();
    for &frac in &[0.2f64, 0.5, 1.0] {
        axis_a.push(RetrainConfig {
            epochs: 15,
            batch_size: 32,
            last_layer_neurons: 16,
            layers_trained: 3,
            data_fraction: frac,
        });
    }
    for &layers in &[1u32, 2, 3] {
        axis_a.push(RetrainConfig {
            epochs: 15,
            batch_size: 32,
            last_layer_neurons: 16,
            layers_trained: layers,
            data_fraction: 1.0,
        });
    }
    let points_a = sweep.measure(&axis_a, knobs.workers());
    let mut ta = Table::new(
        "Fig 3a — effect of data fraction (rho) and layers trained",
        &["hyperparameter", "GPU seconds", "accuracy"],
    );
    for (i, (c, p)) in axis_a.iter().zip(&points_a).enumerate() {
        // The first three entries sweep the data fraction; the rest sweep
        // the layers-trained axis.
        let label = if i < 3 {
            format!("rho={}", c.data_fraction)
        } else {
            format!("layers={}", c.layers_trained)
        };
        if p.error.is_some() {
            ta.row(vec![label, "-".into(), "failed".into()]);
        } else {
            ta.row(vec![label, f1(p.gpu_seconds), f3(p.accuracy)]);
        }
    }
    ta.print();

    // ---- (b) full grid + Pareto boundary ----
    let mut tb = Table::new(
        "Fig 3b — resource vs accuracy of the full configuration grid",
        &["config", "GPU seconds", "accuracy", "Pareto"],
    );
    for p in &points_b {
        if p.error.is_some() {
            tb.row(vec![p.label.clone(), "-".into(), "failed".into(), "".into()]);
        } else {
            tb.row(vec![
                p.label.clone(),
                f1(p.gpu_seconds),
                f3(p.accuracy),
                if p.on_pareto { "*".into() } else { "".into() },
            ]);
        }
    }
    tb.print();

    let costs = || points_b.iter().filter(|p| p.error.is_none()).map(|p| p.gpu_seconds);
    let max_cost = costs().fold(f64::MIN, f64::max);
    let min_cost = costs().fold(f64::MAX, f64::min);
    println!(
        "\nGPU-cost spread across configurations: {:.0}x (paper reports ~200x)",
        max_cost / min_cost
    );
    let on_frontier = points_b.iter().filter(|p| p.on_pareto).count();
    println!("Pareto-optimal configurations: {on_frontier} of {}", points_b.len());
}
