//! Figure 3 — retraining-configuration tradeoffs.
//!
//! (a) Accuracy vs GPU-seconds when varying two example hyperparameters
//!     (data fraction and layers trained), others held constant.
//! (b) The resource-accuracy scatter of the full configuration grid with
//!     its Pareto boundary; the paper observes a ~200x spread in GPU cost
//!     and that higher cost does not imply higher accuracy.
//!
//! Run: `cargo run --release -p ekya-bench --bin fig03_configs`

use ekya_bench::{f1, f3, save_json, Knobs, Table};
use ekya_core::{
    exhaustive_profile, extended_retrain_grid, pareto_frontier, RetrainConfig, RetrainProfile,
    TrainHyper,
};
use ekya_nn::cost::CostModel;
use ekya_nn::fit::LearningCurve;
use ekya_nn::golden::{distill_labels, OracleTeacher};
use ekya_nn::mlp::{Mlp, MlpArch};
use ekya_video::{DatasetKind, DatasetSpec, VideoDataset};
use serde::Serialize;

#[derive(Serialize)]
struct ConfigPoint {
    label: String,
    gpu_seconds: f64,
    accuracy: f64,
    on_pareto: bool,
}

fn main() {
    let seed = Knobs::from_env().seed();
    let cost = CostModel::default();
    let ds = VideoDataset::generate(DatasetSpec::new(DatasetKind::Cityscapes, 2, seed));
    let nc = ds.num_classes;
    let mut teacher = OracleTeacher::new(0.02, nc, seed ^ 0xAA);
    let w0 = distill_labels(&mut teacher, &ds.window(0).train_pool);
    let w1 = distill_labels(&mut teacher, &ds.window(1).train_pool);
    let val = distill_labels(&mut teacher, &ds.window(1).val);

    // Warm model: the steady-state regime.
    let base = Mlp::new(MlpArch::edge(ds.feature_dim, nc, 16), seed);
    let mut warm = ekya_core::RetrainExecution::new(
        &base,
        &w0,
        RetrainConfig {
            epochs: 30,
            batch_size: 32,
            last_layer_neurons: 16,
            layers_trained: 3,
            data_fraction: 1.0,
        },
        nc,
        TrainHyper::default(),
        seed,
    );
    warm.run_to_completion();
    let mut model = warm.model().clone();
    model.set_layers_trained(usize::MAX);

    let measure = |configs: &[RetrainConfig]| -> Vec<(RetrainConfig, f64, f64)> {
        let (accs, _) =
            exhaustive_profile(&model, &w1, &val, configs, nc, TrainHyper::default(), &cost, seed);
        configs
            .iter()
            .zip(&accs)
            .map(|(&c, &acc)| {
                let variant = ekya_core::build_variant(&model, &c, seed);
                let n = ((w1.len() as f64) * c.data_fraction).round().max(1.0) as usize;
                let gpu_s =
                    c.epochs as f64 * cost.train_epoch_gpu_seconds(&variant, n, c.batch_size);
                (c, gpu_s, acc)
            })
            .collect()
    };

    // ---- (a) two example hyperparameters ----
    let mut axis_a: Vec<RetrainConfig> = Vec::new();
    for &frac in &[0.2f64, 0.5, 1.0] {
        axis_a.push(RetrainConfig {
            epochs: 15,
            batch_size: 32,
            last_layer_neurons: 16,
            layers_trained: 3,
            data_fraction: frac,
        });
    }
    for &layers in &[1u32, 2, 3] {
        axis_a.push(RetrainConfig {
            epochs: 15,
            batch_size: 32,
            last_layer_neurons: 16,
            layers_trained: layers,
            data_fraction: 1.0,
        });
    }
    let points_a = measure(&axis_a);
    let mut ta = Table::new(
        "Fig 3a — effect of data fraction (rho) and layers trained",
        &["hyperparameter", "GPU seconds", "accuracy"],
    );
    for (i, (c, gpu_s, acc)) in points_a.iter().enumerate() {
        // The first three entries sweep the data fraction; the rest sweep
        // the layers-trained axis.
        let label = if i < 3 {
            format!("rho={}", c.data_fraction)
        } else {
            format!("layers={}", c.layers_trained)
        };
        ta.row(vec![label, f1(*gpu_s), f3(*acc)]);
    }
    ta.print();

    // ---- (b) full grid + Pareto boundary ----
    let grid = extended_retrain_grid();
    let points_b = measure(&grid);
    let profiles: Vec<RetrainProfile> = points_b
        .iter()
        .map(|(c, gpu_s, acc)| RetrainProfile {
            config: *c,
            curve: LearningCurve::flat(*acc),
            gpu_seconds_per_epoch: gpu_s / c.epochs as f64,
        })
        .collect();
    let frontier = pareto_frontier(&profiles);
    let mut tb = Table::new(
        "Fig 3b — resource vs accuracy of the full configuration grid",
        &["config", "GPU seconds", "accuracy", "Pareto"],
    );
    let mut json_points = Vec::new();
    for (i, (c, gpu_s, acc)) in points_b.iter().enumerate() {
        let on = frontier.contains(&i);
        tb.row(vec![c.label(), f1(*gpu_s), f3(*acc), if on { "*".into() } else { "".into() }]);
        json_points.push(ConfigPoint {
            label: c.label(),
            gpu_seconds: *gpu_s,
            accuracy: *acc,
            on_pareto: on,
        });
    }
    tb.print();

    let max_cost = points_b.iter().map(|p| p.1).fold(f64::MIN, f64::max);
    let min_cost = points_b.iter().map(|p| p.1).fold(f64::MAX, f64::min);
    println!(
        "\nGPU-cost spread across configurations: {:.0}x (paper reports ~200x)",
        max_cost / min_cost
    );
    println!("Pareto-optimal configurations: {} of {}", frontier.len(), grid.len());

    save_json("fig03_configs", &json_points);
}
