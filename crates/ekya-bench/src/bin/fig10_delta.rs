//! Figure 10 — effect of the allocation quantum Δ on the thief scheduler.
//!
//! Finer Δ explores allocations more finely (the paper gains ~8% going
//! from Δ=1.0 to Δ=0.1) at the cost of scheduler runtime — which must
//! stay a tiny fraction of the 200-second window (9.5 s in the paper's
//! Python at Δ=0.1; Rust is orders of magnitude faster).
//!
//! Accuracy comes from mechanistic runs (real retraining execution);
//! runtime from timing `thief_schedule` directly on profiles
//! micro-profiled from the same workload.
//!
//! Run: `cargo run --release -p ekya-bench --bin fig10_delta`
//! Knobs: EKYA_WINDOWS (default 4), EKYA_STREAMS (default 10).

use ekya_bench::{env_u64, env_usize, f3, save_json, Table};
use ekya_core::{thief_schedule, EkyaPolicy, MicroProfiler, SchedulerParams, StreamInput};
use ekya_nn::data::DataView;
use ekya_nn::golden::{distill_labels, OracleTeacher};
use ekya_nn::mlp::{Mlp, MlpArch};
use ekya_sim::{run_windows, RunnerConfig};
use ekya_video::{DatasetKind, StreamSet};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct Point {
    gpus: f64,
    delta: f64,
    accuracy: f64,
    scheduler_runtime_secs: f64,
    runtime_fraction_of_window: f64,
    evaluations: usize,
}

fn main() {
    let windows = env_usize("EKYA_WINDOWS", 4);
    let num_streams = env_usize("EKYA_STREAMS", 10);
    let seed = env_u64("EKYA_SEED", 42);
    let kind = DatasetKind::Cityscapes;
    let streams = StreamSet::generate(kind, num_streams, windows, seed);

    // ---- Scheduler-runtime measurement input: real micro-profiles. ----
    let cfg = RunnerConfig { seed, ..RunnerConfig::default() };
    let ds0 = streams.iter().next().unwrap().1;
    let mut teacher = OracleTeacher::new(0.02, ds0.num_classes, seed ^ 0xC0);
    let w = ds0.window(0);
    let pool = distill_labels(&mut teacher, &w.train_pool);
    let sys_val = distill_labels(&mut teacher, &w.val);
    let model = Mlp::new(MlpArch::edge(ds0.feature_dim, ds0.num_classes, 16), seed);
    let mut profiler = MicroProfiler::new(cfg.profiler, cfg.cost.clone(), seed ^ 0xB00);
    let profiles =
        profiler.profile(&model, &pool, &sys_val, &cfg.retrain_grid, ds0.num_classes, 1).profiles;
    let serving = model.accuracy(DataView::new(&sys_val, ds0.num_classes));
    let infer_profiles =
        ekya_core::build_inference_profiles(&cfg.cost, 1.0, 30.0, &cfg.inference_grid);
    let window_secs = ds0.spec.window_secs;

    let mut points = Vec::new();
    for &gpus in &[4.0f64, 8.0] {
        for &delta in &[0.1f64, 0.2, 0.5, 1.0] {
            let params = SchedulerParams { delta, ..SchedulerParams::new(gpus) };

            // Accuracy: full mechanistic run.
            let mut policy = EkyaPolicy::new(params);
            let run_cfg = RunnerConfig { total_gpus: gpus, seed, ..RunnerConfig::default() };
            let report = run_windows(&mut policy, &streams, &run_cfg, windows);

            // Runtime: time the thief on a realistic 10-stream input.
            let inputs: Vec<StreamInput> = (0..num_streams)
                .map(|i| StreamInput {
                    id: ekya_video::StreamId(i as u32),
                    serving_accuracy: (serving - 0.03 * (i % 4) as f64).max(0.1),
                    retrain_profiles: &profiles,
                    infer_profiles: &infer_profiles,
                    in_progress: None,
                })
                .collect();
            let reps = 5;
            let started = Instant::now();
            let mut evals = 0;
            for _ in 0..reps {
                evals = thief_schedule(&inputs, window_secs, &params).evaluations;
            }
            let runtime = started.elapsed().as_secs_f64() / reps as f64;

            points.push(Point {
                gpus,
                delta,
                accuracy: report.mean_accuracy(),
                scheduler_runtime_secs: runtime,
                runtime_fraction_of_window: runtime / window_secs,
                evaluations: evals,
            });
        }
    }

    let mut t = Table::new(
        format!("Fig 10 — Δ sensitivity ({num_streams} streams)"),
        &["GPUs", "Δ", "accuracy", "PickConfigs evals", "sched runtime (s)", "fraction of window"],
    );
    for p in &points {
        t.row(vec![
            format!("{}", p.gpus),
            format!("{}", p.delta),
            f3(p.accuracy),
            p.evaluations.to_string(),
            format!("{:.5}", p.scheduler_runtime_secs),
            format!("{:.7}", p.runtime_fraction_of_window),
        ]);
    }
    t.print();

    for &gpus in &[4.0f64, 8.0] {
        let acc = |d: f64| points.iter().find(|p| p.gpus == gpus && p.delta == d).unwrap().accuracy;
        println!(
            "{} GPUs: Δ=0.1 vs Δ=1.0 accuracy {:+.1}% (paper: ~+8%); runtime remains \
             a negligible fraction of the 200 s window (paper: 4.7% at Δ=0.1 in Python)",
            gpus,
            (acc(0.1) - acc(1.0)) * 100.0
        );
    }

    save_json("fig10_delta", &points);
}
