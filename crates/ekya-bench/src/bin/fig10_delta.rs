//! Figure 10 — effect of the allocation quantum Δ on the thief scheduler.
//!
//! Finer Δ explores allocations more finely (the paper gains ~8% going
//! from Δ=1.0 to Δ=0.1) at the cost of scheduler runtime — which must
//! stay a tiny fraction of the 200-second window (9.5 s in the paper's
//! Python at Δ=0.1; Rust is orders of magnitude faster).
//!
//! Accuracy comes from a harness grid of mechanistic runs (GPUs × Δ, via
//! `PolicySpec::EkyaDelta`); runtime from timing `thief_schedule`
//! serially on profiles micro-profiled from the same workload (timing is
//! the one thing a busy worker pool would distort). The harness report
//! lands in `results/fig10_delta.json`, the derived Δ-sensitivity points
//! in `results/fig10_delta_points.json`. `EKYA_SHARD=i/N` runs one slice
//! of the grid (merge with `grid_merge`); `EKYA_RESUME=1` continues a
//! killed run.
//!
//! Run: `cargo run --release -p ekya-bench --bin fig10_delta`
//! Knobs: EKYA_WINDOWS (default 4), EKYA_STREAMS (default 10),
//!        EKYA_WORKERS, EKYA_SHARD, EKYA_RESUME
//!        (see crates/ekya-bench/README.md).

use ekya_baselines::PolicySpec;
use ekya_bench::{f3, fig10_grid, run_grid_bin, save_json, Knobs, Table, FIG10_DELTAS, FIG10_GPUS};
use ekya_core::{thief_schedule, MicroProfiler, SchedulerParams, StreamInput};
use ekya_nn::data::DataView;
use ekya_nn::golden::{distill_labels, OracleTeacher};
use ekya_nn::mlp::{Mlp, MlpArch};
use ekya_sim::RunnerConfig;
use ekya_video::{DatasetKind, StreamSet};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct Point {
    gpus: f64,
    delta: f64,
    accuracy: f64,
    scheduler_runtime_secs: f64,
    runtime_fraction_of_window: f64,
    evaluations: usize,
}

const DELTAS: [f64; 4] = FIG10_DELTAS;
const GPU_AXIS: [f64; 2] = FIG10_GPUS;

fn main() {
    let knobs = Knobs::from_env();
    let windows = knobs.windows(4);
    let num_streams = knobs.streams(10);
    let seed = knobs.seed();
    let kind = DatasetKind::Cityscapes;

    // ---- Accuracy: a (GPUs × Δ) grid of full mechanistic runs. ----
    // The grid definition is shared with the orchestrator's planner and
    // worker (`ekya_bench::bins`).
    let grid = fig10_grid(windows, num_streams, seed);
    let run = run_grid_bin("fig10_delta", &grid, &knobs);
    let report = &run.report;
    if !report.is_complete() {
        println!(
            "[shard report: {} of {} cells — the Δ table needs the whole grid; \
             merge the shards with `grid_merge` first]",
            report.cells.len(),
            report.total_cells
        );
        return;
    }

    // ---- Scheduler-runtime measurement input: real micro-profiles. ----
    // Seeded with the same mixed cell seed the accuracy grid uses, so
    // the runtime rows really are measured on the grid's workload.
    let workload_seed = ekya_bench::cell_seed(seed, kind, num_streams, windows);
    let cfg = RunnerConfig { seed: workload_seed, ..RunnerConfig::default() };
    let streams = StreamSet::generate(kind, num_streams, windows, workload_seed);
    let ds0 = streams.iter().next().unwrap().1;
    let mut teacher = OracleTeacher::new(0.02, ds0.num_classes, workload_seed ^ 0xC0);
    let w = ds0.window(0);
    let pool = distill_labels(&mut teacher, &w.train_pool);
    let sys_val = distill_labels(&mut teacher, &w.val);
    let model = Mlp::new(MlpArch::edge(ds0.feature_dim, ds0.num_classes, 16), workload_seed);
    let mut profiler = MicroProfiler::new(cfg.profiler, cfg.cost.clone(), workload_seed ^ 0xB00);
    let profiles =
        profiler.profile(&model, &pool, &sys_val, &cfg.retrain_grid, ds0.num_classes, 1).profiles;
    let serving = model.accuracy(DataView::new(&sys_val, ds0.num_classes));
    let infer_profiles =
        ekya_core::build_inference_profiles(&cfg.cost, 1.0, 30.0, &cfg.inference_grid);
    let window_secs = ds0.spec.window_secs;

    let mut points = Vec::new();
    for &gpus in &GPU_AXIS {
        for &delta in &DELTAS {
            let params = SchedulerParams { delta, ..SchedulerParams::new(gpus) };
            let accuracy = report
                .accuracy_where(|c| {
                    c.scenario.gpus == gpus && c.scenario.policy == PolicySpec::EkyaDelta { delta }
                })
                .expect("grid covers every (gpus, delta)");

            // Runtime: time the thief on a realistic 10-stream input.
            let inputs: Vec<StreamInput> = (0..num_streams)
                .map(|i| StreamInput {
                    id: ekya_video::StreamId(i as u32),
                    serving_accuracy: (serving - 0.03 * (i % 4) as f64).max(0.1),
                    retrain_profiles: &profiles,
                    infer_profiles: &infer_profiles,
                    in_progress: None,
                })
                .collect();
            let reps = 5;
            let started = Instant::now();
            let mut evals = 0;
            for _ in 0..reps {
                evals = thief_schedule(&inputs, window_secs, &params).evaluations;
            }
            let runtime = started.elapsed().as_secs_f64() / reps as f64;

            points.push(Point {
                gpus,
                delta,
                accuracy,
                scheduler_runtime_secs: runtime,
                runtime_fraction_of_window: runtime / window_secs,
                evaluations: evals,
            });
        }
    }

    let mut t = Table::new(
        format!("Fig 10 — Δ sensitivity ({num_streams} streams)"),
        &["GPUs", "Δ", "accuracy", "PickConfigs evals", "sched runtime (s)", "fraction of window"],
    );
    for p in &points {
        t.row(vec![
            format!("{}", p.gpus),
            format!("{}", p.delta),
            f3(p.accuracy),
            p.evaluations.to_string(),
            format!("{:.5}", p.scheduler_runtime_secs),
            format!("{:.7}", p.runtime_fraction_of_window),
        ]);
    }
    t.print();

    for &gpus in &GPU_AXIS {
        let acc = |d: f64| points.iter().find(|p| p.gpus == gpus && p.delta == d).unwrap().accuracy;
        println!(
            "{} GPUs: Δ=0.1 vs Δ=1.0 accuracy {:+.1}% (paper: ~+8%); runtime remains \
             a negligible fraction of the 200 s window (paper: 4.7% at Δ=0.1 in Python)",
            gpus,
            (acc(0.1) - acc(1.0)) * 100.0
        );
    }

    save_json("fig10_delta_points", &points);
}
