//! Design-choice ablations (DESIGN.md §5) beyond the paper's Fig 8.
//!
//! Toggles each §5 implementation mechanism independently on the same
//! workload and reports the accuracy delta:
//!
//! * checkpoint hot-swaps (§5 "model checkpointing and reloading");
//! * mid-window estimate correction + rescheduling (§5 "adapting
//!   estimates during retraining");
//! * iCaRL exemplar memory (§2.2 continual-learning substrate);
//! * inverse-power-of-two placement quantisation (§5 "placement onto
//!   GPUs");
//! * charging micro-profiling GPU time (§4.3).
//!
//! Run: `cargo run --release -p ekya-bench --bin ablation_design`
//! Knobs: EKYA_WINDOWS (default 4), EKYA_STREAMS (default 6).

use ekya_bench::{env_u64, env_usize, f3, save_json, Table};
use ekya_core::{EkyaPolicy, SchedulerParams};
use ekya_sim::{run_windows, RunnerConfig};
use ekya_video::{DatasetKind, StreamSet};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    variant: String,
    accuracy: f64,
    delta_vs_full: f64,
}

fn main() {
    let windows = env_usize("EKYA_WINDOWS", 4);
    let num_streams = env_usize("EKYA_STREAMS", 6);
    let seed = env_u64("EKYA_SEED", 42);
    let gpus = 2.0;
    let streams = StreamSet::generate(DatasetKind::Cityscapes, num_streams, windows, seed);

    let base = RunnerConfig { total_gpus: gpus, seed, ..RunnerConfig::default() };
    let run = |cfg: RunnerConfig| -> f64 {
        let mut policy = EkyaPolicy::new(SchedulerParams::new(gpus));
        run_windows(&mut policy, &streams, &cfg, windows).mean_accuracy()
    };

    let full = run(base.clone());
    let variants: Vec<(&str, RunnerConfig)> = vec![
        ("no checkpoint hot-swaps", RunnerConfig { checkpoint_every_epochs: None, ..base.clone() }),
        (
            "no mid-window estimate correction",
            RunnerConfig { adapt_estimates: false, ..base.clone() },
        ),
        ("no exemplar memory (iCaRL off)", RunnerConfig { exemplar_per_class: 0, ..base.clone() }),
        (
            "quantised MPS placement (inverse powers of two)",
            RunnerConfig { quantize_placement: true, ..base.clone() },
        ),
        (
            "profiling not charged (idealised)",
            RunnerConfig { charge_profiling: false, ..base.clone() },
        ),
    ];

    let mut t = Table::new(
        format!("Design ablations ({num_streams} streams, {gpus} GPUs, Cityscapes)"),
        &["variant", "accuracy", "delta vs full Ekya"],
    );
    t.row(vec!["full Ekya".into(), f3(full), "-".into()]);
    let mut rows = vec![Row { variant: "full Ekya".into(), accuracy: full, delta_vs_full: 0.0 }];
    for (name, cfg) in variants {
        let acc = run(cfg);
        t.row(vec![name.into(), f3(acc), format!("{:+.3}", acc - full)]);
        rows.push(Row { variant: name.into(), accuracy: acc, delta_vs_full: acc - full });
    }
    t.print();
    println!(
        "\nExpected directions: removing checkpoints/adaptation/memory costs accuracy; \
         quantised placement costs a little; not charging profiling gains a little."
    );

    save_json("ablation_design", &rows);
}
