//! Design-choice ablations (DESIGN.md §5) beyond the paper's Fig 8.
//!
//! Toggles each §5 implementation mechanism independently on the same
//! workload and reports the accuracy delta:
//!
//! * checkpoint hot-swaps (§5 "model checkpointing and reloading");
//! * mid-window estimate correction + rescheduling (§5 "adapting
//!   estimates during retraining");
//! * iCaRL exemplar memory (§2.2 continual-learning substrate);
//! * inverse-power-of-two placement quantisation (§5 "placement onto
//!   GPUs");
//! * charging micro-profiling GPU time (§4.3).
//!
//! The variants are independent cells, fanned out on the harness pool.
//! Run: `cargo run --release -p ekya-bench --bin ablation_design`
//! Knobs: EKYA_WINDOWS (default 4), EKYA_STREAMS (default 6),
//!        EKYA_WORKERS.

use ekya_bench::{f3, run_parallel, save_json, Knobs, Table};
use ekya_core::{EkyaPolicy, SchedulerParams};
use ekya_sim::{run_windows, RunnerConfig};
use ekya_video::{DatasetKind, StreamSet};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    variant: String,
    accuracy: f64,
    delta_vs_full: f64,
}

fn main() {
    let knobs = Knobs::from_env();
    knobs.warn_if_sharded("ablation_design");
    knobs.warn_if_resume("ablation_design");
    let windows = knobs.windows(4);
    let num_streams = knobs.streams(6);
    let seed = knobs.seed();
    let gpus = 2.0;
    let streams = StreamSet::generate(DatasetKind::Cityscapes, num_streams, windows, seed);

    let base = RunnerConfig { total_gpus: gpus, seed, ..RunnerConfig::default() };
    let variants: Vec<(&str, RunnerConfig)> = vec![
        ("full Ekya", base.clone()),
        ("no checkpoint hot-swaps", RunnerConfig { checkpoint_every_epochs: None, ..base.clone() }),
        (
            "no mid-window estimate correction",
            RunnerConfig { adapt_estimates: false, ..base.clone() },
        ),
        ("no exemplar memory (iCaRL off)", RunnerConfig { exemplar_per_class: 0, ..base.clone() }),
        (
            "quantised MPS placement (inverse powers of two)",
            RunnerConfig { quantize_placement: true, ..base.clone() },
        ),
        (
            "profiling not charged (idealised)",
            RunnerConfig { charge_profiling: false, ..base.clone() },
        ),
    ];

    eprintln!("[ablations: {} cells across {} workers]", variants.len(), knobs.workers());
    let streams_ref = &streams;
    let results = run_parallel(variants, knobs.workers(), move |_, (name, cfg)| {
        let mut policy = EkyaPolicy::new(SchedulerParams::new(gpus));
        (name, run_windows(&mut policy, streams_ref, &cfg, windows).mean_accuracy())
    });
    let accs: Vec<(&str, f64)> = results.into_iter().map(|r| r.expect("variant cell")).collect();
    let full = accs[0].1;

    let mut t = Table::new(
        format!("Design ablations ({num_streams} streams, {gpus} GPUs, Cityscapes)"),
        &["variant", "accuracy", "delta vs full Ekya"],
    );
    let mut rows = Vec::new();
    for (i, (name, acc)) in accs.iter().enumerate() {
        let delta = if i == 0 { "-".into() } else { format!("{:+.3}", acc - full) };
        t.row(vec![(*name).into(), f3(*acc), delta]);
        rows.push(Row { variant: (*name).into(), accuracy: *acc, delta_vs_full: acc - full });
    }
    t.print();
    println!(
        "\nExpected directions: removing checkpoints/adaptation/memory costs accuracy; \
         quantised placement costs a little; not charging profiling gains a little."
    );

    save_json("ablation_design", &rows);
}
