//! Design-choice ablations (DESIGN.md §5) beyond the paper's Fig 8.
//!
//! Toggles each §5 implementation mechanism independently on the same
//! workload and reports the accuracy delta:
//!
//! * checkpoint hot-swaps (§5 "model checkpointing and reloading");
//! * mid-window estimate correction + rescheduling (§5 "adapting
//!   estimates during retraining");
//! * iCaRL exemplar memory (§2.2 continual-learning substrate);
//! * inverse-power-of-two placement quantisation (§5 "placement onto
//!   GPUs");
//! * charging micro-profiling GPU time (§4.3).
//!
//! Every variant is a grid cell (`PolicySpec::DesignAblation`, applied
//! to the runner by
//! [`DesignToggle::apply`](ekya_baselines::DesignToggle::apply)), so the
//! sweep shards, resumes, and orchestrates like any grid bin
//! ([`run_ablation_bin`]). The harness
//! report lands in `results/ablation_design.json` (`_shardIofN` when
//! sharded); the derived delta rows move to
//! `results/ablation_design_rows.json`.
//!
//! Run: `cargo run --release -p ekya-bench --bin ablation_design`
//! Knobs: EKYA_WINDOWS (default 4), EKYA_STREAMS (default 6),
//!        EKYA_WORKERS, EKYA_SHARD, EKYA_RESUME
//!        (see crates/ekya-bench/README.md).

use ekya_bench::{ablation_policies, f3, run_ablation_bin, save_json, Knobs, Table};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    variant: String,
    accuracy: f64,
    delta_vs_full: f64,
}

fn main() {
    let knobs = Knobs::from_env();
    let run = run_ablation_bin(&knobs);
    let report = &run.report;

    if report.is_complete() {
        if report.failed > 0 {
            // A poisoned cell (worst: full Ekya) would read as accuracy
            // 0.0 and corrupt every delta; fail loudly instead (the
            // pre-port behaviour).
            eprintln!(
                "[ablations: {} poisoned cell(s) — delta table not computed; \
                 see the errors in the JSON report]",
                report.failed
            );
            run.print_footer();
            std::process::exit(1);
        }
        // One row per policy-axis entry, in grid order; lookups by spec
        // equality (every variant reports under the plain "Ekya" name).
        let accs: Vec<(String, f64)> = ablation_policies()
            .iter()
            .map(|spec| {
                let acc = report
                    .cells
                    .iter()
                    .find(|c| c.error.is_none() && c.scenario.policy == *spec)
                    .map(|c| c.mean_accuracy)
                    // Poisoned cells already aborted the bin above; every
                    // ablation policy has exactly one cell in the grid.
                    .expect("ablation grid includes every toggled-design cell");
                let label = if *spec == ekya_baselines::PolicySpec::Ekya {
                    "full Ekya".to_string()
                } else {
                    spec.label()
                };
                (label, acc)
            })
            .collect();
        let full = accs[0].1;

        let num_streams = report.cells.first().map(|c| c.scenario.streams).unwrap_or(6);
        let gpus = report.cells.first().map(|c| c.scenario.gpus).unwrap_or(2.0);
        let mut t = Table::new(
            format!("Design ablations ({num_streams} streams, {gpus} GPUs, Cityscapes)"),
            &["variant", "accuracy", "delta vs full Ekya"],
        );
        let mut rows = Vec::new();
        for (i, (name, acc)) in accs.iter().enumerate() {
            let delta = if i == 0 { "-".into() } else { format!("{:+.3}", acc - full) };
            t.row(vec![name.clone(), f3(*acc), delta]);
            rows.push(Row { variant: name.clone(), accuracy: *acc, delta_vs_full: acc - full });
        }
        t.print();
        println!(
            "\nExpected directions: removing checkpoints/adaptation/memory costs accuracy; \
             quantised placement costs a little; not charging profiling gains a little."
        );

        save_json("ablation_design_rows", &rows);
    } else {
        report.print_shard_notice("the delta table is");
    }
    run.print_footer();
}
