//! Figure 6 — accuracy vs number of concurrent streams (1 and 2 GPUs,
//! Cityscapes and Waymo).
//!
//! As streams share a fixed GPU budget, Ekya degrades gracefully by
//! shifting resources from retraining to inference and picking cheaper
//! retraining configurations, while uniform baselines fall off faster
//! (the paper reports up to 29% advantage under 1 GPU).
//!
//! Declarative grid on the parallel harness: the sweep is
//! [`ekya_bench::fig06_grid`], fanned out across `EKYA_WORKERS` threads.
//! `EKYA_SHARD=i/N` runs one slice of the grid (merge the shard reports
//! with `grid_merge`); `EKYA_RESUME=1` continues a killed run.
//! Run: `cargo run --release -p ekya-bench --bin fig06_streams`
//! Knobs: EKYA_WINDOWS (default 4), EKYA_QUICK=1, EKYA_WORKERS,
//!        EKYA_SHARD, EKYA_RESUME (see crates/ekya-bench/README.md).

use ekya_bench::{f3, fig06_grid, run_grid_bin, Knobs, Table};

fn main() {
    let knobs = Knobs::from_env();
    let grid = fig06_grid(knobs.quick(), knobs.windows(4), knobs.seed());
    let run = run_grid_bin("fig06_streams", &grid, &knobs);
    let report = &run.report;

    if report.is_complete() {
        // Print one table per (dataset, gpus).
        for &kind in &grid.datasets {
            for &gpus in &grid.gpu_counts {
                let mut t = Table::new(
                    format!("Fig 6 — {} with {} provisioned GPU(s)", kind.name(), gpus),
                    &["scheduler", "2 streams", "4 streams", "6 streams", "8 streams"],
                );
                for policy in &grid.policies {
                    let mut row = vec![policy.label()];
                    for &n in &[2usize, 4, 6, 8] {
                        let v = report
                            .accuracy_where(|c| {
                                c.scenario.dataset == kind
                                    && c.scenario.gpus == gpus
                                    && c.scenario.streams == n
                                    && c.scenario.policy == *policy
                            })
                            .map(f3)
                            .unwrap_or_else(|| "-".into());
                        row.push(v);
                    }
                    t.row(row);
                }
                t.print();
            }
        }

        // Headline: Ekya's advantage over the best uniform at max contention.
        let max_n = *grid.stream_counts.last().unwrap();
        for &kind in &grid.datasets {
            for &gpus in &grid.gpu_counts {
                let at = |prefix: &str| -> Option<f64> {
                    report
                        .cells
                        .iter()
                        .filter(|c| {
                            c.error.is_none()
                                && c.scenario.dataset == kind
                                && c.scenario.gpus == gpus
                                && c.scenario.streams == max_n
                                && c.policy.starts_with(prefix)
                        })
                        .map(|c| c.mean_accuracy)
                        .fold(None, |best: Option<f64>, a| Some(best.map_or(a, |b| b.max(a))))
                };
                match (at("Ekya"), at("Uniform")) {
                    (Some(ekya), Some(uniform)) => println!(
                        "{} @ {} GPU, {} streams: Ekya {:+.1}% over best uniform (paper: up to 29% @1 GPU, 23% @2 GPUs)",
                        kind.name(),
                        gpus,
                        max_n,
                        (ekya - uniform) * 100.0
                    ),
                    // Panic-isolated cells can leave a scheduler group empty;
                    // say so instead of comparing against nothing.
                    _ => println!(
                        "{} @ {} GPU, {} streams: headline unavailable (cells failed — see errors in the JSON)",
                        kind.name(),
                        gpus,
                        max_n
                    ),
                }
            }
        }
    } else {
        report.print_shard_notice("tables and headlines are");
    }
    run.print_footer();
}
