//! Figure 6 — accuracy vs number of concurrent streams (1 and 2 GPUs,
//! Cityscapes and Waymo).
//!
//! As streams share a fixed GPU budget, Ekya degrades gracefully by
//! shifting resources from retraining to inference and picking cheaper
//! retraining configurations, while uniform baselines fall off faster
//! (the paper reports up to 29% advantage under 1 GPU).
//!
//! Runs mechanistically (real training in the simulator).
//! Run: `cargo run --release -p ekya-bench --bin fig06_streams`
//! Knobs: EKYA_WINDOWS (default 4), EKYA_QUICK=1 for a reduced sweep.

use ekya_baselines::{holdout_configs, UniformPolicy};
use ekya_bench::{env_u64, env_usize, f3, quick, save_json, Table};
use ekya_core::{EkyaPolicy, Policy, SchedulerParams};
use ekya_sim::{run_windows, RunnerConfig};
use ekya_video::{DatasetKind, StreamSet};
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    dataset: String,
    gpus: f64,
    streams: usize,
    scheduler: String,
    accuracy: f64,
}

fn main() {
    let windows = env_usize("EKYA_WINDOWS", 4);
    let seed = env_u64("EKYA_SEED", 42);
    let stream_counts: Vec<usize> = if quick() { vec![2, 4] } else { vec![2, 4, 6, 8] };
    let gpu_counts: Vec<f64> = if quick() { vec![1.0] } else { vec![1.0, 2.0] };
    let datasets = [DatasetKind::Cityscapes, DatasetKind::Waymo];

    let mut points: Vec<Point> = Vec::new();
    for kind in datasets {
        let cfg0 = RunnerConfig::default();
        let (c1, c2) = holdout_configs(kind, &cfg0.retrain_grid, &cfg0.cost, seed ^ 0xF00D);
        println!("{}: hold-out configs high={} low={}", kind.name(), c1.label(), c2.label());
        for &gpus in &gpu_counts {
            for &n in &stream_counts {
                let streams = StreamSet::generate(kind, n, windows, seed);
                let cfg = RunnerConfig { total_gpus: gpus, seed, ..RunnerConfig::default() };

                let mut policies: Vec<Box<dyn Policy>> = vec![
                    Box::new(EkyaPolicy::new(SchedulerParams::new(gpus))),
                    Box::new(UniformPolicy::new(c1, 0.5, "Uniform (Config 1, 50%)")),
                    Box::new(UniformPolicy::new(c2, 0.3, "Uniform (Config 2, 30%)")),
                    Box::new(UniformPolicy::new(c2, 0.5, "Uniform (Config 2, 50%)")),
                    Box::new(UniformPolicy::new(c2, 0.9, "Uniform (Config 2, 90%)")),
                ];
                for policy in policies.iter_mut() {
                    let report = run_windows(policy.as_mut(), &streams, &cfg, windows);
                    points.push(Point {
                        dataset: kind.name().to_string(),
                        gpus,
                        streams: n,
                        scheduler: report.policy.clone(),
                        accuracy: report.mean_accuracy(),
                    });
                }
            }
        }
    }

    // Print one table per (dataset, gpus).
    for kind in datasets {
        for &gpus in &gpu_counts {
            let mut t = Table::new(
                format!("Fig 6 — {} with {} provisioned GPU(s)", kind.name(), gpus),
                &["scheduler", "2 streams", "4 streams", "6 streams", "8 streams"],
            );
            let schedulers: Vec<String> = {
                let mut s: Vec<String> = points
                    .iter()
                    .filter(|p| p.dataset == kind.name() && p.gpus == gpus)
                    .map(|p| p.scheduler.clone())
                    .collect();
                s.dedup();
                s
            };
            for sched in schedulers {
                let mut row = vec![sched.clone()];
                for &n in &[2usize, 4, 6, 8] {
                    let v = points
                        .iter()
                        .find(|p| {
                            p.dataset == kind.name()
                                && p.gpus == gpus
                                && p.streams == n
                                && p.scheduler == sched
                        })
                        .map(|p| f3(p.accuracy))
                        .unwrap_or_else(|| "-".into());
                    row.push(v);
                }
                t.row(row);
            }
            t.print();
        }
    }

    // Headline: Ekya's advantage over the best uniform at max contention.
    for kind in datasets {
        let max_n = *stream_counts.last().unwrap();
        for &gpus in &gpu_counts {
            let at = |sched_prefix: &str| -> f64 {
                points
                    .iter()
                    .filter(|p| {
                        p.dataset == kind.name()
                            && p.gpus == gpus
                            && p.streams == max_n
                            && p.scheduler.starts_with(sched_prefix)
                    })
                    .map(|p| p.accuracy)
                    .fold(f64::MIN, f64::max)
            };
            let ekya = at("Ekya");
            let best_uniform = at("Uniform");
            println!(
                "{} @ {} GPU, {} streams: Ekya {:+.1}% over best uniform (paper: up to 29% @1 GPU, 23% @2 GPUs)",
                kind.name(),
                gpus,
                max_n,
                (ekya - best_uniform) * 100.0
            );
        }
    }

    save_json("fig06_streams", &points);
}
