//! Figure 8 — factor analysis of Ekya's two mechanisms.
//!
//! `Ekya-FixedRes` removes the thief allocation (static 50/50 split, but
//! micro-profiled configuration selection); `Ekya-FixedConfig` removes
//! configuration adaptation (thief allocation over one pinned
//! configuration). Both should lose accuracy relative to full Ekya, most
//! visibly when the system is under stress (few GPUs).
//!
//! One mechanistic trace recording, then a (GPUs × policy) replay grid
//! fanned out on the harness worker pool.
//! Run: `cargo run --release -p ekya-bench --bin fig08_factors`
//! Knobs: EKYA_WINDOWS (default 6), EKYA_STREAMS (default 10),
//!        EKYA_QUICK=1, EKYA_WORKERS.

use ekya_baselines::{HoldoutPick, PolicyBuildCtx, PolicySpec};
use ekya_bench::{f3, grid, run_parallel, save_json, Knobs, Table};
use ekya_sim::{record_trace, ReplayPolicyHarness, RunnerConfig};
use ekya_video::{DatasetKind, StreamSet};
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    gpus: f64,
    scheduler: String,
    accuracy: f64,
}

fn main() {
    let knobs = Knobs::from_env();
    knobs.warn_if_sharded("fig08_factors");
    knobs.warn_if_resume("fig08_factors");
    let windows = knobs.windows(6);
    let num_streams = knobs.streams(10);
    let seed = knobs.seed();
    let kind = DatasetKind::Cityscapes;
    let gpu_grid: Vec<f64> = if knobs.quick() { vec![2.0, 8.0] } else { vec![2.0, 4.0, 6.0, 8.0] };
    let policies = vec![
        PolicySpec::Uniform { pick: HoldoutPick::Config2, inference_share: 0.5 },
        PolicySpec::FixedRes { inference_share: 0.5 },
        PolicySpec::FixedConfig { pick: HoldoutPick::Config2 },
        PolicySpec::Ekya,
    ];

    eprintln!("[recording trace — {num_streams} streams x {windows} windows]");
    let cell_seed = grid::cell_seed(seed, kind, num_streams, windows);
    let streams = StreamSet::generate(kind, num_streams, windows, cell_seed);
    let cfg = RunnerConfig { seed: cell_seed, ..RunnerConfig::default() };
    let trace = record_trace(&streams, &cfg, windows, 6);

    let mut cells: Vec<(f64, PolicySpec)> = Vec::new();
    for &gpus in &gpu_grid {
        for p in &policies {
            cells.push((gpus, p.clone()));
        }
    }
    eprintln!("[replaying {} cells across {} workers]", cells.len(), knobs.workers());
    let trace_ref = &trace;
    let results = run_parallel(cells, knobs.workers(), move |_, (gpus, spec)| {
        let ctx = PolicyBuildCtx::new(kind, gpus, grid::holdout_seed(seed, kind));
        let mut policy = spec.build(&ctx);
        let report = ReplayPolicyHarness::new(gpus).run(policy.as_mut(), trace_ref);
        Point { gpus, scheduler: report.policy.clone(), accuracy: report.mean_accuracy() }
    });
    let points: Vec<Point> = results.into_iter().map(|r| r.expect("replay cell")).collect();

    let mut t = Table::new(
        format!("Fig 8 — factor analysis ({num_streams} streams, Cityscapes)"),
        &["scheduler", "2 GPUs", "4 GPUs", "6 GPUs", "8 GPUs"],
    );
    for sched in policies.iter().map(|p| p.label()) {
        let mut row = vec![sched.clone()];
        for &g in &[2.0f64, 4.0, 6.0, 8.0] {
            let v = points
                .iter()
                .find(|p| p.gpus == g && p.scheduler == sched)
                .map(|p| f3(p.accuracy))
                .unwrap_or_else(|| "-".into());
            row.push(v);
        }
        t.row(row);
    }
    t.print();
    println!(
        "\nExpected ordering (paper): Ekya >= Ekya-FixedRes, Ekya-FixedConfig >= Uniform, \
         with the gaps largest at few GPUs."
    );

    save_json("fig08_factors", &points);
}
