//! Figure 8 — factor analysis of Ekya's two mechanisms.
//!
//! `Ekya-FixedRes` removes the thief allocation (static 50/50 split, but
//! micro-profiled configuration selection); `Ekya-FixedConfig` removes
//! configuration adaptation (thief allocation over one pinned
//! configuration). Both should lose accuracy relative to full Ekya, most
//! visibly when the system is under stress (few GPUs).
//!
//! One mechanistic trace recording (lazy — a fully resumed run skips
//! it), then a (GPUs × policy) replay grid on the harness. The cells
//! have ordinary [`Scenario`](ekya_bench::Scenario) identities, so the
//! full shard/resume machinery applies: the harness report lands in
//! `results/fig08_factors.json` (`_shardIofN` when sharded), the derived
//! figure points in `results/fig08_factors_points.json`.
//! `EKYA_SHARD=i/N` runs one slice of the grid (merge with `grid_merge`
//! or drive the whole run with `ekya_grid`); `EKYA_RESUME=1` continues a
//! killed run.
//!
//! Run: `cargo run --release -p ekya-bench --bin fig08_factors`
//! Knobs: EKYA_WINDOWS (default 6), EKYA_STREAMS (default 10),
//!        EKYA_QUICK=1, EKYA_WORKERS, EKYA_SHARD, EKYA_RESUME
//!        (see crates/ekya-bench/README.md).

use ekya_bench::{f3, fig08_grid_for, run_fig08_bin, save_json, Knobs, Table};
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    gpus: f64,
    scheduler: String,
    accuracy: f64,
}

fn main() {
    let knobs = Knobs::from_env();
    // Same single grid definition the runner and the orchestrator's
    // planner use — the table can never describe a different sweep.
    let grid = fig08_grid_for(&knobs);
    let run = run_fig08_bin(&knobs);
    let report = &run.report;

    if report.is_complete() {
        let points: Vec<Point> = report
            .cells
            .iter()
            .filter(|c| c.error.is_none())
            .map(|c| Point {
                gpus: c.scenario.gpus,
                scheduler: c.policy.clone(),
                accuracy: c.mean_accuracy,
            })
            .collect();

        let mut t = Table::new(
            format!(
                "Fig 8 — factor analysis ({} streams, Cityscapes)",
                grid.stream_counts.first().copied().expect("fig08 grid has a streams axis")
            ),
            &["scheduler", "2 GPUs", "4 GPUs", "6 GPUs", "8 GPUs"],
        );
        for sched in grid.policies.iter().map(|p| p.label()) {
            let mut row = vec![sched.clone()];
            for &g in &[2.0f64, 4.0, 6.0, 8.0] {
                let v = points
                    .iter()
                    .find(|p| p.gpus == g && p.scheduler == sched)
                    .map(|p| f3(p.accuracy))
                    .unwrap_or_else(|| "-".into());
                row.push(v);
            }
            t.row(row);
        }
        t.print();
        println!(
            "\nExpected ordering (paper): Ekya >= Ekya-FixedRes, Ekya-FixedConfig >= Uniform, \
             with the gaps largest at few GPUs."
        );

        save_json("fig08_factors_points", &points);
    } else {
        report.print_shard_notice("the factor table is");
    }
    run.print_footer();
}
