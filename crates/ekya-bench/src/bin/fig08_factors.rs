//! Figure 8 — factor analysis of Ekya's two mechanisms.
//!
//! `Ekya-FixedRes` removes the thief allocation (static 50/50 split, but
//! micro-profiled configuration selection); `Ekya-FixedConfig` removes
//! configuration adaptation (thief allocation over one pinned
//! configuration). Both should lose accuracy relative to full Ekya, most
//! visibly when the system is under stress (few GPUs).
//!
//! Run: `cargo run --release -p ekya-bench --bin fig08_factors`
//! Knobs: EKYA_WINDOWS (default 6), EKYA_STREAMS (default 10).

use ekya_baselines::{holdout_configs, EkyaFixedConfig, EkyaFixedRes, UniformPolicy};
use ekya_bench::{env_u64, env_usize, f3, quick, save_json, Table};
use ekya_core::{EkyaPolicy, Policy, SchedulerParams};
use ekya_sim::{record_trace, ReplayPolicyHarness, RunnerConfig};
use ekya_video::{DatasetKind, StreamSet};
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    gpus: f64,
    scheduler: String,
    accuracy: f64,
}

fn main() {
    let windows = env_usize("EKYA_WINDOWS", 6);
    let num_streams = env_usize("EKYA_STREAMS", 10);
    let seed = env_u64("EKYA_SEED", 42);
    let kind = DatasetKind::Cityscapes;
    let gpu_grid: Vec<f64> = if quick() { vec![2.0, 8.0] } else { vec![2.0, 4.0, 6.0, 8.0] };

    eprintln!("[recording trace — {num_streams} streams x {windows} windows]");
    let streams = StreamSet::generate(kind, num_streams, windows, seed);
    let cfg = RunnerConfig { seed, ..RunnerConfig::default() };
    let trace = record_trace(&streams, &cfg, windows, 6);
    let (_c1, c2) = holdout_configs(kind, &cfg.retrain_grid, &cfg.cost, seed ^ 0xF00D);

    let mut points: Vec<Point> = Vec::new();
    for &gpus in &gpu_grid {
        let harness = ReplayPolicyHarness::new(gpus);
        let params = SchedulerParams::new(gpus);
        let mut policies: Vec<Box<dyn Policy>> = vec![
            Box::new(UniformPolicy::new(c2, 0.5, "Uniform (Cfg 2, 50%)")),
            Box::new(EkyaFixedRes::new(params, 0.5)),
            Box::new(EkyaFixedConfig::new(params, c2)),
            Box::new(EkyaPolicy::new(params)),
        ];
        for policy in policies.iter_mut() {
            let report = harness.run(policy.as_mut(), &trace);
            points.push(Point {
                gpus,
                scheduler: report.policy.clone(),
                accuracy: report.mean_accuracy(),
            });
        }
    }

    let mut t = Table::new(
        format!("Fig 8 — factor analysis ({num_streams} streams, Cityscapes)"),
        &["scheduler", "2 GPUs", "4 GPUs", "6 GPUs", "8 GPUs"],
    );
    let mut schedulers: Vec<String> = points.iter().map(|p| p.scheduler.clone()).collect();
    schedulers.dedup();
    for sched in schedulers {
        let mut row = vec![sched.clone()];
        for &g in &[2.0f64, 4.0, 6.0, 8.0] {
            let v = points
                .iter()
                .find(|p| p.gpus == g && p.scheduler == sched)
                .map(|p| f3(p.accuracy))
                .unwrap_or_else(|| "-".into());
            row.push(v);
        }
        t.row(row);
    }
    t.print();
    println!(
        "\nExpected ordering (paper): Ekya >= Ekya-FixedRes, Ekya-FixedConfig >= Uniform, \
         with the gaps largest at few GPUs."
    );

    save_json("fig08_factors", &points);
}
