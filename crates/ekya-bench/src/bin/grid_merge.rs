//! Merges per-shard experiment reports into the single file an unsharded
//! run writes — byte-identical — and verifies shard coverage.
//!
//! Two input formats are auto-detected per file:
//!
//! * harness reports ([`HarnessReport`]) written by the scenario-grid
//!   bins — every fig/table bin except `fig03_configs` (see
//!   `ekya_bench::shardable_bins`) — under `EKYA_SHARD=i/N`;
//! * configuration-sweep shards ([`ConfigShard`]) written by
//!   `fig03_configs` (the merge recomputes the whole-grid Pareto flags).
//!
//! Merging rejects shards of different grids, overlapping slices (e.g.
//! the same shard passed twice), missing slices, and truncated shard
//! files, each with a message naming the offending cell range.
//!
//! Usage:
//!   grid_merge SHARD.json... [-o OUT.json]     merge shards into OUT
//!                                              (default `results/<name>.json`)
//!   grid_merge --check A.json B.json           byte-compare two reports
//!
//! `--check` is the determinism gate CI uses: after merging the shards of
//! a quick grid it asserts the merged file equals the unsharded run's
//! output byte for byte.
//!
//! Run: `cargo run --release -p ekya-bench --bin grid_merge -- <args>`

use ekya_bench::{
    load_report, merge_config_shards, merge_reports, results_dir, write_json, ConfigShard,
    HarnessReport,
};
use std::path::PathBuf;
use std::process::ExitCode;

/// Everything `grid_merge` can read from one input file.
enum Loaded {
    Report(HarnessReport),
    Config(ConfigShard),
}

fn load(path: &PathBuf) -> Result<Loaded, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let report_err = match serde_json::from_str::<HarnessReport>(&text) {
        Ok(report) => return Ok(Loaded::Report(report)),
        Err(e) => e,
    };
    serde_json::from_str::<ConfigShard>(&text).map(Loaded::Config).map_err(|config_err| {
        // Surface both parse errors: "corrupt file" and "wrong kind of
        // file" need opposite debugging, and hiding the cause behind a
        // generic format hint sends the operator the wrong way.
        format!(
            "{}: neither a harness report ({report_err}) nor a config-sweep shard \
             ({config_err}); note unsharded fig03 point lists need no merging",
            path.display()
        )
    })
}

fn check(a: &PathBuf, b: &PathBuf) -> Result<(), String> {
    let read =
        |p: &PathBuf| std::fs::read(p).map_err(|e| format!("cannot read {}: {e}", p.display()));
    let (bytes_a, bytes_b) = (read(a)?, read(b)?);
    if bytes_a == bytes_b {
        println!("grid_merge: OK — {} ≡ {} ({} bytes)", a.display(), b.display(), bytes_a.len());
        return Ok(());
    }
    // Structural detail when both parse as harness reports: name the
    // first diverging cell instead of just "files differ".
    if let (Ok(ra), Ok(rb)) = (load_report(a), load_report(b)) {
        if ra.cells.len() != rb.cells.len() {
            return Err(format!("cell counts differ: {} vs {}", ra.cells.len(), rb.cells.len()));
        }
        for (i, (ca, cb)) in ra.cells.iter().zip(&rb.cells).enumerate() {
            if ca != cb {
                return Err(format!(
                    "reports diverge at cell {i} ({}): {} vs {}",
                    ca.scenario.label(),
                    ca.mean_accuracy,
                    cb.mean_accuracy
                ));
            }
        }
        return Err("cells agree but report envelopes differ".to_string());
    }
    Err(format!("{} and {} differ", a.display(), b.display()))
}

fn merge(paths: &[PathBuf], out: Option<PathBuf>) -> Result<(), String> {
    let mut reports = Vec::new();
    let mut configs = Vec::new();
    for path in paths {
        match load(path)? {
            Loaded::Report(r) => reports.push(r),
            Loaded::Config(c) => configs.push(c),
        }
    }
    if !reports.is_empty() && !configs.is_empty() {
        return Err("cannot mix harness reports and config-sweep shards in one merge".into());
    }

    let out_for =
        |name: &str| out.clone().unwrap_or_else(|| results_dir().join(format!("{name}.json")));
    let (path, summary) = if !reports.is_empty() {
        let merged = merge_reports(&reports)?;
        let summary = format!(
            "{} shards → {} cells ({} failed)",
            reports.len(),
            merged.cells.len(),
            merged.failed
        );
        let path = out_for(&merged.name);
        write_json(&path, &merged)?;
        (path, summary)
    } else {
        let merged = merge_config_shards(&configs)?;
        let summary = format!(
            "{} shards → {} configs ({} on the Pareto frontier)",
            configs.len(),
            merged.len(),
            merged.iter().filter(|p| p.on_pareto).count()
        );
        let path = out_for(&configs[0].name);
        write_json(&path, &merged)?;
        (path, summary)
    };
    println!("grid_merge: {summary} → {}", path.display());
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.split_first() {
        Some((flag, rest)) if flag == "--check" => match rest {
            [a, b] => check(&PathBuf::from(a), &PathBuf::from(b)),
            _ => Err("usage: grid_merge --check A.json B.json".into()),
        },
        Some(_) => {
            let mut paths = Vec::new();
            let mut out = None;
            let mut it = args.iter();
            loop {
                match it.next() {
                    None => break,
                    Some(a) if a == "-o" || a == "--out" => match it.next() {
                        Some(p) => out = Some(PathBuf::from(p)),
                        None => {
                            eprintln!("grid_merge: {a} needs a path");
                            return ExitCode::FAILURE;
                        }
                    },
                    Some(p) => paths.push(PathBuf::from(p)),
                }
            }
            merge(&paths, out)
        }
        None => Err("usage: grid_merge SHARD.json... [-o OUT.json] | --check A.json B.json".into()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("grid_merge: FAIL — {e}");
            ExitCode::FAILURE
        }
    }
}
