//! Prints the cells/sec trajectory per gated record across the
//! append-only perf series `results/BENCH_series.json` — the
//! "plot cells/sec over the series" companion to `harness_bench`
//! (which appends entries) and `perf_gate` (which gates the latest).
//!
//! For every record name, one row per series entry: the revision
//! (`git describe`), cell count, workers, speedup, throughput, and the
//! change vs the previous entry of the same record; plus a sparkline of
//! the whole trajectory so a drift is visible at a glance.
//!
//! Usage:
//!   bench_series [series.json]      (default results/BENCH_series.json)
//!
//! Run: `cargo run --release -p ekya-bench --bin bench_series`

use ekya_bench::{bench_series_path, f1, BenchSeriesEntry, Table};
use std::path::PathBuf;
use std::process::ExitCode;

/// A bar-chart string of the throughput trajectory, scaled to its max.
fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().copied().fold(0.0f64, f64::max);
    if max <= 0.0 {
        return String::new();
    }
    values
        .iter()
        .map(|v| {
            let idx = ((v / max) * (BARS.len() - 1) as f64).round() as usize;
            BARS[idx.min(BARS.len() - 1)]
        })
        .collect()
}

fn main() -> ExitCode {
    let path = std::env::args().nth(1).map(PathBuf::from).unwrap_or_else(bench_series_path);
    // A missing or empty trajectory is the normal state of a fresh clone
    // (nothing measured yet), not an error — say so and exit clean so CI
    // steps that render the trajectory don't fail before the first
    // measurement exists. A present-but-unparseable file stays an error.
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(_) => {
            println!(
                "bench_series: no trajectory at {} yet — run `cargo run --release -p ekya-bench \
                 --bin harness_bench` to record the first entry",
                path.display()
            );
            return ExitCode::SUCCESS;
        }
    };
    if text.trim().is_empty() {
        println!("bench_series: {} is empty — no measurements recorded yet", path.display());
        return ExitCode::SUCCESS;
    }
    let series: Vec<BenchSeriesEntry> = match serde_json::from_str(&text) {
        Ok(series) => series,
        Err(e) => {
            eprintln!("bench_series: cannot parse {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    if series.is_empty() {
        println!("bench_series: {} holds no entries yet", path.display());
        return ExitCode::SUCCESS;
    }

    // Record names in order of first appearance across the series (old
    // entries may predate newly gated records).
    let mut names: Vec<String> = Vec::new();
    for entry in &series {
        for r in &entry.records {
            if !names.contains(&r.name) {
                names.push(r.name.clone());
            }
        }
    }

    println!(
        "perf trajectory: {} entries, {} record(s) — {}",
        series.len(),
        names.len(),
        path.display()
    );
    for name in &names {
        let mut t = Table::new(
            format!("{name} — cells/sec over the series"),
            &["git", "cells", "workers", "speedup", "cells/s", "Δ vs prev"],
        );
        let mut prev: Option<f64> = None;
        let mut trajectory = Vec::new();
        for entry in &series {
            let Some(r) = entry.records.iter().find(|r| r.name == *name) else { continue };
            let delta = match prev {
                Some(p) if p > 0.0 => format!("{:+.1}%", (r.cells_per_sec / p - 1.0) * 100.0),
                _ => "-".into(),
            };
            t.row(vec![
                entry.git.clone(),
                r.cells.to_string(),
                r.workers.to_string(),
                format!("{:.2}x", r.speedup),
                f1(r.cells_per_sec),
                delta,
            ]);
            prev = Some(r.cells_per_sec);
            trajectory.push(r.cells_per_sec);
        }
        t.print();
        if trajectory.len() > 1 {
            let first = trajectory[0];
            let last = trajectory[trajectory.len() - 1];
            let overall = if first > 0.0 {
                format!(" ({:+.1}% since first entry)", (last / first - 1.0) * 100.0)
            } else {
                String::new()
            };
            println!("{}  {:.1} → {:.1} cells/s{overall}", sparkline(&trajectory), first, last);
        }
    }
    ExitCode::SUCCESS
}
