//! Figure 7 — accuracy vs provisioned GPUs, 10 concurrent streams, four
//! datasets.
//!
//! Uses the trace-driven simulator exactly as the paper does ("to scale
//! to more GPUs, we use the simulator, which uses profiles recorded from
//! real tests"): one mechanistic recording per dataset — recorded lazily
//! by whichever worker needs it first — then fast replay of every
//! (dataset × GPU count × scheduler) cell. The cells carry ordinary
//! [`Scenario`](ekya_bench::Scenario) identities
//! ([`run_fig07_bin`]), so the full
//! shard/resume machinery applies: `EKYA_SHARD=i/N` runs one slice of
//! the grid (merge with `grid_merge` or drive the whole run with
//! `ekya_grid`), `EKYA_RESUME=1` continues a killed run. The harness
//! report lands in `results/fig07_provisioning.json` (`_shardIofN` when
//! sharded); the derived figure points move to
//! `results/fig07_provisioning_points.json`.
//!
//! Also derives the headline "4x resource saving": the GPU count where
//! the best baseline finally matches Ekya's accuracy at 4 GPUs.
//!
//! Run: `cargo run --release -p ekya-bench --bin fig07_provisioning`
//! Knobs: EKYA_WINDOWS (default 6), EKYA_STREAMS (default 10),
//!        EKYA_QUICK=1 (2 datasets, fewer GPUs), EKYA_WORKERS,
//!        EKYA_SHARD, EKYA_RESUME (see crates/ekya-bench/README.md).

use ekya_bench::{f3, fig07_grid_for, run_fig07_bin, save_json, Knobs, Table};
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    dataset: String,
    gpus: f64,
    scheduler: String,
    accuracy: f64,
}

fn main() {
    let knobs = Knobs::from_env();
    // Same single grid definition the runner and the orchestrator's
    // planner use — the tables can never describe a different sweep.
    let grid = fig07_grid_for(&knobs);
    let run = run_fig07_bin(&knobs);
    let report = &run.report;

    if report.is_complete() {
        let points: Vec<Point> = report
            .cells
            .iter()
            .filter(|c| c.error.is_none())
            .map(|c| Point {
                dataset: c.scenario.dataset.name().to_string(),
                gpus: c.scenario.gpus,
                scheduler: c.policy.clone(),
                accuracy: c.mean_accuracy,
            })
            .collect();

        // The column axis is the grid's own GPU axis, so the table can
        // never show a different sweep than the one that ran (no
        // permanently empty quick-mode columns, no silently dropped
        // points if the axis changes).
        let gpu_headers: Vec<String> = grid.gpu_counts.iter().map(|g| format!("{g}")).collect();
        let headers: Vec<&str> =
            std::iter::once("scheduler").chain(gpu_headers.iter().map(String::as_str)).collect();
        for &kind in &grid.datasets {
            let mut t = Table::new(
                format!(
                    "Fig 7 — {} ({} streams): accuracy vs provisioned GPUs",
                    kind.name(),
                    grid.stream_counts.first().copied().expect("fig07 grid has a streams axis")
                ),
                &headers,
            );
            for sched in grid.policies.iter().map(|p| p.label()) {
                let mut row = vec![sched.clone()];
                for &g in &grid.gpu_counts {
                    let v = points
                        .iter()
                        .find(|p| p.dataset == kind.name() && p.gpus == g && p.scheduler == sched)
                        .map(|p| f3(p.accuracy))
                        .unwrap_or_else(|| "-".into());
                    row.push(v);
                }
                t.row(row);
            }
            t.print();

            // The 4x headline: Ekya@4 GPUs vs best baseline per GPU count.
            let ekya_at = |g: f64| {
                points
                    .iter()
                    .find(|p| p.dataset == kind.name() && p.gpus == g && p.scheduler == "Ekya")
                    .map(|p| p.accuracy)
            };
            let best_uniform_at = |g: f64| {
                points
                    .iter()
                    .filter(|p| {
                        p.dataset == kind.name()
                            && p.gpus == g
                            && p.scheduler.starts_with("Uniform")
                    })
                    .map(|p| p.accuracy)
                    .fold(f64::MIN, f64::max)
            };
            if let Some(ekya4) = ekya_at(4.0) {
                let needed =
                    grid.gpu_counts.iter().find(|&&g| best_uniform_at(g) >= ekya4).copied();
                match needed {
                    Some(g) => println!(
                        "{}: best uniform needs {}x the GPUs to match Ekya@4 GPUs (paper: 4x)",
                        kind.name(),
                        g / 4.0
                    ),
                    None => println!(
                        "{}: no uniform variant matches Ekya@4 GPUs even at {} GPUs (> {:.0}x)",
                        kind.name(),
                        grid.gpu_counts.last().unwrap(),
                        grid.gpu_counts.last().unwrap() / 4.0
                    ),
                }
            }
        }

        save_json("fig07_provisioning_points", &points);
    } else {
        report.print_shard_notice("tables and the 4x headline are");
    }
    run.print_footer();
}
