//! Figure 7 — accuracy vs provisioned GPUs, 10 concurrent streams, four
//! datasets.
//!
//! Uses the trace-driven simulator exactly as the paper does ("to scale
//! to more GPUs, we use the simulator, which uses profiles recorded from
//! real tests"): one mechanistic recording per dataset — the recordings
//! fan out across the harness worker pool — then fast replay of every
//! scheduler x GPU-count combination. Also derives the headline "4x
//! resource saving": the GPU count where the best baseline finally
//! matches Ekya's accuracy at 4 GPUs.
//!
//! Run: `cargo run --release -p ekya-bench --bin fig07_provisioning`
//! Knobs: EKYA_WINDOWS (default 6), EKYA_STREAMS (default 10),
//!        EKYA_QUICK=1 (2 datasets, fewer GPUs), EKYA_WORKERS.

use ekya_baselines::{standard_policies, PolicyBuildCtx, PolicySpec};
use ekya_bench::{f3, grid, run_parallel, save_json, Knobs, Table};
use ekya_sim::{record_trace, ReplayPolicyHarness, RunnerConfig, Trace};
use ekya_video::{DatasetKind, StreamSet};
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    dataset: String,
    gpus: f64,
    scheduler: String,
    accuracy: f64,
}

fn main() {
    let knobs = Knobs::from_env();
    knobs.warn_if_sharded("fig07_provisioning");
    knobs.warn_if_resume("fig07_provisioning");
    let windows = knobs.windows(6);
    let num_streams = knobs.streams(10);
    let seed = knobs.seed();
    let datasets: Vec<DatasetKind> = if knobs.quick() {
        vec![DatasetKind::Cityscapes, DatasetKind::UrbanTraffic]
    } else {
        DatasetKind::ALL.to_vec()
    };
    let gpu_grid: Vec<f64> =
        if knobs.quick() { vec![1.0, 4.0, 8.0] } else { vec![1.0, 2.0, 4.0, 6.0, 8.0, 16.0] };
    let policies = standard_policies();

    // ---- Stage 1: one mechanistic recording per dataset, in parallel. --
    eprintln!(
        "[recording {} traces ({} streams x {} windows) across {} workers]",
        datasets.len(),
        num_streams,
        windows,
        knobs.workers()
    );
    let traces: Vec<Trace> = run_parallel(datasets.clone(), knobs.workers(), |_, kind| {
        let cell_seed = grid::cell_seed(seed, kind, num_streams, windows);
        let streams = StreamSet::generate(kind, num_streams, windows, cell_seed);
        let cfg = RunnerConfig { seed: cell_seed, ..RunnerConfig::default() };
        record_trace(&streams, &cfg, windows, 6)
    })
    .into_iter()
    .map(|r| r.expect("trace recording"))
    .collect();

    // ---- Stage 2: replay every (dataset, gpus, policy) cell. ----
    let mut cells: Vec<(usize, f64, PolicySpec)> = Vec::new();
    for d in 0..datasets.len() {
        for &gpus in &gpu_grid {
            for p in &policies {
                cells.push((d, gpus, p.clone()));
            }
        }
    }
    eprintln!("[replaying {} cells]", cells.len());
    let traces_ref = &traces;
    let datasets_ref = &datasets;
    let results = run_parallel(cells, knobs.workers(), move |_, (d, gpus, spec)| {
        let kind = datasets_ref[d];
        let ctx = PolicyBuildCtx::new(kind, gpus, grid::holdout_seed(seed, kind));
        let mut policy = spec.build(&ctx);
        let harness = ReplayPolicyHarness::new(gpus);
        let report = harness.run(policy.as_mut(), &traces_ref[d]);
        Point {
            dataset: kind.name().to_string(),
            gpus,
            scheduler: report.policy.clone(),
            accuracy: report.mean_accuracy(),
        }
    });
    let points: Vec<Point> = results.into_iter().map(|r| r.expect("replay cell")).collect();

    for kind in &datasets {
        let mut t = Table::new(
            format!("Fig 7 — {} (10 streams): accuracy vs provisioned GPUs", kind.name()),
            &["scheduler", "1", "2", "4", "6", "8", "16"],
        );
        for sched in policies.iter().map(|p| p.label()) {
            let mut row = vec![sched.clone()];
            for &g in &[1.0f64, 2.0, 4.0, 6.0, 8.0, 16.0] {
                let v = points
                    .iter()
                    .find(|p| p.dataset == kind.name() && p.gpus == g && p.scheduler == sched)
                    .map(|p| f3(p.accuracy))
                    .unwrap_or_else(|| "-".into());
                row.push(v);
            }
            t.row(row);
        }
        t.print();

        // The 4x headline: Ekya@4 GPUs vs best baseline per GPU count.
        let ekya_at = |g: f64| {
            points
                .iter()
                .find(|p| p.dataset == kind.name() && p.gpus == g && p.scheduler == "Ekya")
                .map(|p| p.accuracy)
        };
        let best_uniform_at = |g: f64| {
            points
                .iter()
                .filter(|p| {
                    p.dataset == kind.name() && p.gpus == g && p.scheduler.starts_with("Uniform")
                })
                .map(|p| p.accuracy)
                .fold(f64::MIN, f64::max)
        };
        if let Some(ekya4) = ekya_at(4.0) {
            let needed = gpu_grid.iter().find(|&&g| best_uniform_at(g) >= ekya4).copied();
            match needed {
                Some(g) => println!(
                    "{}: best uniform needs {}x the GPUs to match Ekya@4 GPUs (paper: 4x)",
                    kind.name(),
                    g / 4.0
                ),
                None => println!(
                    "{}: no uniform variant matches Ekya@4 GPUs even at {} GPUs (> {:.0}x)",
                    kind.name(),
                    gpu_grid.last().unwrap(),
                    gpu_grid.last().unwrap() / 4.0
                ),
            }
        }
    }

    save_json("fig07_provisioning", &points);
}
