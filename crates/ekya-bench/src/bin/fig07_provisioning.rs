//! Figure 7 — accuracy vs provisioned GPUs, 10 concurrent streams, four
//! datasets.
//!
//! Uses the trace-driven simulator exactly as the paper does ("to scale
//! to more GPUs, we use the simulator, which uses profiles recorded from
//! real tests"): one mechanistic recording per dataset, then fast replay
//! of every scheduler x GPU-count combination. Also derives the headline
//! "4x resource saving": the GPU count where the best baseline finally
//! matches Ekya's accuracy at 4 GPUs.
//!
//! Run: `cargo run --release -p ekya-bench --bin fig07_provisioning`
//! Knobs: EKYA_WINDOWS (default 6), EKYA_STREAMS (default 10),
//!        EKYA_QUICK=1 (2 datasets, fewer GPUs).

use ekya_baselines::{holdout_configs, UniformPolicy};
use ekya_bench::{env_u64, env_usize, f3, quick, save_json, Table};
use ekya_core::{EkyaPolicy, Policy, SchedulerParams};
use ekya_sim::{record_trace, ReplayPolicyHarness, RunnerConfig};
use ekya_video::{DatasetKind, StreamSet};
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    dataset: String,
    gpus: f64,
    scheduler: String,
    accuracy: f64,
}

fn main() {
    let windows = env_usize("EKYA_WINDOWS", 6);
    let num_streams = env_usize("EKYA_STREAMS", 10);
    let seed = env_u64("EKYA_SEED", 42);
    let datasets: Vec<DatasetKind> = if quick() {
        vec![DatasetKind::Cityscapes, DatasetKind::UrbanTraffic]
    } else {
        DatasetKind::ALL.to_vec()
    };
    let gpu_grid: Vec<f64> =
        if quick() { vec![1.0, 4.0, 8.0] } else { vec![1.0, 2.0, 4.0, 6.0, 8.0, 16.0] };

    let mut points: Vec<Point> = Vec::new();
    for kind in &datasets {
        eprintln!(
            "[recording trace for {} — {} streams x {} windows]",
            kind.name(),
            num_streams,
            windows
        );
        let streams = StreamSet::generate(*kind, num_streams, windows, seed);
        let cfg = RunnerConfig { seed, ..RunnerConfig::default() };
        let trace = record_trace(&streams, &cfg, windows, 6);
        let (c1, c2) = holdout_configs(*kind, &cfg.retrain_grid, &cfg.cost, seed ^ 0xF00D);

        for &gpus in &gpu_grid {
            let harness = ReplayPolicyHarness::new(gpus);
            let mut policies: Vec<Box<dyn Policy>> = vec![
                Box::new(EkyaPolicy::new(SchedulerParams::new(gpus))),
                Box::new(UniformPolicy::new(c1, 0.5, "Uniform (Cfg 1, 50%)")),
                Box::new(UniformPolicy::new(c2, 0.3, "Uniform (Cfg 2, 30%)")),
                Box::new(UniformPolicy::new(c2, 0.5, "Uniform (Cfg 2, 50%)")),
                Box::new(UniformPolicy::new(c2, 0.9, "Uniform (Cfg 2, 90%)")),
            ];
            for policy in policies.iter_mut() {
                let report = harness.run(policy.as_mut(), &trace);
                points.push(Point {
                    dataset: kind.name().to_string(),
                    gpus,
                    scheduler: report.policy.clone(),
                    accuracy: report.mean_accuracy(),
                });
            }
        }
    }

    for kind in &datasets {
        let mut t = Table::new(
            format!("Fig 7 — {} (10 streams): accuracy vs provisioned GPUs", kind.name()),
            &["scheduler", "1", "2", "4", "6", "8", "16"],
        );
        let schedulers: Vec<String> = {
            let mut s: Vec<String> = points
                .iter()
                .filter(|p| p.dataset == kind.name())
                .map(|p| p.scheduler.clone())
                .collect();
            s.dedup();
            s
        };
        for sched in schedulers {
            let mut row = vec![sched.clone()];
            for &g in &[1.0f64, 2.0, 4.0, 6.0, 8.0, 16.0] {
                let v = points
                    .iter()
                    .find(|p| p.dataset == kind.name() && p.gpus == g && p.scheduler == sched)
                    .map(|p| f3(p.accuracy))
                    .unwrap_or_else(|| "-".into());
                row.push(v);
            }
            t.row(row);
        }
        t.print();

        // The 4x headline: Ekya@4 GPUs vs best baseline per GPU count.
        let ekya_at = |g: f64| {
            points
                .iter()
                .find(|p| p.dataset == kind.name() && p.gpus == g && p.scheduler == "Ekya")
                .map(|p| p.accuracy)
        };
        let best_uniform_at = |g: f64| {
            points
                .iter()
                .filter(|p| {
                    p.dataset == kind.name() && p.gpus == g && p.scheduler.starts_with("Uniform")
                })
                .map(|p| p.accuracy)
                .fold(f64::MIN, f64::max)
        };
        if let Some(ekya4) = ekya_at(4.0) {
            let needed = gpu_grid.iter().find(|&&g| best_uniform_at(g) >= ekya4).copied();
            match needed {
                Some(g) => println!(
                    "{}: best uniform needs {}x the GPUs to match Ekya@4 GPUs (paper: 4x)",
                    kind.name(),
                    g / 4.0
                ),
                None => println!(
                    "{}: no uniform variant matches Ekya@4 GPUs even at {} GPUs (> {:.0}x)",
                    kind.name(),
                    gpu_grid.last().unwrap(),
                    gpu_grid.last().unwrap() / 4.0
                ),
            }
        }
    }

    save_json("fig07_provisioning", &points);
}
