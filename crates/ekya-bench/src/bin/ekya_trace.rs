//! Renders `ekya-telemetry` logical-plane traces (the JSONL files
//! written when `EKYA_TRACE` is set — see the operator guide's
//! "Observability" section).
//!
//! Usage:
//!   ekya_trace summary  [trace.jsonl...]     per-span aggregate table
//!                                            (p50/p95 from hist buckets)
//!   ekya_trace timeline [trace.jsonl...]     ASCII lanes per window
//!   ekya_trace export --chrome <trace.jsonl> [out.json]
//!                                            Chrome trace-event JSON
//!                                            (chrome://tracing, Perfetto)
//!   ekya_trace merge <out.jsonl> <in.jsonl>...
//!                                            shard-merge traces (the
//!                                            trace analogue of grid_merge)
//!   ekya_trace validate <trace.jsonl...>     schema + canonical-order check
//!
//! With no file arguments, `summary`/`timeline`/`validate` operate on
//! every `results/TRACE_*.jsonl` present. Multiple inputs to `summary`
//! or `timeline` are shard-merged first, so a sharded run can be viewed
//! as the single trace its serial run would have produced.
//!
//! Run: `cargo run --release -p ekya-bench --bin ekya_trace -- summary`

use ekya_bench::{results_dir, Table};
use ekya_telemetry::{
    chrome_trace, merge_traces, parse_trace, summarize, timeline, validate_trace,
};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "usage: ekya_trace <summary|timeline|validate> [trace.jsonl...]\n       \
                     ekya_trace export --chrome <trace.jsonl> [out.json]\n       \
                     ekya_trace merge <out.jsonl> <in.jsonl>...";

/// The file arguments, or every `results/TRACE_*.jsonl` when none given.
fn inputs(args: &[String]) -> Result<Vec<PathBuf>, String> {
    if !args.is_empty() {
        return Ok(args.iter().map(PathBuf::from).collect());
    }
    let dir = results_dir();
    let mut found: Vec<PathBuf> = std::fs::read_dir(&dir)
        .map_err(|e| format!("cannot scan {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("TRACE_") && n.ends_with(".jsonl"))
        })
        .collect();
    found.sort();
    if found.is_empty() {
        return Err(format!(
            "no trace files given and no {}/TRACE_*.jsonl found — \
             run a bin with EKYA_TRACE=1 first",
            dir.display()
        ));
    }
    Ok(found)
}

/// Reads the given traces and shard-merges them into one canonical text.
fn load_merged(paths: &[PathBuf]) -> Result<String, String> {
    let texts: Vec<String> = paths
        .iter()
        .map(|p| {
            std::fs::read_to_string(p).map_err(|e| format!("cannot read {}: {e}", p.display()))
        })
        .collect::<Result<_, _>>()?;
    let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
    merge_traces(&refs)
}

fn run_summary(paths: &[PathBuf]) -> Result<(), String> {
    let records = parse_trace(&load_merged(paths)?)?;
    let mut table = Table::new(
        format!("trace summary ({} records)", records.len()),
        &["layer", "name", "kind", "count", "total", "p50", "p95"],
    );
    for row in summarize(&records) {
        table.row(vec![
            row.layer,
            row.name,
            row.kind.clone(),
            row.count.to_string(),
            if row.kind == "span" { format!("{:.4}", row.total_value) } else { "-".into() },
            if row.kind == "hist" { format!("{:.6}", row.p50) } else { "-".into() },
            if row.kind == "hist" { format!("{:.6}", row.p95) } else { "-".into() },
        ]);
    }
    table.print();
    Ok(())
}

fn run_timeline(paths: &[PathBuf]) -> Result<(), String> {
    let records = parse_trace(&load_merged(paths)?)?;
    print!("{}", timeline(&records));
    Ok(())
}

fn run_validate(paths: &[PathBuf]) -> Result<(), String> {
    let mut bad = 0usize;
    for path in paths {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let problems = validate_trace(&text);
        if problems.is_empty() {
            let lines = text.lines().filter(|l| !l.trim().is_empty()).count();
            println!("{}: ok ({lines} records, canonical order)", path.display());
        } else {
            bad += 1;
            println!("{}: INVALID", path.display());
            for p in &problems {
                println!("  - {p}");
            }
        }
    }
    if bad > 0 {
        return Err(format!("{bad} trace file(s) failed validation"));
    }
    Ok(())
}

fn run_export(args: &[String]) -> Result<(), String> {
    let (flag, rest) = args.split_first().ok_or(USAGE.to_string())?;
    if flag != "--chrome" {
        return Err(format!("unknown export format `{flag}` (only --chrome is supported)"));
    }
    let (input, rest) = rest.split_first().ok_or(USAGE.to_string())?;
    let input = PathBuf::from(input);
    let out = match rest {
        [] => input.with_extension("chrome.json"),
        [path] => PathBuf::from(path),
        _ => return Err(USAGE.to_string()),
    };
    let text = std::fs::read_to_string(&input)
        .map_err(|e| format!("cannot read {}: {e}", input.display()))?;
    let records = parse_trace(&text)?;
    std::fs::write(&out, chrome_trace(&records))
        .map_err(|e| format!("cannot write {}: {e}", out.display()))?;
    println!(
        "exported {} records → {} (open in chrome://tracing or ui.perfetto.dev)",
        records.len(),
        out.display()
    );
    Ok(())
}

fn run_merge(args: &[String]) -> Result<(), String> {
    let (out, ins) = args.split_first().ok_or(USAGE.to_string())?;
    if ins.is_empty() {
        return Err(USAGE.to_string());
    }
    let paths: Vec<PathBuf> = ins.iter().map(PathBuf::from).collect();
    let merged = load_merged(&paths)?;
    let out = Path::new(out);
    std::fs::write(out, &merged).map_err(|e| format!("cannot write {}: {e}", out.display()))?;
    println!(
        "merged {} trace(s) → {} ({} records)",
        paths.len(),
        out.display(),
        merged.lines().count()
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match cmd.as_str() {
        "summary" => inputs(rest).and_then(|paths| run_summary(&paths)),
        "timeline" => inputs(rest).and_then(|paths| run_timeline(&paths)),
        "validate" => inputs(rest).and_then(|paths| run_validate(&paths)),
        "export" => run_export(rest),
        "merge" => run_merge(rest),
        _ => Err(format!("unknown subcommand `{cmd}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("ekya_trace: {e}");
            ExitCode::FAILURE
        }
    }
}
